"""Unit tests for RetryPolicy backoff schedules and Deadline budgets."""

import pytest

from repro.reliability import (
    BreakerConfig,
    Deadline,
    DeadlineExceededError,
    ReliabilityPolicy,
    RetryPolicy,
)
from repro.simnet.network import NetworkError
from repro.soap.faults import FaultCode, SoapFault
from repro.transport.base import TransportTimeoutError


class TestRetryPolicyBackoff:
    def test_exponential_growth_without_jitter(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay=0.1, multiplier=2.0, max_delay=10.0, jitter=0.0
        )
        assert policy.schedule() == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_delay_capped_at_max_delay(self):
        policy = RetryPolicy(
            max_attempts=8, base_delay=0.5, multiplier=4.0, max_delay=2.0, jitter=0.0
        )
        assert max(policy.schedule()) <= 2.0
        assert policy.delay(7) == pytest.approx(2.0)

    def test_jitter_stays_within_band(self):
        policy = RetryPolicy(
            max_attempts=50, base_delay=0.1, multiplier=1.0, jitter=0.25, seed=7
        )
        for delay in policy.schedule():
            assert 0.1 * 0.75 <= delay <= 0.1 * 1.25

    def test_jitter_deterministic_per_seed(self):
        a = RetryPolicy(max_attempts=6, jitter=0.3, seed=42).schedule()
        b = RetryPolicy(max_attempts=6, jitter=0.3, seed=42).schedule()
        c = RetryPolicy(max_attempts=6, jitter=0.3, seed=43).schedule()
        assert a == b
        assert a != c

    def test_reset_restores_jitter_stream(self):
        policy = RetryPolicy(max_attempts=4, jitter=0.3, seed=9)
        first = policy.schedule()
        policy.reset()
        assert policy.schedule() == first

    def test_zero_base_delay_degenerates_to_immediate(self):
        policy = RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0)
        assert policy.schedule() == [0.0, 0.0, 0.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestRetryClassification:
    def test_default_retries_transport_errors_not_faults(self):
        policy = RetryPolicy()
        assert policy.retryable(TransportTimeoutError("late"))
        assert policy.retryable(NetworkError("no route"))
        assert not policy.retryable(SoapFault(FaultCode.CLIENT, "bad args"))

    def test_explicit_retry_on_filter_wins(self):
        policy = RetryPolicy(retry_on=(NetworkError,))
        assert policy.retryable(NetworkError("no route"))
        assert not policy.retryable(TransportTimeoutError("late"))
        assert not policy.retryable(RuntimeError("anything else"))


class TestDeadline:
    def test_budget_counts_down_from_start(self):
        deadline = Deadline(5.0)
        assert deadline.remaining(100.0) == 5.0  # unstarted: full budget
        deadline.start(10.0)
        assert deadline.remaining(12.0) == pytest.approx(3.0)
        assert not deadline.expired(14.9)
        assert deadline.expired(15.0)

    def test_start_is_idempotent(self):
        deadline = Deadline(2.0)
        deadline.start(1.0)
        deadline.start(50.0)  # ignored
        assert deadline.remaining(2.0) == pytest.approx(1.0)

    def test_positive_budget_required(self):
        with pytest.raises(ValueError):
            Deadline(0.0)


class TestPolicyBundles:
    def test_naive_is_single_attempt(self):
        policy = ReliabilityPolicy.naive()
        assert policy.retry.max_attempts == 1
        assert not policy.ack
        assert policy.breaker is None

    def test_standard_default_retries_connect_errors_only(self):
        policy = ReliabilityPolicy.standard_default()
        assert policy.retry.retryable(NetworkError("down"))
        assert not policy.retry.retryable(TransportTimeoutError("late"))

    def test_p2ps_default_retransmits_without_ack(self):
        policy = ReliabilityPolicy.p2ps_default()
        assert policy.retry.max_attempts > 1
        assert not policy.ack

    def test_assured_bundles_everything(self):
        policy = ReliabilityPolicy.assured(attempts=4, deadline=10.0)
        assert policy.retry.max_attempts == 4
        assert policy.ack
        assert isinstance(policy.breaker, BreakerConfig)
        deadline = policy.new_deadline()
        assert deadline is not None and deadline.budget == 10.0

    def test_deadline_error_is_reliability_error(self):
        from repro.reliability import ReliabilityError

        assert issubclass(DeadlineExceededError, ReliabilityError)
