"""Unit tests for the ReliableCall attempt driver on the virtual kernel."""

import pytest

from repro.reliability import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    DeadlineExceededError,
    OnewayStatus,
    ReliabilityPolicy,
    ReliableCall,
    RetryPolicy,
)
from repro.simnet import Kernel


def run_call(kernel, policy, attempt, breaker=None, on_retry=None):
    box = {}

    def callback(result, error):
        box["result"], box["error"] = result, error

    ReliableCall(kernel, policy, attempt, callback, breaker=breaker, on_retry=on_retry).start()
    kernel.run_until_idle()
    return box


class TestRetryFlow:
    def test_success_first_attempt(self):
        kernel = Kernel()
        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=3, jitter=0.0))
        box = run_call(kernel, policy, lambda done, n, b: done("ok", None))
        assert box == {"result": "ok", "error": None}

    def test_retries_until_success(self):
        kernel = Kernel()
        calls = []

        def attempt(done, attempt_no, budget):
            calls.append(attempt_no)
            if attempt_no < 2:
                done(None, ConnectionError("flaky"))
            else:
                done("ok", None)

        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=5, base_delay=0.1, jitter=0.0)
        )
        box = run_call(kernel, policy, attempt)
        assert box["result"] == "ok"
        assert calls == [0, 1, 2]
        # two backoffs: 0.1 + 0.2
        assert kernel.now == pytest.approx(0.3)

    def test_attempts_exhausted_returns_last_error(self):
        kernel = Kernel()
        boom = ConnectionError("still down")
        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=3, jitter=0.0))
        box = run_call(kernel, policy, lambda done, n, b: done(None, boom))
        assert box["error"] is boom

    def test_non_retryable_error_fails_immediately(self):
        kernel = Kernel()
        calls = []

        def attempt(done, attempt_no, budget):
            calls.append(attempt_no)
            done(None, ValueError("bad input"))

        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=5, retry_on=(ConnectionError,))
        )
        box = run_call(kernel, policy, attempt)
        assert isinstance(box["error"], ValueError)
        assert calls == [0]

    def test_raising_attempt_is_treated_as_failure(self):
        kernel = Kernel()

        def attempt(done, attempt_no, budget):
            raise ConnectionError("sync boom")

        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=2, jitter=0.0))
        box = run_call(kernel, policy, attempt)
        assert isinstance(box["error"], ConnectionError)

    def test_on_retry_hook_fires_per_retransmit(self):
        kernel = Kernel()
        retries = []
        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=3, jitter=0.0))
        run_call(
            kernel, policy,
            lambda done, n, b: done(None, ConnectionError("x")),
            on_retry=lambda n, delay, err: retries.append((n, delay)),
        )
        assert [n for n, _ in retries] == [2, 3]


class TestDeadline:
    def test_deadline_cuts_off_retry_schedule(self):
        kernel = Kernel()
        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=10, base_delay=1.0, multiplier=1.0, jitter=0.0),
            deadline=2.5,
        )
        calls = []

        def attempt(done, attempt_no, budget):
            calls.append(attempt_no)
            done(None, ConnectionError("down"))

        box = run_call(kernel, policy, attempt)
        assert isinstance(box["error"], DeadlineExceededError)
        assert len(calls) < 10
        assert kernel.now <= 2.5

    def test_budget_passed_to_attempts_shrinks(self):
        kernel = Kernel()
        budgets = []
        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=1.0, multiplier=1.0, jitter=0.0),
            deadline=10.0,
        )

        def attempt(done, attempt_no, budget):
            budgets.append(budget)
            done(None, ConnectionError("down"))

        run_call(kernel, policy, attempt)
        assert budgets[0] == pytest.approx(10.0)
        assert budgets == sorted(budgets, reverse=True)


class TestBreakerIntegration:
    def test_open_breaker_fails_fast(self):
        kernel = Kernel()
        breaker = CircuitBreaker(
            BreakerConfig(min_calls=2), clock=lambda: kernel.now
        )
        breaker.record_failure()
        breaker.record_failure()
        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=3))
        called = []
        box = run_call(
            kernel, policy, lambda done, n, b: called.append(n), breaker=breaker
        )
        assert isinstance(box["error"], CircuitOpenError)
        assert called == []  # no frame ever sent

    def test_each_attempt_feeds_breaker(self):
        kernel = Kernel()
        breaker = CircuitBreaker(
            BreakerConfig(min_calls=3, failure_threshold=0.5), clock=lambda: kernel.now
        )
        policy = ReliabilityPolicy(retry=RetryPolicy(max_attempts=3, jitter=0.0))
        run_call(kernel, policy, lambda done, n, b: done(None, ConnectionError("x")),
                 breaker=breaker)
        assert breaker.state == "open"  # 3 failed attempts tripped it


class TestOnewayStatus:
    def test_starts_pending(self):
        status = OnewayStatus(message_id="urn:uuid:1")
        assert not status.done
        assert not status.acked

    def test_listener_fires_on_conclude(self):
        status = OnewayStatus(message_id="urn:uuid:1")
        seen = []
        status.on_done(seen.append)
        status.acked = True
        status._conclude()
        assert seen == [status]

    def test_listener_fires_immediately_if_already_done(self):
        status = OnewayStatus(message_id="urn:uuid:1")
        status.error = RuntimeError("gone")
        seen = []
        status.on_done(seen.append)
        assert seen == [status]
        assert status.done
