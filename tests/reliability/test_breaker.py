"""Unit tests for the circuit breaker state machine under virtual time."""

from repro.reliability import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
    CircuitBreakerRegistry,
)
from repro.simnet import Kernel


def make_breaker(kernel=None, **overrides):
    kernel = kernel or Kernel()
    config = BreakerConfig(
        window=overrides.pop("window", 8),
        failure_threshold=overrides.pop("failure_threshold", 0.5),
        min_calls=overrides.pop("min_calls", 4),
        open_timeout=overrides.pop("open_timeout", 5.0),
        half_open_max=overrides.pop("half_open_max", 1),
    )
    return kernel, CircuitBreaker(config, clock=lambda: kernel.now)


class TestClosedToOpen:
    def test_stays_closed_below_min_calls(self):
        _, breaker = make_breaker(min_calls=4)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.state == CLOSED

    def test_opens_at_failure_threshold(self):
        _, breaker = make_breaker(min_calls=4, failure_threshold=0.5)
        breaker.record_success()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # 1/3 failures, below threshold
        breaker.record_failure()
        breaker.record_failure()  # 3/5 >= 0.5 and >= min_calls
        assert breaker.state == OPEN

    def test_window_slides(self):
        _, breaker = make_breaker(window=4, min_calls=4)
        for _ in range(4):
            breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.failure_rate == 1.0


class TestOpenBehaviour:
    def test_open_sheds_calls_and_counts(self):
        _, breaker = make_breaker(min_calls=2, failure_threshold=0.5)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.rejected == 2

    def test_half_open_after_timeout(self):
        kernel, breaker = make_breaker(min_calls=2, open_timeout=5.0)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == OPEN
        kernel.schedule(6.0, lambda: None)
        kernel.run_until_idle()
        assert breaker.allow()  # probe admitted
        assert breaker.state == HALF_OPEN

    def test_half_open_limits_concurrent_probes(self):
        kernel, breaker = make_breaker(min_calls=2, open_timeout=1.0, half_open_max=1)
        breaker.record_failure()
        breaker.record_failure()
        kernel.schedule(2.0, lambda: None)
        kernel.run_until_idle()
        assert breaker.allow()
        assert not breaker.allow()  # second probe shed


class TestHalfOpenResolution:
    def _open_then_half_open(self):
        kernel, breaker = make_breaker(min_calls=2, open_timeout=1.0)
        breaker.record_failure()
        breaker.record_failure()
        kernel.schedule(2.0, lambda: None)
        kernel.run_until_idle()
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        return kernel, breaker

    def test_probe_success_closes(self):
        _, breaker = self._open_then_half_open()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.failure_rate == 0.0  # window reset on close

    def test_probe_failure_reopens(self):
        _, breaker = self._open_then_half_open()
        breaker.record_failure()
        assert breaker.state == OPEN

    def test_transitions_recorded_with_times(self):
        kernel, breaker = self._open_then_half_open()
        breaker.record_success()
        states = [state for _, state in breaker.transitions]
        assert states == [OPEN, HALF_OPEN, CLOSED]
        times = [t for t, _ in breaker.transitions]
        assert times == sorted(times)


class TestRegistry:
    def test_one_breaker_per_endpoint(self):
        kernel = Kernel()
        registry = CircuitBreakerRegistry(clock=lambda: kernel.now)
        a1 = registry.for_endpoint("p2ps://prov/Svc")
        a2 = registry.for_endpoint("p2ps://prov/Svc")
        b = registry.for_endpoint("http://other:80/svc")
        assert a1 is a2 and a1 is not b
        assert len(registry) == 2
        assert registry.get("missing") is None

    def test_transition_callback_carries_endpoint_key(self):
        kernel = Kernel()
        seen = []
        registry = CircuitBreakerRegistry(
            clock=lambda: kernel.now,
            on_transition=lambda key, old, new: seen.append((key, old, new)),
        )
        breaker = registry.for_endpoint("p2ps://x/Y", BreakerConfig(min_calls=2))
        breaker.record_failure()
        breaker.record_failure()
        assert seen == [("p2ps://x/Y", CLOSED, OPEN)]
