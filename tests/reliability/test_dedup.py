"""Unit tests for the provider-side duplicate-suppression window."""

import pytest

from repro.reliability import DedupWindow
from repro.simnet import Kernel


class TestRememberAndSeen:
    def test_unseen_then_seen(self):
        window = DedupWindow()
        assert not window.seen("urn:uuid:1")
        window.remember("urn:uuid:1", "<response/>")
        assert window.seen("urn:uuid:1")
        assert window.get("urn:uuid:1") == "<response/>"

    def test_none_id_never_seen(self):
        window = DedupWindow()
        assert not window.seen(None)

    def test_duplicate_hits_counted(self):
        window = DedupWindow()
        window.remember("a")
        window.seen("a")
        window.seen("a")
        window.seen("b")  # miss: not counted
        assert window.duplicates == 2

    def test_all_read_paths_count_duplicates(self):
        # regression: the counter's contract is "hits observed via any
        # read path", but only seen() used to increment it
        window = DedupWindow()
        window.remember("a", "<response/>")
        assert window.seen("a")
        assert "a" in window
        assert window.get("a") == "<response/>"
        assert window.duplicates == 3
        # misses never count, whichever path probes
        assert not window.seen("nope")
        assert "nope" not in window
        assert window.get("nope") is None
        assert window.duplicates == 3

    def test_contains_and_iter(self):
        window = DedupWindow()
        window.remember("a")
        window.remember("b")
        assert "a" in window and "c" not in window
        assert list(window) == ["a", "b"]
        window.clear()
        assert len(window) == 0


class TestEviction:
    def test_fifo_eviction_at_capacity(self):
        window = DedupWindow(max_entries=3)
        for mid in ("a", "b", "c", "d"):
            window.remember(mid)
        assert len(window) == 3
        assert "a" not in window  # oldest evicted first
        assert list(window) == ["b", "c", "d"]
        assert window.evicted == 1

    def test_shrinking_max_entries_applies_on_next_remember(self):
        window = DedupWindow(max_entries=8)
        for i in range(8):
            window.remember(f"m{i}")
        window.max_entries = 3
        window.remember("new")
        assert len(window) <= 3
        assert "new" in window

    def test_re_remember_keeps_fifo_order(self):
        # regression: re-remembering used to move_to_end, silently
        # turning the documented FIFO ring into LRU — a retransmitting
        # client could shield its id from eviction forever
        window = DedupWindow(max_entries=2)
        window.remember("a")
        window.remember("b")
        window.remember("a", "updated")  # refreshes the value only
        assert window.get("a") == "updated"
        window.remember("c")  # evicts a (oldest first insertion), not b
        assert "a" not in window and "b" in window and "c" in window

    def test_re_remember_keeps_original_stored_at(self):
        # FIFO consistency extends to the ttl clock: refreshing a value
        # must not restart the entry's lifetime
        kernel = Kernel()
        window = DedupWindow(ttl=5.0, clock=lambda: kernel.now)
        window.remember("a")
        kernel.schedule(3.0, lambda: None)
        kernel.run_until_idle()  # now = 3.0
        window.remember("a", "refreshed")
        kernel.schedule(3.0, lambda: None)
        kernel.run_until_idle()  # now = 6.0 > first-insertion + ttl
        assert not window.seen("a")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DedupWindow(max_entries=0)
        with pytest.raises(ValueError):
            DedupWindow(ttl=0)


class TestTtlExpiryUnderVirtualClock:
    def test_entries_expire_after_ttl(self):
        kernel = Kernel()
        window = DedupWindow(ttl=5.0, clock=lambda: kernel.now)
        window.remember("early")
        kernel.schedule(6.0, lambda: None)
        kernel.run_until_idle()  # now = 6.0 > ttl
        assert not window.seen("early")
        assert window.evicted == 1

    def test_live_entries_survive(self):
        kernel = Kernel()
        window = DedupWindow(ttl=5.0, clock=lambda: kernel.now)
        window.remember("early")
        kernel.schedule(3.0, lambda: None)
        kernel.run_until_idle()
        window.remember("late")
        assert window.seen("early") and window.seen("late")
