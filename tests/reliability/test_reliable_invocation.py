"""End-to-end reliability over both bindings: retries that reuse the
MessageID, provider dedup for non-idempotent services, acked one-way
sends over pipes, and circuit breakers shedding calls to dead peers."""

import pytest

from repro.core import InvocationError, WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.events import RecordingListener
from repro.p2ps import PeerGroup
from repro.reliability import (
    BreakerConfig,
    CircuitOpenError,
    ReliabilityPolicy,
    RetryPolicy,
)
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class CountingService:
    def __init__(self):
        self.executions = 0

    def bump(self) -> int:
        self.executions += 1
        return self.executions


class Notebook:
    def __init__(self):
        self.notes = []

    def note(self, text: str) -> int:
        self.notes.append(text)
        return len(self.notes)


def retry_policy(attempts=4):
    # zero backoff, default classification (retry anything but SoapFault)
    return ReliabilityPolicy(
        retry=RetryPolicy(max_attempts=attempts, base_delay=0.0, jitter=0.0)
    )


def build_http_world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    service = CountingService()
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
    deployed = provider.deploy(service, name="Counting")
    provider.publish("Counting")
    net.run()
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
    handle = consumer.locate_one("Counting")
    return net, provider, consumer, handle, service, deployed


def build_p2ps_world(service_obj, name):
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("g")
    provider = WSPeer(net.add_node("prov"), P2psBinding(group), name="prov")
    provider.deploy(service_obj, name=name)
    provider.publish(name)
    net.run()
    consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
    handle = consumer.locate_one(name)
    return net, provider, consumer, handle


class TestHttpRetry:
    def test_retry_recovers_from_request_loss(self):
        net, provider, consumer, handle, service, _ = build_http_world()
        dropped = {"n": 0}

        def drop_first_request(frame):
            if frame.port.startswith("http:") and dropped["n"] == 0:
                dropped["n"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first_request)
        listener = RecordingListener()
        consumer.add_listener(listener)
        assert consumer.invoke(
            handle, "bump", timeout=0.5, policy=retry_policy()
        ) == 1
        assert dropped["n"] == 1
        assert len(listener.of_kind("retransmit")) == 1

    def test_dedup_keeps_stateful_executions_at_once(self):
        """Response lost -> retransmit same MessageID -> provider must
        replay the retained response, not re-run the counter."""
        net, provider, consumer, handle, service, deployed = build_http_world()
        state = {"dropped": 0}

        def drop_first_response(frame):
            if frame.port.startswith("http-conn:") and state["dropped"] == 0:
                state["dropped"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first_response)
        assert consumer.invoke(
            handle, "bump", timeout=0.5, policy=retry_policy()
        ) == 1
        assert service.executions == 1
        assert deployed.duplicates_suppressed == 1

    def test_standard_binding_default_does_not_retry_timeouts(self):
        net, provider, consumer, handle, service, _ = build_http_world()
        provider.node.go_down()  # silent loss -> client-side timeout
        from repro.transport import TransportTimeoutError

        listener = RecordingListener()
        consumer.add_listener(listener)
        with pytest.raises(TransportTimeoutError):
            consumer.invoke(handle, "bump", timeout=0.3)
        assert listener.of_kind("retransmit") == []


class TestP2psPolicyRetry:
    def test_explicit_policy_drives_retransmission(self):
        net, provider, consumer, handle = build_p2ps_world(
            CountingService(), "Counting"
        )
        dropped = {"n": 0}

        def drop_first(frame):
            if frame.port.startswith("pipe:") and dropped["n"] == 0:
                dropped["n"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first)
        assert consumer.invoke(
            handle, "bump", timeout=0.2, policy=retry_policy()
        ) == 1

    def test_binding_default_retransmits_without_opting_in(self):
        net, provider, consumer, handle = build_p2ps_world(
            CountingService(), "Counting"
        )
        dropped = {"n": 0}

        def drop_first(frame):
            if frame.port.startswith("pipe:") and dropped["n"] == 0:
                dropped["n"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first)
        listener = RecordingListener()
        consumer.add_listener(listener)
        # no policy argument, no default_retries: the P2psBinding default
        # (3 attempts) recovers on its own
        assert consumer.invoke(handle, "bump", timeout=0.2) == 1
        assert len(listener.of_kind("retransmit")) == 1

    def test_backoff_delays_retransmits(self):
        net, provider, consumer, handle = build_p2ps_world(
            CountingService(), "Counting"
        )
        provider.node.go_down()
        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=2.0, jitter=0.0)
        )
        with pytest.raises(InvocationError, match="after 3 attempt"):
            consumer.invoke(handle, "bump", timeout=0.2, policy=policy)
        # 3 x 0.2s timeouts + 0.1 + 0.2 backoffs
        assert net.now >= 0.9 * 0.99


class TestAckedOneway:
    def test_clean_network_acks_first_attempt(self):
        net, provider, consumer, handle = build_p2ps_world(Notebook(), "Notes")
        listener = RecordingListener()
        consumer.add_listener(listener)
        status = consumer.invoke_oneway(
            handle, "note", {"text": "hello"}, policy=ReliabilityPolicy.assured()
        )
        assert status is not None and not status.done
        net.run()
        assert status.acked
        assert status.attempts == 1
        assert status.acked_at is not None
        assert len(listener.of_kind("oneway-acked")) == 1

    def test_lost_frame_is_retransmitted_until_acked(self):
        net, provider, consumer, handle = build_p2ps_world(Notebook(), "Notes")
        dropped = {"n": 0}

        def drop_first(frame):
            if frame.port.startswith("pipe:") and dropped["n"] == 0:
                dropped["n"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first)
        status = consumer.invoke_oneway(
            handle, "note", {"text": "hello"}, policy=ReliabilityPolicy.assured()
        )
        net.run()
        assert status.acked
        assert status.attempts == 2

    def test_lost_ack_reacked_without_reexecution(self):
        net, provider, consumer, handle = build_p2ps_world(Notebook(), "Notes")
        deployed = provider.server.container.get("Notes")
        state = {"dropped": 0}

        def drop_first_provider_frame(frame):
            if frame.src == "prov" and state["dropped"] == 0:
                state["dropped"] += 1
                return False  # the ack is lost; request already executed
            return True

        net.add_delivery_hook(drop_first_provider_frame)
        status = consumer.invoke_oneway(
            handle, "note", {"text": "once"}, policy=ReliabilityPolicy.assured()
        )
        net.run()
        assert status.acked
        assert status.attempts == 2
        assert deployed.requests_processed == 1  # dup was re-acked, not re-run
        assert provider.server.deployer.duplicates_suppressed == 1

    def test_dead_provider_exhausts_attempts(self):
        net, provider, consumer, handle = build_p2ps_world(Notebook(), "Notes")
        provider.node.go_down()
        status = consumer.invoke_oneway(
            handle, "note", {"text": "void"},
            policy=ReliabilityPolicy(
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                ack=True,
            ),
            timeout=0.2,
        )
        net.run()
        assert not status.acked
        assert isinstance(status.error, InvocationError)
        assert status.attempts == 2

    def test_bare_oneway_still_fire_and_forget(self):
        net, provider, consumer, handle = build_p2ps_world(Notebook(), "Notes")
        ports_before = set(consumer.node.ports)
        result = consumer.invoke_oneway(handle, "note", {"text": "quiet"})
        assert result is None  # no status object, no ack pipe
        assert set(consumer.node.ports) == ports_before
        net.run()


class TestCircuitBreaker:
    def _policy(self):
        return ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            breaker=BreakerConfig(min_calls=2, failure_threshold=0.5, open_timeout=60.0),
        )

    def test_opens_after_repeated_failures_and_fails_fast(self):
        net, provider, consumer, handle = build_p2ps_world(
            CountingService(), "Counting"
        )
        provider.node.go_down()
        listener = RecordingListener()
        consumer.add_listener(listener)
        for _ in range(2):
            with pytest.raises(InvocationError):
                consumer.invoke(handle, "bump", timeout=0.2, policy=self._policy())
        assert len(listener.of_kind("circuit-open")) == 1
        before = net.now
        with pytest.raises(CircuitOpenError):
            consumer.invoke(handle, "bump", timeout=0.2, policy=self._policy())
        assert net.now == before  # shed instantly: no frames, no timers

    def test_half_open_probe_recovers_after_timeout(self):
        net, provider, consumer, handle = build_p2ps_world(
            CountingService(), "Counting"
        )
        policy = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
            breaker=BreakerConfig(min_calls=2, failure_threshold=0.5, open_timeout=1.0),
        )
        provider.node.go_down()
        for _ in range(2):
            with pytest.raises(InvocationError):
                consumer.invoke(handle, "bump", timeout=0.2, policy=policy)
        provider.node.go_up()
        # let the open_timeout lapse in virtual time
        net.kernel.schedule(1.5, lambda: None)
        net.run()
        listener = RecordingListener()
        consumer.add_listener(listener)
        assert consumer.invoke(handle, "bump", timeout=0.2, policy=policy) == 1
        kinds = [e for e in ("circuit-half-open", "circuit-closed")
                 for _ in listener.of_kind(e)]
        assert kinds == ["circuit-half-open", "circuit-closed"]
