"""Half-open probe leases: crashed callers must not wedge the breaker.

`allow()` in half-open hands out a probe *lease* that is normally
released by the matching ``record_success``/``record_failure``.  A
caller that dies mid-probe never reports, and without a timeout that
leaked lease would pin the breaker in half-open (all further calls
rejected) forever.  Leases therefore self-expire after
``half_open_lease_timeout``.
"""

from repro.reliability import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    CircuitBreaker,
)
from repro.simnet import Kernel


def make_breaker(kernel=None, **overrides):
    kernel = kernel or Kernel()
    config = BreakerConfig(
        window=overrides.pop("window", 8),
        failure_threshold=overrides.pop("failure_threshold", 0.5),
        min_calls=overrides.pop("min_calls", 2),
        open_timeout=overrides.pop("open_timeout", 5.0),
        half_open_max=overrides.pop("half_open_max", 1),
        half_open_lease_timeout=overrides.pop("half_open_lease_timeout", 10.0),
    )
    return kernel, CircuitBreaker(config, clock=lambda: kernel.now)


def advance(kernel, dt):
    kernel.schedule(dt, lambda: None)
    kernel.run()


def trip_to_half_open(kernel, breaker):
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == OPEN
    advance(kernel, breaker.config.open_timeout + 0.001)
    assert breaker.allow()  # transitions to half-open, takes the lease
    assert breaker.state == HALF_OPEN
    return breaker


class TestLeaseLifecycle:
    def test_lease_holds_probe_slot(self):
        kernel, breaker = make_breaker(half_open_max=1)
        trip_to_half_open(kernel, breaker)
        assert breaker.half_open_inflight == 1
        assert not breaker.allow()  # slot taken, within lease timeout

    def test_outcome_report_releases_lease(self):
        kernel, breaker = make_breaker(half_open_max=1)
        trip_to_half_open(kernel, breaker)
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.half_open_inflight == 0
        assert breaker.leases_expired == 0

    def test_silent_caller_lease_expires(self):
        """The regression: allow() then *never* report.  After the lease
        timeout a fresh probe must be admitted — the breaker is not
        wedged by the crashed caller."""
        kernel, breaker = make_breaker(
            half_open_max=1, half_open_lease_timeout=10.0
        )
        trip_to_half_open(kernel, breaker)
        # caller crashes here: no record_success / record_failure

        advance(kernel, 9.0)
        assert not breaker.allow()  # lease still live at t+9

        advance(kernel, 1.5)  # past the 10 s lease timeout
        assert breaker.half_open_inflight == 0
        assert breaker.allow()  # new probe admitted
        assert breaker.leases_expired == 1
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_multiple_leaked_leases_all_expire(self):
        kernel, breaker = make_breaker(
            half_open_max=3, half_open_lease_timeout=4.0
        )
        trip_to_half_open(kernel, breaker)
        assert breaker.allow()
        assert breaker.allow()
        assert breaker.half_open_inflight == 3
        assert not breaker.allow()  # all three slots leased

        advance(kernel, 4.5)
        assert breaker.half_open_inflight == 0
        assert breaker.leases_expired == 3
        assert breaker.allow()

    def test_expiry_is_per_lease_not_batch(self):
        kernel, breaker = make_breaker(
            half_open_max=2, half_open_lease_timeout=5.0
        )
        trip_to_half_open(kernel, breaker)  # lease #1 at t=5.001
        advance(kernel, 3.0)
        assert breaker.allow()  # lease #2 three seconds later
        advance(kernel, 2.5)  # t: lease #1 expired, #2 still live
        assert breaker.half_open_inflight == 1
        assert breaker.leases_expired == 1

    def test_reopen_clears_outstanding_leases(self):
        kernel, breaker = make_breaker(half_open_max=2)
        trip_to_half_open(kernel, breaker)
        assert breaker.allow()
        breaker.record_failure()  # probe failed → back to OPEN
        assert breaker.state == OPEN
        advance(kernel, breaker.config.open_timeout + 0.001)
        assert breaker.allow()  # fresh half-open round, fresh slots
        assert breaker.state == HALF_OPEN
        assert breaker.half_open_inflight == 1
