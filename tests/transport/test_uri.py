"""Tests for the URI model, including the p2ps scheme shapes from §IV-B."""

import pytest

from repro.transport import Uri, UriError


class TestParse:
    def test_http_full(self):
        u = Uri.parse("http://hostA:8080/services/Echo")
        assert u.scheme == "http"
        assert u.host == "hostA"
        assert u.port == 8080
        assert u.path == "services/Echo"
        assert u.fragment == ""

    def test_paper_p2ps_example(self):
        # the exact shape from the paper: p2ps://<peerid>/<service>#<pipe>
        u = Uri.parse("p2ps://peer-1234/Echo#echoString")
        assert u.scheme == "p2ps"
        assert u.host == "peer-1234"
        assert u.path == "Echo"
        assert u.fragment == "echoString"

    def test_p2ps_no_service(self):
        # "If there is no service associated with the pipe, the path
        #  component may be empty" (§IV-B)
        u = Uri.parse("p2ps://peer-1234")
        assert u.path == ""
        assert u.fragment == ""

    def test_scheme_lowercased(self):
        assert Uri.parse("HTTP://h/x").scheme == "http"

    def test_no_port(self):
        assert Uri.parse("http://h/x").port is None

    def test_fragment_only(self):
        u = Uri.parse("p2ps://peer#reply")
        assert u.fragment == "reply"
        assert u.path == ""

    def test_missing_scheme(self):
        with pytest.raises(UriError):
            Uri.parse("no-scheme-here")

    def test_missing_host(self):
        with pytest.raises(UriError):
            Uri.parse("http:///path")

    def test_bad_port(self):
        with pytest.raises(UriError):
            Uri.parse("http://h:abc/x")

    def test_port_out_of_range(self):
        with pytest.raises(UriError):
            Uri.parse("http://h:70000/x")


class TestRender:
    CASES = [
        "http://hostA:8080/services/Echo",
        "p2ps://peer-1234/Echo#echoString",
        "p2ps://peer-1234",
        "httpg://secure:8443/svc",
        "http://h/deep/path/here",
    ]

    def test_roundtrip(self):
        for text in self.CASES:
            assert str(Uri.parse(text)) == text

    def test_with_fragment(self):
        u = Uri.parse("p2ps://p/Svc").with_fragment("pipe1")
        assert str(u) == "p2ps://p/Svc#pipe1"

    def test_without_fragment(self):
        u = Uri.parse("p2ps://p/Svc#pipe1").without_fragment()
        assert str(u) == "p2ps://p/Svc"

    def test_authority(self):
        assert Uri.parse("http://h:81/x").authority == "h:81"
        assert Uri.parse("http://h/x").authority == "h"

    def test_frozen(self):
        u = Uri.parse("http://h/x")
        with pytest.raises(AttributeError):
            u.host = "other"  # type: ignore[misc]
