"""Tests for the HTTP message model, server, client and transport."""

import pytest

from repro.simnet import FixedLatency, Network, TraceLog
from repro.transport import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    HttpTransport,
    TransportError,
    TransportTimeoutError,
    Uri,
)
from repro.transport.base import TransportRegistry
from repro.transport.datagram import DatagramTransport


@pytest.fixture
def net():
    network = Network(latency=FixedLatency(0.005), trace=TraceLog(enabled=True))
    network.add_node("client")
    network.add_node("server")
    return network


def _metric(name):
    from repro.observability.metrics import default_registry

    return default_registry().get(name)


class TestMessageModel:
    def test_request_wire_roundtrip(self):
        req = HttpRequest("POST", "/svc", "hello", {"X-A": "1"})
        back = HttpRequest.from_wire(req.to_wire())
        assert back.method == "POST"
        assert back.path == "/svc"
        assert back.body == "hello"
        assert back.headers["X-A"] == "1"
        assert back.headers["Content-Length"] == "5"

    def test_response_wire_roundtrip(self):
        resp = HttpResponse(200, "<ok/>", {"Content-Type": "text/xml"})
        back = HttpResponse.from_wire(resp.to_wire())
        assert back.status == 200
        assert back.reason == "OK"
        assert back.body == "<ok/>"
        assert back.ok

    def test_path_normalised(self):
        assert HttpRequest("GET", "svc").path == "/svc"

    def test_method_uppercased(self):
        assert HttpRequest("post", "/x").method == "POST"

    def test_content_length_mismatch_rejected(self):
        wire = "POST /x HTTP/1.1\r\nContent-Length: 99\r\n\r\nshort"
        with pytest.raises(TransportError):
            HttpRequest.from_wire(wire)

    def test_missing_separator_rejected(self):
        with pytest.raises(TransportError):
            HttpRequest.from_wire("POST /x HTTP/1.1\r\nNoBody: true")

    def test_malformed_request_line(self):
        with pytest.raises(TransportError):
            HttpRequest.from_wire("GARBAGE\r\n\r\n")

    def test_malformed_status_line(self):
        with pytest.raises(TransportError):
            HttpResponse.from_wire("HTTP/1.1 xx Bad\r\n\r\n")

    def test_unknown_status_reason(self):
        assert HttpResponse(299).reason == "Unknown"

    def test_not_ok_statuses(self):
        assert not HttpResponse(404).ok
        assert not HttpResponse(500).ok

    def test_body_with_crlf_survives(self):
        body = "line1\r\n\r\nline2"
        back = HttpResponse.from_wire(HttpResponse(200, body).to_wire())
        assert back.body == body


class TestHeaderCaseInsensitivity:
    """Regression tests: header field names are case-insensitive
    (RFC 9110 §5.1); exact-case matching let a lowercase
    ``content-length:`` skip body validation entirely."""

    def test_lowercase_content_length_is_validated(self):
        wire = "POST /x HTTP/1.1\r\ncontent-length: 99\r\n\r\nshort"
        with pytest.raises(TransportError):
            HttpRequest.from_wire(wire)

    def test_mixed_case_lookup(self):
        req = HttpRequest.from_wire(
            "POST /x HTTP/1.1\r\nCoNtEnT-tYpE: text/xml\r\n\r\n"
        )
        assert req.headers["content-type"] == "text/xml"
        assert req.headers["Content-Type"] == "text/xml"

    def test_render_preserves_first_seen_casing(self):
        req = HttpRequest("POST", "/x", "hi", {"x-custom": "1"})
        req.headers["X-Custom"] = "2"  # same field, different casing
        wire = req.to_wire()
        assert b"x-custom: 2" in wire
        assert b"X-Custom" not in wire

    def test_setdefault_does_not_duplicate_differently_cased_field(self):
        # to_wire used to add a second Content-Length/Content-Type line
        # when the caller had set a lowercase variant
        req = HttpRequest("POST", "/x", "hi", {"content-length": "2"})
        wire = req.to_wire()
        assert wire.lower().count(b"content-length") == 1

    def test_transport_send_respects_lowercase_content_type(self, net):
        captured = {}
        server_side = HttpTransport(net.get_node("server"))
        server_side.listen(
            Uri.parse("http://server/svc"),
            lambda body, headers: (
                captured.setdefault("headers", headers) and ("", {}) or ("", {})
            ),
        )
        client_side = HttpTransport(net.get_node("client"))
        client_side.send(
            Uri.parse("http://server/svc"), "x",
            headers={"content-type": "application/custom"},
        )
        net.run()
        # the SPI hands the handler a plain dict keyed by the sender's
        # casing; the default must not have been layered on top
        sent = captured["headers"]
        values = [v for k, v in sent.items() if k.lower() == "content-type"]
        assert values == ["application/custom"]

    def test_duplicate_header_lines_merge_last_wins(self):
        req = HttpRequest.from_wire(
            "POST /x HTTP/1.1\r\nX-A: one\r\nx-a: two\r\n\r\n"
        )
        assert req.headers["X-A"] == "two"
        assert len([k for k in req.headers if k.lower() == "x-a"]) == 1


class TestContentLengthHardening:
    """Regression tests (E16 framing sweep): Content-Length is a strict
    digit string.  ``int()``-based parsing used to accept ``+5``,
    ``-5``, and whitespace-padded values, and HeaderMap's last-wins
    merge silently smuggled conflicting duplicate lines through —
    either can desynchronise framing on a pipelined connection."""

    @pytest.mark.parametrize(
        "value",
        ["+5", "-5", " 5 ", "5 ", "\t5", "  5", "5\t", "0x5", "5五", ""],
    )
    def test_non_canonical_values_rejected(self, value):
        wire = f"POST /x HTTP/1.1\r\nContent-Length:{value}\r\n\r\nhello"
        with pytest.raises(TransportError):
            HttpRequest.from_wire(wire)

    def test_single_leading_space_accepted(self):
        # the normal "Name: value" rendering — one OWS space, digits
        req = HttpRequest.from_wire(
            "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
        )
        assert req.body == "hello"

    def test_conflicting_duplicate_lines_rejected(self):
        wire = (
            "POST /x HTTP/1.1\r\n"
            "Content-Length: 5\r\n"
            "Content-Length: 99\r\n"
            "\r\nhello"
        )
        with pytest.raises(TransportError, match="conflicting Content-Length"):
            HttpRequest.from_wire(wire)

    def test_conflicting_duplicates_rejected_even_if_last_would_win(self):
        # last-wins HeaderMap merge would have made 5 the effective
        # value and let the message through; the conflict itself must
        # be fatal regardless of line order
        wire = (
            "POST /x HTTP/1.1\r\n"
            "Content-Length: 99\r\n"
            "content-length: 5\r\n"
            "\r\nhello"
        )
        with pytest.raises(TransportError, match="conflicting Content-Length"):
            HttpRequest.from_wire(wire)

    def test_agreeing_duplicate_lines_accepted(self):
        req = HttpRequest.from_wire(
            "POST /x HTTP/1.1\r\n"
            "Content-Length: 5\r\n"
            "content-length: 5\r\n"
            "\r\nhello"
        )
        assert req.body == "hello"

    def test_response_content_length_hardened_too(self):
        with pytest.raises(TransportError):
            HttpResponse.from_wire(
                "HTTP/1.1 200 OK\r\nContent-Length: +6\r\n\r\nbodies"
            )

    def test_server_counts_bad_content_length_as_bad_request(self, net):
        server = HttpServer(net.get_node("server"), 80)
        server.add_route("/echo", lambda req: HttpResponse(200, req.body))
        server.start()
        before = _metric("transport.http.bad_requests")
        client_node = net.get_node("client")
        replies = []
        client_node.open_port("probe", lambda frame: replies.append(frame.payload))
        client_node.send(
            "server", "http:80",
            "POST /echo HTTP/1.1\r\nContent-Length: -5\r\n\r\nhello",
            reply_port="probe",
        )
        net.run()
        assert server.bad_requests == 1
        assert _metric("transport.http.bad_requests") == before + 1
        assert len(replies) == 1
        assert HttpResponse.from_wire(replies[0]).status == 400
        client_node.close_port("probe")


class TestServerClient:
    def make_server(self, net, handler=None):
        server = HttpServer(net.get_node("server"), 80)
        server.add_route(
            "/echo", handler or (lambda req: HttpResponse(200, req.body.upper()))
        )
        server.start()
        return server

    def test_sync_round_trip(self, net):
        self.make_server(net)
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("POST", "/echo", "hi"))
        assert resp.status == 200
        assert resp.body == "HI"
        # two hops of 5 ms
        assert net.now == pytest.approx(0.01)

    def test_404_for_unknown_path(self, net):
        self.make_server(net)
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("POST", "/nope", ""))
        assert resp.status == 404

    def test_handler_exception_becomes_500(self, net):
        def boom(req):
            raise RuntimeError("kaboom")

        self.make_server(net, boom)
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("POST", "/echo", ""))
        assert resp.status == 500
        assert "kaboom" in resp.body

    def test_root_lists_routes(self, net):
        server = self.make_server(net)
        server.add_route("/other", lambda r: HttpResponse(200))
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("GET", "/"))
        assert "/echo" in resp.body and "/other" in resp.body

    def test_interceptor_takes_precedence(self, net):
        server = self.make_server(net)
        server.interceptor = lambda req: HttpResponse(200, "intercepted")
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("POST", "/echo", "hi"))
        assert resp.body == "intercepted"

    def test_interceptor_can_decline(self, net):
        server = self.make_server(net)
        server.interceptor = lambda req: None
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("POST", "/echo", "hi"))
        assert resp.body == "HI"

    def test_timeout_when_server_down(self, net):
        self.make_server(net)
        net.get_node("server").go_down()
        client = HttpClient(net.get_node("client"), default_timeout=1.0)
        with pytest.raises(TransportTimeoutError):
            client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        assert net.now == pytest.approx(1.0)

    def test_async_request(self, net):
        self.make_server(net)
        client = HttpClient(net.get_node("client"))
        seen = []
        client.request_async(
            "server", 80, HttpRequest("POST", "/echo", "abc"),
            lambda resp, err: seen.append((resp, err)),
        )
        assert seen == []  # nothing until the network runs
        net.run()
        assert len(seen) == 1
        assert seen[0][0].body == "ABC"
        assert seen[0][1] is None

    def test_ephemeral_port_closed_after_reply(self, net):
        self.make_server(net)
        client_node = net.get_node("client")
        client = HttpClient(client_node)
        client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        assert all(not p.startswith("http-conn") for p in client_node.ports)

    def test_server_stop(self, net):
        server = self.make_server(net)
        server.stop()
        client = HttpClient(net.get_node("client"), default_timeout=0.5)
        with pytest.raises(TransportTimeoutError):
            client.request("server", 80, HttpRequest("POST", "/echo", "x"))

    def test_requests_served_counter(self, net):
        server = self.make_server(net)
        client = HttpClient(net.get_node("client"))
        for _ in range(3):
            client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        assert server.requests_served == 3

    def test_malformed_request_counted_not_silently_dropped(self, net):
        # regression: garbage on the wire was answered with a 400 but
        # left no server-side evidence at all
        server = self.make_server(net)
        before = _metric("transport.http.bad_requests")
        client_node = net.get_node("client")
        replies = []
        client_node.open_port("probe", lambda frame: replies.append(frame.payload))
        client_node.send("server", "http:80", "THIS IS NOT HTTP", reply_port="probe")
        net.run()
        assert server.bad_requests == 1
        assert _metric("transport.http.bad_requests") == before + 1
        assert len(replies) == 1
        assert HttpResponse.from_wire(replies[0]).status == 400
        client_node.close_port("probe")

    def test_reply_without_reply_port_counted_as_dropped(self, net):
        # regression: a request frame with no reply_port produced a
        # response that vanished without a trace
        server = self.make_server(net)
        before = _metric("transport.http.dropped_replies")
        net.get_node("client").send(
            "server", "http:80", HttpRequest("POST", "/echo", "hi").to_wire()
        )
        net.run()
        assert server.requests_served == 1  # the handler did run
        assert server.dropped_replies == 1
        assert _metric("transport.http.dropped_replies") == before + 1


class TestHttpTransport:
    def test_spi_round_trip(self, net):
        server_side = HttpTransport(net.get_node("server"))
        server_side.listen(
            Uri.parse("http://server/svc"),
            lambda body, headers: (body[::-1], {}),
        )
        client_side = HttpTransport(net.get_node("client"))
        seen = []
        client_side.send(
            Uri.parse("http://server/svc"), "abcdef",
            on_response=lambda body, err: seen.append((body, err)),
        )
        net.run()
        assert seen == [("fedcba", None)]

    def test_error_status_surfaces_as_error(self, net):
        client_side = HttpTransport(net.get_node("client"))
        server_side = HttpTransport(net.get_node("server"))
        server_side.listen(
            Uri.parse("http://server/svc"),
            lambda body, headers: ("denied", {"X-Status": "404"}),
        )
        seen = []
        client_side.send(
            Uri.parse("http://server/svc"), "x",
            on_response=lambda body, err: seen.append((body, err)),
        )
        net.run()
        assert seen[0][0] is None
        assert isinstance(seen[0][1], TransportError)

    def test_status_500_passes_body_for_fault_decoding(self, net):
        client_side = HttpTransport(net.get_node("client"))
        server_side = HttpTransport(net.get_node("server"))
        server_side.listen(
            Uri.parse("http://server/svc"),
            lambda body, headers: ("<fault/>", {"X-Status": "500"}),
        )
        seen = []
        client_side.send(
            Uri.parse("http://server/svc"), "x",
            on_response=lambda body, err: seen.append((body, err)),
        )
        net.run()
        assert seen == [("<fault/>", None)]

    def test_stop_listening_removes_route_and_server(self, net):
        server_side = HttpTransport(net.get_node("server"))
        addr = Uri.parse("http://server/svc")
        server_side.listen(addr, lambda b, h: (b, {}))
        server_side.stop_listening(addr)
        assert not server_side.server_for(80).started

    def test_stop_listening_keeps_server_while_interceptor_installed(self, net):
        # regression: removing the last route used to stop the server
        # even though an interceptor (e.g. a WS-Security envelope guard)
        # was still answering every request
        server_side = HttpTransport(net.get_node("server"))
        addr = Uri.parse("http://server/svc")
        server_side.listen(addr, lambda b, h: (b, {}))
        server = server_side.server_for(80)
        server.interceptor = lambda req: HttpResponse(200, "guarded")
        server_side.stop_listening(addr)
        assert server.started  # interceptor still needs the socket
        client = HttpClient(net.get_node("client"))
        resp = client.request("server", 80, HttpRequest("POST", "/svc", "x"))
        assert resp.body == "guarded"
        # once the interceptor is gone too, the server may shut down
        server.interceptor = None
        server_side.stop_listening(addr)
        assert not server.started


class TestRegistry:
    def test_lookup_by_scheme_and_uri(self, net):
        reg = TransportRegistry()
        http = HttpTransport(net.get_node("client"))
        reg.register(http)
        assert reg.lookup("http") is http
        assert reg.for_uri(Uri.parse("http://server/x")) is http

    def test_unknown_scheme(self):
        with pytest.raises(TransportError):
            TransportRegistry().lookup("gopher")

    def test_schemes_listing(self, net):
        reg = TransportRegistry()
        reg.register(HttpTransport(net.get_node("client")))
        reg.register(DatagramTransport(net.get_node("client")))
        assert reg.schemes == ["dgram", "http"]


class TestDatagram:
    def test_one_way_delivery(self, net):
        recv = DatagramTransport(net.get_node("server"))
        got = []
        recv.listen(
            Uri.parse("dgram://server/inbox"),
            lambda body, headers: got.append(body) or ("", {}),
        )
        send = DatagramTransport(net.get_node("client"))
        completions = []
        send.send(
            Uri.parse("dgram://server/inbox"), "ping",
            on_response=lambda body, err: completions.append((body, err)),
        )
        # completion is immediate (one-way), delivery is async
        assert completions == [(None, None)]
        net.run()
        assert got == ["ping"]

    def test_listen_requires_path(self, net):
        with pytest.raises(TransportError):
            DatagramTransport(net.get_node("server")).listen(
                Uri.parse("dgram://server"), lambda b, h: (b, {})
            )

    def test_stop_listening(self, net):
        t = DatagramTransport(net.get_node("server"))
        addr = Uri.parse("dgram://server/inbox")
        t.listen(addr, lambda b, h: (b, {}))
        t.stop_listening(addr)
        assert not net.get_node("server").has_port("dgram:inbox")
