"""Tests for E11: persistent HTTP connections, pooling, pipelining,
and bounded server-side request queues."""

import pytest

from repro.simnet import FixedLatency, Network, TraceLog
from repro.supervision.failover import BUSY, classify_error
from repro.supervision.health import HealthMonitor
from repro.transport import (
    ConnectionPool,
    HttpClient,
    HttpResponse,
    HttpRequest,
    HttpServer,
    HttpTransport,
    PoolConfig,
    TransportBusyError,
    TransportTimeoutError,
    Uri,
)
from repro.transport.connection import CLOSED, IDLE


@pytest.fixture
def net():
    network = Network(latency=FixedLatency(0.005), trace=TraceLog(enabled=True))
    network.add_node("client")
    network.add_node("server")
    return network


def echo_server(net, port=80, **knobs):
    server = HttpServer(net.get_node("server"), port)
    for name, value in knobs.items():
        setattr(server, name, value)
    server.add_route("/echo", lambda req: HttpResponse(200, req.body))
    server.start()
    return server


class TestKeepAlive:
    def test_two_requests_share_one_connection(self, net):
        server = echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig())
        for body in ("one", "two"):
            response = client.request("server", 80, HttpRequest("POST", "/echo", body))
            assert response.ok and response.body == body
        assert client.pool.opened == 1
        assert client.pool.reused == 1
        assert len(server.connections) == 1
        assert server.requests_served == 2

    def test_keep_alive_costs_two_hops_after_handshake(self, net):
        # handshake = 2 hops, then each request/response = 2 hops at
        # 5ms each; the second request must NOT pay the handshake again
        echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig())
        client.request("server", 80, HttpRequest("POST", "/echo", "a"))
        t_first = net.now
        client.request("server", 80, HttpRequest("POST", "/echo", "b"))
        assert net.now - t_first == pytest.approx(0.01)  # 2 hops, no connect

    def test_idle_timeout_closes_connection(self, net):
        server = echo_server(net)
        client = HttpClient(
            net.get_node("client"), pool=PoolConfig(idle_timeout=0.5)
        )
        client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        (conn,) = client.pool.connections()
        assert conn.state == IDLE
        net.run()  # fires the idle timer, then the close frame drains
        assert conn.state == CLOSED
        assert client.pool.size == 0
        assert server.connections == []  # server side cleaned up too

    def test_max_requests_per_connection_recycles(self, net):
        echo_server(net)
        client = HttpClient(
            net.get_node("client"),
            pool=PoolConfig(max_requests_per_connection=1),
        )
        client.request("server", 80, HttpRequest("POST", "/echo", "a"))
        client.request("server", 80, HttpRequest("POST", "/echo", "b"))
        assert client.pool.opened == 2
        assert client.pool.reused == 0

    def test_explicit_close_clears_server_state(self, net):
        server = echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig())
        client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        (conn,) = client.pool.connections()
        conn.close()
        net.run()
        assert server.connections == []
        assert client.pool.size == 0

    def test_pool_bound_evicts_lru_free_connection(self, net):
        net.add_node("server2")
        echo_server(net)
        server2 = HttpServer(net.get_node("server2"), 80)
        server2.add_route("/echo", lambda req: HttpResponse(200, req.body))
        server2.start()
        client = HttpClient(
            net.get_node("client"), pool=PoolConfig(max_connections=1)
        )
        client.request("server", 80, HttpRequest("POST", "/echo", "a"))
        first = client.pool.connections()[0]
        client.request("server2", 80, HttpRequest("POST", "/echo", "b"))
        assert first.state == CLOSED  # LRU-evicted to stay in bound
        assert client.pool.evicted == 1
        assert client.pool.size == 1


class TestPipelining:
    def test_responses_delivered_in_request_order(self, net):
        # size-dependent latency genuinely reorders frames on the wire:
        # the small second response overtakes the large first one
        net.latency = FixedLatency(0.005, per_byte=0.0005)
        echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig(pipeline=True))
        bodies = ["L" * 400, "s"]
        delivered = []

        def cb_for(i):
            return lambda resp, err: delivered.append((i, resp, err))

        for i, body in enumerate(bodies):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", body), cb_for(i)
            )
        (conn,) = client.pool.connections()
        net.run()
        assert [i for i, _, _ in delivered] == [0, 1]
        for i, resp, err in delivered:
            assert err is None
            assert resp.body == bodies[i]  # every response matches its request
        assert conn.out_of_order >= 1  # the wire really did reorder
        assert client.pool.opened == 1  # all of it on a single connection

    def test_non_pipelined_serialises_in_flight(self, net):
        server = echo_server(net)
        client = HttpClient(
            net.get_node("client"),
            pool=PoolConfig(pipeline=False, max_connections=1),
        )
        results = []
        for body in ("a", "b", "c"):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", body),
                lambda resp, err: results.append((resp, err)),
            )
        (conn,) = client.pool.connections()
        assert conn.in_flight == 3  # queued locally, one on the wire at a time
        net.run()
        assert [r.body for r, e in results] == ["a", "b", "c"]
        assert all(e is None for _, e in results)
        assert server.requests_served == 3


class TestBoundedServerQueue:
    def test_overflow_answers_busy_with_retry_after(self, net):
        echo_server(net, max_pending_per_connection=2.0, conn_drain_rate=1.0)
        client = HttpClient(net.get_node("client"), pool=PoolConfig(pipeline=True))
        results = []
        for i in range(5):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", f"r{i}"),
                lambda resp, err: results.append((resp, err)),
            )
        net.run()
        statuses = [resp.status for resp, _ in results]
        assert statuses == [200, 200, 503, 503, 503]
        for resp, err in results:
            assert err is None  # raw client surfaces the 503 response itself
            if resp.status == 503:
                assert float(resp.headers["Retry-After"]) > 0

    def test_transport_maps_busy_to_error_and_failover_backs_off(self, net):
        echo_server(net, max_pending_per_connection=1.0, conn_drain_rate=1.0)
        transport = HttpTransport(net.get_node("client"))
        transport.enable_pooling(PoolConfig(pipeline=True))
        results = []
        for _ in range(3):
            transport.send(
                Uri.parse("http://server/echo"), "payload",
                on_response=lambda body, err: results.append((body, err)),
            )
        net.run()
        assert results[0][1] is None
        busy_errors = [err for _, err in results[1:]]
        for err in busy_errors:
            assert isinstance(err, TransportBusyError)
            assert err.retry_after > 0
            assert classify_error(err) == BUSY

    def test_unbounded_queue_never_sheds(self, net):
        echo_server(net, max_pending_per_connection=None)
        client = HttpClient(net.get_node("client"), pool=PoolConfig(pipeline=True))
        results = []
        for i in range(20):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", f"r{i}"),
                lambda resp, err: results.append(resp.status),
            )
        net.run()
        assert results == [200] * 20


class TestFailureHandling:
    def test_request_timeout_aborts_connection_and_pool_recovers(self, net):
        # no server listening: the CONNECT frame lands on no handler
        client = HttpClient(
            net.get_node("client"), pool=PoolConfig(connect_timeout=5.0)
        )
        with pytest.raises(TransportTimeoutError):
            client.request(
                "server", 80, HttpRequest("POST", "/echo", "x"), timeout=0.5
            )
        assert client.pool.size == 0
        # the pool opens a fresh connection for the next request
        echo_server(net)
        response = client.request("server", 80, HttpRequest("POST", "/echo", "y"))
        assert response.body == "y"
        assert client.pool.opened == 2

    def test_timeout_fails_later_pipelined_requests_too(self, net):
        client = HttpClient(net.get_node("client"), pool=PoolConfig(pipeline=True))
        results = []
        for body in ("a", "b"):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", body),
                lambda resp, err: results.append((resp, err)),
                timeout=0.5,
            )
        net.run()
        assert results[0][0] is None and isinstance(results[0][1], TransportTimeoutError)
        # the poisoned connection fails the second caller instead of
        # leaving it waiting for an unmatchable response
        assert results[1][0] is None and results[1][1] is not None

    def test_dead_health_verdict_evicts_pooled_connections(self, net):
        echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig())
        monitor = HealthMonitor(clock=lambda: net.now)
        client.pool.attach_health(monitor)
        client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        (conn,) = client.pool.connections()
        monitor.record_failure("http://server/echo", fatal=True)
        assert conn.state == CLOSED
        assert client.pool.size == 0
        assert client.pool.evicted_dead == 1

    def test_unroutable_target_times_out(self, net):
        # parity with the ephemeral client: frames to an unknown node
        # vanish, so the caller sees its timeout
        client = HttpClient(net.get_node("client"), pool=PoolConfig())
        errors = []
        client.request_async(
            "ghost", 80, HttpRequest("POST", "/echo", "x"),
            lambda resp, err: errors.append(err),
            timeout=0.5,
        )
        net.run()
        assert len(errors) == 1
        assert isinstance(errors[0], TransportTimeoutError)


class TestTraceIntegration:
    def test_connection_frames_are_tagged_in_trace(self, net):
        echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig())
        client.request("server", 80, HttpRequest("POST", "/echo", "x"))
        (conn,) = client.pool.connections()
        tagged = [
            r for r in net.trace.records
            if r.kind in ("sent", "delivered") and r.detail.get("conn") == conn.id
        ]
        # connect + accept + request + response, each sent and delivered
        assert len(tagged) >= 8
        untagged = [
            r for r in net.trace.records
            if r.kind == "sent" and "conn" not in r.detail
        ]
        assert untagged == []  # every frame of this exchange was scoped


class TestSharedPool:
    def test_pool_shared_between_clients(self, net):
        echo_server(net)
        pool = ConnectionPool(net.get_node("client"), PoolConfig())
        first = HttpClient(net.get_node("client"), pool=pool)
        second = HttpClient(net.get_node("client"), pool=pool)
        first.request("server", 80, HttpRequest("POST", "/echo", "a"))
        second.request("server", 80, HttpRequest("POST", "/echo", "b"))
        assert pool.opened == 1 and pool.reused == 1


class TestWorkerPoolShed:
    """E13: the node's bounded worker pool sheds pipelined requests.

    A shed request still occupies its slot in the connection's sequence
    — it must be answered 503 *in order*, or every later request on the
    connection would stall behind the hole forever.
    """

    def test_shed_request_answered_in_order(self, net):
        server_node = net.get_node("server")
        server_node.service_time = 0.05
        server_node.configure_workers(1, queue_limit=0)
        echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig(pipeline=True))
        results = []

        def cb_for(i):
            return lambda resp, err: results.append((i, resp, err))

        for i in range(3):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", f"r{i}"), cb_for(i)
            )
        (conn,) = client.pool.connections()
        net.kernel.run(until=1.0)  # stop before the idle timeout
        # responses arrive in request order: first served, rest shed
        assert [i for i, _, _ in results] == [0, 1, 2]
        assert [resp.status for _, resp, _ in results] == [200, 503, 503]
        assert all(err is None for _, _, err in results)
        for _, resp, _ in results[1:]:
            assert float(resp.headers["Retry-After"]) > 0
        assert conn.state != CLOSED  # shed responses do not poison the conn
        assert server_node.frames_overflowed == 2

    def test_connection_survives_shed_and_serves_again(self, net):
        server_node = net.get_node("server")
        server_node.service_time = 0.05
        server_node.configure_workers(1, queue_limit=0)
        server = echo_server(net)
        client = HttpClient(net.get_node("client"), pool=PoolConfig(pipeline=True))
        first = []
        for i in range(2):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", f"r{i}"),
                lambda resp, err, i=i: first.append((i, resp)),
            )
        net.kernel.run(until=1.0)  # stop before the idle timeout
        assert [resp.status for _, resp in first] == [200, 503]
        # the pool is idle again: a follow-up request on the same
        # connection succeeds
        response = client.request("server", 80, HttpRequest("POST", "/echo", "again"))
        assert response.ok and response.body == "again"
        assert client.pool.opened == 1
        (sconn,) = server.connections
        assert sconn.busy_answered == 1
