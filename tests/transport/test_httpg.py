"""Tests for the HTTPG authenticated transport and the CA."""

import pytest

from repro.simnet import FixedLatency, Network
from repro.transport import CertificateAuthority, Credential, HttpgTransport, Uri
from repro.transport.httpg import AuthenticationError


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.005))
    net.add_node("client")
    net.add_node("server")
    ca = CertificateAuthority()
    return net, ca


def wire_pair(net, ca, client_cred=None, server_cred=None, mutual=True):
    client_cred = client_cred or ca.issue("client-user")
    server_cred = server_cred or ca.issue("server-host")
    client = HttpgTransport(net.get_node("client"), ca, client_cred, mutual=mutual)
    server = HttpgTransport(net.get_node("server"), ca, server_cred, mutual=mutual)
    server.listen(Uri.parse("httpg://server/svc"), lambda body, h: (body.upper(), {}))
    return client, server


def send_and_run(net, client, body="hi"):
    seen = []
    client.send(
        Uri.parse("httpg://server/svc"), body,
        on_response=lambda b, e: seen.append((b, e)),
    )
    net.run()
    assert len(seen) == 1
    return seen[0]


class TestCertificateAuthority:
    def test_issue_and_verify(self):
        ca = CertificateAuthority()
        cred = ca.issue("alice")
        ca.verify(cred, now=0.0)  # must not raise

    def test_forged_token_rejected(self):
        ca = CertificateAuthority()
        cred = ca.issue("alice")
        forged = Credential(cred.subject, cred.serial, cred.expires_at, "0" * 32)
        with pytest.raises(AuthenticationError):
            ca.verify(forged, now=0.0)

    def test_tampered_subject_rejected(self):
        ca = CertificateAuthority()
        cred = ca.issue("alice")
        mallory = Credential("mallory", cred.serial, cred.expires_at, cred.token)
        with pytest.raises(AuthenticationError):
            ca.verify(mallory, now=0.0)

    def test_expired_rejected(self):
        ca = CertificateAuthority()
        cred = ca.issue("alice", expires_at=10.0)
        ca.verify(cred, now=5.0)
        with pytest.raises(AuthenticationError):
            ca.verify(cred, now=11.0)

    def test_revoked_rejected(self):
        ca = CertificateAuthority()
        cred = ca.issue("alice")
        ca.revoke(cred)
        with pytest.raises(AuthenticationError):
            ca.verify(cred, now=0.0)

    def test_foreign_ca_rejected(self):
        ca1 = CertificateAuthority(secret="s1")
        ca2 = CertificateAuthority(secret="s2")
        cred = ca2.issue("alice")
        with pytest.raises(AuthenticationError):
            ca1.verify(cred, now=0.0)

    def test_header_roundtrip(self):
        ca = CertificateAuthority()
        cred = ca.issue("alice", expires_at=99.0)
        back = Credential.from_header_value(cred.header_value())
        assert back == cred

    def test_malformed_header(self):
        with pytest.raises(AuthenticationError):
            Credential.from_header_value("too;few")


class TestHttpgTransport:
    def test_authenticated_round_trip(self, world):
        net, ca = world
        client, _ = wire_pair(net, ca)
        body, err = send_and_run(net, client)
        assert err is None
        assert body == "HI"

    def test_expired_client_refused(self, world):
        net, ca = world
        expired = ca.issue("client-user", expires_at=-1.0)
        client, server = wire_pair(net, ca, client_cred=expired)
        body, err = send_and_run(net, client)
        assert body is None
        assert isinstance(err, AuthenticationError)
        assert server.auth_failures == 1

    def test_foreign_ca_client_refused(self, world):
        net, ca = world
        other_ca = CertificateAuthority(secret="other")
        client, _ = wire_pair(net, ca, client_cred=other_ca.issue("client-user"))
        body, err = send_and_run(net, client)
        assert isinstance(err, AuthenticationError)

    def test_mutual_auth_checks_server(self, world):
        net, ca = world
        other_ca = CertificateAuthority(secret="other")
        client, _ = wire_pair(net, ca, server_cred=other_ca.issue("server-host"))
        body, err = send_and_run(net, client)
        assert isinstance(err, AuthenticationError)

    def test_non_mutual_skips_server_check(self, world):
        net, ca = world
        other_ca = CertificateAuthority(secret="other")
        client, _ = wire_pair(
            net, ca, server_cred=other_ca.issue("server-host"), mutual=False
        )
        body, err = send_and_run(net, client)
        assert err is None
        assert body == "HI"

    def test_revoked_mid_session(self, world):
        net, ca = world
        cred = ca.issue("client-user")
        client, _ = wire_pair(net, ca, client_cred=cred)
        body, err = send_and_run(net, client)
        assert err is None
        ca.revoke(cred)
        body, err = send_and_run(net, client)
        assert isinstance(err, AuthenticationError)

    def test_stop_listening_keeps_server_while_interceptor_installed(self, world):
        # regression: removing the last route stopped the server even
        # with an interceptor still installed (same bug as HttpTransport)
        from repro.transport.http import HttpResponse
        from repro.transport.httpg import DEFAULT_HTTPG_PORT

        net, ca = world
        client, server = wire_pair(net, ca)
        http_server = server._servers[DEFAULT_HTTPG_PORT]
        http_server.interceptor = lambda req: HttpResponse(200, "guarded")
        server.stop_listening(Uri.parse("httpg://server/svc"))
        assert http_server.started
        http_server.interceptor = None
        server.stop_listening(Uri.parse("httpg://server/svc"))
        assert not http_server.started

    def test_stop_listening(self, world):
        net, ca = world
        client, server = wire_pair(net, ca)
        server.stop_listening(Uri.parse("httpg://server/svc"))
        seen = []
        client.client.default_timeout = 0.5
        client.send(Uri.parse("httpg://server/svc"), "x",
                    on_response=lambda b, e: seen.append((b, e)))
        net.run()
        assert seen[0][0] is None
        assert seen[0][1] is not None
