"""Property-based tests: serialize∘parse round-trips on random trees."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import Element, QName, parse, serialize

_local_names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8).map(
    lambda s: "n" + s
)
_uris = st.sampled_from(["", "urn:a", "urn:b", "http://x.test/ns"])
# \r included: carriage returns must survive round-trips via &#13;
# (E16 satellite — a literal CR is lost to XML whitespace normalisation)
_text = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'\n\r",
    min_size=0,
    max_size=40,
)
_attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <&\"'\t\n\r",
    max_size=30,
)


@st.composite
def elements(draw, depth: int = 3) -> Element:
    name = QName(draw(_uris), draw(_local_names))
    elem = Element(name)
    for _ in range(draw(st.integers(0, 3))):
        key = QName(draw(st.sampled_from(["", "urn:attr"])), draw(_local_names))
        elem.attributes.setdefault(key, draw(_attr_values))
    txt = draw(_text)
    if txt:
        elem.append_text(txt)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            elem.append(draw(elements(depth=depth - 1)))
    return elem


@settings(max_examples=150, deadline=None)
@given(elements())
def test_roundtrip_structural_equality(tree: Element):
    reparsed = parse(serialize(tree))
    assert reparsed == tree


@settings(max_examples=60, deadline=None)
@given(elements())
def test_serialized_form_is_fixpoint(tree: Element):
    once = serialize(parse(serialize(tree)))
    twice = serialize(parse(once))
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(elements())
def test_pretty_output_parses_to_same_element_names(tree: Element):
    pretty = parse(serialize(tree, pretty=True))
    assert [e.name for e in pretty.iter()] == [e.name for e in tree.iter()]


@settings(max_examples=100, deadline=None)
@given(_text)
def test_text_content_roundtrips_exactly(txt: str):
    elem = Element("a")
    elem.append_text(txt)
    assert parse(serialize(elem)).text == txt


@settings(max_examples=100, deadline=None)
@given(_attr_values)
def test_attr_values_roundtrip_exactly(value: str):
    elem = Element("a", attributes={"k": value})
    assert parse(serialize(elem)).get("k") == value
