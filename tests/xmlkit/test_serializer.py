"""Tests for the serialiser, including the parse∘serialize round-trip."""

from repro.xmlkit import Element, QName, parse, serialize
from repro.xmlkit.serializer import escape_attr, escape_text


class TestEscaping:
    def test_text_escaping(self):
        assert escape_text("<a & b>") == "&lt;a &amp; b&gt;"

    def test_attr_escaping(self):
        assert escape_attr('"') == "&quot;"
        assert escape_attr("<") == "&lt;"
        assert escape_attr("&") == "&amp;"
        assert escape_attr("\n") == "&#10;"


class TestSerialize:
    def test_empty_element_self_closes(self):
        assert serialize(Element("a")) == "<a/>"

    def test_text_content(self):
        assert serialize(Element("a", text="hi")) == "<a>hi</a>"

    def test_attributes(self):
        e = Element("a", attributes={"k": "v"})
        assert serialize(e) == '<a k="v"/>'

    def test_explicit_nsdecls_used(self):
        e = Element(QName("urn:x", "a", "p"), nsdecls={"p": "urn:x"})
        assert serialize(e) == '<p:a xmlns:p="urn:x"/>'

    def test_default_namespace(self):
        e = Element(QName("urn:x", "a"), nsdecls={"": "urn:x"})
        assert serialize(e) == '<a xmlns="urn:x"/>'

    def test_auto_prefix_generation(self):
        e = Element(QName("urn:x", "a"))
        out = serialize(e)
        assert 'xmlns:ns1="urn:x"' in out and out.startswith("<ns1:a")

    def test_prefix_hint_honoured(self):
        e = Element(QName("urn:x", "a", "soap"))
        assert serialize(e) == '<soap:a xmlns:soap="urn:x"/>'

    def test_child_reuses_parent_declaration(self):
        root = Element(QName("urn:x", "a", "p"), nsdecls={"p": "urn:x"})
        root.add(QName("urn:x", "b"))
        out = serialize(root)
        assert out.count("xmlns") == 1

    def test_attr_never_uses_default_ns(self):
        e = Element(QName("urn:x", "a"), nsdecls={"": "urn:x"})
        e.set(QName("urn:x", "k"), "v")
        out = serialize(e)
        # attribute must get an explicit prefix even though default ns matches
        assert ':k="v"' in out

    def test_no_ns_child_under_default_ns(self):
        root = Element(QName("urn:x", "a"), nsdecls={"": "urn:x"})
        root.add(QName("", "plain"))
        out = serialize(root)
        assert '<plain xmlns=""' in out

    def test_mixed_content_order_preserved(self):
        e = Element("a")
        e.append_text("pre")
        e.add("b")
        e.append_text("post")
        assert serialize(e) == "<a>pre<b/>post</a>"

    def test_xml_declaration(self):
        out = serialize(Element("a"), xml_declaration=True)
        assert out.startswith("<?xml version=")

    def test_pretty_output_indents(self):
        root = Element("a")
        root.add("b").add("c")
        out = serialize(root, pretty=True)
        assert "\n  <b>" in out
        assert "\n    <c/>" in out


class TestRoundTrip:
    CASES = [
        "<a/>",
        "<a>text</a>",
        '<a k="v1" j="v2"/>',
        '<a xmlns="urn:d"><b/><c xmlns="">plain</c></a>',
        '<s:Envelope xmlns:s="urn:soap"><s:Header/><s:Body><op xmlns="urn:app">'
        '<arg>1</arg><arg>2</arg></op></s:Body></s:Envelope>',
        "<a>&lt;escaped&gt; &amp; more</a>",
        '<a><b xmlns:p="urn:p" p:attr="x"/>tail</a>',
    ]

    def test_parse_serialize_parse_fixpoint(self):
        for case in self.CASES:
            first = parse(case)
            text = serialize(first)
            second = parse(text)
            assert first == second, case

    def test_serialize_is_stable(self):
        for case in self.CASES:
            t1 = serialize(parse(case))
            t2 = serialize(parse(t1))
            assert t1 == t2, case

    def test_unicode_content(self):
        root = parse("<a>héllo ✓ 中文</a>")
        assert parse(serialize(root)).text == "héllo ✓ 中文"
