"""Streaming codec (E16): parity with the batch codec and the frozen
reference codec, plus incremental-feed behaviour."""

import random
import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import (
    Element,
    FeedParser,
    QName,
    XmlParseError,
    XmlWellFormednessError,
    iter_serialize,
    parse,
    parse_stream,
    serialize,
)
from repro.xmlkit.reference import serialize_reference
from repro.xmlkit.stream import _TEXT_WINDOW

_local_names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8).map(
    lambda s: "n" + s
)
_uris = st.sampled_from(["", "urn:a", "urn:b", "http://x.test/ns"])
_text = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'\n\ré世",
    min_size=0,
    max_size=40,
)
_attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <&\"'\t\n\r",
    max_size=30,
)


@st.composite
def elements(draw, depth: int = 3) -> Element:
    name = QName(draw(_uris), draw(_local_names))
    elem = Element(name)
    for _ in range(draw(st.integers(0, 3))):
        key = QName(draw(st.sampled_from(["", "urn:attr"])), draw(_local_names))
        elem.attributes.setdefault(key, draw(_attr_values))
    txt = draw(_text)
    if txt:
        elem.append_text(txt)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            elem.append(draw(elements(depth=depth - 1)))
    return elem


# ----------------------------------------------------------------------
# serialisation parity
# ----------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(elements(), st.integers(1, 64))
def test_iter_serialize_matches_batch_bytes(tree: Element, chunk_size: int):
    batch = serialize(tree).encode("utf-8")
    streamed = b"".join(iter_serialize(tree, chunk_size=chunk_size))
    assert streamed == batch


@settings(max_examples=60, deadline=None)
@given(elements())
def test_iter_serialize_matches_reference_codec(tree: Element):
    # the frozen reference codec is the parity oracle for the whole
    # serializer family: batch fast path, reference, and stream must
    # all emit identical bytes
    streamed = b"".join(iter_serialize(tree))
    assert streamed == serialize_reference(tree).encode("utf-8")


@settings(max_examples=40, deadline=None)
@given(elements(), st.booleans())
def test_iter_serialize_pretty_and_declaration_match_batch(tree, decl: bool):
    batch = serialize(tree, pretty=True, xml_declaration=decl).encode("utf-8")
    streamed = b"".join(
        iter_serialize(tree, chunk_size=11, pretty=True, xml_declaration=decl)
    )
    assert streamed == batch


def test_iter_serialize_chunk_sizes_bound_memory_granularity():
    elem = Element("big")
    elem.append_text("x" * 300_000)
    chunks = list(iter_serialize(elem, chunk_size=64 * 1024))
    assert len(chunks) > 1
    # every chunk except the last is at least chunk_size and no chunk
    # vastly exceeds it (bounded by one flushed part ~ the text window)
    for chunk in chunks[:-1]:
        assert len(chunk) >= 64 * 1024
    assert max(len(c) for c in chunks) <= 64 * 1024 + _TEXT_WINDOW


# ----------------------------------------------------------------------
# feed-parse parity
# ----------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(elements(), st.integers(0, 10_000))
def test_feed_parser_matches_batch_parse(tree: Element, seed: int):
    wire = serialize(tree).encode("utf-8")
    rng = random.Random(seed)
    parser = FeedParser()
    i = 0
    while i < len(wire):
        step = rng.randint(1, 13)
        parser.feed(memoryview(wire)[i : i + step])
        i += step
    assert parser.close() == parse(wire.decode("utf-8"))


@settings(max_examples=60, deadline=None)
@given(elements())
def test_stream_roundtrip_structural_equality(tree: Element):
    # the full E16 pipeline: iter_serialize → FeedParser, no batch step
    assert parse_stream(iter_serialize(tree, chunk_size=17)) == tree


def test_feed_parser_handles_multibyte_split_across_chunks():
    wire = serialize(Element("a", text="café 世界")).encode("utf-8")
    parser = FeedParser()
    for i in range(len(wire)):  # one byte at a time splits every char
        parser.feed(wire[i : i + 1])
    assert parser.close().text == "café 世界"


def test_feed_parser_merges_split_text_runs():
    parser = FeedParser()
    for piece in ["<a>hel", "lo wo", "rld</a>"]:
        parser.feed(piece)
    tree = parser.close()
    # the split run must land as ONE content node, like the batch parser
    assert tree.content == ("hello world",)


def test_feed_parser_entity_split_across_feeds():
    parser = FeedParser()
    for piece in ["<a>x&a", "mp;y</a>"]:
        parser.feed(piece)
    assert parser.close().text == "x&y"


def test_feed_parser_gt_inside_quoted_attribute_value():
    doc = '<a k="1>2"><b/></a>'
    for split in range(1, len(doc)):
        parser = FeedParser()
        parser.feed(doc[:split])
        parser.feed(doc[split:])
        assert parser.close().get("k") == "1>2"


def test_feed_parser_constructs_split_at_every_boundary():
    doc = (
        '<?xml version="1.0"?><!-- note --><r a="v">'
        "<![CDATA[raw < & bits]]>text &amp; tail<e/></r>"
    )
    expected = parse(doc)
    for split in range(1, len(doc)):
        parser = FeedParser()
        parser.feed(doc[:split])
        parser.feed(doc[split:])
        assert parser.close() == expected


def test_feed_parser_error_parity():
    with pytest.raises(XmlWellFormednessError, match="unclosed element"):
        p = FeedParser()
        p.feed("<a><b>")
        p.close()
    with pytest.raises(XmlParseError, match="no root element"):
        FeedParser().close()
    with pytest.raises(XmlWellFormednessError, match="multiple root"):
        p = FeedParser()
        p.feed("<a/><b/>")
        p.close()
    with pytest.raises(XmlWellFormednessError, match="mismatched closing tag"):
        p = FeedParser()
        p.feed("<a></b>")
        p.close()
    with pytest.raises(XmlParseError, match="unterminated"):
        p = FeedParser()
        p.feed("<!-- never closed")
        p.close()


def test_feed_after_close_rejected():
    parser = FeedParser()
    parser.feed("<a/>")
    parser.close()
    with pytest.raises(XmlParseError):
        parser.feed("<b/>")
