"""Parity: the fast codec must match the frozen reference byte-for-byte.

The fast tokenizer/serializer (lazy positions, flattened namespace
scopes, QName interning) and the envelope-template path are pure
optimisations — every observable output must equal the pre-change
implementation kept in :mod:`repro.xmlkit.reference`.  These tests
generate adversarial trees (namespace shadowing, prefix hints, default
namespaces, escaping edge cases) and diff the two implementations.
"""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlkit import Element, QName, parse, serialize
from repro.xmlkit.errors import XmlError, XmlParseError
from repro.xmlkit.reference import (
    ReferenceTokenizer,
    escape_attr_reference,
    escape_text_reference,
    parse_reference,
    serialize_reference,
)
from repro.xmlkit.serializer import escape_attr, escape_text
from repro.xmlkit.tokenizer import Tokenizer

_local_names = st.text(alphabet=string.ascii_letters, min_size=1, max_size=8).map(
    lambda s: "n" + s
)
_uris = st.sampled_from(["", "urn:a", "urn:b", "urn:c", "http://x.test/ns"])
_prefixes = st.sampled_from(["", "p", "q", "wsa", "ns1"])
_text = st.text(
    alphabet=string.ascii_letters + string.digits + " <>&\"'\n",
    max_size=40,
)
_attr_values = st.text(
    alphabet=string.ascii_letters + string.digits + " <&\"'\t\n",
    max_size=30,
)


@st.composite
def elements(draw, depth: int = 3) -> Element:
    """Random trees that exercise prefix hints, nsdecls and shadowing."""
    name = QName(draw(_uris), draw(_local_names), draw(_prefixes))
    nsdecls = {}
    for _ in range(draw(st.integers(0, 2))):
        nsdecls[draw(_prefixes)] = draw(_uris)
    elem = Element(name, nsdecls=nsdecls or None)
    for _ in range(draw(st.integers(0, 3))):
        key = QName(
            draw(st.sampled_from(["", "urn:attr", "urn:a"])),
            draw(_local_names),
            draw(_prefixes),
        )
        elem.attributes.setdefault(key, draw(_attr_values))
    txt = draw(_text)
    if txt:
        elem.append_text(txt)
    if depth > 0:
        for _ in range(draw(st.integers(0, 3))):
            elem.append(draw(elements(depth=depth - 1)))
    return elem


# ----------------------------------------------------------------------
# serializer parity
# ----------------------------------------------------------------------
@settings(max_examples=200, deadline=None)
@given(elements())
def test_serializer_matches_reference(tree: Element):
    assert serialize(tree) == serialize_reference(tree)


@settings(max_examples=75, deadline=None)
@given(elements())
def test_pretty_serializer_matches_reference(tree: Element):
    assert serialize(tree, pretty=True) == serialize_reference(tree, pretty=True)


@settings(max_examples=50, deadline=None)
@given(elements())
def test_declaration_serializer_matches_reference(tree: Element):
    assert serialize(tree, xml_declaration=True) == serialize_reference(
        tree, xml_declaration=True
    )


@settings(max_examples=150, deadline=None)
@given(_text)
def test_escape_text_matches_reference(value: str):
    assert escape_text(value) == escape_text_reference(value)


@settings(max_examples=150, deadline=None)
@given(_attr_values)
def test_escape_attr_matches_reference(value: str):
    assert escape_attr(value) == escape_attr_reference(value)


def test_escape_fast_path_returns_same_object():
    clean = "nothing to escape here"
    assert escape_text(clean) is clean
    assert escape_attr(clean) is clean


# ----------------------------------------------------------------------
# tokenizer / parser parity
# ----------------------------------------------------------------------
def _assert_same_tokens(document: str) -> None:
    fast = list(Tokenizer(document).tokens())
    reference = list(ReferenceTokenizer(document).tokens())
    assert len(fast) == len(reference)
    for f, r in zip(fast, reference):
        assert f.type is r.type
        assert f.value == r.value
        assert list(f.attrs) == list(r.attrs)
        assert f.self_closing == r.self_closing
        assert (f.line, f.column) == (r.line, r.column)


@settings(max_examples=150, deadline=None)
@given(elements())
def test_tokenizer_matches_reference_on_generated_documents(tree: Element):
    _assert_same_tokens(serialize(tree, xml_declaration=True))
    _assert_same_tokens(serialize(tree, pretty=True))


@pytest.mark.parametrize(
    "document",
    [
        "<a><!-- a comment --><b/><![CDATA[raw <&> text]]></a>",
        "<?xml version='1.0'?>\n<a xmlns='urn:x'>&lt;&amp;&gt;&#65;&#x42;</a>",
        '<a b="1" c="&quot;two&quot;"/>',
        "<?target some data?><root/>",
        "<a>\r\nmixed\t<b>deep</b> tail</a>",
    ],
)
def test_tokenizer_matches_reference_on_handwritten_documents(document: str):
    _assert_same_tokens(document)


@settings(max_examples=150, deadline=None)
@given(elements())
def test_parse_matches_reference(tree: Element):
    wire = serialize(tree, xml_declaration=True)
    fast, reference = parse(wire), parse_reference(wire)
    assert fast == reference
    fast_names = [(e.name.uri, e.name.local, e.name.prefix) for e in fast.iter()]
    ref_names = [(e.name.uri, e.name.local, e.name.prefix) for e in reference.iter()]
    assert fast_names == ref_names


# ----------------------------------------------------------------------
# error-position parity
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "document",
    [
        "<a>\n  <b>\n</a>",  # mismatched closing tag on line 3
        "<a>&nope;</a>",  # unknown entity
        "<a>&#xZZ;</a>",  # bad character reference
        "<a><b attr=unquoted></b></a>",  # unquoted attribute
        '<a>\n<b c="1" c="2"/></a>',  # duplicate attribute, line 2
        "<a><!-- -- --></a>",  # double dash in comment
        "<!DOCTYPE html><a/>",  # DTD rejected
        "<a><b></a>",  # wrong nesting
        "<a", # unterminated start tag
        '<a b="no < allowed"/>',  # '<' inside attribute value
        "<a>\n\n   <b>&unterminated</b></a>",  # entity without ';'
    ],
)
def test_errors_match_reference(document: str):
    try:
        parse(document)
        fast_error = None
    except XmlError as exc:
        fast_error = (type(exc), str(exc), exc.line, exc.column)
    try:
        parse_reference(document)
        ref_error = None
    except XmlError as exc:
        ref_error = (type(exc), str(exc), exc.line, exc.column)
    assert fast_error == ref_error
    assert fast_error is not None


def test_lazy_token_positions_are_one_based():
    tokens = list(Tokenizer("<a>\n  <b/>\n</a>").tokens())
    starts = [(t.line, t.column) for t in tokens]
    assert starts[0] == (1, 1)
    assert (2, 3) in starts  # <b/> after two spaces
    assert starts[-1] == (3, 1)


def test_unterminated_text_error_position():
    with pytest.raises(XmlParseError) as info:
        list(Tokenizer("<a>text &broken").tokens())
    # anchored at the start of the text run, as the reference does
    assert (info.value.line, info.value.column) == (1, 4)
