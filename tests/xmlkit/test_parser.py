"""Tests for the tokenizer and parser."""

import pytest

from repro.xmlkit import Element, QName, XmlParseError, XmlWellFormednessError, parse
from repro.xmlkit.tokenizer import TokenType, tokenize


class TestTokenizer:
    def test_simple_element(self):
        toks = list(tokenize("<a>hi</a>"))
        assert [t.type for t in toks] == [TokenType.START_TAG, TokenType.TEXT, TokenType.END_TAG]

    def test_self_closing(self):
        (tok,) = list(tokenize("<a/>"))
        assert tok.self_closing

    def test_attributes_both_quote_styles(self):
        (tok,) = list(tokenize("<a x=\"1\" y='2'/>"))
        assert tok.attrs == [("x", "1"), ("y", "2")]

    def test_entity_decoding_in_text(self):
        toks = list(tokenize("<a>&lt;&amp;&gt;&quot;&apos;</a>"))
        assert toks[1].value == "<&>\"'"

    def test_numeric_char_refs(self):
        toks = list(tokenize("<a>&#65;&#x42;</a>"))
        assert toks[1].value == "AB"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XmlParseError):
            list(tokenize("<a>&nbsp;</a>"))

    def test_cdata(self):
        toks = list(tokenize("<a><![CDATA[<not-a-tag> & raw]]></a>"))
        assert toks[1].value == "<not-a-tag> & raw"

    def test_comment(self):
        toks = list(tokenize("<!-- hello --><a/>"))
        assert toks[0].type is TokenType.COMMENT

    def test_double_dash_in_comment_rejected(self):
        with pytest.raises(XmlParseError):
            list(tokenize("<!-- a -- b --><a/>"))

    def test_xml_declaration(self):
        toks = list(tokenize('<?xml version="1.0"?><a/>'))
        assert toks[0].type is TokenType.DECLARATION

    def test_processing_instruction(self):
        toks = list(tokenize("<?target some data?><a/>"))
        assert toks[0].type is TokenType.PI
        assert toks[0].value == ("target", "some data")

    def test_doctype_rejected(self):
        with pytest.raises(XmlParseError):
            list(tokenize("<!DOCTYPE html><a/>"))

    def test_unterminated_tag(self):
        with pytest.raises(XmlParseError):
            list(tokenize("<a foo"))

    def test_unterminated_comment(self):
        with pytest.raises(XmlParseError):
            list(tokenize("<!-- never ends"))

    def test_unquoted_attribute_rejected(self):
        with pytest.raises(XmlParseError):
            list(tokenize("<a x=1/>"))

    def test_lt_in_attribute_rejected(self):
        with pytest.raises(XmlParseError):
            list(tokenize('<a x="a<b"/>'))

    def test_error_carries_position(self):
        try:
            list(tokenize("<a>\n<b x=bad/></a>"))
        except XmlParseError as e:
            assert e.line == 2
        else:
            pytest.fail("expected XmlParseError")


class TestParser:
    def test_basic_tree(self):
        root = parse("<a><b>t</b><c/></a>")
        assert root.name.local == "a"
        assert [c.name.local for c in root.children] == ["b", "c"]
        assert root.find("b").text == "t"

    def test_default_namespace(self):
        root = parse('<a xmlns="urn:x"><b/></a>')
        assert root.name == QName("urn:x", "a")
        assert root.children[0].name == QName("urn:x", "b")

    def test_prefixed_namespace(self):
        root = parse('<p:a xmlns:p="urn:x"><p:b/></p:a>')
        assert root.name == QName("urn:x", "a")
        assert root.name.prefix == "p"

    def test_attribute_namespaces(self):
        root = parse('<a xmlns:n="urn:n" n:k="v" plain="w"/>')
        assert root.get(QName("urn:n", "k")) == "v"
        assert root.get("plain") == "w"

    def test_unprefixed_attr_not_in_default_ns(self):
        root = parse('<a xmlns="urn:x" k="v"/>')
        assert root.get(QName("", "k")) == "v"
        assert root.get(QName("urn:x", "k")) is None

    def test_namespace_shadowing(self):
        root = parse('<a xmlns:p="urn:1"><b xmlns:p="urn:2"><p:c/></b></a>')
        c = root.children[0].children[0]
        assert c.name == QName("urn:2", "c")

    def test_default_ns_unset(self):
        root = parse('<a xmlns="urn:x"><b xmlns=""/></a>')
        assert root.children[0].name == QName("", "b")

    def test_undeclared_element_prefix(self):
        with pytest.raises(XmlWellFormednessError):
            parse("<p:a/>")

    def test_undeclared_attribute_prefix(self):
        with pytest.raises(XmlWellFormednessError):
            parse('<a p:k="v"/>')

    def test_mismatched_tags(self):
        with pytest.raises(XmlWellFormednessError):
            parse("<a><b></a></b>")

    def test_mismatched_prefix_in_close(self):
        with pytest.raises(XmlWellFormednessError):
            parse('<p:a xmlns:p="urn:x" xmlns:q="urn:x"></q:a>')

    def test_duplicate_attribute(self):
        with pytest.raises(XmlWellFormednessError):
            parse('<a k="1" k="2"/>')

    def test_multiple_roots(self):
        with pytest.raises(XmlWellFormednessError):
            parse("<a/><b/>")

    def test_text_outside_root(self):
        with pytest.raises(XmlWellFormednessError):
            parse("junk<a/>")

    def test_unclosed(self):
        with pytest.raises(XmlWellFormednessError):
            parse("<a><b></b>")

    def test_empty_input(self):
        with pytest.raises(XmlParseError):
            parse("")

    def test_whitespace_around_root_ok(self):
        root = parse("  \n<a/>\n  ")
        assert root.name.local == "a"

    def test_comments_ignored(self):
        root = parse("<a><!-- c --><b/></a>")
        assert len(root.children) == 1

    def test_mixed_content_preserved(self):
        root = parse("<a>pre<b/>post</a>")
        assert root.text == "prepost"
        kinds = [type(c).__name__ for c in root.content]
        assert kinds == ["str", "Element", "str"]

    def test_xml_prefix_predeclared(self):
        root = parse('<a xml:lang="en"/>')
        assert root.get(QName("http://www.w3.org/XML/1998/namespace", "lang")) == "en"

    def test_deep_nesting(self):
        depth = 200
        text = "".join(f"<e{i}>" for i in range(depth)) + "x" + "".join(
            f"</e{i}>" for i in reversed(range(depth))
        )
        root = parse(text)
        node: Element = root
        for _ in range(depth - 1):
            node = node.children[0]
        assert node.text == "x"
