"""Tests for the Element tree."""

from repro.xmlkit import Element, QName


def make_tree():
    root = Element(QName("urn:a", "root"), nsdecls={"a": "urn:a"})
    child1 = root.add(QName("urn:a", "item"), text="one", idx="1")
    child2 = root.add(QName("urn:a", "item"), text="two", idx="2")
    other = root.add(QName("urn:b", "other"))
    return root, child1, child2, other


class TestContent:
    def test_text_property(self):
        e = Element("x", text="hello")
        assert e.text == "hello"

    def test_text_setter_replaces_text_keeps_children(self):
        e = Element("x", text="old")
        c = e.add("child")
        e.text = "new"
        assert e.text == "new"
        assert e.children == [c]

    def test_append_sets_parent(self):
        root, c1, *_ = make_tree()
        assert c1.parent is root

    def test_remove_clears_parent(self):
        root, c1, *_ = make_tree()
        root.remove(c1)
        assert c1.parent is None
        assert c1 not in root.children

    def test_interleaved_text(self):
        e = Element("x")
        e.append_text("a")
        e.add("b")
        e.append_text("c")
        assert e.text == "ac"
        assert len(e.children) == 1

    def test_full_text_recurses(self):
        e = Element("x", text="a")
        e.add("y", text="b")
        e.append_text("c")
        assert e.full_text() == "abc"

    def test_extend(self):
        e = Element("x")
        kids = [Element("a"), Element("b")]
        e.extend(kids)
        assert e.children == kids


class TestQueries:
    def test_find_by_qname(self):
        root, c1, *_ = make_tree()
        assert root.find(QName("urn:a", "item")) is c1

    def test_find_by_local_name(self):
        root, c1, *_ = make_tree()
        assert root.find("item") is c1

    def test_find_missing_returns_none(self):
        root, *_ = make_tree()
        assert root.find("nope") is None

    def test_find_all(self):
        root, c1, c2, _ = make_tree()
        assert root.find_all("item") == [c1, c2]

    def test_find_all_qualified_excludes_other_ns(self):
        root, *_ = make_tree()
        assert root.find_all(QName("urn:b", "item")) == []

    def test_find_text(self):
        root, *_ = make_tree()
        assert root.find_text("item") == "one"
        assert root.find_text("nope", "dflt") == "dflt"

    def test_iter_depth_first(self):
        root, c1, c2, other = make_tree()
        sub = other.add("leaf")
        names = [e.name.local for e in root.iter()]
        assert names == ["root", "item", "item", "other", "leaf"]
        assert sub in list(root.iter())

    def test_descendants(self):
        root, *_ = make_tree()
        root.children[0].add("item")  # nested item
        assert len(root.descendants("item")) == 3


class TestAttributes:
    def test_get_set(self):
        e = Element("x")
        e.set("a", "1")
        assert e.get("a") == "1"

    def test_get_default(self):
        assert Element("x").get("a", "d") == "d"

    def test_qualified_attribute(self):
        e = Element("x")
        e.set(QName("urn:n", "attr"), "v")
        assert e.get(QName("urn:n", "attr")) == "v"
        assert e.get("attr") is None  # unqualified lookup must not match

    def test_set_coerces_to_str(self):
        e = Element("x")
        e.set("n", 42)  # type: ignore[arg-type]
        assert e.get("n") == "42"


class TestNamespaceResolution:
    def test_prefix_resolution_walks_ancestors(self):
        root = Element("r", nsdecls={"p": "urn:p"})
        child = root.add("c")
        assert child.namespace_for_prefix("p") == "urn:p"

    def test_shadowing(self):
        root = Element("r", nsdecls={"p": "urn:outer"})
        child = Element("c", nsdecls={"p": "urn:inner"})
        root.append(child)
        assert child.namespace_for_prefix("p") == "urn:inner"
        assert root.namespace_for_prefix("p") == "urn:outer"

    def test_unknown_prefix(self):
        assert Element("r").namespace_for_prefix("zz") is None

    def test_prefix_for_namespace(self):
        root = Element("r", nsdecls={"p": "urn:p"})
        child = root.add("c")
        assert child.prefix_for_namespace("urn:p") == "p"

    def test_prefix_for_namespace_respects_shadowing(self):
        root = Element("r", nsdecls={"p": "urn:outer"})
        child = Element("c", nsdecls={"p": "urn:inner"})
        root.append(child)
        # 'p' is rebound on child, so urn:outer has no usable prefix there
        assert child.prefix_for_namespace("urn:outer") is None

    def test_resolve_qname_text(self):
        root = Element("r", nsdecls={"tns": "urn:tns", "": "urn:dflt"})
        assert root.resolve_qname_text("tns:msg") == QName("urn:tns", "msg")
        assert root.resolve_qname_text("bare") == QName("urn:dflt", "bare")

    def test_resolve_qname_text_undeclared(self):
        import pytest

        with pytest.raises(ValueError):
            Element("r").resolve_qname_text("zz:msg")


class TestCopyAndEquality:
    def test_copy_is_deep(self):
        root, c1, *_ = make_tree()
        dup = root.copy()
        assert dup == root
        dup.children[0].set("idx", "99")
        assert c1.get("idx") == "1"

    def test_copy_has_no_parent(self):
        root, *_ = make_tree()
        assert root.copy().parent is None

    def test_equality_ignores_insignificant_whitespace(self):
        a = Element("x")
        a.append_text("  ")
        a.add("y")
        b = Element("x")
        b.add("y")
        assert a == b

    def test_inequality_on_attr(self):
        a = Element("x", attributes={"k": "1"})
        b = Element("x", attributes={"k": "2"})
        assert a != b

    def test_inequality_on_child_count(self):
        a = Element("x")
        a.add("y")
        assert a != Element("x")
