"""Tests for QName and name validity."""

import pytest

from repro.xmlkit import QName
from repro.xmlkit.names import is_ncname, split_prefixed


class TestIsNcname:
    def test_simple_names_valid(self):
        for name in ["a", "Envelope", "foo-bar", "x_1", "_hidden", "a.b"]:
            assert is_ncname(name), name

    def test_invalid_names(self):
        for name in ["", "1abc", "-x", ".x", "a b", "a:b", "<", "a<b"]:
            assert not is_ncname(name), name


class TestSplitPrefixed:
    def test_with_prefix(self):
        assert split_prefixed("soap:Envelope") == ("soap", "Envelope")

    def test_without_prefix(self):
        assert split_prefixed("Envelope") == ("", "Envelope")

    def test_empty_prefix_kept(self):
        assert split_prefixed(":x") == ("", "x")


class TestQName:
    def test_equality_ignores_prefix(self):
        a = QName("urn:x", "name", "p1")
        b = QName("urn:x", "name", "p2")
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality_on_uri(self):
        assert QName("urn:x", "name") != QName("urn:y", "name")

    def test_inequality_on_local(self):
        assert QName("urn:x", "a") != QName("urn:x", "b")

    def test_clark_roundtrip(self):
        q = QName("urn:x", "name")
        assert q.clark() == "{urn:x}name"
        assert QName.from_clark(q.clark()) == q

    def test_clark_no_namespace(self):
        q = QName("", "name")
        assert q.clark() == "name"
        assert QName.from_clark("name") == q

    def test_invalid_local_rejected(self):
        with pytest.raises(ValueError):
            QName("urn:x", "not a name")

    def test_invalid_prefix_rejected(self):
        with pytest.raises(ValueError):
            QName("urn:x", "ok", "bad prefix")

    def test_with_prefix_copies(self):
        q = QName("urn:x", "name")
        q2 = q.with_prefix("p")
        assert q2.prefix == "p"
        assert q2 == q

    def test_str_matches_clark(self):
        assert str(QName("urn:x", "n")) == "{urn:x}n"

    def test_frozen(self):
        q = QName("urn:x", "n")
        with pytest.raises(AttributeError):
            q.local = "other"  # type: ignore[misc]
