"""Tests for SoapEnvelope and SoapFault."""

import pytest

from repro.soap import FaultCode, SoapEnvelope, SoapFault
from repro.soap.envelope import MUST_UNDERSTAND, SoapEnvelopeError
from repro.xmlkit import Element, QName, ns


def op_element(name="echo"):
    return Element(QName("urn:app", name, "app"), nsdecls={"app": "urn:app"})


class TestEnvelope:
    def test_wire_roundtrip(self):
        env = SoapEnvelope(body_content=op_element())
        text = env.to_wire()
        assert text.startswith("<?xml")
        back = SoapEnvelope.from_wire(text)
        assert back.body_content.name == QName("urn:app", "echo")
        assert back.headers == []

    def test_headers_roundtrip(self):
        env = SoapEnvelope(body_content=op_element())
        env.add_header(Element(QName("urn:h", "Token", "h"), text="abc"))
        back = SoapEnvelope.from_wire(env.to_wire())
        assert len(back.headers) == 1
        assert back.headers[0].text == "abc"

    def test_must_understand_flag(self):
        env = SoapEnvelope(body_content=op_element())
        env.add_header(Element(QName("urn:h", "Token", "h")), must_understand=True)
        back = SoapEnvelope.from_wire(env.to_wire())
        assert back.headers[0].get(MUST_UNDERSTAND) == "1"

    def test_empty_body_allowed(self):
        back = SoapEnvelope.from_wire(SoapEnvelope().to_wire())
        assert back.body_content is None

    def test_find_header_by_qname(self):
        env = SoapEnvelope()
        h = env.add_header(Element(QName("urn:h", "Token", "h")))
        assert env.find_header(QName("urn:h", "Token")) is h
        assert env.find_header(QName("urn:zz", "Token")) is None

    def test_find_header_by_local_name(self):
        env = SoapEnvelope()
        env.add_header(Element(QName("urn:h", "Token", "h")))
        assert env.find_header("Token") is not None

    def test_find_headers_by_namespace(self):
        env = SoapEnvelope()
        env.add_header(Element(QName("urn:a", "X", "a")))
        env.add_header(Element(QName("urn:a", "Y", "a")))
        env.add_header(Element(QName("urn:b", "Z", "b")))
        assert len(env.find_headers("urn:a")) == 2

    def test_non_envelope_rejected(self):
        with pytest.raises(SoapEnvelopeError):
            SoapEnvelope.from_wire("<notsoap/>")

    def test_missing_body_rejected(self):
        text = f'<e:Envelope xmlns:e="{ns.SOAP_ENV}"><e:Header/></e:Envelope>'
        with pytest.raises(SoapEnvelopeError):
            SoapEnvelope.from_wire(text)

    def test_multiple_body_children_rejected(self):
        text = (
            f'<e:Envelope xmlns:e="{ns.SOAP_ENV}"><e:Body><a/><b/></e:Body></e:Envelope>'
        )
        with pytest.raises(SoapEnvelopeError):
            SoapEnvelope.from_wire(text)

    def test_scope_preserved_on_extraction(self):
        # xsi:type="xsd:int" must still resolve after the body child is
        # detached from the envelope's namespace declarations
        op = op_element()
        arg = op.add("n", text="3")
        arg.set(QName(ns.XSI, "type", "xsi"), "xsd:int")
        env = SoapEnvelope(body_content=op)
        back = SoapEnvelope.from_wire(env.to_wire())
        child = back.body_content.children[0]
        resolved = child.resolve_qname_text(child.get(QName(ns.XSI, "type")))
        assert resolved == QName(ns.XSD, "int")

    def test_body_content_copied_not_aliased(self):
        op = op_element()
        env = SoapEnvelope(body_content=op)
        elem = env.to_element()
        op.set("mutated", "yes")
        body_child = elem.find(QName(ns.SOAP_ENV, "Body")).children[0]
        assert body_child.get("mutated") is None


class TestFault:
    def test_fault_roundtrip(self):
        fault = SoapFault(FaultCode.CLIENT, "bad input", actor="urn:me")
        env = SoapEnvelope.for_fault(fault)
        back = SoapEnvelope.from_wire(env.to_wire())
        assert back.is_fault
        f = back.fault()
        assert f.code is FaultCode.CLIENT
        assert f.message == "bad input"
        assert f.actor == "urn:me"

    def test_fault_with_detail(self):
        detail = Element(QName("urn:app", "Diag", "app"), text="stack")
        fault = SoapFault(FaultCode.SERVER, "boom", detail=detail)
        back = SoapEnvelope.from_wire(SoapEnvelope.for_fault(fault).to_wire()).fault()
        assert back.detail is not None
        assert back.detail.text == "stack"

    def test_unknown_code_maps_to_server(self):
        fault = SoapFault(FaultCode.SERVER, "x")
        elem = fault.to_element()
        elem.find("faultcode").text = "weird:Thing"
        assert SoapFault.from_element(elem).code is FaultCode.SERVER

    def test_non_fault_body_is_not_fault(self):
        env = SoapEnvelope(body_content=op_element())
        assert not env.is_fault
        assert env.fault() is None

    def test_fault_is_exception(self):
        with pytest.raises(SoapFault) as exc_info:
            raise SoapFault(FaultCode.MUST_UNDERSTAND, "nope")
        assert exc_info.value.code is FaultCode.MUST_UNDERSTAND

    def test_all_codes_roundtrip(self):
        for code in FaultCode:
            back = SoapFault.from_element(SoapFault(code, "m").to_element())
            assert back.code is code
