"""Tests for the SOAP-with-Attachments-style multipart container (E16)."""

import random

import pytest

from repro.soap import (
    Attachment,
    AttachmentError,
    MULTIPART_CONTENT_TYPE,
    MultipartFeedParser,
    SoapEnvelope,
    attachment_scope,
    is_multipart,
)
from repro.soap.attachments import (
    MULTIPART_BOUNDARY,
    cid_of,
    collect_attachments,
    iter_message_wire,
    message_from_wire,
    message_to_wire,
    message_wire_length,
    resolve_attachment,
)
from repro.xmlkit import Element, QName

ENVELOPE = '<?xml version="1.0"?><env>héllo</env>'


def op_element(name="echo"):
    return Element(QName("urn:app", name, "app"), nsdecls={"app": "urn:app"})


class TestAttachment:
    def test_materialised_bytes(self):
        att = Attachment("blob-1", b"\x00\x01\xff", "image/png")
        assert att.size == 3
        assert att.href == "cid:blob-1"
        assert not att.is_streamed
        assert att.materialise() == b"\x00\x01\xff"
        assert b"".join(att.iter_chunks(2)) == b"\x00\x01\xff"

    def test_streamed_chunks_factory(self):
        att = Attachment(
            "blob-2", chunks=lambda: (b"ab", b"cd"), size=4
        )
        assert att.is_streamed
        # re-invocable: both iteration and materialise work
        assert b"".join(att.iter_chunks()) == b"abcd"
        assert att.materialise() == b"abcd"

    def test_chunk_size_lie_is_fatal(self):
        att = Attachment("liar", chunks=lambda: (b"abc",), size=99)
        with pytest.raises(AttachmentError):
            list(att.iter_chunks())

    def test_bad_content_ids_rejected(self):
        for cid in ("", "has\r\nnewline", "has:colon"):
            with pytest.raises(AttachmentError):
                Attachment(cid, b"x")

    def test_chunks_require_size(self):
        with pytest.raises(AttachmentError):
            Attachment("x", chunks=lambda: (b"a",))

    def test_cid_of(self):
        assert cid_of("cid:abc") == "abc"
        assert cid_of("cid:") is None
        assert cid_of("http://elsewhere") is None
        assert cid_of(None) is None


class TestContainerRoundTrip:
    def test_roundtrip(self):
        parts = [
            Attachment("a", b"alpha", "text/plain"),
            Attachment("b", b"\x00" * 100),
        ]
        wire = message_to_wire(ENVELOPE, parts)
        assert is_multipart(wire)
        assert len(wire) == message_wire_length(ENVELOPE, parts)
        env, back = message_from_wire(wire)
        assert env == ENVELOPE
        assert [a.content_id for a in back] == ["a", "b"]
        assert back[0].materialise() == b"alpha"
        assert back[0].content_type == "text/plain"
        assert back[1].materialise() == b"\x00" * 100

    def test_no_attachments_still_valid(self):
        wire = message_to_wire(ENVELOPE, [])
        env, back = message_from_wire(wire)
        assert env == ENVELOPE
        assert back == []

    def test_boundary_like_bytes_in_content_survive(self):
        # declared-length framing must never scan bodies for boundaries
        evil = (
            f"--{MULTIPART_BOUNDARY}\r\n".encode("ascii")
            + f"--{MULTIPART_BOUNDARY}--\r\n".encode("ascii")
            + b"\r\n\r\nContent-Id: fake\r\n"
        )
        wire = message_to_wire(ENVELOPE, [Attachment("evil", evil)])
        env, back = message_from_wire(wire)
        assert env == ENVELOPE
        assert back[0].materialise() == evil

    def test_iter_wire_equals_batch_wire(self):
        parts = [Attachment("a", bytes(range(256)) * 40)]
        batch = message_to_wire(ENVELOPE, parts)
        streamed = b"".join(iter_message_wire(ENVELOPE, parts, chunk_size=7))
        assert streamed == batch

    def test_streamed_attachment_never_materialised_on_encode(self):
        payload = bytes(500)

        def chunks():
            for i in range(0, len(payload), 64):
                yield payload[i : i + 64]

        att = Attachment("big", chunks=chunks, size=len(payload))
        wire = b"".join(iter_message_wire(ENVELOPE, [att]))
        env, back = message_from_wire(wire)
        assert back[0].materialise() == payload
        # the source attachment stayed deferred
        assert att.is_streamed


class TestFeedParser:
    def _wire(self):
        return message_to_wire(
            ENVELOPE,
            [Attachment("a", b"alpha"), Attachment("b", bytes(range(256)))],
        )

    def test_byte_at_a_time(self):
        wire = self._wire()
        parser = MultipartFeedParser()
        for i in range(len(wire)):
            assert not parser.complete or wire[i:].strip(b"\r\n") == b""
            parser.feed(wire[i : i + 1])
        env, back = parser.close()
        assert env == ENVELOPE
        assert back[1].materialise() == bytes(range(256))

    def test_random_splits(self):
        wire = self._wire()
        rng = random.Random(16)
        for _ in range(25):
            parser = MultipartFeedParser()
            pos = 0
            while pos < len(wire):
                step = rng.randint(1, 64)
                parser.feed(memoryview(wire)[pos : pos + step])
                pos += step
            env, back = parser.close()
            assert env == ENVELOPE
            assert [a.materialise() for a in back] == [
                b"alpha",
                bytes(range(256)),
            ]

    def test_external_sink_receives_body(self):
        wire = self._wire()
        written = {}

        class ListSink:
            def __init__(self, cid):
                self.cid = cid
                written[cid] = bytearray()

            def write(self, data):
                written[self.cid] += data

            def close(self):
                return f"sunk:{self.cid}"

        env, back = message_from_wire(
            wire, sink_factory=lambda cid, ctype, length: ListSink(cid)
        )
        assert env == ENVELOPE
        assert bytes(written["a"]) == b"alpha"
        assert bytes(written["b"]) == bytes(range(256))
        # streamed-to-sink parts retain metadata + sink result, not bytes
        assert back[0].delivered == "sunk:a"
        assert back[0].size == 5
        with pytest.raises(AttachmentError):
            back[0].materialise()

    def test_truncated_wire_rejected(self):
        wire = self._wire()
        parser = MultipartFeedParser()
        parser.feed(wire[: len(wire) // 2])
        with pytest.raises(AttachmentError, match="truncated"):
            parser.close()

    def test_trailing_garbage_rejected(self):
        parser = MultipartFeedParser()
        parser.feed(self._wire() + b"extra")
        with pytest.raises(AttachmentError, match="trailing data"):
            parser.close()

    def test_feed_after_close_rejected(self):
        parser = MultipartFeedParser()
        parser.feed(self._wire())
        parser.close()
        with pytest.raises(AttachmentError):
            parser.feed(b"x")

    @pytest.mark.parametrize(
        "wire",
        [
            b"--not-the-boundary\r\n\r\n",
            # first part must be the envelope
            (
                b"--wspeer-part\r\nContent-Id: other\r\n"
                b"Content-Length: 1\r\n\r\nx\r\n--wspeer-part--\r\n"
            ),
            # missing Content-Length
            (
                b"--wspeer-part\r\nContent-Id: soap-envelope\r\n\r\n"
            ),
            # signed part length
            (
                b"--wspeer-part\r\nContent-Id: soap-envelope\r\n"
                b"Content-Length: +1\r\n\r\nx\r\n--wspeer-part--\r\n"
            ),
            # body longer than declared (no \r\n where expected)
            (
                b"--wspeer-part\r\nContent-Id: soap-envelope\r\n"
                b"Content-Length: 1\r\n\r\nxYZ--wspeer-part--\r\n"
            ),
            # final boundary with no envelope part at all
            b"--wspeer-part--\r\n",
        ],
    )
    def test_malformed_wires_rejected(self, wire):
        parser = MultipartFeedParser()
        with pytest.raises(AttachmentError):
            parser.feed(wire)
            parser.close()


class TestEnvelopeIntegration:
    def test_to_wire_message_plain_stays_text(self):
        env = SoapEnvelope(body_content=op_element())
        wire = env.to_wire_message()
        assert isinstance(wire, str)
        back = SoapEnvelope.from_wire_message(wire)
        assert back.body_content.name == QName("urn:app", "echo")

    def test_to_wire_message_with_attachments_is_multipart(self):
        env = SoapEnvelope(
            body_content=op_element(),
            attachments=[Attachment("blob", b"\xde\xad\xbe\xef")],
        )
        wire = env.to_wire_message()
        assert isinstance(wire, bytes)
        assert is_multipart(wire)
        back = SoapEnvelope.from_wire_message(wire)
        assert back.attachments[0].materialise() == b"\xde\xad\xbe\xef"
        assert back.body_content.name == QName("urn:app", "echo")

    def test_from_wire_message_plain_bytes(self):
        env = SoapEnvelope(body_content=op_element())
        raw = env.to_wire().encode("utf-8")
        back = SoapEnvelope.from_wire_message(raw)
        assert back.body_content.name == QName("urn:app", "echo")

    def test_multipart_content_type_is_binary_safe_prefix(self):
        # the transport keeps multipart/* bodies as raw bytes; the
        # advertised content type must hit that prefix
        assert MULTIPART_CONTENT_TYPE.startswith("multipart/")


class TestResolutionScope:
    def test_scope_resolution(self):
        att = Attachment("x", b"data")
        with attachment_scope([att]):
            assert resolve_attachment("x") is att
        # out of scope: detached placeholder
        placeholder = resolve_attachment("x")
        assert placeholder is not att
        assert placeholder.size == 0

    def test_nested_scopes_inner_wins(self):
        outer = Attachment("x", b"outer")
        inner = Attachment("x", b"inner")
        with attachment_scope([outer]):
            with attachment_scope([inner]):
                assert resolve_attachment("x") is inner
            assert resolve_attachment("x") is outer

    def test_collect_attachments(self):
        a = Attachment("a", b"1")
        b = Attachment("b", b"2")
        value = {"k": [a, ("x", b)], "again": a}
        found = collect_attachments(value)
        assert found == [a, b]  # deduped by identity, encoding order
        assert collect_attachments("plain") == []
