"""Tests for the utility handler kit, including in-pipeline use."""

import pytest

from repro.soap import FaultCode, HandlerChain, MessageContext, SoapEnvelope, SoapFault
from repro.soap.extra_handlers import (
    AllowListHandler,
    HeaderInjectionHandler,
    LoggingHandler,
    TimingHandler,
)
from repro.soap.handlers import Direction
from repro.soap.rpc import build_rpc_request
from repro.xmlkit import Element, QName

NS = "urn:handler-test"


def run_exchange(chain, operation="op", service_response=None):
    request = build_rpc_request(NS, operation, {"x": 1})
    context = MessageContext(request, "Svc", operation)
    response = service_response or SoapEnvelope(
        body_content=Element(QName(NS, f"{operation}Response", "tns"))
    )
    return chain.run(context, lambda ctx: response), context


class TestLoggingHandler:
    def test_records_both_directions(self):
        log = LoggingHandler()
        run_exchange(HandlerChain([log]))
        assert [r[0] for r in log.records] == ["request", "response"]
        assert all(r[1] == "Svc" for r in log.records)

    def test_wire_capture_optional(self):
        log = LoggingHandler(capture_wire=True)
        run_exchange(HandlerChain([log]))
        assert "<soapenv:Envelope" in log.records[0][3]
        log2 = LoggingHandler(capture_wire=False)
        run_exchange(HandlerChain([log2]))
        assert log2.records[0][3] == ""

    def test_clear(self):
        log = LoggingHandler()
        run_exchange(HandlerChain([log]))
        log.clear()
        assert log.records == []


class TestTimingHandler:
    def test_measures_exchange(self):
        clock = {"t": 0.0}

        def service(ctx):
            clock["t"] += 0.25  # the service "takes" 250ms
            return SoapEnvelope(body_content=Element(QName(NS, "r", "tns")))

        timing = TimingHandler(lambda: clock["t"])
        chain = HandlerChain([timing])
        chain.run(MessageContext(build_rpc_request(NS, "op", {})), service)
        assert timing.count == 1
        assert timing.mean == pytest.approx(0.25)

    def test_faulted_exchange_still_measured(self):
        clock = {"t": 0.0}

        def failing(ctx):
            clock["t"] += 0.5
            raise SoapFault(FaultCode.SERVER, "x")

        timing = TimingHandler(lambda: clock["t"])
        chain = HandlerChain([timing])
        chain.run(MessageContext(build_rpc_request(NS, "op", {})), failing)
        assert timing.count == 1
        assert timing.samples[0] == pytest.approx(0.5)

    def test_empty_stats(self):
        timing = TimingHandler(lambda: 0.0)
        assert timing.mean == 0.0 and timing.count == 0


class TestHeaderInjection:
    def test_injects_on_response(self):
        block = Element(QName("urn:trace", "TraceId", "t"), text="abc-123")
        chain = HandlerChain([HeaderInjectionHandler(block)])
        response, _ = run_exchange(chain)
        assert response.find_header("TraceId").text == "abc-123"

    def test_injects_on_request_direction(self):
        block = Element(QName("urn:trace", "Tenant", "t"), text="acme")
        handler = HeaderInjectionHandler(block, Direction.REQUEST)
        chain = HandlerChain([handler])
        _, context = run_exchange(chain)
        assert context.request.find_header("Tenant").text == "acme"

    def test_block_copied_per_message(self):
        block = Element(QName("urn:trace", "TraceId", "t"), text="x")
        chain = HandlerChain([HeaderInjectionHandler(block)])
        r1, _ = run_exchange(chain)
        r2, _ = run_exchange(chain)
        r1.find_header("TraceId").text = "mutated"
        assert r2.find_header("TraceId").text == "x"


class TestAllowList:
    def test_allowed_operation_passes(self):
        chain = HandlerChain([AllowListHandler({"op"})])
        response, _ = run_exchange(chain, operation="op")
        assert not response.is_fault

    def test_disallowed_operation_faults(self):
        handler = AllowListHandler({"other"})
        chain = HandlerChain([handler])
        response, _ = run_exchange(chain, operation="op")
        assert response.is_fault
        assert response.fault().code is FaultCode.CLIENT
        assert handler.refused == 1


class TestInLivePipeline:
    def test_handlers_on_deployed_service(self):
        """Wire the kit into a real WSPeer-hosted service."""
        from repro.core import WSPeer
        from repro.core.binding import StandardBinding
        from repro.simnet import FixedLatency, Network
        from repro.uddi import UddiRegistryNode
        from tests.core.conftest import Echo

        net = Network(latency=FixedLatency(0.002))
        registry = UddiRegistryNode(net.add_node("registry"))
        provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
        consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
        deployed = provider.deploy(Echo(), name="Echo")
        log = LoggingHandler()
        gate = AllowListHandler({"echo"})
        deployed.chain.append(log)
        deployed.chain.append(gate)
        handle = provider.local_handle("Echo")
        assert consumer.invoke(handle, "echo", message="ok") == "ok"
        with pytest.raises(SoapFault):
            consumer.invoke(handle, "shout", message="blocked")
        assert gate.refused == 1
        assert len(log.records) >= 2
