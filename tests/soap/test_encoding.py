"""Tests for the typed encoding layer."""

from dataclasses import dataclass

import pytest

from repro.soap import EncodingError, StructRegistry, decode_value, encode_value
from repro.soap.encoding import python_type_to_xsd
from repro.xmlkit import parse, serialize


def roundtrip(value, registry=None):
    elem = encode_value("v", value, registry)
    # push through real text to catch serialisation-dependent bugs
    reparsed = parse(serialize(elem))
    return decode_value(reparsed, registry)


@dataclass
class Point:
    x: int
    y: int


@dataclass
class Segment:
    start: Point
    end: Point
    label: str


class TestPrimitives:
    def test_str(self):
        assert roundtrip("hello") == "hello"

    def test_str_with_markup_chars(self):
        assert roundtrip("<a>&</a>") == "<a>&</a>"

    def test_empty_str(self):
        assert roundtrip("") == ""

    def test_int(self):
        assert roundtrip(42) == 42

    def test_negative_int(self):
        assert roundtrip(-7) == -7

    def test_float(self):
        assert roundtrip(3.25) == 3.25

    def test_float_precision(self):
        assert roundtrip(0.1) == 0.1

    def test_bool_true(self):
        assert roundtrip(True) is True

    def test_bool_false(self):
        assert roundtrip(False) is False

    def test_bool_not_confused_with_int(self):
        elem = encode_value("v", True)
        assert "boolean" in elem.get("{http://www.w3.org/2001/XMLSchema-instance}type")

    def test_none(self):
        assert roundtrip(None) is None

    def test_bytes(self):
        assert roundtrip(b"\x00\x01\xffbinary") == b"\x00\x01\xffbinary"

    def test_empty_bytes(self):
        assert roundtrip(b"") == b""


class TestComposites:
    def test_list_of_ints(self):
        assert roundtrip([1, 2, 3]) == [1, 2, 3]

    def test_empty_list(self):
        assert roundtrip([]) == []

    def test_tuple_decodes_as_list(self):
        assert roundtrip((1, "a")) == [1, "a"]

    def test_nested_lists(self):
        assert roundtrip([[1, 2], [3]]) == [[1, 2], [3]]

    def test_dict(self):
        assert roundtrip({"a": 1, "b": "two"}) == {"a": 1, "b": "two"}

    def test_nested_dict(self):
        value = {"outer": {"inner": [1, None, "x"]}}
        assert roundtrip(value) == value

    def test_dict_with_non_str_key_rejected(self):
        with pytest.raises(EncodingError):
            encode_value("v", {1: "x"})

    def test_heterogeneous_list(self):
        assert roundtrip([1, "a", None, True, 2.5]) == [1, "a", None, True, 2.5]


class TestStructs:
    def test_registered_dataclass_roundtrip(self):
        reg = StructRegistry()
        reg.register(Point)
        p = roundtrip(Point(1, 2), reg)
        assert isinstance(p, Point)
        assert p == Point(1, 2)

    def test_nested_dataclasses(self):
        reg = StructRegistry()
        reg.register(Point)
        reg.register(Segment)
        seg = Segment(Point(0, 0), Point(3, 4), "hyp")
        assert roundtrip(seg, reg) == seg

    def test_unregistered_dataclass_rejected(self):
        with pytest.raises(EncodingError):
            encode_value("v", Point(1, 2))

    def test_register_non_dataclass_rejected(self):
        with pytest.raises(EncodingError):
            StructRegistry().register(int)

    def test_register_as_decorator(self):
        reg = StructRegistry()

        @reg.register
        @dataclass
        class Local:
            v: int

        assert reg.name_of(Local) == "Local"
        assert reg.type_of("Local") is Local

    def test_custom_name(self):
        reg = StructRegistry()
        reg.register(Point, name="Point2D")
        elem = encode_value("v", Point(1, 2), reg)
        out = serialize(elem)
        assert "Point2D" in out

    def test_names_listing(self):
        reg = StructRegistry()
        reg.register(Point)
        reg.register(Segment)
        assert reg.names == ["Point", "Segment"]

    def test_missing_field_in_wire_rejected(self):
        reg = StructRegistry()
        reg.register(Point)
        elem = encode_value("v", Point(1, 2), reg)
        elem.remove(elem.children[0])
        with pytest.raises(EncodingError):
            decode_value(elem, reg)


class TestDecodingEdgeCases:
    def test_unknown_type_rejected(self):
        elem = encode_value("v", 1)
        from repro.soap.encoding import XSI_TYPE

        elem.set(XSI_TYPE, "xsd:hyperreal")
        with pytest.raises(EncodingError):
            decode_value(elem)

    def test_bad_int_literal(self):
        elem = encode_value("v", 1)
        elem.text = "NaN"
        with pytest.raises(EncodingError):
            decode_value(elem)

    def test_bad_bool_literal(self):
        elem = encode_value("v", True)
        elem.text = "maybe"
        with pytest.raises(EncodingError):
            decode_value(elem)

    def test_bad_base64(self):
        elem = encode_value("v", b"x")
        elem.text = "!!!not-base64!!!"
        with pytest.raises(EncodingError):
            decode_value(elem)

    def test_untyped_text_decodes_as_string(self):
        elem = parse("<v>plain</v>")
        assert decode_value(elem) == "plain"

    def test_untyped_items_decode_as_list(self):
        elem = parse("<v><item>1</item><item>2</item></v>")
        assert decode_value(elem) == ["1", "2"]

    def test_untyped_children_decode_as_dict(self):
        elem = parse("<v><a>1</a><b>2</b></v>")
        assert decode_value(elem) == {"a": "1", "b": "2"}

    def test_foreign_prefix_falls_back_to_local(self):
        # liberal acceptance: xsi:type with an undeclared prefix still
        # decodes by local name
        elem = parse(
            '<v xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xsi:type="foreign:int">5</v>'
        )
        assert decode_value(elem) == 5

    def test_long_and_short_decode_as_int(self):
        elem = parse(
            '<v xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"'
            ' xmlns:xsd="http://www.w3.org/2001/XMLSchema" xsi:type="xsd:long">9</v>'
        )
        assert decode_value(elem) == 9


class TestTypeMapping:
    def test_primitives(self):
        assert python_type_to_xsd(int) == "xsd:int"
        assert python_type_to_xsd(str) == "xsd:string"
        assert python_type_to_xsd(float) == "xsd:double"
        assert python_type_to_xsd(bool) == "xsd:boolean"
        assert python_type_to_xsd(bytes) == "xsd:base64Binary"

    def test_containers(self):
        assert python_type_to_xsd(list) == "soapenc:Array"
        assert python_type_to_xsd(dict) == "soapenc:Struct"
        assert python_type_to_xsd(list[int]) == "soapenc:Array"

    def test_dataclass(self):
        assert python_type_to_xsd(Point) == "tns:Point"

    def test_unknown_is_anytype(self):
        class Weird:
            pass

        assert python_type_to_xsd(Weird) == "xsd:anyType"
        assert python_type_to_xsd(None) == "xsd:anyType"
