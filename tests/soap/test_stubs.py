"""Tests for stub generation (dynamic and source-codegen paths)."""

import pytest

from repro.soap import DynamicStubBuilder, SourceCodegenStubBuilder
from repro.soap.stubs import OperationSpec, StubSpec

SPEC = StubSpec(
    "Echo",
    (
        OperationSpec("echo", ("message",), doc="Echo a string."),
        OperationSpec("add", ("a", "b")),
        OperationSpec("ping", ()),
    ),
)


def recording_invoke(calls):
    def invoke(op, args):
        calls.append((op, args))
        return f"result-of-{op}"

    return invoke


@pytest.mark.parametrize("builder_cls", [DynamicStubBuilder, SourceCodegenStubBuilder])
class TestBothBuilders:
    def test_methods_exist(self, builder_cls):
        stub = builder_cls().build(SPEC, lambda op, args: None)
        assert callable(stub.echo)
        assert callable(stub.add)
        assert callable(stub.ping)

    def test_positional_args_forwarded(self, builder_cls):
        calls = []
        stub = builder_cls().build(SPEC, recording_invoke(calls))
        result = stub.add(1, 2)
        assert calls == [("add", {"a": 1, "b": 2})]
        assert result == "result-of-add"

    def test_no_arg_operation(self, builder_cls):
        calls = []
        stub = builder_cls().build(SPEC, recording_invoke(calls))
        stub.ping()
        assert calls == [("ping", {})]

    def test_class_name(self, builder_cls):
        cls = builder_cls().build_class(SPEC)
        assert cls.__name__ == "EchoStub"

    def test_instances_independent(self, builder_cls):
        cls = builder_cls().build_class(SPEC)
        calls_a, calls_b = [], []
        a = cls(recording_invoke(calls_a))
        b = cls(recording_invoke(calls_b))
        a.ping()
        assert calls_a and not calls_b


class TestDynamicSpecifics:
    def test_keyword_args(self):
        calls = []
        stub = DynamicStubBuilder().build(SPEC, recording_invoke(calls))
        stub.add(b=2, a=1)
        assert calls == [("add", {"a": 1, "b": 2})]

    def test_mixed_args(self):
        calls = []
        stub = DynamicStubBuilder().build(SPEC, recording_invoke(calls))
        stub.add(1, b=9)
        assert calls == [("add", {"a": 1, "b": 9})]

    def test_too_many_positional(self):
        stub = DynamicStubBuilder().build(SPEC, lambda op, a: None)
        with pytest.raises(TypeError):
            stub.add(1, 2, 3)

    def test_unexpected_keyword(self):
        stub = DynamicStubBuilder().build(SPEC, lambda op, a: None)
        with pytest.raises(TypeError):
            stub.add(1, c=3)

    def test_duplicate_argument(self):
        stub = DynamicStubBuilder().build(SPEC, lambda op, a: None)
        with pytest.raises(TypeError):
            stub.add(1, a=1)

    def test_docstrings_attached(self):
        cls = DynamicStubBuilder().build_class(SPEC)
        assert cls.echo.__doc__ == "Echo a string."


class TestValidation:
    def test_bad_operation_name(self):
        spec = StubSpec("S", (OperationSpec("not a name", ()),))
        with pytest.raises(ValueError):
            DynamicStubBuilder().build_class(spec)

    def test_keyword_operation_name(self):
        spec = StubSpec("S", (OperationSpec("class", ()),))
        with pytest.raises(ValueError):
            DynamicStubBuilder().build_class(spec)

    def test_duplicate_operation(self):
        spec = StubSpec("S", (OperationSpec("x", ()), OperationSpec("x", ())))
        with pytest.raises(ValueError):
            DynamicStubBuilder().build_class(spec)

    def test_bad_parameter_name(self):
        spec = StubSpec("S", (OperationSpec("x", ("1bad",)),))
        with pytest.raises(ValueError):
            SourceCodegenStubBuilder().build_class(spec)

    def test_codegen_injection_blocked(self):
        # validation must stop a hostile name from reaching exec()
        spec = StubSpec("S", (OperationSpec("x(): pass\nimport os  #", ()),))
        with pytest.raises(ValueError):
            SourceCodegenStubBuilder().build_class(spec)


class TestCodegenSource:
    def test_rendered_source_compiles(self):
        source = SourceCodegenStubBuilder().render_source(SPEC)
        compile(source, "<test>", "exec")

    def test_source_contains_operations(self):
        source = SourceCodegenStubBuilder().render_source(SPEC)
        assert "def echo(self, message):" in source
        assert "def add(self, a, b):" in source
