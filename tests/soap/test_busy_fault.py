"""Server.Busy round trip: wire bytes → typed fault on both bindings.

The admission controller answers overload with a well-formed SOAP
fault (``Server.Busy``) carrying a retry-after hint.  That answer has
to survive the full path the real stack uses — HTTP status carrying
the fault body, the p2ps pipe reply, and the E8 envelope-template fast
path — and still parse back into a :class:`ServerBusyFault` whose
``retry_after`` is intact.
"""

import pytest

from repro.caching import clear_all_caches, fastpath_disabled, set_fastpath_enabled
from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import FaultCode, ServerBusyFault, SoapFault, is_busy_fault_element
from repro.uddi import UddiRegistryNode
from repro.xmlkit.reference import parse_reference, serialize_reference


@pytest.fixture(autouse=True)
def _clean_caches():
    clear_all_caches()
    yield
    clear_all_caches()
    set_fastpath_enabled(True)


class EchoService:
    def echo(self, message: str) -> str:
        return message


def saturate(provider):
    """Admission control saturated deep enough that the in-flight
    latency's drain cannot free a slot before the request lands."""
    admission = provider.set_admission_control(capacity=1.0, drain_rate=0.01)
    admission.level = admission.capacity + 5.0
    return admission


class TestHttpBinding:
    def test_busy_rides_http_to_typed_fault(self):
        net = Network(latency=FixedLatency(0.002))
        registry = UddiRegistryNode(net.add_node("registry"))
        provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
        provider.deploy(EchoService(), name="Echo")
        consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
        handle = provider.local_handle("Echo")
        saturate(provider)

        with pytest.raises(ServerBusyFault) as excinfo:
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)
        fault = excinfo.value
        assert fault.retry_after > 0
        assert fault.subcode == ServerBusyFault.SUBCODE
        assert fault.code == FaultCode.SERVER


class TestP2psBinding:
    def test_busy_rides_pipe_to_typed_fault(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("prov"), P2psBinding(group), name="prov")
        provider.deploy(EchoService(), name="Echo")
        provider.publish("Echo")
        consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
        net.run()
        handle = consumer.locate_one("Echo", timeout=5.0)
        saturate(provider)

        with pytest.raises(ServerBusyFault) as excinfo:
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)
        assert excinfo.value.retry_after > 0


class TestWireShape:
    def wire(self, retry_after=1.5):
        fault = ServerBusyFault("service 'Echo' is at capacity", retry_after=retry_after)
        return SoapEnvelope.for_fault(fault).to_wire()

    def test_round_trip_preserves_retry_after(self):
        parsed = SoapEnvelope.from_wire(self.wire(retry_after=1.5)).fault()
        assert isinstance(parsed, ServerBusyFault)
        assert parsed.retry_after == pytest.approx(1.5)
        assert parsed.message == "service 'Echo' is at capacity"

    def test_body_content_is_recognisably_busy(self):
        envelope = SoapEnvelope.from_wire(self.wire())
        assert envelope.is_fault
        assert is_busy_fault_element(envelope.body_content)

    def test_plain_server_fault_is_not_busy(self):
        fault = SoapFault(FaultCode.SERVER, "boom")
        envelope = SoapEnvelope.from_wire(SoapEnvelope.for_fault(fault).to_wire())
        assert not is_busy_fault_element(envelope.body_content)
        assert not isinstance(envelope.fault(), ServerBusyFault)

    def test_zero_hint_clamps_negative(self):
        parsed = SoapEnvelope.from_wire(self.wire(retry_after=-3.0)).fault()
        assert parsed.retry_after == 0.0


class TestTemplateFastPathParity:
    """The shed answer is built per-request on the provider's hot path,
    so it goes through the E8 wire-template cache.  The template render
    must be byte-identical to the slow serializer — and both must match
    the frozen reference codec."""

    def envelope(self, retry_after):
        fault = ServerBusyFault("service 'Echo' is at capacity", retry_after=retry_after)
        return SoapEnvelope.for_fault(fault)

    def test_fast_and_slow_paths_emit_identical_bytes(self):
        for retry_after in (0.0, 0.25, 7.5):
            envelope = self.envelope(retry_after)
            fast = envelope.to_wire()
            fast_again = envelope.to_wire()  # rendered from the cached template
            with fastpath_disabled():
                slow = envelope.to_wire()
            assert fast == slow == fast_again

    def test_fast_path_matches_reference_serializer(self):
        envelope = self.envelope(0.75)
        reference = serialize_reference(
            envelope.to_element(), xml_declaration=True
        )
        assert envelope.to_wire() == reference

    def test_reference_parser_reads_fast_path_bytes(self):
        wire = self.envelope(2.5).to_wire()
        root = parse_reference(wire)
        parsed = SoapEnvelope.from_element(root).fault()
        assert isinstance(parsed, ServerBusyFault)
        assert parsed.retry_after == pytest.approx(2.5)
