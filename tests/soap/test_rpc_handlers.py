"""Tests for the RPC dispatcher and the handler chain."""

import pytest

from repro.soap import (
    FaultCode,
    HandlerChain,
    MessageContext,
    MustUnderstandHandler,
    RpcDispatcher,
    ServiceObject,
    SoapEnvelope,
    SoapFault,
    StructRegistry,
)
from repro.soap.handlers import CallbackHandler, Direction, Handler
from repro.soap.rpc import build_rpc_request, extract_rpc_result
from repro.xmlkit import Element, QName

NS = "urn:test-service"


class Calculator:
    def __init__(self):
        self.calls = 0

    def add(self, a, b):
        self.calls += 1
        return a + b

    def divide(self, a, b):
        return a / b

    def concat(self, parts):
        return "".join(parts)

    def _private(self):
        return "hidden"


class Greeter:
    def __init__(self, greeting):
        self.greeting = greeting

    def greet(self, name):
        return f"{self.greeting}, {name}!"


def make_dispatcher(instance=None):
    service = ServiceObject.from_instance("Calc", instance or Calculator(), NS)
    return RpcDispatcher(service)


def call(dispatcher, op, **args):
    request = build_rpc_request(NS, op, args)
    # through the wire both ways
    request = SoapEnvelope.from_wire(request.to_wire())
    response = dispatcher.dispatch(request)
    response = SoapEnvelope.from_wire(response.to_wire())
    return extract_rpc_result(response)


class TestServiceObject:
    def test_from_instance_exposes_public_methods(self):
        svc = ServiceObject.from_instance("Calc", Calculator(), NS)
        assert svc.operation_names == ["add", "concat", "divide"]

    def test_private_methods_excluded(self):
        svc = ServiceObject.from_instance("Calc", Calculator(), NS)
        assert "_private" not in svc.operations

    def test_include_filter(self):
        svc = ServiceObject.from_instance("Calc", Calculator(), NS, include=["add"])
        assert svc.operation_names == ["add"]

    def test_include_missing_method_rejected(self):
        with pytest.raises(ValueError):
            ServiceObject.from_instance("Calc", Calculator(), NS, include=["nope"])

    def test_operations_map_to_different_objects(self):
        # §III: "each operation given to the service can map to a
        # different stateful object in memory"
        svc = ServiceObject("Mixed", NS)
        svc.map_operation("add", Calculator())
        svc.map_operation("hello", Greeter("Hi"), "greet")
        dispatcher = RpcDispatcher(svc)
        assert call(dispatcher, "add", a=2, b=3) == 5
        assert call(dispatcher, "hello", name="Ann") == "Hi, Ann!"

    def test_service_exposes_live_state(self):
        greeter = Greeter("Hello")
        svc = ServiceObject.from_instance("G", greeter, NS, include=["greet"])
        dispatcher = RpcDispatcher(svc)
        assert call(dispatcher, "greet", name="Bo") == "Hello, Bo!"
        greeter.greeting = "Howdy"  # mutate the live object
        assert call(dispatcher, "greet", name="Bo") == "Howdy, Bo!"


class TestRpcDispatch:
    def test_simple_call(self):
        assert call(make_dispatcher(), "add", a=1, b=2) == 3

    def test_named_args_any_order(self):
        assert call(make_dispatcher(), "add", b=10, a=1) == 11

    def test_composite_args(self):
        assert call(make_dispatcher(), "concat", parts=["a", "b", "c"]) == "abc"

    def test_state_persists_across_calls(self):
        calc = Calculator()
        dispatcher = make_dispatcher(calc)
        call(dispatcher, "add", a=1, b=1)
        call(dispatcher, "add", a=2, b=2)
        assert calc.calls == 2

    def test_unknown_operation_faults_client(self):
        with pytest.raises(SoapFault) as exc_info:
            call(make_dispatcher(), "subtract", a=1, b=2)
        assert exc_info.value.code is FaultCode.CLIENT

    def test_service_exception_faults_server(self):
        with pytest.raises(SoapFault) as exc_info:
            call(make_dispatcher(), "divide", a=1, b=0)
        assert exc_info.value.code is FaultCode.SERVER
        assert "ZeroDivisionError" in exc_info.value.message

    def test_missing_argument_faults_client(self):
        with pytest.raises(SoapFault) as exc_info:
            call(make_dispatcher(), "add", a=1)
        assert exc_info.value.code is FaultCode.CLIENT

    def test_empty_body_faults(self):
        dispatcher = make_dispatcher()
        with pytest.raises(SoapFault):
            dispatcher.dispatch(SoapEnvelope())

    def test_service_raised_fault_passes_through(self):
        class Picky:
            def check(self, v):
                raise SoapFault(FaultCode.CLIENT, "custom refusal")

        svc = ServiceObject.from_instance("P", Picky(), NS)
        with pytest.raises(SoapFault) as exc_info:
            call(RpcDispatcher(svc), "check", v=1)
        assert exc_info.value.message == "custom refusal"

    def test_registry_shared_types(self):
        from dataclasses import dataclass

        @dataclass
        class Pair:
            a: int
            b: int

        reg = StructRegistry()
        reg.register(Pair)

        class Svc:
            def total(self, pair):
                return pair.a + pair.b

        service = ServiceObject.from_instance("S", Svc(), NS)
        dispatcher = RpcDispatcher(service, reg)
        request = build_rpc_request(NS, "total", {"pair": Pair(3, 4)}, reg)
        request = SoapEnvelope.from_wire(request.to_wire())
        response = dispatcher.dispatch(request)
        assert extract_rpc_result(response, reg) == 7

    def test_response_element_name(self):
        dispatcher = make_dispatcher()
        response = dispatcher.dispatch(build_rpc_request(NS, "add", {"a": 1, "b": 2}))
        assert response.body_content.name == QName(NS, "addResponse")


class TestHandlerChain:
    def run_chain(self, chain, request=None):
        request = request or build_rpc_request(NS, "noop", {})
        context = MessageContext(request, "Svc", "noop")
        dispatcher_result = SoapEnvelope(
            body_content=Element(QName(NS, "noopResponse", "tns"))
        )
        return chain.run(context, lambda ctx: dispatcher_result), context

    def test_handlers_run_in_order_then_reverse(self):
        order = []

        class Rec(Handler):
            def __init__(self, tag):
                self.tag = tag

            def invoke(self, ctx):
                order.append((self.tag, ctx.direction))

        chain = HandlerChain([Rec("a"), Rec("b")])
        self.run_chain(chain)
        assert order == [
            ("a", Direction.REQUEST),
            ("b", Direction.REQUEST),
            ("b", Direction.RESPONSE),
            ("a", Direction.RESPONSE),
        ]

    def test_handler_fault_becomes_fault_envelope(self):
        class Refuse(Handler):
            def invoke(self, ctx):
                if ctx.direction is Direction.REQUEST:
                    raise SoapFault(FaultCode.CLIENT, "refused")

        chain = HandlerChain([Refuse()])
        response, _ = self.run_chain(chain)
        assert response.is_fault
        assert response.fault().message == "refused"

    def test_unexpected_exception_becomes_server_fault(self):
        class Broken(Handler):
            def invoke(self, ctx):
                raise RuntimeError("oops")

        response, _ = self.run_chain(HandlerChain([Broken()]))
        assert response.fault().code is FaultCode.SERVER

    def test_on_fault_unwinds_in_reverse(self):
        unwound = []

        class Watcher(Handler):
            def __init__(self, tag):
                self.tag = tag

            def invoke(self, ctx):
                pass

            def on_fault(self, ctx, fault):
                unwound.append(self.tag)

        class Bomb(Handler):
            def invoke(self, ctx):
                if ctx.direction is Direction.REQUEST:
                    raise SoapFault(FaultCode.SERVER, "x")

        chain = HandlerChain([Watcher("w1"), Watcher("w2"), Bomb()])
        self.run_chain(chain)
        assert unwound == ["w2", "w1"]

    def test_service_fault_propagates(self):
        chain = HandlerChain([])
        context = MessageContext(build_rpc_request(NS, "x", {}))

        def failing_service(ctx):
            raise SoapFault(FaultCode.SERVER, "svc broke")

        response = chain.run(context, failing_service)
        assert response.fault().message == "svc broke"

    def test_callback_handler(self):
        seen = []
        chain = HandlerChain([CallbackHandler(lambda ctx: seen.append(ctx.direction))])
        self.run_chain(chain)
        assert seen == [Direction.REQUEST, Direction.RESPONSE]

    def test_prepend_and_remove(self):
        h1 = CallbackHandler(lambda c: None, "h1")
        h2 = CallbackHandler(lambda c: None, "h2")
        chain = HandlerChain([h1])
        chain.prepend(h2)
        assert chain.handlers == [h2, h1]
        chain.remove(h2)
        assert chain.handlers == [h1]


class TestMustUnderstand:
    def build_request(self, mu=True, uri="urn:ext"):
        request = build_rpc_request(NS, "noop", {})
        header = Element(QName(uri, "Thing", "x"))
        request.add_header(header, must_understand=mu)
        return request

    def test_not_understood_faults(self):
        chain = HandlerChain([MustUnderstandHandler()])
        context = MessageContext(self.build_request())
        response = chain.run(context, lambda ctx: SoapEnvelope())
        assert response.fault().code is FaultCode.MUST_UNDERSTAND

    def test_understood_namespace_passes(self):
        handler = MustUnderstandHandler({"urn:ext"})
        chain = HandlerChain([handler])
        response = chain.run(
            MessageContext(self.build_request()), lambda ctx: SoapEnvelope()
        )
        assert not response.is_fault

    def test_add_understood(self):
        handler = MustUnderstandHandler()
        handler.add_understood("urn:ext")
        chain = HandlerChain([handler])
        response = chain.run(
            MessageContext(self.build_request()), lambda ctx: SoapEnvelope()
        )
        assert not response.is_fault

    def test_non_mu_header_ignored(self):
        chain = HandlerChain([MustUnderstandHandler()])
        response = chain.run(
            MessageContext(self.build_request(mu=False)), lambda ctx: SoapEnvelope()
        )
        assert not response.is_fault
