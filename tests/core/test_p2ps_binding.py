"""Integration tests for the P2PS binding — Figs. 4, 5 and 6.

deploy(pipes) → publish(advert) → locate(query) → invoke(pipes with
WS-Addressing ReplyTo).
"""

import pytest

from repro.core import P2PSServiceQuery, WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import PeerGroup
from repro.p2ps.group import link_rendezvous
from repro.soap import SoapFault
from tests.core.conftest import Broken, Counter, Echo


def published_echo(p2ps_pair, net):
    provider, consumer, listener = p2ps_pair
    provider.deploy(Echo(), name="Echo")
    provider.publish("Echo")
    net.run()
    return provider, consumer, listener


class TestFig4Processes:
    def test_full_cycle(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        assert handle.source == "p2ps"
        assert consumer.invoke(handle, "echo", message="hi") == "hi"

    def test_deploy_opens_pipe_per_operation(self, p2ps_pair, net):
        provider, _, listener = p2ps_pair
        provider.deploy(Echo(), name="Echo")
        advert = provider.server.deployer.advert_for("Echo")
        names = sorted(p.name for p in advert.pipes)
        assert names == ["definition", "echo", "shout"]
        event = listener.of_kind("pipes-opened")[0]
        assert event.detail["pipes"] == 3

    def test_wsdl_retrieved_through_definition_pipe(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        assert handle.operation_names() == ["echo", "shout"]
        # the transport constant marks these as pipe bindings
        from repro.wsdl import SOAP_P2PS_TRANSPORT

        binding = next(iter(handle.wsdl.bindings.values()))
        assert binding.transport == SOAP_P2PS_TRANSPORT

    def test_handle_has_p2ps_endpoints(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        assert all(e.address.startswith("p2ps://") for e in handle.endpoints)
        pipe_names = {e.property_text("PipeName") for e in handle.endpoints}
        assert pipe_names == {"echo", "shout"}

    def test_attribute_based_locate(self, net):
        group = PeerGroup("attrs")
        gold = WSPeer(net.add_node("gold"), P2psBinding(group), name="gold")
        bronze = WSPeer(net.add_node("bronze"), P2psBinding(group), name="bronze")
        seeker = WSPeer(net.add_node("seek"), P2psBinding(group), name="seek")
        for peer, tier in ((gold, "gold"), (bronze, "bronze")):
            peer.deploy(Echo(), name="Echo")
            advert = peer.server.deployer.advert_for("Echo")
            advert.attributes["tier"] = tier
            peer.publish("Echo")
        net.run()
        handles = seeker.locate(P2PSServiceQuery("%", attributes={"tier": "gold"}))
        assert len(handles) == 1
        assert handles[0].attributes["tier"] == "gold"

    def test_stateful_invocation(self, net):
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("sp"), P2psBinding(group), name="sp")
        consumer = WSPeer(net.add_node("sc"), P2psBinding(group), name="sc")
        provider.deploy(Counter(), name="Counter")
        provider.publish("Counter")
        net.run()
        handle = consumer.locate_one("Counter")
        assert consumer.invoke(handle, "increment", by=2) == 2
        assert consumer.invoke(handle, "increment", by=3) == 5

    def test_fault_over_pipes(self, net):
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("fp"), P2psBinding(group), name="fp")
        consumer = WSPeer(net.add_node("fc"), P2psBinding(group), name="fc")
        provider.deploy(Broken(), name="Broken")
        provider.publish("Broken")
        net.run()
        handle = consumer.locate_one("Broken")
        with pytest.raises(SoapFault, match="deliberate failure"):
            consumer.invoke(handle, "boom")

    def test_stub_over_pipes(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        stub = consumer.create_stub(consumer.locate_one("Echo"))
        assert stub.shout(message="soft") == "SOFT"


class TestFig5Fig6MessageFlow:
    def test_reply_pipe_created_and_closed(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        consumer_node = consumer.node
        before = set(consumer_node.ports)
        consumer.invoke(handle, "echo", message="x")
        after = set(consumer_node.ports)
        assert before == after  # ephemeral reply pipe cleaned up

    def test_request_carries_wsa_headers(self, p2ps_pair, net):
        provider, consumer, listener = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        seen = {}

        def interceptor(service, request):
            from repro.wsa import MessageAddressingProperties

            seen["maps"] = MessageAddressingProperties.extract_from(request)
            return None

        provider.set_interceptor(interceptor)
        consumer.invoke(handle, "echo", message="x")
        maps = seen["maps"]
        assert maps.to.startswith("p2ps://")
        assert maps.action.endswith("#echo")  # pipe-name fragment
        assert maps.reply_to is not None
        assert maps.reply_to.property_text("PipeId")
        assert maps.message_id

    def test_response_relates_to_request(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        # intercept the raw reply at the consumer by invoking async and
        # inspecting the envelope via a custom reply listener is internal;
        # instead verify via a second invocation that correlation ids are
        # unique per call
        ids = set()

        def capture(service, request):
            from repro.wsa import MessageAddressingProperties

            ids.add(MessageAddressingProperties.extract_from(request).message_id)
            return None

        provider.set_interceptor(capture)
        consumer.invoke(handle, "echo", message="a")
        consumer.invoke(handle, "echo", message="b")
        assert len(ids) == 2

    def test_async_invocation_over_pipes(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        results = []
        consumer.invoke_async(
            handle, "shout", {"message": "quiet"},
            lambda result, error: results.append((result, error)),
        )
        assert results == []
        net.run()
        assert results == [("QUIET", None)]

    def test_provider_death_times_out(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        provider.node.go_down()
        from repro.core import InvocationError

        with pytest.raises(InvocationError):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=2.0)

    def test_timeout_cleans_reply_pipe(self, p2ps_pair, net):
        provider, consumer, _ = published_echo(p2ps_pair, net)
        handle = consumer.locate_one("Echo")
        provider.node.go_down()
        from repro.core import InvocationError

        before = set(consumer.node.ports)
        with pytest.raises(InvocationError):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)
        net.run()
        assert set(consumer.node.ports) == before


class TestRendezvousTopology:
    def test_locate_across_groups(self, net):
        group_a, group_b = PeerGroup("A"), PeerGroup("B")
        rdv_a = WSPeer(net.add_node("ra"), P2psBinding(group_a, rendezvous=True), name="ra")
        rdv_b = WSPeer(net.add_node("rb"), P2psBinding(group_b, rendezvous=True), name="rb")
        provider = WSPeer(net.add_node("pv"), P2psBinding(group_b), name="pv")
        consumer = WSPeer(net.add_node("cn"), P2psBinding(group_a), name="cn")
        link_rendezvous(rdv_a.peer, rdv_b.peer)
        provider.deploy(Echo(), name="FarEcho")
        provider.publish("FarEcho")
        net.run()
        handle = consumer.locate_one("FarEcho", timeout=10.0)
        assert consumer.invoke(handle, "echo", message="across") == "across"
