"""Tests for one-way (notification-style) invocations."""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.core.events import RecordingListener
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network


class EventSink:
    def __init__(self):
        self.notifications = []

    def notify(self, message: str) -> int:
        self.notifications.append(message)
        return len(self.notifications)


@pytest.fixture
def world(net=None):
    network = Network(latency=FixedLatency(0.002))
    group = PeerGroup("g")
    sink = EventSink()
    provider = WSPeer(network.add_node("sink"), P2psBinding(group), name="sink")
    provider.deploy(sink, name="Sink")
    provider.publish("Sink")
    network.run()
    consumer = WSPeer(network.add_node("src"), P2psBinding(group), name="src")
    handle = consumer.locate_one("Sink")
    return network, provider, consumer, handle, sink


class TestOnewayP2ps:
    def test_notification_delivered(self, world):
        net, provider, consumer, handle, sink = world
        consumer.client.invocation.invoke_oneway(handle, "notify", message="fire")
        net.run()
        assert sink.notifications == ["fire"]

    def test_no_reply_pipe_created(self, world):
        net, provider, consumer, handle, sink = world
        ports_before = set(consumer.node.ports)
        consumer.client.invocation.invoke_oneway(handle, "notify", message="x")
        assert set(consumer.node.ports) == ports_before  # nothing opened

    def test_no_response_frames_flow_back(self, world):
        net, provider, consumer, handle, sink = world
        consumer.client.invocation.invoke_oneway(handle, "notify", message="x")
        net.run()
        sent_by_provider = net.sent.get("sink")
        consumer.client.invocation.invoke_oneway(handle, "notify", message="y")
        net.run()
        # the provider sent nothing new: no reply leg exists
        assert net.sent.get("sink") == sent_by_provider

    def test_oneway_event_fired(self, world):
        net, provider, consumer, handle, sink = world
        listener = RecordingListener()
        consumer.add_listener(listener)
        consumer.client.invocation.invoke_oneway(handle, "notify", message="x")
        assert listener.of_kind("oneway-sent")

    def test_many_notifications_in_flight(self, world):
        net, provider, consumer, handle, sink = world
        for i in range(10):
            consumer.client.invocation.invoke_oneway(handle, "notify", message=str(i))
        net.run()
        assert sink.notifications == [str(i) for i in range(10)]

    def test_unknown_operation_raises_locally(self, world):
        net, provider, consumer, handle, sink = world
        from repro.core import InvocationError

        with pytest.raises(InvocationError):
            consumer.client.invocation.invoke_oneway(handle, "nonexistent", message="x")


class TestOnewayHttpFallback:
    def test_http_oneway_discards_response(self):
        from repro.core.binding import StandardBinding
        from repro.uddi import UddiRegistryNode

        net = Network(latency=FixedLatency(0.002))
        registry = UddiRegistryNode(net.add_node("registry"))
        sink = EventSink()
        provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
        provider.deploy(sink, name="Sink")
        consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
        handle = provider.local_handle("Sink")
        consumer.client.invocation.invoke_oneway(handle, "notify", message="over-http")
        net.run()
        assert sink.notifications == ["over-http"]
