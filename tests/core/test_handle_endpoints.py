"""ServiceHandle endpoint selection: deterministic order, safe drops.

Two peers that assemble "the same" handle from differently-ordered
discovery responses must iterate its endpoints identically — failover
ranking, tie-breaks, and benchmark reproducibility all lean on it.
"""

import random

from repro.core.handle import ServiceHandle
from repro.soap import ServiceObject
from repro.wsa.epr import EndpointReference
from repro.wsdl import generate_wsdl


class Echo:
    def echo(self, message: str) -> str:
        return message


def make_handle(addresses):
    service = ServiceObject.from_instance("Echo", Echo(), "urn:echo")
    wsdl = generate_wsdl(service)
    return ServiceHandle(
        "Echo", wsdl, [EndpointReference(a) for a in addresses], source="merged"
    )


ADDRESSES = [
    "http://prov2:80/services/Echo",
    "p2ps://peer-b/Echo",
    "http://prov0:80/services/Echo",
    "p2ps://peer-a/Echo",
    "http://prov1:80/services/Echo",
]


class TestDeterministicOrder:
    def test_sorted_by_address_within_scheme(self):
        handle = make_handle(ADDRESSES)
        assert [e.address for e in handle.endpoints_for_scheme("http")] == [
            "http://prov0:80/services/Echo",
            "http://prov1:80/services/Echo",
            "http://prov2:80/services/Echo",
        ]

    def test_order_independent_of_discovery_order(self):
        rng = random.Random(11)
        baseline = None
        for _ in range(10):
            shuffled = list(ADDRESSES)
            rng.shuffle(shuffled)
            order = [
                e.address for e in make_handle(shuffled).endpoints_for_scheme("http")
            ]
            baseline = baseline or order
            assert order == baseline

    def test_scheme_filter_is_exact_prefix(self):
        handle = make_handle(ADDRESSES)
        p2ps = [e.address for e in handle.endpoints_for_scheme("p2ps")]
        assert p2ps == ["p2ps://peer-a/Echo", "p2ps://peer-b/Echo"]
        assert handle.endpoints_for_scheme("https") == []

    def test_endpoint_for_scheme_is_first_of_sorted(self):
        handle = make_handle(ADDRESSES)
        assert (
            handle.endpoint_for_scheme("http").address
            == "http://prov0:80/services/Echo"
        )
        assert handle.endpoint_for_scheme("ftp") is None


class TestDropEndpoint:
    def test_drop_removes_only_named_address(self):
        handle = make_handle(ADDRESSES)
        assert handle.drop_endpoint("http://prov1:80/services/Echo")
        assert len(handle.endpoints) == 4
        assert [e.address for e in handle.endpoints_for_scheme("http")] == [
            "http://prov0:80/services/Echo",
            "http://prov2:80/services/Echo",
        ]

    def test_drop_unknown_address_is_noop(self):
        handle = make_handle(ADDRESSES)
        assert not handle.drop_endpoint("http://nowhere/Echo")
        assert len(handle.endpoints) == 5

    def test_drop_preserves_determinism(self):
        a = make_handle(ADDRESSES)
        b = make_handle(list(reversed(ADDRESSES)))
        for handle in (a, b):
            handle.drop_endpoint("p2ps://peer-a/Echo")
        assert [e.address for e in a.endpoints_for_scheme("p2ps")] == [
            e.address for e in b.endpoints_for_scheme("p2ps")
        ]
