"""Shared fixtures for core (WSPeer) tests."""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.events import RecordingListener
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class Echo:
    """Canonical test service."""

    def echo(self, message: str) -> str:
        return message

    def shout(self, message: str) -> str:
        return message.upper()


class Counter:
    """Stateful test service."""

    def __init__(self):
        self.value = 0

    def increment(self, by: int) -> int:
        self.value += by
        return self.value

    def read(self) -> int:
        return self.value


class Broken:
    def boom(self) -> str:
        raise RuntimeError("deliberate failure")


@pytest.fixture
def net():
    return Network(latency=FixedLatency(0.002))


@pytest.fixture
def registry_node(net):
    return UddiRegistryNode(net.add_node("registry"))


@pytest.fixture
def standard_pair(net, registry_node):
    """(provider, consumer, listener) over the standard binding."""
    listener = RecordingListener()
    provider = WSPeer(
        net.add_node("prov"), StandardBinding(registry_node.endpoint), listener=listener
    )
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry_node.endpoint))
    return provider, consumer, listener


@pytest.fixture
def p2ps_pair(net):
    """(provider, consumer, listener) over the P2PS binding."""
    group = PeerGroup("main")
    listener = RecordingListener()
    provider = WSPeer(
        net.add_node("pprov"), P2psBinding(group), name="pprov", listener=listener
    )
    consumer = WSPeer(net.add_node("pcons"), P2psBinding(group), name="pcons")
    return provider, consumer, listener
