"""Tests for the lightweight container: deploy, stateful objects,
interception, per-operation targets, server events."""

import pytest

from repro.core import DeploymentError, LightweightContainer
from repro.core.events import EventSource, RecordingListener
from repro.soap import ServiceObject, SoapEnvelope
from repro.soap.rpc import build_rpc_request, extract_rpc_result
from tests.core.conftest import Broken, Counter, Echo

NS = "urn:wspeer:test"


@pytest.fixture
def container():
    root = EventSource("peer")
    listener = RecordingListener()
    root.add_listener(listener)
    container = LightweightContainer(parent=root)
    return container, listener


def rpc(container, service, op, **args):
    request = build_rpc_request(f"urn:wspeer:{service}", op, args)
    request = SoapEnvelope.from_wire(request.to_wire())
    response = container.process_request(service, request)
    return extract_rpc_result(SoapEnvelope.from_wire(response.to_wire()))


class TestDeploy:
    def test_deploy_plain_object(self, container):
        c, _ = container
        deployed = c.deploy(Echo())
        assert deployed.name == "Echo"  # defaults to class name
        assert deployed.service.operation_names == ["echo", "shout"]

    def test_deploy_with_name_and_namespace(self, container):
        c, _ = container
        deployed = c.deploy(Echo(), name="MyEcho", namespace="urn:custom")
        assert deployed.name == "MyEcho"
        assert deployed.namespace == "urn:custom"

    def test_deploy_include_filter(self, container):
        c, _ = container
        deployed = c.deploy(Echo(), include=["echo"])
        assert deployed.service.operation_names == ["echo"]

    def test_duplicate_name_rejected(self, container):
        c, _ = container
        c.deploy(Echo())
        with pytest.raises(DeploymentError):
            c.deploy(Echo())

    def test_no_operations_rejected(self, container):
        c, _ = container

        class Empty:
            pass

        with pytest.raises(DeploymentError):
            c.deploy(Empty())

    def test_deploy_fires_event(self, container):
        c, listener = container
        c.deploy(Echo())
        events = listener.of_kind("deployed")
        assert len(events) == 1
        assert events[0].detail["service"] == "Echo"
        assert events[0].detail["operations"] == ["echo", "shout"]

    def test_undeploy(self, container):
        c, listener = container
        c.deploy(Echo())
        c.undeploy("Echo")
        assert c.service_names == []
        assert listener.of_kind("undeployed")

    def test_undeploy_missing(self, container):
        c, _ = container
        with pytest.raises(DeploymentError):
            c.undeploy("Ghost")

    def test_wsdl_reflects_endpoints(self, container):
        c, _ = container
        from repro.wsa import EndpointReference

        deployed = c.deploy(Echo())
        deployed.add_endpoint(EndpointReference("http://n/services/Echo"))
        wsdl = deployed.wsdl()
        assert wsdl.services["Echo"].ports[0].location == "http://n/services/Echo"


class TestStatefulServices:
    def test_state_persists_across_requests(self, container):
        c, _ = container
        c.deploy(Counter())
        assert rpc(c, "Counter", "increment", by=5) == 5
        assert rpc(c, "Counter", "increment", by=3) == 8
        assert rpc(c, "Counter", "read") == 8

    def test_service_is_interface_to_live_object(self, container):
        c, _ = container
        counter = Counter()
        c.deploy(counter)
        rpc(c, "Counter", "increment", by=2)
        assert counter.value == 2  # the app's own object changed
        counter.value = 100  # the app mutates it directly
        assert rpc(c, "Counter", "read") == 100

    def test_operations_map_to_different_objects(self, container):
        # §III: each operation can target a different stateful object
        c, _ = container
        service = ServiceObject("Mixed", NS)
        first, second = Counter(), Counter()
        service.map_operation("bumpA", first, "increment")
        service.map_operation("bumpB", second, "increment")
        c.deploy(service)
        rpc(c, "Mixed", "bumpA", by=10)
        rpc(c, "Mixed", "bumpB", by=1)
        assert first.value == 10
        assert second.value == 1


class TestRequestProcessing:
    def test_fault_on_unknown_service(self, container):
        c, _ = container
        request = build_rpc_request(NS, "x", {})
        response = c.process_request("Ghost", request)
        assert response.is_fault

    def test_service_exception_becomes_fault(self, container):
        c, _ = container
        c.deploy(Broken())
        from repro.soap import SoapFault

        with pytest.raises(SoapFault, match="deliberate failure"):
            rpc(c, "Broken", "boom")

    def test_server_events_fired_either_side(self, container):
        c, listener = container
        c.deploy(Echo())
        rpc(c, "Echo", "echo", message="x")
        kinds = listener.kinds()
        assert "request-received" in kinds
        assert "response-sent" in kinds
        assert kinds.index("request-received") < kinds.index("response-sent")

    def test_request_event_carries_envelope(self, container):
        c, listener = container
        c.deploy(Echo())
        rpc(c, "Echo", "echo", message="x")
        event = listener.of_kind("request-received")[0]
        assert event.detail["operation"] == "echo"
        assert isinstance(event.detail["envelope"], SoapEnvelope)

    def test_requests_processed_counter(self, container):
        c, _ = container
        deployed = c.deploy(Echo())
        rpc(c, "Echo", "echo", message="x")
        rpc(c, "Echo", "shout", message="x")
        assert deployed.requests_processed == 2


class TestInterception:
    def test_interceptor_answers_directly(self, container):
        # "the Server gives the listening application a chance to handle
        #  the request directly"
        c, listener = container
        c.deploy(Echo())
        canned = build_rpc_request(NS, "echoResponse", {"return": "intercepted"})

        def interceptor(service, request):
            return canned

        c.interceptor = interceptor
        deployed = c.get("Echo")
        response = c.process_request("Echo", build_rpc_request(NS, "echo", {"message": "x"}))
        assert response is canned
        assert deployed.requests_processed == 0  # engine bypassed
        assert listener.of_kind("request-intercepted")

    def test_interceptor_can_decline(self, container):
        c, _ = container
        c.deploy(Echo())
        c.interceptor = lambda service, request: None
        result = rpc(c, "Echo", "echo", message="hi")
        assert result == "hi"

    def test_interception_off_dispatches_engine(self, container):
        # "this option can be turned off, in which case the Server
        #  invokes the underlying messaging engine directly"
        c, _ = container
        c.deploy(Echo())
        c.interceptor = None
        assert rpc(c, "Echo", "shout", message="hi") == "HI"

    def test_interceptor_sees_service_name(self, container):
        c, _ = container
        c.deploy(Echo())
        seen = []
        c.interceptor = lambda service, request: seen.append(service) or None
        rpc(c, "Echo", "echo", message="x")
        assert seen == ["Echo"]
