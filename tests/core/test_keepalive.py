"""WSPeer-level integration of E11 persistent connections.

``enable_http_keepalive`` routes a peer's outbound SOAP calls over a
shared connection pool; ``configure_http_server`` tunes the provider's
per-connection queue; failover health verdicts evict pooled
connections to dead endpoints.
"""

import pytest

from tests.core.conftest import Counter, Echo

from repro.core import WsPeerError
from repro.transport import PoolConfig


def deploy_and_locate(provider, consumer, net, service=None, name="Echo"):
    provider.deploy(service or Echo(), name=name)
    provider.publish(name)
    return consumer.locate_one(name)


class TestKeepAliveInvocation:
    def test_invocations_reuse_one_connection(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = deploy_and_locate(provider, consumer, net)
        pool = consumer.enable_http_keepalive()
        for i in range(3):
            assert consumer.invoke(handle, "echo", {"message": f"m{i}"}) == f"m{i}"
        assert pool.opened == 1
        assert pool.reused == 2

    def test_pool_shared_across_retries_and_stateful_calls(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = deploy_and_locate(provider, consumer, net, Counter(), "Counter")
        consumer.enable_http_keepalive(PoolConfig(idle_timeout=60.0))
        assert consumer.invoke(handle, "increment", {"by": 2}) == 2
        assert consumer.invoke(handle, "increment", {"by": 3}) == 5
        assert consumer.http_pool.opened == 1

    def test_keepalive_requires_poolable_binding(self, p2ps_pair):
        _, consumer, _ = p2ps_pair
        with pytest.raises(WsPeerError):
            consumer.enable_http_keepalive()

    def test_failover_health_evicts_pooled_connections(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = deploy_and_locate(provider, consumer, net)
        consumer.enable_http_keepalive()
        consumer.enable_failover()
        executor = consumer.failover
        assert consumer.invoke(handle, "echo", {"message": "warm"}) == "warm"
        (conn,) = consumer.http_pool.connections()
        executor.health.record_failure(handle.endpoints[0].address, fatal=True)
        assert consumer.http_pool.size == 0
        assert conn.state == "closed"

    def test_enable_order_is_symmetric(self, standard_pair, net):
        # keepalive-then-failover and failover-then-keepalive must both
        # end up with the pool watching health verdicts
        provider, consumer, _ = standard_pair
        handle = deploy_and_locate(provider, consumer, net)
        consumer.enable_failover()
        consumer.enable_http_keepalive()
        assert consumer.invoke(handle, "echo", {"message": "x"}) == "x"
        consumer.failover.health.record_failure(
            handle.endpoints[0].address, fatal=True
        )
        assert consumer.http_pool.size == 0


class TestServerTuning:
    def test_configure_http_server_sets_queue_knobs(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        deploy_and_locate(provider, consumer, net)
        server = provider.configure_http_server(
            max_pending_per_connection=4.0, drain_rate=10.0, idle_timeout=None
        )
        assert server.max_pending_per_connection == 4.0
        assert server.conn_drain_rate == 10.0
        assert server.conn_idle_timeout is None

    def test_configure_requires_http_binding(self, p2ps_pair):
        provider, _, _ = p2ps_pair
        with pytest.raises(WsPeerError):
            provider.configure_http_server(max_pending_per_connection=1.0)
