"""End-to-end: dataclass-typed services across the wire with schemas."""

from dataclasses import dataclass

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.soap import StructRegistry
from repro.uddi import UddiRegistryNode


@dataclass
class Order:
    item: str
    quantity: int


@dataclass
class Receipt:
    order: Order
    total: float


class ShopService:
    PRICE = 2.5

    def checkout(self, order: Order) -> Receipt:
        return Receipt(order, self.PRICE * order.quantity)


def make_registry():
    reg = StructRegistry()
    reg.register(Order)
    reg.register(Receipt)
    return reg


class TestTypedStandardBinding:
    @pytest.fixture
    def world(self):
        net = Network(latency=FixedLatency(0.002))
        uddi = UddiRegistryNode(net.add_node("registry"))
        provider = WSPeer(net.add_node("prov"), StandardBinding(uddi.endpoint))
        consumer = WSPeer(net.add_node("cons"), StandardBinding(uddi.endpoint))
        provider.deploy(ShopService(), name="Shop", registry=make_registry())
        provider.publish("Shop")
        consumer.client.invocation.registry = make_registry()
        return net, provider, consumer

    def test_dataclass_round_trip_over_http(self, world):
        net, provider, consumer = world
        handle = consumer.locate_one("Shop")
        receipt = consumer.invoke(handle, "checkout", order=Order("widget", 4))
        assert isinstance(receipt, Receipt)
        assert receipt.total == 10.0
        assert receipt.order == Order("widget", 4)

    def test_wsdl_carries_struct_schema(self, world):
        net, provider, consumer = world
        handle = consumer.locate_one("Shop")
        assert set(handle.wsdl.schema_types) == {"Order", "Receipt"}
        assert dict(handle.wsdl.schema_types["Order"])["quantity"] == "xsd:int"

    def test_stub_with_typed_args(self, world):
        net, provider, consumer = world
        stub = consumer.create_stub(consumer.locate_one("Shop"))
        receipt = stub.checkout(Order("gadget", 2))
        assert receipt.total == 5.0


class TestTypedP2psBinding:
    def test_dataclass_round_trip_over_pipes(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("pp"), P2psBinding(group), name="pp")
        consumer = WSPeer(net.add_node("pc"), P2psBinding(group), name="pc")
        provider.deploy(ShopService(), name="Shop", registry=make_registry())
        provider.publish("Shop")
        net.run()
        consumer.client.invocation.registry = make_registry()
        handle = consumer.locate_one("Shop")
        receipt = consumer.invoke(handle, "checkout", order=Order("pipe-thing", 3))
        assert receipt == Receipt(Order("pipe-thing", 3), 7.5)

    def test_unregistered_consumer_gets_clear_error(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("pp2"), P2psBinding(group), name="pp2")
        consumer = WSPeer(net.add_node("pc2"), P2psBinding(group), name="pc2")
        provider.deploy(ShopService(), name="Shop", registry=make_registry())
        provider.publish("Shop")
        net.run()
        handle = consumer.locate_one("Shop")
        # consumer never registered the dataclasses: encoding must refuse
        from repro.soap import EncodingError

        with pytest.raises(EncodingError):
            consumer.invoke(handle, "checkout", order=Order("x", 1))
