"""Integration tests for the standard (HTTP/UDDI) binding — Fig. 3.

deploy → launch server → publish(UDDI) → locate(UDDI) → invoke(HTTP).
"""

import pytest

from repro.core import DiscoveryError, UDDIServiceQuery
from repro.core.errors import DeploymentError
from repro.soap import SoapFault
from tests.core.conftest import Broken, Counter, Echo


class TestFig3Processes:
    def test_full_cycle(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        assert handle.source == "uddi"
        assert consumer.invoke(handle, "echo", message="hi") == "hi"

    def test_http_server_launched_on_deploy_only(self, standard_pair, net):
        # §IV-A: "the HTTP server is only launched once the application
        # has deployed a service"
        provider, _, listener = standard_pair
        deployer = provider.server.deployer
        assert not deployer.server.started
        provider.deploy(Echo(), name="Echo")
        assert deployer.server.started
        assert listener.of_kind("http-server-launched")

    def test_wsdl_served_next_to_endpoint(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        ops = handle.operation_names()
        assert ops == ["echo", "shout"]
        assert handle.wsdl.target_namespace == "urn:wspeer:Echo"

    def test_locate_unpublished_raises(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")  # deployed but never published
        with pytest.raises(DiscoveryError):
            consumer.locate_one("Echo")

    def test_category_query(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        cat = {"tModelKey": "uuid:domain", "keyName": "domain", "keyValue": "math"}
        provider.deploy(Counter(), name="Calc")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Calc", categories=[cat])
        provider.publish("Echo")
        handles = consumer.locate(UDDIServiceQuery("%", categories=[cat]))
        assert [h.name for h in handles] == ["Calc"]

    def test_wildcard_locate(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="EchoOne")
        provider.deploy(Counter(), name="EchoTwo")
        provider.publish("EchoOne")
        provider.publish("EchoTwo")
        handles = consumer.locate("Echo%")
        assert sorted(h.name for h in handles) == ["EchoOne", "EchoTwo"]

    def test_invoke_stateful(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Counter(), name="Counter")
        provider.publish("Counter")
        handle = consumer.locate_one("Counter")
        assert consumer.invoke(handle, "increment", by=4) == 4
        assert consumer.invoke(handle, "increment", by=4) == 8

    def test_remote_fault_raises_locally(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Broken(), name="Broken")
        provider.publish("Broken")
        handle = consumer.locate_one("Broken")
        with pytest.raises(SoapFault, match="deliberate failure"):
            consumer.invoke(handle, "boom")

    def test_stub_invocation(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        stub = consumer.create_stub(consumer.locate_one("Echo"))
        assert stub.shout(message="hi") == "HI"

    def test_undeploy_closes_endpoint(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        provider.undeploy("Echo")
        from repro.core import InvocationError
        from repro.transport import TransportError

        with pytest.raises((TransportError, InvocationError, SoapFault)):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)

    def test_local_handle_invocable_by_others(self, standard_pair, net):
        # a peer can hand its own handle out without UDDI
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        handle = provider.local_handle("Echo")
        assert consumer.invoke(handle, "echo", message="direct") == "direct"

    def test_async_invocation_event_driven(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        results = []
        handle = provider.local_handle("Echo")
        consumer.invoke_async(
            handle, "echo", {"message": "later"},
            lambda result, error: results.append((result, error)),
        )
        assert results == []  # asynchronous: nothing yet
        net.run()
        assert results == [("later", None)]

    def test_dead_provider_times_out(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        handle = provider.local_handle("Echo")
        net.get_node("prov").go_down()
        from repro.transport import TransportTimeoutError

        with pytest.raises(TransportTimeoutError):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)


class TestEventsOnTree:
    def test_provider_sees_deploy_publish_server_events(self, standard_pair, net):
        provider, consumer, listener = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", message="x")
        kinds = listener.kinds()
        assert "deployed" in kinds
        assert "endpoint-opened" in kinds
        assert "published" in kinds
        assert "request-received" in kinds
        assert "response-sent" in kinds

    def test_consumer_sees_discovery_and_client_events(self, net, registry_node):
        from repro.core import WSPeer
        from repro.core.binding import StandardBinding
        from repro.core.events import RecordingListener

        listener = RecordingListener()
        provider = WSPeer(net.add_node("p2"), StandardBinding(registry_node.endpoint))
        consumer = WSPeer(
            net.add_node("c2"), StandardBinding(registry_node.endpoint), listener=listener
        )
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", message="x")
        kinds = listener.kinds()
        assert "query-issued" in kinds
        assert "service-found" in kinds
        assert "request-sent" in kinds
        assert "response-received" in kinds

    def test_interceptor_through_facade(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        handle = provider.local_handle("Echo")

        from repro.soap.rpc import build_rpc_request

        canned = build_rpc_request("urn:wspeer:Echo", "echoResponse", {"return": "MINE"})
        provider.set_interceptor(lambda service, request: canned)
        assert consumer.invoke(handle, "echo", message="x") == "MINE"
        provider.set_interceptor(None)
        assert consumer.invoke(handle, "echo", message="x") == "x"


class TestDynamicDeployment:
    def test_deploy_at_runtime_after_traffic(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="First")
        provider.publish("First")
        consumer.invoke(consumer.locate_one("First"), "echo", message="x")
        # now, mid-run, deploy another service
        provider.deploy(Counter(), name="Second")
        provider.publish("Second")
        handle = consumer.locate_one("Second")
        assert consumer.invoke(handle, "increment", by=1) == 1

    def test_deployed_services_listing(self, standard_pair, net):
        provider, _, _ = standard_pair
        provider.deploy(Echo(), name="A")
        provider.deploy(Counter(), name="B")
        assert provider.deployed_services == ["A", "B"]

    def test_undeploy_unknown(self, standard_pair, net):
        provider, _, _ = standard_pair
        from repro.core import WsPeerError

        with pytest.raises(WsPeerError):
            provider.undeploy("Ghost")

    def test_publish_requires_deploy(self, standard_pair, net):
        provider, _, _ = standard_pair
        from repro.core import WsPeerError

        with pytest.raises(WsPeerError):
            provider.publish("Ghost")
