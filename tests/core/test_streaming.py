"""E16 integration: binary attachments and streamed large payloads.

Attachments ride both bindings end-to-end (HTTP multipart bodies and
P2PS multipart payloads); ``enable_streaming`` chunks oversized HTTP
exchanges without reordering or head-of-line-blocking pipelined small
calls; the multipart codec path holds O(chunk) memory; dedup replay
retains multipart response wires byte-for-byte.
"""

import hashlib
import tracemalloc

import pytest

from tests.core.conftest import Echo

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.soap import Attachment
from repro.soap.attachments import MultipartFeedParser, iter_message_wire


def _metric(name):
    from repro.observability.metrics import default_registry

    return default_registry().get(name)


NON_ASCII = "héllo — ✓ приве́т 漢字 🚀"


class BlobStore:
    """Test service whose arguments and results are attachments."""

    def __init__(self):
        self.blobs = {}

    def put(self, name: str, blob) -> int:
        data = blob.materialise()
        self.blobs[name] = data
        return len(data)

    def get(self, name: str):
        return Attachment(f"blob-{name}", self.blobs[name])

    def echo_blob(self, blob):
        return blob


PNG_ISH = bytes(range(256)) * 16 + b"\x00\r\n<>&\"'\xff"


class TestAttachmentsOverBindings:
    def _exercise(self, provider, consumer, net):
        provider.deploy(BlobStore(), name="Blobs")
        provider.publish("Blobs")
        handle = consumer.locate_one("Blobs")
        blob = Attachment("upload", PNG_ISH, "image/png")
        assert consumer.invoke(handle, "put", name="pic", blob=blob) == len(PNG_ISH)
        back = consumer.invoke(handle, "get", name="pic")
        assert isinstance(back, Attachment)
        assert back.materialise() == PNG_ISH
        echoed = consumer.invoke(handle, "echo_blob", blob=blob)
        assert echoed.materialise() == PNG_ISH

    def test_http_binding_roundtrip(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        self._exercise(provider, consumer, net)

    def test_p2ps_binding_roundtrip(self, p2ps_pair, net):
        provider, consumer, _ = p2ps_pair
        self._exercise(provider, consumer, net)

    def test_non_ascii_envelope_http(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        assert consumer.invoke(handle, "echo", message=NON_ASCII) == NON_ASCII

    def test_non_ascii_envelope_p2ps(self, p2ps_pair, net):
        provider, consumer, _ = p2ps_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        handle = consumer.locate_one("Echo")
        assert consumer.invoke(handle, "echo", message=NON_ASCII) == NON_ASCII


class TestStreamedInvocation:
    def _streaming_world(self, standard_pair, net, **knobs):
        provider, consumer, _ = standard_pair
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        handle = consumer.locate_one("Echo")
        knobs.setdefault("chunk_threshold", 32 * 1024)
        knobs.setdefault("chunk_size", 8 * 1024)
        provider.enable_streaming(**knobs)
        consumer.enable_streaming(**knobs)
        return provider, consumer, handle

    def test_large_round_trip_streams_both_directions(self, standard_pair, net):
        provider, consumer, handle = self._streaming_world(standard_pair, net)
        before = _metric("transport.http.streams_completed")
        chunks_before = _metric("transport.http.chunks_sent")
        message = "".join(f"payload-{i:06d} " for i in range(20_000))  # ~300 KB
        assert consumer.invoke(handle, "echo", message=message) == message
        # request and response both exceeded the threshold
        assert _metric("transport.http.streams_completed") == before + 2
        assert _metric("transport.http.chunks_sent") > chunks_before + 10

    def test_small_calls_stay_buffered(self, standard_pair, net):
        provider, consumer, handle = self._streaming_world(standard_pair, net)
        before = _metric("transport.http.streams_started")
        assert consumer.invoke(handle, "echo", message="tiny") == "tiny"
        assert _metric("transport.http.streams_started") == before

    def test_large_stream_does_not_block_small_calls(self, standard_pair, net):
        provider, consumer, handle = self._streaming_world(standard_pair, net)
        done = []
        big = "B" * 400_000
        consumer.invoke_async(
            handle, "echo", {"message": big},
            lambda result, error: done.append(("big", net.now, error)),
        )
        for i in range(3):
            consumer.invoke_async(
                handle, "echo", {"message": f"small-{i}"},
                lambda result, error, i=i: done.append((f"small-{i}", net.now, error)),
            )
        net.run()
        assert len(done) == 4
        assert all(err is None for _, _, err in done)
        finished = {label: at for label, at, _ in done}
        # pipelined small calls complete while the big exchange is
        # still streaming — chunked framing yields the connection
        assert max(finished[f"small-{i}"] for i in range(3)) < finished["big"]

    def test_no_reorder_under_streaming(self, standard_pair, net):
        provider, consumer, handle = self._streaming_world(standard_pair, net)
        results = []
        payloads = ["s0", "M" * 100_000, "s1", "L" * 200_000, "s2"]
        for p in payloads:
            consumer.invoke_async(
                handle, "echo", {"message": p},
                lambda result, error, p=p: results.append((p, result, error)),
            )
        net.run()
        assert len(results) == len(payloads)
        for sent, received, error in results:
            assert error is None
            assert received == sent

    def test_streamed_attachment_upload(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        provider.deploy(BlobStore(), name="Blobs")
        provider.publish("Blobs")
        handle = consumer.locate_one("Blobs")
        knobs = dict(chunk_threshold=32 * 1024, chunk_size=8 * 1024)
        provider.enable_streaming(**knobs)
        consumer.enable_streaming(**knobs)
        before = _metric("transport.http.streams_completed")
        blob = Attachment("big", bytes(range(256)) * 1024)  # 256 KB
        assert (
            consumer.invoke(handle, "put", name="big", blob=blob)
            == 256 * 1024
        )
        back = consumer.invoke(handle, "get", name="big")
        assert back.materialise() == bytes(range(256)) * 1024
        assert _metric("transport.http.streams_completed") >= before + 2


class TestStreamedMemoryBound:
    def test_multipart_codec_path_holds_o_chunk_memory(self):
        # an 8 MB attachment flows producer → wire chunks → feed parser
        # → hashing sink without either side materialising the payload
        chunk = b"\x5a" * (32 * 1024)
        n_chunks = 256  # 8 MB total
        size = len(chunk) * n_chunks
        expect = hashlib.sha256()
        for _ in range(n_chunks):
            expect.update(chunk)

        class HashSink:
            def __init__(self):
                self.digest = hashlib.sha256()
                self.seen = 0

            def write(self, data):
                self.digest.update(data)
                self.seen += len(data)

            def close(self):
                return self.digest.hexdigest()

        att = Attachment(
            "huge",
            chunks=lambda: (chunk for _ in range(n_chunks)),
            size=size,
        )
        sinks = {}

        def factory(cid, ctype, length):
            sinks[cid] = HashSink()
            return sinks[cid]

        parser = MultipartFeedParser(sink_factory=factory)
        tracemalloc.start()
        tracemalloc.reset_peak()
        for piece in iter_message_wire("<env/>", [att], chunk_size=32 * 1024):
            parser.feed(piece)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        env, parts = parser.close()
        assert env == "<env/>"
        assert parts[0].delivered == expect.hexdigest()
        assert sinks["huge"].seen == size
        # O(chunk), not O(payload): 8 MB flowed through < 1 MB peak
        assert peak < 1024 * 1024


class TestDedupReplayWithAttachments:
    def test_replayed_response_carries_attachment(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")

        class CountingBlobs:
            def __init__(self):
                self.executions = 0

            def fetch(self):
                self.executions += 1
                return Attachment("result", PNG_ISH, "image/png")

        service = CountingBlobs()
        provider = WSPeer(net.add_node("prov"), P2psBinding(group), name="prov")
        provider.deploy(service, name="Blobs")
        provider.publish("Blobs")
        net.run()
        consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
        consumer.client.invocation.default_retries = 3
        handle = consumer.locate_one("Blobs")

        state = {"responses_dropped": 0}

        def drop_first_response(frame):
            if (
                frame.src == "prov"
                and frame.port.startswith("pipe:")
                and state["responses_dropped"] == 0
            ):
                state["responses_dropped"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first_response)
        result = consumer.invoke(handle, "fetch", timeout=0.5)
        assert state["responses_dropped"] == 1
        # executed once; the retransmit was answered from the dedup
        # window with the retained multipart wire, attachment intact
        assert service.executions == 1
        assert provider.server.deployer.duplicates_suppressed == 1
        assert isinstance(result, Attachment)
        assert result.materialise() == PNG_ISH
