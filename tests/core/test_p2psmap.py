"""Tests for the PipeAdvertisement ⇄ EndpointReference mapping (§IV-B)."""

import pytest

from repro.core.p2psmap import action_for_pipe, epr_from_pipe, pipe_from_epr
from repro.p2ps import PipeAdvertisement
from repro.wsa import EndpointReference, WsaError


def service_pipe():
    return PipeAdvertisement("pipe-000123", "echoString", "peer-x-0001", "input", "Echo")


def bare_pipe():
    return PipeAdvertisement("pipe-000456", "reply-1", "peer-y-0002", "input", "")


class TestEprFromPipe:
    def test_address_rule(self):
        # rule 1: Address = peer id + service advert name, as a URI
        epr = epr_from_pipe(service_pipe())
        assert epr.address == "p2ps://peer-x-0001/Echo"

    def test_bare_pipe_address_is_peer_only(self):
        # "If there is no service associated with the pipe ... the
        #  Address field is just the scheme and the host component"
        epr = epr_from_pipe(bare_pipe())
        assert epr.address == "p2ps://peer-y-0002"

    def test_reference_properties_rule(self):
        # rule 2: the EPR carries the other advert fields as RefProps
        epr = epr_from_pipe(service_pipe())
        assert epr.property_text("PipeId") == "pipe-000123"
        assert epr.property_text("PipeName") == "echoString"
        assert epr.property_text("PipeType") == "input"


class TestPipeFromEpr:
    def test_roundtrip(self):
        original = service_pipe()
        assert pipe_from_epr(epr_from_pipe(original)) == original

    def test_bare_roundtrip(self):
        original = bare_pipe()
        assert pipe_from_epr(epr_from_pipe(original)) == original

    def test_roundtrip_through_wire(self):
        from repro.xmlkit import parse, serialize

        epr = epr_from_pipe(service_pipe())
        reparsed = EndpointReference.from_element(parse(serialize(epr.to_element())))
        assert pipe_from_epr(reparsed) == service_pipe()

    def test_missing_pipe_id_rejected(self):
        epr = EndpointReference("p2ps://peer-z/Svc")
        with pytest.raises(WsaError):
            pipe_from_epr(epr)

    def test_non_p2ps_address_rejected(self):
        epr = EndpointReference("http://host/svc")
        with pytest.raises(WsaError):
            pipe_from_epr(epr)


class TestAction:
    def test_action_appends_pipe_name_fragment(self):
        # rule 3: Action = Address + fragment that represents the pipe name
        assert action_for_pipe(service_pipe()) == "p2ps://peer-x-0001/Echo#echoString"

    def test_action_for_bare_pipe(self):
        assert action_for_pipe(bare_pipe()) == "p2ps://peer-y-0002#reply-1"
