"""Cross-binding composition (§IV / experiment E6).

"These implementations need not remain self-contained.  A P2PS Client
could use the UDDI enabled ServiceLocator defined in the standard
implementation to search for services.  Likewise, a P2PS Server could
use the UDDI conversant ServicePublisher."
"""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.locator import UddiServiceLocator
from repro.core.publisher import UddiServicePublisher
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode
from tests.core.conftest import Echo


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    group = PeerGroup("main")
    return net, registry, group


class TestMixedBindings:
    def test_p2ps_client_with_uddi_locator(self, world):
        # provider is standard; the P2PS-bound consumer swaps in a UDDI
        # locator at runtime and invokes over HTTP endpoints it finds
        net, registry, group = world
        provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
        consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")

        uddi_locator = UddiServiceLocator(consumer.node, registry.endpoint)
        consumer.client.register_locator(uddi_locator)
        handle = consumer.locate_one("Echo")
        assert handle.source == "uddi"

        # the located endpoints are HTTP, so invocation needs the HTTP
        # invoker — registered the same way
        from repro.core.invocation import HttpInvocation

        consumer.client.register_invocation(HttpInvocation(consumer.node))
        assert consumer.invoke(handle, "echo", message="mixed") == "mixed"

    def test_p2ps_server_with_uddi_publisher(self, world):
        # a P2PS-hosted service additionally advertises itself in UDDI;
        # a standard consumer finds it there (endpoint is p2ps)
        net, registry, group = world
        provider = WSPeer(net.add_node("pp"), P2psBinding(group), name="pp")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")  # p2ps advert
        net.run()

        # cross-publish to UDDI with the p2ps address in the accessPoint
        from repro.uddi import UddiClient

        uddi = UddiClient(provider.node, registry.endpoint)
        advert = provider.server.deployer.advert_for("Echo")
        from repro.wsa.p2psuri import make_p2ps_uri

        uddi.publish_service(
            "WSPeer", "Echo", make_p2ps_uri(provider.peer.id, "Echo")
        )
        found = uddi.find_services("Echo")
        assert len(found) == 1
        points = uddi.access_points(found[0])
        assert points[0].access_point.startswith("p2ps://")
        assert advert.name == "Echo"

    def test_dual_consumer_same_service_both_paths(self, world):
        # one provider reachable both ways: standard deploy + p2ps deploy
        net, registry, group = world
        node = net.add_node("dual")
        standard = WSPeer(node, StandardBinding(registry.endpoint), name="dual-std")
        p2ps = WSPeer(net.add_node("dual2"), P2psBinding(group), name="dual-p2p")
        standard.deploy(Echo(), name="Echo")
        standard.publish("Echo")
        p2ps.deploy(Echo(), name="Echo")
        p2ps.publish("Echo")
        net.run()

        http_consumer = WSPeer(net.add_node("hc"), StandardBinding(registry.endpoint))
        p2ps_consumer = WSPeer(net.add_node("pc"), P2psBinding(group), name="pcons")
        h1 = http_consumer.locate_one("Echo")
        h2 = p2ps_consumer.locate_one("Echo")
        assert http_consumer.invoke(h1, "echo", message="a") == "a"
        assert p2ps_consumer.invoke(h2, "echo", message="b") == "b"
        assert h1.schemes == ["http"]
        assert h2.schemes == ["p2ps"]

    def test_uddi_publisher_refuses_pipe_only_service(self, world):
        # the UDDI publisher needs an HTTP endpoint; P2PS-only deploys
        # fail loudly rather than publishing a dead access point
        net, registry, group = world
        provider = WSPeer(net.add_node("po"), P2psBinding(group), name="po")
        provider.deploy(Echo(), name="Echo")
        publisher = UddiServicePublisher(provider.node, registry.endpoint)
        from repro.core.errors import DeploymentError

        deployed = provider.server.container.get("Echo")
        with pytest.raises(DeploymentError):
            publisher.publish(deployed)
