"""Tests for the event model and interface-tree propagation."""

from repro.core.events import (
    ClientMessageEvent,
    DeploymentMessageEvent,
    DiscoveryMessageEvent,
    EventSource,
    PeerMessageListener,
    PublishMessageEvent,
    RecordingListener,
    ServerMessageEvent,
)


class TestEventSource:
    def test_local_listener_notified(self):
        source = EventSource("leaf")
        listener = RecordingListener()
        source.add_listener(listener)
        source.fire_client("request-sent", service="S")
        assert listener.kinds() == ["request-sent"]

    def test_propagation_to_root(self):
        root = EventSource("peer")
        mid = EventSource("client", parent=root)
        leaf = EventSource("invocation", parent=mid)
        at_root = RecordingListener()
        root.add_listener(at_root)
        leaf.fire_client("request-sent")
        assert at_root.kinds() == ["request-sent"]
        assert at_root.events[0].source == "invocation"

    def test_all_levels_notified_in_order(self):
        order = []

        class Tagger(PeerMessageListener):
            def __init__(self, tag):
                self.tag = tag

            def message_received(self, event):
                order.append(self.tag)

        root = EventSource("peer")
        leaf = EventSource("leaf", parent=root)
        leaf.add_listener(Tagger("leaf"))
        root.add_listener(Tagger("root"))
        leaf.fire_server("x")
        assert order == ["leaf", "root"]

    def test_remove_listener(self):
        source = EventSource("x")
        listener = RecordingListener()
        source.add_listener(listener)
        source.remove_listener(listener)
        source.fire_publish("published")
        assert listener.events == []

    def test_runtime_reparenting(self):
        # "individual nodes in the tree can be replaced at runtime"
        old_root = EventSource("old")
        new_root = EventSource("new")
        leaf = EventSource("leaf", parent=old_root)
        recorder = RecordingListener()
        new_root.add_listener(recorder)
        leaf.parent = new_root
        leaf.fire_discovery("query-issued")
        assert recorder.kinds() == ["query-issued"]

    def test_event_families(self):
        source = EventSource("s")
        listener = RecordingListener()
        source.add_listener(listener)
        source.fire_discovery("a")
        source.fire_publish("b")
        source.fire_client("c")
        source.fire_server("d")
        source.fire_deployment("e")
        types = [type(e) for e in listener.events]
        assert types == [
            DiscoveryMessageEvent,
            PublishMessageEvent,
            ClientMessageEvent,
            ServerMessageEvent,
            DeploymentMessageEvent,
        ]


class TestPeerMessageListener:
    def test_dispatch_to_family_methods(self):
        calls = []

        class Mine(PeerMessageListener):
            def on_discovery_message(self, event):
                calls.append(("discovery", event.kind))

            def on_server_message(self, event):
                calls.append(("server", event.kind))

        listener = Mine()
        listener.message_received(DiscoveryMessageEvent("found", 0.0, "loc"))
        listener.message_received(ServerMessageEvent("req", 0.0, "srv"))
        listener.message_received(ClientMessageEvent("sent", 0.0, "cli"))  # no override
        assert calls == [("discovery", "found"), ("server", "req")]

    def test_detail_payload(self):
        event = ClientMessageEvent("request-sent", 1.5, "invocation", {"op": "echo"})
        assert event.detail["op"] == "echo"
        assert event.time == 1.5

    def test_recording_listener_filters(self):
        listener = RecordingListener()
        listener.message_received(ClientMessageEvent("a", 0.0, "x"))
        listener.message_received(ClientMessageEvent("b", 0.0, "x"))
        listener.message_received(ClientMessageEvent("a", 0.0, "x"))
        assert len(listener.of_kind("a")) == 2
