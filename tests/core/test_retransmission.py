"""Tests for P2PS retransmission and duplicate suppression over lossy pipes."""

import pytest

from repro.core import InvocationError, WSPeer
from repro.core.binding import P2psBinding
from repro.core.events import RecordingListener
from repro.p2ps import PeerGroup
from repro.simnet import DropInjector, FixedLatency, Network


class CountingService:
    def __init__(self):
        self.executions = 0

    def bump(self) -> int:
        self.executions += 1
        return self.executions


def build_world(retries=2):
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("g")
    service = CountingService()
    provider = WSPeer(net.add_node("prov"), P2psBinding(group), name="prov")
    provider.deploy(service, name="Counting")
    provider.publish("Counting")
    net.run()
    consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
    consumer.client.invocation.default_retries = retries
    handle = consumer.locate_one("Counting")
    return net, provider, consumer, handle, service


class TestRetransmission:
    def test_clean_network_no_retries_needed(self):
        net, provider, consumer, handle, service = build_world()
        listener = RecordingListener()
        consumer.add_listener(listener)
        assert consumer.invoke(handle, "bump", timeout=1.0) == 1
        assert listener.of_kind("retransmit") == []

    def test_retry_recovers_from_request_loss(self):
        net, provider, consumer, handle, service = build_world(retries=3)
        listener = RecordingListener()
        consumer.add_listener(listener)
        # drop exactly the next frame (the first request attempt)
        dropped = {"count": 0}

        def drop_first(frame):
            if frame.port.startswith("pipe:") and dropped["count"] == 0:
                dropped["count"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first)
        assert consumer.invoke(handle, "bump", timeout=0.5) == 1
        assert len(listener.of_kind("retransmit")) == 1

    def test_duplicate_execution_suppressed(self):
        net, provider, consumer, handle, service = build_world(retries=3)
        # drop only *response* frames once: request executes, reply lost,
        # retransmitted request must NOT execute again
        state = {"responses_dropped": 0}

        def drop_first_response(frame):
            if (
                frame.src == "prov"
                and frame.port.startswith("pipe:")
                and state["responses_dropped"] == 0
            ):
                state["responses_dropped"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first_response)
        assert consumer.invoke(handle, "bump", timeout=0.5) == 1
        assert service.executions == 1  # executed once despite two requests
        assert provider.server.deployer.duplicates_suppressed == 1

    def test_retries_exhausted_raises(self):
        net, provider, consumer, handle, service = build_world(retries=2)
        provider.node.go_down()
        with pytest.raises(InvocationError, match="after 3 attempt"):
            consumer.invoke(handle, "bump", timeout=0.2)
        # total time = 3 attempts x 0.2s
        assert net.now >= 0.6 * 0.99

    def test_heavy_loss_eventually_succeeds(self):
        net, provider, consumer, handle, service = build_world(retries=10)
        DropInjector(net, p=0.5, seed=3)
        assert consumer.invoke(handle, "bump", timeout=0.2) >= 1
        assert service.executions == 1

    def test_response_cache_bounded(self):
        net, provider, consumer, handle, service = build_world()
        deployer = provider.server.deployer
        deployer.RESPONSE_CACHE_LIMIT = 4
        for _ in range(10):
            consumer.invoke(handle, "bump", timeout=1.0)
        assert len(deployer._response_cache) <= 4
