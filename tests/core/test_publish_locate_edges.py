"""Edge-case coverage: publisher withdrawal, locator failures, handles."""

import pytest

from repro.core import DiscoveryError, ServiceHandle, WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.events import RecordingListener
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode
from repro.wsa import EndpointReference
from repro.wsdl.model import WsdlDefinition
from tests.core.conftest import Echo


@pytest.fixture
def std_world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
    return net, registry, provider, consumer


class TestWithdraw:
    def test_uddi_withdraw_removes_from_registry(self, std_world):
        net, registry, provider, consumer = std_world
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        assert consumer.locate("Echo")
        deployed = provider.server.container.get("Echo")
        provider.server.publisher.withdraw(deployed)
        assert consumer.locate("Echo") == []

    def test_uddi_withdraw_fires_event(self, std_world):
        net, registry, provider, consumer = std_world
        listener = RecordingListener()
        provider.add_listener(listener)
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        provider.server.publisher.withdraw(provider.server.container.get("Echo"))
        assert listener.of_kind("withdrawn")

    def test_p2ps_withdraw_removes_local_advert(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("pp"), P2psBinding(group), name="pp")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        deployed = provider.server.container.get("Echo")
        provider.server.publisher.withdraw(deployed)
        advert_key = f"service:{provider.peer.id}:Echo"
        assert provider.peer.cache.get(advert_key) is None


class TestLocatorFailures:
    def test_uddi_unreachable_raises_discovery_error(self, std_world):
        net, registry, provider, consumer = std_world
        registry.node.go_down()
        consumer.client.locator.uddi.http.default_timeout = 0.5
        with pytest.raises(DiscoveryError):
            consumer.locate("Anything")

    def test_uddi_query_failed_event(self, std_world):
        net, registry, provider, consumer = std_world
        listener = RecordingListener()
        consumer.add_listener(listener)
        registry.node.go_down()
        consumer.client.locator.uddi.http.default_timeout = 0.5
        with pytest.raises(DiscoveryError):
            consumer.locate("Anything")
        assert listener.of_kind("query-failed")

    def test_service_without_wsdl_skipped(self, std_world):
        # a service published without a wsdlSpec tModel cannot be used
        net, registry, provider, consumer = std_world
        from repro.uddi import UddiClient

        raw = UddiClient(provider.node, registry.endpoint)
        raw.publish_service("Biz", "NoWsdl", "http://prov:80/services/NoWsdl")
        listener = RecordingListener()
        consumer.add_listener(listener)
        assert consumer.locate("NoWsdl") == []
        skipped = listener.of_kind("service-skipped")
        assert skipped and "wsdl" in skipped[0].detail["reason"].lower()

    def test_dead_wsdl_host_skipped(self, std_world):
        net, registry, provider, consumer = std_world
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        provider.node.go_down()
        consumer.client.locator.http.default_timeout = 0.5
        assert consumer.locate("Echo") == []

    def test_p2ps_definition_pipe_timeout_skips_service(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("pp"), P2psBinding(group), name="pp")
        consumer = WSPeer(net.add_node("pc"), P2psBinding(group), name="pc")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        provider.node.go_down()  # advert cached at consumer, provider dead
        listener = RecordingListener()
        consumer.add_listener(listener)
        assert consumer.locate("Echo", timeout=1.0) == []
        assert listener.of_kind("service-skipped")

    def test_locate_one_error_message_includes_query(self, std_world):
        net, registry, provider, consumer = std_world
        with pytest.raises(DiscoveryError, match="Ghost"):
            consumer.locate_one("Ghost")


class TestServiceHandle:
    def make_handle(self):
        wsdl = WsdlDefinition("Svc", "urn:svc")
        return ServiceHandle(
            "Svc",
            wsdl,
            [
                EndpointReference("http://a:80/services/Svc"),
                EndpointReference("p2ps://peer-1/Svc"),
            ],
            source="uddi",
        )

    def test_endpoint_for_scheme(self):
        handle = self.make_handle()
        assert handle.endpoint_for_scheme("http").address.startswith("http://")
        assert handle.endpoint_for_scheme("p2ps").address.startswith("p2ps://")
        assert handle.endpoint_for_scheme("ftp") is None

    def test_schemes_deduped_ordered(self):
        handle = self.make_handle()
        handle.endpoints.append(EndpointReference("http://b:80/x"))
        assert handle.schemes == ["http", "p2ps"]

    def test_namespace_from_wsdl(self):
        assert self.make_handle().namespace == "urn:svc"

    def test_operation_names_empty_wsdl(self):
        assert self.make_handle().operation_names() == []


class TestFacadeMisc:
    def test_invoke_kwargs_and_dict_merge(self, std_world):
        net, registry, provider, consumer = std_world

        class TwoArg:
            def combine(self, a, b):
                return f"{a}+{b}"

        provider.deploy(TwoArg(), name="Two")
        handle = provider.local_handle("Two")
        assert consumer.invoke(handle, "combine", {"a": "x"}, b="y") == "x+y"

    def test_deploy_accepts_prepared_service_object(self, std_world):
        net, registry, provider, consumer = std_world
        from repro.soap import ServiceObject

        service = ServiceObject("Prepared", "urn:prep")
        service.map_operation("ping", Echo(), "echo")
        provider.deploy(service)
        handle = provider.local_handle("Prepared")
        assert consumer.invoke(handle, "ping", message="pong") == "pong"

    def test_repr_is_informative(self, std_world):
        net, registry, provider, consumer = std_world
        provider.deploy(Echo(), name="Echo")
        text = repr(provider)
        assert "Echo" in text and "standard" in text
