"""Tests for fully event-driven discovery on both bindings."""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.events import RecordingListener
from repro.core.query import P2PSServiceQuery, ServiceQuery
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode
from tests.core.conftest import Counter, Echo


@pytest.fixture
def std_world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
    provider.deploy(Echo(), name="EchoA")
    provider.deploy(Counter(), name="EchoB")
    provider.publish("EchoA")
    provider.publish("EchoB")
    return net, registry, provider, consumer


class TestUddiAsyncLocate:
    def test_nothing_happens_until_network_runs(self, std_world):
        net, registry, provider, consumer = std_world
        found = []
        consumer.client.locator.locate_async(ServiceQuery("Echo%"), found.append)
        assert found == []  # truly asynchronous
        net.run()
        assert sorted(h.name for h in found) == ["EchoA", "EchoB"]

    def test_on_complete_reports_count(self, std_world):
        net, registry, provider, consumer = std_world
        done = []
        consumer.client.locator.locate_async(
            ServiceQuery("Echo%"), lambda h: None,
            on_complete=lambda count, error: done.append((count, error)),
        )
        net.run()
        assert done == [(2, None)]

    def test_found_handles_are_invocable(self, std_world):
        net, registry, provider, consumer = std_world
        found = []
        consumer.client.locator.locate_async(ServiceQuery("EchoA"), found.append)
        net.run()
        assert consumer.invoke(found[0], "echo", message="via-async") == "via-async"

    def test_empty_result_completes_with_zero(self, std_world):
        net, registry, provider, consumer = std_world
        done = []
        consumer.client.locator.locate_async(
            ServiceQuery("Nothing%"), lambda h: None,
            on_complete=lambda count, error: done.append((count, error)),
        )
        net.run()
        assert done == [(0, None)]

    def test_registry_down_reports_error(self, std_world):
        net, registry, provider, consumer = std_world
        registry.node.go_down()
        consumer.client.locator.uddi.http.default_timeout = 0.5
        done = []
        consumer.client.locator.locate_async(
            ServiceQuery("Echo%"), lambda h: None,
            on_complete=lambda count, error: done.append((count, error)),
        )
        net.run()
        assert done[0][0] == 0
        assert done[0][1] is not None

    def test_discovery_events_fired(self, std_world):
        net, registry, provider, consumer = std_world
        listener = RecordingListener()
        consumer.add_listener(listener)
        consumer.client.locator.locate_async(ServiceQuery("Echo%"), lambda h: None)
        net.run()
        kinds = listener.kinds()
        assert "query-issued" in kinds
        assert kinds.count("service-found") == 2

    def test_unusable_services_skipped_but_sweep_completes(self, std_world):
        net, registry, provider, consumer = std_world
        from repro.uddi import UddiClient

        raw = UddiClient(provider.node, registry.endpoint)
        raw.publish_service("Biz", "EchoNoWsdl", "http://prov:80/x")  # no wsdl
        done = []
        found = []
        consumer.client.locator.locate_async(
            ServiceQuery("Echo%"), found.append,
            on_complete=lambda count, error: done.append(count),
        )
        net.run()
        assert done == [2]
        assert "EchoNoWsdl" not in [h.name for h in found]


class TestP2psAsyncLocate:
    def test_async_locate_over_pipes(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("pp"), P2psBinding(group), name="pp")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        consumer = WSPeer(net.add_node("pc"), P2psBinding(group), name="pc")
        found = []
        consumer.client.locator.locate_async(
            P2PSServiceQuery("Echo"), found.append
        )
        net.run()
        assert [h.name for h in found] == ["Echo"]


class TestFacadeAsyncLocate:
    def test_facade_locate_async_uddi(self, std_world):
        net, registry, provider, consumer = std_world
        found = []
        consumer.locate_async("Echo%", found.append)
        assert found == []
        net.run()
        assert sorted(h.name for h in found) == ["EchoA", "EchoB"]

    def test_facade_locate_async_p2ps(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("fp"), P2psBinding(group), name="fp")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        consumer = WSPeer(net.add_node("fc"), P2psBinding(group), name="fc")
        found = []
        consumer.locate_async("Echo", found.append)
        net.run()
        assert [h.name for h in found] == ["Echo"]
