"""End-to-end tests for WSPeer.configure_workers (E13).

The facade call wires three layers at once: the hosting node's
virtual-time worker pool, the container's declarative worker policy,
and a metrics collector exposing the pool's live stats.  Overflow on
the HTTP path must come back to the client as a
:class:`~repro.transport.base.TransportBusyError` carrying the server's
retry-after hint — the same vocabulary E9 admission control speaks.
"""

import pytest

from repro.observability import metrics as obs_metrics
from repro.reliability import ReliabilityPolicy, RetryPolicy
from repro.transport.base import TransportBusyError
from tests.core.conftest import Echo


@pytest.fixture(autouse=True)
def _fresh_metrics():
    obs_metrics.reset_default_registry()
    yield
    obs_metrics.reset_default_registry()


def _locate(provider, consumer):
    provider.deploy(Echo(), name="Echo")
    provider.publish("Echo")
    return consumer.locate_one("Echo")


class TestConfigureWorkers:
    def test_pool_unblocks_slow_requests(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = _locate(provider, consumer)
        provider.configure_workers(2, service_time=0.05)
        done = []
        for i in range(2):
            consumer.invoke_async(
                handle, "echo", {"message": f"m{i}"},
                lambda r, e, i=i: done.append((i, net.now, r, e)),
            )
        net.run()
        assert [(i, r) for i, _, r, e in done] == [(0, "m0"), (1, "m1")]
        t0, t1 = done[0][1], done[1][1]
        # with one worker the second response would land a full service
        # time after the first; with two they complete together
        assert abs(t1 - t0) < 0.05

    def test_serial_baseline_staggers(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = _locate(provider, consumer)
        provider.configure_workers(1, service_time=0.05)
        done = []
        for i in range(2):
            consumer.invoke_async(
                handle, "echo", {"message": f"m{i}"},
                lambda r, e, i=i: done.append((i, net.now)),
            )
        net.run()
        assert done[1][1] - done[0][1] == pytest.approx(0.05, abs=1e-6)

    def test_policy_recorded_and_collector_registered(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        _locate(provider, consumer)
        provider.configure_workers(4, queue_limit=16)
        assert provider.server.container.worker_policy == {
            "workers": 4,
            "queue_limit": 16,
        }
        snap = obs_metrics.default_registry().snapshot()
        stats = snap[f"workers.{provider.node.id}"]
        assert stats["workers"] == 4
        assert stats["queue_limit"] == 16

    def test_rejects_zero_workers(self, standard_pair, net):
        provider, _, _ = standard_pair
        with pytest.raises(ValueError):
            provider.configure_workers(0)


class TestHttpOverflow:
    def test_overflow_surfaces_busy_with_retry_after(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = _locate(provider, consumer)
        provider.configure_workers(1, queue_limit=0, service_time=0.2)
        naive = ReliabilityPolicy.naive()  # no retries: see the raw 503
        done = []
        for i in range(2):
            consumer.invoke_async(
                handle, "echo", {"message": f"m{i}"},
                lambda r, e, i=i: done.append((i, r, e)),
                policy=naive,
            )
        net.run()
        by_index = {i: (r, e) for i, r, e in done}
        assert by_index[0] == ("m0", None)
        result, error = by_index[1]
        assert result is None
        assert isinstance(error, TransportBusyError)
        # the hint is the remaining service time of the in-flight request
        assert error.retry_after == pytest.approx(0.2, abs=0.01)
        assert net.get_node(provider.node.id).frames_overflowed == 1

    def test_retry_after_overflow_eventually_succeeds(self, standard_pair, net):
        provider, consumer, _ = standard_pair
        handle = _locate(provider, consumer)
        provider.configure_workers(1, queue_limit=0, service_time=0.05)
        retrying = ReliabilityPolicy(
            retry=RetryPolicy(max_attempts=5, base_delay=0.06, jitter=0.0)
        )
        done = []
        for i in range(3):
            consumer.invoke_async(
                handle, "echo", {"message": f"m{i}"},
                lambda r, e, i=i: done.append((i, r, e)),
                policy=retrying,
            )
        net.run()
        assert sorted((i, r) for i, r, e in done) == [
            (0, "m0"), (1, "m1"), (2, "m2"),
        ]
        assert all(e is None for _, _, e in done)
