"""Tests for authenticated (HTTPG) hosting and invocation end-to-end."""

import pytest

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.core.deployer import HttpgServiceDeployer
from repro.core.invocation import HttpInvocation
from repro.simnet import FixedLatency, Network
from repro.transport import CertificateAuthority, HttpgTransport
from repro.transport.httpg import AuthenticationError
from repro.uddi import UddiRegistryNode
from tests.core.conftest import Echo


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    ca = CertificateAuthority()
    return net, registry, ca


def make_secure_provider(net, registry, ca):
    provider = WSPeer(net.add_node("secure-prov"), StandardBinding(registry.endpoint))
    server_transport = HttpgTransport(
        provider.node, ca, ca.issue("secure-prov-host")
    )
    deployer = HttpgServiceDeployer(
        provider.node, provider.server.container, server_transport
    )
    provider.server.register_deployer(deployer)
    provider.deploy(Echo(), name="SecureEcho")
    return provider


def make_secure_consumer(net, registry, ca, credential=None):
    consumer = WSPeer(net.add_node("secure-cons"), StandardBinding(registry.endpoint))
    transport = HttpgTransport(
        consumer.node, ca, credential or ca.issue("secure-cons-user")
    )
    consumer.client.register_invocation(
        HttpInvocation(consumer.node, extra_transports=[transport])
    )
    return consumer


class TestHttpgHosting:
    def test_authenticated_invoke(self, world):
        net, registry, ca = world
        provider = make_secure_provider(net, registry, ca)
        consumer = make_secure_consumer(net, registry, ca)
        handle = provider.local_handle("SecureEcho")
        assert handle.endpoints[0].address.startswith("httpg://")
        assert consumer.invoke(handle, "echo", message="secret") == "secret"

    def test_unauthenticated_client_refused(self, world):
        net, registry, ca = world
        provider = make_secure_provider(net, registry, ca)
        # a consumer with only plain HTTP cannot speak to an httpg port
        consumer = WSPeer(net.add_node("plain"), StandardBinding(registry.endpoint))
        handle = provider.local_handle("SecureEcho")
        from repro.core import InvocationError

        with pytest.raises(InvocationError):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)

    def test_foreign_ca_refused(self, world):
        net, registry, ca = world
        provider = make_secure_provider(net, registry, ca)
        other_ca = CertificateAuthority(secret="other")
        consumer = make_secure_consumer(
            net, registry, ca, credential=other_ca.issue("intruder")
        )
        handle = provider.local_handle("SecureEcho")
        with pytest.raises(AuthenticationError):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=2.0)

    def test_revoked_credential_refused_mid_session(self, world):
        net, registry, ca = world
        provider = make_secure_provider(net, registry, ca)
        credential = ca.issue("user")
        consumer = make_secure_consumer(net, registry, ca, credential=credential)
        handle = provider.local_handle("SecureEcho")
        assert consumer.invoke(handle, "echo", message="ok") == "ok"
        ca.revoke(credential)
        with pytest.raises(AuthenticationError):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=2.0)

    def test_wsdl_served_behind_auth(self, world):
        net, registry, ca = world
        provider = make_secure_provider(net, registry, ca)
        consumer_transport = HttpgTransport(
            net.add_node("fetcher"), ca, ca.issue("fetcher-user")
        )
        from repro.transport.uri import Uri

        got = []
        consumer_transport.send(
            Uri.parse("httpg://secure-prov:8443/services/SecureEcho.wsdl"),
            "",
            on_response=lambda body, err: got.append((body, err)),
        )
        net.run()
        body, err = got[0]
        assert err is None
        from repro.wsdl import parse_wsdl

        definition = parse_wsdl(body)
        assert "SecureEcho" in definition.services

    def test_undeploy_closes_httpg_endpoint(self, world):
        net, registry, ca = world
        provider = make_secure_provider(net, registry, ca)
        consumer = make_secure_consumer(net, registry, ca)
        handle = provider.local_handle("SecureEcho")
        provider.undeploy("SecureEcho")
        with pytest.raises(Exception):
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=1.0)

    def test_fault_travels_authenticated(self, world):
        net, registry, ca = world
        provider = WSPeer(net.add_node("secure-prov"), StandardBinding(registry.endpoint))
        transport = HttpgTransport(provider.node, ca, ca.issue("host"))
        deployer = HttpgServiceDeployer(
            provider.node, provider.server.container, transport
        )
        provider.server.register_deployer(deployer)

        class Bad:
            def boom(self) -> str:
                raise RuntimeError("secure failure")

        provider.deploy(Bad(), name="Bad")
        consumer = make_secure_consumer(net, registry, ca)
        from repro.soap import SoapFault

        with pytest.raises(SoapFault, match="secure failure"):
            consumer.invoke(provider.local_handle("Bad"), "boom")
