"""Session handoff across failover: survival + at-most-once (E15).

The satellite-3 scenario is the heart of this file: the primary
*executes* a mutation, its reply is lost, and it dies — the client's
retransmission (same wsa:MessageID, per E9) lands on a replica, which
must answer from the dedup window seeded by the shipped delta, not
re-execute.  A stateful counter makes re-execution observable as a
wrong value.
"""

from repro.replication.state import DEFAULT_SESSION
from repro.simnet import CrashHarness
from repro.simnet.wiretap import payload_text


def total_counter_executions(world):
    """Executions are only observable on the member that ran them:
    replicas move by delta application, so compare each member's value
    against its own dispatch count."""
    return sum(
        deployed.requests_processed
        for deployed in (
            p.server.container.require("Svc") for p in world.providers
        )
    )


class TestHandoffAtMostOnce:
    def test_primary_executes_dies_before_replying(self, counter_world):
        """The at-most-once-across-handoff contract, exactly."""
        group = counter_world.replicate(r=2)
        executor = counter_world.executor
        primary = counter_world.providers[0]
        harness = CrashHarness(counter_world.net)

        # warm up: one replicated increment
        assert executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        ) == 1
        counter_world.settle(0.5)

        # the crash point: the reply frame is lost, the deltas are not,
        # and the primary dies right after the response-sent instant
        harness.drop_replies_from(primary.node.id, count=1)
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True,
            match=lambda e: e.detail.get("service") == "Svc",
        )

        value = executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        )

        # exactly one increment happened anywhere: the replica answered
        # the retransmission from its dedup window
        assert value == 2
        assert executor.handoffs == 1
        live_values = [
            s.value
            for s, p in zip(counter_world.services, counter_world.providers)
            if p.node.up
        ]
        assert live_values == [2, 2]
        assert counter_world.services[0].value == 2  # primary executed once
        # replicas never dispatched the counter op themselves — they
        # replayed: dispatch counters stay at 0, dedup counters moved
        for provider in counter_world.providers[1:]:
            deployed = provider.server.container.require("Svc")
            assert deployed.requests_processed == 0
        assert sum(
            p.server.container.require("Svc").duplicates_suppressed
            for p in counter_world.providers[1:]
        ) == 1
        assert len(harness.kills) == 1

    def test_session_handoff_event_carries_message_id(self, counter_world):
        from repro.core.events import RecordingListener

        counter_world.replicate(r=2)
        recorder = RecordingListener()
        counter_world.consumer.add_listener(recorder)
        primary = counter_world.providers[0]
        harness = CrashHarness(counter_world.net)
        harness.drop_replies_from(primary.node.id, count=1)
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True,
            match=lambda e: e.detail.get("service") == "Svc",
        )
        counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        )
        handoffs = [e for e in recorder.events if e.kind == "session-handoff"]
        assert len(handoffs) == 1
        assert handoffs[0].detail["message_id"]
        assert handoffs[0].detail["caught_up"] >= 1

    def test_handoff_prefers_most_caught_up_member(self, counter_world):
        """With one replica artificially behind, the redirected call
        must land on the caught-up one."""
        group = counter_world.replicate(r=2, anti_entropy=False)
        executor = counter_world.executor
        primary = counter_world.providers[0]
        behind = group.members[2]
        harness = CrashHarness(counter_world.net)
        # starve member 2 of the next delta
        harness.drop_next(
            lambda f: f.dst == behind.node_id and "apply_delta" in payload_text(f),
            count=1,
        )
        assert executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        ) == 1
        counter_world.settle(0.5)
        assert behind.store.high_water(DEFAULT_SESSION) == 0
        assert group.members[1].store.high_water(DEFAULT_SESSION) == 1

        harness.kill(primary.node.id)
        value = executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        )
        assert value == 2
        # member 1 (caught up) executed it; member 2 (behind) did not
        assert counter_world.services[1].value == 2
        assert counter_world.providers[1].server.container.require(
            "Svc"
        ).requests_processed == 1

    def test_dead_primary_moves_execution_to_replica(self, counter_world):
        """Primary down before the request arrives: the call executes
        exactly once, on a replica."""
        counter_world.replicate(r=2)
        executor = counter_world.executor
        primary = counter_world.providers[0]
        harness = CrashHarness(counter_world.net)
        harness.kill(primary.node.id)
        value = executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        )
        assert value == 1
        assert counter_world.services[0].value == 0  # primary never ran it
        assert total_counter_executions(counter_world) == 1

    def test_kill_before_ship_orphans_only_unacknowledged_state(
        self, counter_world
    ):
        """Kill at the request-received instant: the dispatch already
        running completes, but the write is never shipped nor
        acknowledged (the node is down by reply time).  The client's
        retransmission re-executes on a replica — allowed, since
        at-most-once covers *acknowledged* writes — and the client sees
        exactly one answer, with live members agreeing on the replayed
        history."""
        counter_world.replicate(r=2)
        executor = counter_world.executor
        primary = counter_world.providers[0]
        harness = CrashHarness(counter_world.net)
        harness.kill_on_event(
            primary, "request-received", primary.node.id,
            match=lambda e: e.detail.get("service") == "Svc",
        )
        value = executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        )
        assert value == 1
        live_values = [
            s.value
            for s, p in zip(counter_world.services, counter_world.providers)
            if p.node.up
        ]
        assert live_values == [1, 1]
        counter_world.settle(2.0)
        assert counter_world.group.divergences() == 0

    def test_restarted_primary_rejoins_and_serves(self, counter_world):
        group = counter_world.replicate(r=2)
        executor = counter_world.executor
        primary = counter_world.providers[0]
        harness = CrashHarness(counter_world.net)

        assert executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        ) == 1
        harness.kill(primary.node.id, restart_after=1.0)
        assert executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.3
        ) == 2
        counter_world.settle(3.0)  # restart + anti-entropy
        assert group.members[0].store.high_water(DEFAULT_SESSION) == 2
        assert counter_world.services[0].value == 2
        assert group.converged()
