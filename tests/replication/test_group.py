"""Integration tests: delta shipping, lag guard, anti-entropy (E15)."""

import pytest

from repro.replication import ReplicationConfig
from repro.replication.state import DEFAULT_SESSION
from repro.soap.faults import ReplicaLagFault
from repro.simnet.wiretap import payload_text


class TestEstablish:
    def test_members_and_directory(self, counter_world):
        group = counter_world.replicate(r=2)
        assert len(group.members) == 3
        for member in group.members:
            assert group.caught_up(member.addresses[0]) == 0
        assert group.caught_up("http://nowhere:80/x") is None

    def test_handle_spans_every_member(self, counter_world):
        group = counter_world.replicate(r=2)
        assert len(counter_world.handle.endpoints) == 3
        assert counter_world.handle.source == "replicated"

    def test_replica_port_deployed_per_member(self, counter_world):
        counter_world.replicate(r=2)
        for provider in counter_world.providers:
            assert "SvcReplica" in provider.deployed_services

    def test_r_limits_group_size(self, counter_world):
        group = counter_world.replicate(r=1)
        assert len(group.members) == 2

    def test_requires_service_deployed_everywhere(self, counter_world):
        from repro.core.errors import DeploymentError

        counter_world.providers[2].undeploy("Svc")
        with pytest.raises(DeploymentError):
            counter_world.replicate(r=2)

    def test_session_state_api_requires_replication(self, counter_world):
        from repro.core.errors import DeploymentError

        deployed = counter_world.providers[0].server.container.require("Svc")
        with pytest.raises(DeploymentError):
            deployed.get_state()


class TestHappyPath:
    def test_deltas_converge_all_members(self, counter_world):
        counter_world.replicate(r=2)
        for i in range(6):
            value = counter_world.executor.invoke(
                counter_world.handle, "increment", {"by": 1}, timeout=0.5
            )
            assert value == i + 1
        counter_world.settle()
        assert [s.value for s in counter_world.services] == [6, 6, 6]
        assert counter_world.group.converged()
        assert counter_world.group.delta_lag() == 0

    def test_session_state_api(self, counter_world):
        counter_world.replicate(r=2)
        counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 3}, timeout=0.5
        )
        counter_world.settle()
        deployed = counter_world.providers[1].server.container.require("Svc")
        assert deployed.get_state() == {"value": 3}
        snap = deployed.snapshot()
        assert snap.seq == 1 and snap.state == {"value": 3}

    def test_read_only_operations_ship_nothing(self, counter_world):
        group = counter_world.replicate(r=2)
        counter_world.executor.invoke(
            counter_world.handle, "read", {}, timeout=0.5
        )
        counter_world.settle()
        assert group.ships_sent == 0

    def test_cart_sessions_version_independently(self, cart_world):
        group = cart_world.replicate(r=2)
        for item in ("apple", "pear"):
            cart_world.executor.invoke(
                cart_world.handle, "add_item",
                {"session": "alice", "item": item}, timeout=0.5,
            )
        cart_world.executor.invoke(
            cart_world.handle, "add_item",
            {"session": "bob", "item": "fig"}, timeout=0.5,
        )
        cart_world.settle()
        for member in group.members:
            assert member.store.high_water("alice") == 2
            assert member.store.high_water("bob") == 1
        assert cart_world.services[1].cart_size("alice") == 2

    def test_caught_up_scores_track_applied_state(self, counter_world):
        group = counter_world.replicate(r=2)
        counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.5
        )
        counter_world.settle()
        for member in group.members:
            assert group.caught_up(member.addresses[0]) == 1


class TestLagGuard:
    def _open_gap(self, world, victim_index=1):
        """Drop the next delta ship to one member, then mutate twice:
        the victim buffers seq 2 (gap at 1) and is lagging."""
        from repro.simnet import CrashHarness

        world.replicate(r=2, anti_entropy=False)
        harness = CrashHarness(world.net)
        victim = world.group.members[victim_index]
        harness.drop_next(
            lambda f: f.dst == victim.node_id and "apply_delta" in payload_text(f),
            count=1,
        )
        world.executor.invoke(
            world.handle, "increment", {"by": 1}, timeout=0.5
        )
        world.settle(0.5)
        return victim

    def test_gap_makes_member_lag(self, counter_world):
        victim = self._open_gap(counter_world)
        counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.5
        )
        counter_world.settle(0.5)
        assert victim.store.is_lagging(DEFAULT_SESSION)

    def test_lagging_member_answers_replica_lag_fault(self, counter_world):
        victim = self._open_gap(counter_world)
        counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.5
        )
        counter_world.settle(0.5)
        # invoke the victim directly (no failover): the lag surfaces
        handle = victim.peer.local_handle("Svc")
        with pytest.raises(ReplicaLagFault) as exc_info:
            counter_world.consumer.invoke(
                handle, "increment", {"by": 1}, timeout=0.5
            )
        assert exc_info.value.behind_by >= 1
        assert victim.lag_rejections >= 1

    def test_failover_routes_around_lagging_member(self, counter_world):
        """With replica-aware planning the lagging member ranks last, so
        the call lands on a caught-up member without even touching it."""
        self._open_gap(counter_world)
        value = counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.5
        )
        assert value == 2
        assert counter_world.group.divergences() == 0


class TestAntiEntropy:
    def test_restarted_member_resyncs(self, counter_world):
        group = counter_world.replicate(r=2)
        replica = counter_world.providers[2]
        replica.node.go_down()
        for _ in range(3):
            counter_world.executor.invoke(
                counter_world.handle, "increment", {"by": 1}, timeout=0.5
            )
        replica.node.go_up()
        counter_world.settle(3.0)  # anti-entropy period is 0.5s
        member = group.members[2]
        assert member.store.high_water(DEFAULT_SESSION) == 3
        assert counter_world.services[2].value == 3
        assert group.converged()
        assert sum(m.resyncs for m in group.members) >= 1

    def test_compacted_history_falls_back_to_snapshot(self, counter_world):
        config = ReplicationConfig(compact_after=2)
        group = counter_world.replicate(r=2, config=config)
        replica = counter_world.providers[2]
        replica.node.go_down()
        for _ in range(6):  # well past the compaction floor
            counter_world.executor.invoke(
                counter_world.handle, "increment", {"by": 1}, timeout=0.5
            )
        replica.node.go_up()
        counter_world.settle(3.0)
        member = group.members[2]
        assert member.store.high_water(DEFAULT_SESSION) == 6
        assert member.store.snapshots_installed >= 1
        assert group.converged()

    def test_stats_collector_registered(self, counter_world):
        from repro.observability import metrics as obs_metrics

        group = counter_world.replicate(r=2)
        counter_world.executor.invoke(
            counter_world.handle, "increment", {"by": 1}, timeout=0.5
        )
        counter_world.settle()
        stats = group.stats()
        assert stats["members"] == 3
        assert stats["ships_sent"] == 2  # one delta to two replicas
        assert stats["delta_lag"] == 0
        snapshot = obs_metrics.default_registry().snapshot()
        assert "replication.Svc" in str(snapshot) or stats is not None
