"""Unit tests for the versioned-state primitives (E15)."""

import pytest

from repro.replication.state import (
    SessionLog,
    StateDelta,
    StateSnapshot,
    diff_state,
    state_digest,
)


class TestDigest:
    def test_stable_across_key_order(self):
        assert state_digest({"a": 1, "b": 2}) == state_digest({"b": 2, "a": 1})

    def test_value_sensitive(self):
        assert state_digest({"a": 1}) != state_digest({"a": 2})

    def test_key_sensitive(self):
        assert state_digest({"a": 1}) != state_digest({"b": 1})

    def test_empty_state_has_a_digest(self):
        assert state_digest({})


class TestDiff:
    def test_added_and_changed_keys(self):
        changes, removed = diff_state({"a": 1, "b": 2}, {"a": 1, "b": 3, "c": 4})
        assert changes == {"b": 3, "c": 4}
        assert removed == ()

    def test_removed_keys_sorted(self):
        changes, removed = diff_state({"z": 1, "a": 2, "m": 3}, {"m": 3})
        assert changes == {}
        assert removed == ("a", "z")

    def test_no_change(self):
        assert diff_state({"a": 1}, {"a": 1}) == ({}, ())


class TestDelta:
    def test_json_round_trip(self):
        delta = StateDelta(
            session="cart-1",
            seq=7,
            changes={"items": ["apple"], "total": 3},
            removed=("stale",),
            digest="abc123",
            message_id="uuid:42",
            response_wire="<env/>",
            operation="add_item",
        )
        back = StateDelta.from_json(delta.to_json())
        assert back == delta

    def test_apply_to_merges_and_removes(self):
        delta = StateDelta("s", 1, {"a": 2}, removed=("b",))
        state = {"a": 1, "b": 9, "c": 3}
        delta.apply_to(state)
        assert state == {"a": 2, "c": 3}

    def test_optional_identity_defaults(self):
        back = StateDelta.from_json(StateDelta("s", 1, {"x": 1}).to_json())
        assert back.message_id is None
        assert back.response_wire is None


class TestSnapshot:
    def test_json_round_trip_with_replies(self):
        snap = StateSnapshot(
            "s", 4, {"v": 10}, digest="d", replies=(("uuid:1", "<a/>"),)
        )
        back = StateSnapshot.from_json(snap.to_json())
        assert back == snap

    def test_wire_bytes_positive(self):
        assert StateSnapshot("s", 0, {}).wire_bytes > 0


class TestSessionLog:
    def _delta(self, seq, value):
        return StateDelta(
            "s", seq, {"v": value}, digest=state_digest({"v": value})
        )

    def test_append_requires_contiguous_seq(self):
        log = SessionLog("s")
        log.append(self._delta(1, 1), {"v": 1})
        with pytest.raises(ValueError):
            log.append(self._delta(3, 3), {"v": 3})

    def test_deltas_since_returns_suffix(self):
        log = SessionLog("s")
        for i in range(1, 5):
            log.append(self._delta(i, i), {"v": i})
        suffix = log.deltas_since(2)
        assert [d.seq for d in suffix] == [3, 4]
        assert log.deltas_since(4) == []

    def test_compaction_folds_into_snapshot(self):
        log = SessionLog("s", compact_after=3)
        for i in range(1, 5):  # the 4th append exceeds compact_after=3
            log.append(self._delta(i, i), {"v": i})
        assert log.compactions == 1
        assert log.snapshot.seq == 4
        assert log.snapshot.state == {"v": 4}
        assert log.deltas == []
        assert log.seq == 4

    def test_deltas_since_none_past_compaction_floor(self):
        log = SessionLog("s", compact_after=2)
        for i in range(1, 4):
            log.append(self._delta(i, i), {"v": i})
        assert log.snapshot.seq == 3
        # a follower at seq 1 predates the floor: needs the snapshot
        assert log.deltas_since(1) is None
        # a follower exactly at the floor can continue on deltas
        assert log.deltas_since(3) == []
