"""Unit tests for the replica store's ordering invariants (E15)."""

import pytest

from repro.replication.errors import StateDivergedError
from repro.replication.state import StateDelta, StateSnapshot, state_digest
from repro.replication.store import (
    APPLIED,
    BUFFERED,
    DIVERGED,
    DUPLICATE,
    ReplicaStore,
)


def delta_for(seq, value, session="s", **kw):
    return StateDelta(
        session, seq, {"v": value}, digest=state_digest({"v": value}), **kw
    )


class TestRecordLocal:
    def test_assigns_monotonic_seqs(self):
        store = ReplicaStore("m")
        d1 = store.record_local("s", {"v": 1})
        d2 = store.record_local("s", {"v": 2})
        assert (d1.seq, d2.seq) == (1, 2)
        assert store.high_water("s") == 2

    def test_no_change_produces_no_delta(self):
        store = ReplicaStore("m")
        store.record_local("s", {"v": 1})
        assert store.record_local("s", {"v": 1}) is None
        assert store.high_water("s") == 1

    def test_delta_carries_diff_not_full_state(self):
        store = ReplicaStore("m")
        store.record_local("s", {"a": 1, "b": 2})
        delta = store.record_local("s", {"a": 1, "b": 3})
        assert delta.changes == {"b": 3}

    def test_removed_keys_tracked(self):
        store = ReplicaStore("m")
        store.record_local("s", {"a": 1, "b": 2})
        delta = store.record_local("s", {"a": 1})
        assert delta.removed == ("b",)

    def test_diverged_session_refuses_local_writes(self):
        store = ReplicaStore("m")
        store.record_local("s", {"v": 1})
        bad = StateDelta("s", 1, {"v": 99}, digest="not-ours")
        assert store.apply_remote(bad)[0] == DIVERGED
        with pytest.raises(StateDivergedError):
            store.record_local("s", {"v": 2})


class TestApplyRemote:
    def test_in_order_apply(self):
        store = ReplicaStore("m")
        verdict, applied = store.apply_remote(delta_for(1, 10))
        assert verdict == APPLIED
        assert [d.seq for d in applied] == [1]
        assert store.get_state("s") == {"v": 10}

    def test_duplicate_is_idempotent(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 10))
        verdict, applied = store.apply_remote(delta_for(1, 10))
        assert verdict == DUPLICATE
        assert applied == []
        assert store.duplicates == 1
        assert store.high_water("s") == 1

    def test_gap_buffers_then_drains_in_order(self):
        store = ReplicaStore("m")
        assert store.apply_remote(delta_for(2, 20))[0] == BUFFERED
        assert store.is_lagging("s")
        assert store.lag("s") == 2
        verdict, applied = store.apply_remote(delta_for(1, 10))
        assert verdict == APPLIED
        assert [d.seq for d in applied] == [1, 2]
        assert store.get_state("s") == {"v": 20}
        assert not store.is_lagging("s")

    def test_buffer_bounded(self):
        store = ReplicaStore("m", max_buffer=2)
        store.apply_remote(delta_for(3, 3))
        store.apply_remote(delta_for(4, 4))
        store.apply_remote(delta_for(5, 5))  # over the bound: shed
        assert store.buffer_overflows == 1

    def test_digest_mismatch_flags_divergence(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 10))
        bad = StateDelta("s", 2, {"v": 20}, digest="wrong-digest")
        verdict, applied = store.apply_remote(bad)
        assert verdict == DIVERGED
        assert store.is_diverged("s")
        assert store.divergences == 1

    def test_equal_seq_different_digest_is_divergence(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 10))
        other_branch = StateDelta(
            "s", 1, {"v": 99}, digest=state_digest({"v": 99})
        )
        assert store.apply_remote(other_branch)[0] == DIVERGED

    def test_sessions_are_independent(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 1, session="a"))
        store.apply_remote(delta_for(2, 2, session="b"))  # buffered gap in b
        assert store.high_water("a") == 1
        assert store.is_lagging("b")
        assert not store.is_lagging("a")


class TestSnapshots:
    def test_snapshot_reflects_high_water(self):
        store = ReplicaStore("m")
        store.record_local("s", {"v": 1}, message_id="uuid:1", response_wire="<a/>")
        snap = store.snapshot("s")
        assert snap.seq == 1
        assert snap.state == {"v": 1}
        assert snap.replies == (("uuid:1", "<a/>"),)

    def test_install_dominating_snapshot(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 10))
        snap = StateSnapshot("s", 5, {"v": 50}, digest=state_digest({"v": 50}))
        assert store.install_snapshot(snap)
        assert store.high_water("s") == 5
        assert store.get_state("s") == {"v": 50}
        assert store.snapshots_installed == 1

    def test_stale_snapshot_refused(self):
        store = ReplicaStore("m")
        for i in range(1, 4):
            store.apply_remote(delta_for(i, i))
        snap = StateSnapshot("s", 2, {"v": 2}, digest=state_digest({"v": 2}))
        assert not store.install_snapshot(snap)
        assert store.high_water("s") == 3

    def test_equal_seq_snapshot_with_other_digest_flags_divergence(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 10))
        snap = StateSnapshot("s", 1, {"v": 99}, digest=state_digest({"v": 99}))
        assert not store.install_snapshot(snap)
        assert store.is_diverged("s")

    def test_dominance_resolves_diverged_branch(self):
        """A diverged member adopting a strictly longer history counts a
        branch discard and becomes serviceable again."""
        store = ReplicaStore("m")
        store.apply_remote(delta_for(1, 10))
        store.apply_remote(StateDelta("s", 2, {"v": 20}, digest="wrong"))
        assert store.is_diverged("s")
        snap = StateSnapshot("s", 6, {"v": 60}, digest=state_digest({"v": 60}))
        assert store.install_snapshot(snap)
        assert not store.is_diverged("s")
        assert store.branches_discarded == 1
        assert store.divergences == 1  # the original conflict stays counted

    def test_install_drains_buffered_continuation(self):
        store = ReplicaStore("m")
        store.apply_remote(delta_for(6, 6))  # buffered: gap 1..5
        snap = StateSnapshot("s", 5, {"v": 5}, digest=state_digest({"v": 5}))
        assert store.install_snapshot(snap)
        assert store.high_water("s") == 6
        assert store.get_state("s") == {"v": 6}

    def test_deltas_since_none_after_compaction(self):
        store = ReplicaStore("m", compact_after=2)
        for i in range(1, 5):
            store.record_local("s", {"v": i})
        assert store.deltas_since("s", 0) is None
        assert store.compactions() >= 1

    def test_stats_shape(self):
        store = ReplicaStore("m")
        store.record_local("s", {"v": 1})
        stats = store.stats()
        assert stats["sessions"] == 1
        assert stats["applied"] == 1
        assert stats["total_applied"] == 1
