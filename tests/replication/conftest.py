"""Shared world-building for the replication integration tests."""

import pytest

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class CounterService:
    """Whole-object state: one default session."""

    def __init__(self):
        self.value = 0

    def increment(self, by: int) -> int:
        self.value += by
        return self.value

    def read(self) -> int:
        return self.value


class CartService:
    """Session-partitioned state via the session protocol."""

    def __init__(self):
        self._carts = {}

    def get_session_state(self, session):
        return dict(self._carts.get(session, {}))

    def set_session_state(self, session, state):
        self._carts[session] = dict(state)

    def add_item(self, session: str, item: str) -> int:
        cart = self._carts.setdefault(session, {"items": []})
        cart["items"] = list(cart["items"]) + [item]
        return len(cart["items"])

    def cart_size(self, session: str) -> int:
        return len(self._carts.get(session, {}).get("items", []))


class World:
    def __init__(self, service_factory, n_providers=3):
        self.net = Network(latency=FixedLatency(0.002))
        self.registry = UddiRegistryNode(self.net.add_node("registry"))
        self.providers = []
        self.services = []
        for i in range(n_providers):
            peer = WSPeer(
                self.net.add_node(f"prov{i}"),
                StandardBinding(self.registry.endpoint),
            )
            service = service_factory()
            peer.deploy(service, name="Svc")
            self.providers.append(peer)
            self.services.append(service)
        self.consumer = WSPeer(
            self.net.add_node("cons"), StandardBinding(self.registry.endpoint)
        )

    def replicate(self, r=2, config=None, anti_entropy=True):
        self.group = self.providers[0].enable_replication(
            "Svc", self.providers[1:], r=r, config=config,
            anti_entropy=anti_entropy,
        )
        self.executor = self.consumer.enable_failover()
        self.executor.attach_replication(self.group)
        self.handle = self.group.handle()
        return self.group

    def settle(self, dt=1.0):
        self.net.run(until=self.net.now + dt)


@pytest.fixture
def counter_world():
    return World(CounterService)


@pytest.fixture
def cart_world():
    return World(CartService)
