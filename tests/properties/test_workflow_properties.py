"""Property-based tests: workflow wave scheduling on random DAGs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.workflow import Tool, Workflow
from repro.core.handle import ServiceHandle
from repro.wsdl.model import WsdlDefinition


def dummy_tool() -> Tool:
    return Tool("t", ServiceHandle("S", WsdlDefinition("S", "urn:s")), "op")


@st.composite
def random_dags(draw):
    """A random DAG as (task count, edges i->j with i < j)."""
    n = draw(st.integers(min_value=1, max_value=12))
    edges = []
    for j in range(1, n):
        parents = draw(
            st.lists(st.integers(0, j - 1), unique=True, max_size=min(3, j))
        )
        edges.extend((i, j) for i in parents)
    return n, edges


def build_workflow(n, edges):
    wf = Workflow()
    wires_by_task: dict[int, dict[str, str]] = {j: {} for j in range(n)}
    for i, j in edges:
        wires_by_task[j][f"in{i}"] = f"t{i}"
    for j in range(n):
        wf.add_task(f"t{j}", dummy_tool(), wires=wires_by_task[j])
    return wf


@settings(max_examples=150, deadline=None)
@given(random_dags())
def test_waves_respect_all_dependencies(dag):
    n, edges = dag
    wf = build_workflow(n, edges)
    waves = wf.waves()
    position = {}
    for wave_index, wave in enumerate(waves):
        for spec in wave:
            position[spec.task_id] = wave_index
    for i, j in edges:
        assert position[f"t{i}"] < position[f"t{j}"]


@settings(max_examples=100, deadline=None)
@given(random_dags())
def test_waves_cover_every_task_exactly_once(dag):
    n, edges = dag
    wf = build_workflow(n, edges)
    scheduled = [spec.task_id for wave in wf.waves() for spec in wave]
    assert sorted(scheduled) == sorted(f"t{j}" for j in range(n))


@settings(max_examples=100, deadline=None)
@given(random_dags())
def test_wave_count_equals_longest_path(dag):
    n, edges = dag
    wf = build_workflow(n, edges)
    depth = {}
    for j in range(n):
        parents = [i for i, k in edges if k == j]
        depth[j] = 1 + max((depth[i] for i in parents), default=-1)
    assert len(wf.waves()) == max(depth.values()) + 1
