"""Property-based tests: SOAP typed encoding round-trips arbitrary values."""

import string
from dataclasses import dataclass

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.soap import StructRegistry, decode_value, encode_value
from repro.soap.envelope import SoapEnvelope
from repro.soap.rpc import build_rpc_request
from repro.xmlkit import parse, serialize

# XML 1.0 cannot carry most control characters; the stack never needs
# them (SOAP payloads are text), so generate valid XML characters.
_xml_text = st.text(
    alphabet=st.characters(
        codec="utf-8",
        exclude_categories=("Cs", "Cc", "Cn"),
    ),
    max_size=60,
)

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31 - 1),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    _xml_text,
    st.binary(max_size=64),
)

_keys = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=12,
)


def roundtrip(value, registry=None):
    elem = encode_value("v", value, registry)
    return decode_value(parse(serialize(elem)), registry)


def normalise(value):
    """Tuples decode as lists; compare up to that."""
    if isinstance(value, tuple):
        return [normalise(v) for v in value]
    if isinstance(value, list):
        return [normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: normalise(v) for k, v in value.items()}
    return value


@settings(max_examples=200, deadline=None)
@given(_values)
def test_encode_decode_roundtrip(value):
    assert normalise(roundtrip(value)) == normalise(value)


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(_keys, _scalars, min_size=0, max_size=5))
def test_rpc_request_roundtrips_args(args):
    envelope = build_rpc_request("urn:prop", "op", args)
    back = SoapEnvelope.from_wire(envelope.to_wire())
    decoded = {
        child.name.local: decode_value(child)
        for child in back.body_content.children
    }
    assert normalise(decoded) == normalise(args)


@settings(max_examples=100, deadline=None)
@given(st.floats(allow_nan=False, allow_infinity=False, width=64))
def test_float_roundtrip_exact(value):
    # repr-based float encoding must be bit-exact
    assert roundtrip(value) == value


@settings(max_examples=100, deadline=None)
@given(st.binary(max_size=256))
def test_bytes_roundtrip_exact(value):
    assert roundtrip(value) == value


@dataclass
class PropPoint:
    x: int
    label: str


@settings(max_examples=80, deadline=None)
@given(st.integers(-1000, 1000), _xml_text)
def test_dataclass_roundtrip(x, label):
    registry = StructRegistry()
    registry.register(PropPoint)
    back = roundtrip(PropPoint(x, label), registry)
    assert back == PropPoint(x, label)
