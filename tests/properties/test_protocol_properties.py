"""Property-based tests over protocol wire formats and the kernel."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2ps.advertisements import (
    PeerAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
    parse_advertisement,
)
from repro.simnet import Kernel
from repro.transport.http import HttpRequest, HttpResponse
from repro.wsa.p2psuri import P2psAddress, make_p2ps_uri, parse_p2ps_uri

_names = st.text(alphabet=string.ascii_letters + string.digits + "-_.", min_size=1, max_size=16)
_safe_body = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs", "Cc", "Cn")),
    max_size=200,
)
_header_values = st.text(
    alphabet=string.ascii_letters + string.digits + " -_;=/.,+", max_size=30
)


class TestKernelProperties:
    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=1000), min_size=1, max_size=30))
    def test_events_always_fire_in_time_order(self, delays):
        kernel = Kernel()
        fired = []
        for i, delay in enumerate(delays):
            kernel.schedule(delay, lambda i=i, d=delay: fired.append(d))
        kernel.run_until_idle()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=20),
        st.floats(min_value=0, max_value=100),
    )
    def test_run_until_never_fires_past_boundary(self, delays, until):
        kernel = Kernel()
        fired = []
        for delay in delays:
            kernel.schedule(delay, lambda d=delay: fired.append(d))
        kernel.run(until=until)
        assert all(d <= until for d in fired)
        assert sorted(fired) == sorted(d for d in delays if d <= until)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0, max_value=10), min_size=1, max_size=20))
    def test_clock_is_monotonic(self, delays):
        kernel = Kernel()
        times = []
        for delay in delays:
            kernel.schedule(delay, lambda: times.append(kernel.now))
        kernel.run_until_idle()
        assert times == sorted(times)


class TestHttpWireProperties:
    @settings(max_examples=150, deadline=None)
    @given(_names, _safe_body, st.dictionaries(
        st.sampled_from(["X-A", "X-B", "SOAPAction", "Content-Type"]),
        _header_values, max_size=3,
    ))
    def test_request_roundtrip(self, path, body, headers):
        request = HttpRequest("POST", "/" + path, body, headers)
        back = HttpRequest.from_wire(request.to_wire())
        assert back.path == "/" + path
        assert back.body == body
        for key, value in headers.items():
            assert back.headers[key] == value.strip()

    @settings(max_examples=150, deadline=None)
    @given(st.integers(100, 599), _safe_body)
    def test_response_roundtrip(self, status, body):
        back = HttpResponse.from_wire(HttpResponse(status, body).to_wire())
        assert back.status == status
        assert back.body == body

    @settings(max_examples=80, deadline=None)
    @given(_safe_body)
    def test_content_length_always_consistent(self, body):
        wire = HttpResponse(200, body).to_wire()
        back = HttpResponse.from_wire(wire)  # would raise on mismatch
        assert back.body == body


class TestP2psUriProperties:
    @settings(max_examples=150, deadline=None)
    @given(_names, st.one_of(st.just(""), _names), st.one_of(st.just(""), _names))
    def test_build_parse_roundtrip(self, peer, service, pipe):
        text = make_p2ps_uri(peer, service, pipe)
        assert parse_p2ps_uri(text) == P2psAddress(peer, service, pipe)

    @settings(max_examples=80, deadline=None)
    @given(_names, _names)
    def test_service_uri_never_has_fragment(self, peer, pipe):
        addr = P2psAddress(peer, "", pipe)
        assert "#" not in addr.service_uri()


class TestAdvertProperties:
    @settings(max_examples=100, deadline=None)
    @given(_names, _names, _names, st.booleans())
    def test_peer_advert_roundtrip(self, peer_id, node_id, name, rdv):
        advert = PeerAdvertisement(peer_id, node_id, name, rdv)
        assert parse_advertisement(advert.to_wire()) == advert

    @settings(max_examples=100, deadline=None)
    @given(_names, _names, _names, st.sampled_from(["input", "output"]), st.one_of(st.just(""), _names))
    def test_pipe_advert_roundtrip(self, pipe_id, name, peer_id, pipe_type, service):
        advert = PipeAdvertisement(pipe_id, name, peer_id, pipe_type, service)
        assert parse_advertisement(advert.to_wire()) == advert

    @settings(max_examples=100, deadline=None)
    @given(
        _names,
        _names,
        st.lists(st.tuples(_names, _names), max_size=3),
        st.dictionaries(_names, _header_values.filter(lambda s: s == s.strip()), max_size=3),
    )
    def test_service_advert_roundtrip(self, name, peer_id, pipe_specs, attributes):
        pipes = [
            PipeAdvertisement(f"pipe-{i}", pname, peer_id, "input", name)
            for i, (pname, _) in enumerate(pipe_specs)
        ]
        advert = ServiceAdvertisement(name, peer_id, pipes, attributes=attributes)
        back = parse_advertisement(advert.to_wire())
        assert back == advert
