"""Property-based tests: HTTP messages survive the wire round-trip.

The E11 satellite sweep fixed exact-case header matching; these
properties pin the whole wire contract — arbitrary header casing and
value whitespace, multi-word status reasons, and bodies that contain
the very delimiters the parser splits on.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.transport import HttpRequest, HttpResponse

# RFC 7230 token characters, minus ":" (the field separator). Header
# names never need the full set in this stack, but the parser must not
# care which subset a peer picks.
_name_chars = string.ascii_letters + string.digits + "-_"
# Content-Length is excluded: it is framing, owned by to_wire() — a
# caller-supplied value is overwritten with the measured body length
_header_names = st.text(alphabet=_name_chars, min_size=1, max_size=16).filter(
    lambda name: name.lower() != "content-length"
)

# values: printable, no CR/LF (those would terminate the field line);
# interior whitespace must survive, edges are stripped by the parser
_header_values = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters="\r\n", min_codepoint=0x20
    ),
    max_size=40,
).map(lambda s: s.strip())

# bodies may contain CRLF, blank lines, and colons — everything the
# head parser treats as structure
_bodies = st.text(
    alphabet=st.characters(codec="utf-8", exclude_categories=("Cs", "Cc")),
    max_size=200,
) | st.sampled_from(["", "\r\n", "\r\n\r\n", "a: b\r\n\r\nc", ": "])

_paths = st.text(alphabet=string.ascii_lowercase + "/", max_size=20)

_reasons = st.text(
    alphabet=string.ascii_letters + " ", max_size=30
).map(lambda s: " ".join(s.split()))  # collapse runs; strip edges


def _header_maps(draw_names=_header_names, draw_values=_header_values):
    # unique per *lowercased* name: duplicate field lines merge, which
    # is correct HTTP but would make equality assertions ambiguous
    return st.dictionaries(
        draw_names, draw_values, max_size=5
    ).map(
        lambda d: {
            k: v
            for i, (k, v) in enumerate(d.items())
            if k.lower() not in [n.lower() for n in list(d)[:i]]
        }
    )


class TestRequestRoundTrip:
    @settings(max_examples=200)
    @given(path=_paths, body=_bodies, headers=_header_maps())
    def test_request_survives_wire(self, path, body, headers):
        req = HttpRequest("POST", path, body, headers)
        back = HttpRequest.from_wire(req.to_wire())
        assert back.method == req.method
        assert back.path == req.path
        assert back.body == body
        for name, value in headers.items():
            assert back.headers[name] == value

    @settings(max_examples=100)
    @given(name=_header_names, value=_header_values, body=_bodies)
    def test_header_lookup_ignores_case_after_roundtrip(self, name, value, body):
        req = HttpRequest("POST", "/svc", body, {name: value})
        back = HttpRequest.from_wire(req.to_wire())
        assert back.headers[name.lower()] == value
        assert back.headers[name.upper()] == value
        assert name.swapcase() in back.headers

    @settings(max_examples=100)
    @given(body=_bodies)
    def test_content_length_always_accurate(self, body):
        # the wire is bytes (E16): the declared length must be the
        # UTF-8 *byte* length of the body, never the character count
        wire = HttpRequest("POST", "/svc", body).to_wire()
        back = HttpRequest.from_wire(wire)
        assert int(back.headers["content-length"]) == len(body.encode("utf-8"))

    @settings(max_examples=100)
    @given(body=st.binary(max_size=200))
    def test_binary_bodies_pass_through_untouched(self, body):
        # raw bytes bodies (attachment wires) are never decoded or
        # escaped — byte parity end to end
        req = HttpRequest(
            "POST", "/svc", body, {"Content-Type": "application/octet-stream"}
        )
        back = HttpRequest.from_wire(req.to_wire())
        assert back.body == body


class TestResponseRoundTrip:
    @settings(max_examples=200)
    @given(
        status=st.integers(min_value=100, max_value=599),
        body=_bodies,
        headers=_header_maps(),
    )
    def test_response_survives_wire(self, status, body, headers):
        resp = HttpResponse(status, body, headers)
        back = HttpResponse.from_wire(resp.to_wire())
        assert back.status == status
        assert back.body == body
        for name, value in headers.items():
            assert back.headers[name] == value

    @settings(max_examples=100)
    @given(status=st.integers(min_value=100, max_value=599), reason=_reasons)
    def test_multi_word_reason_survives(self, status, reason):
        # "Service Unavailable", "Not Found": the status line is split
        # on spaces, so the reason phrase must be reassembled
        resp = HttpResponse(status, "", {})
        resp.reason = reason
        back = HttpResponse.from_wire(resp.to_wire())
        assert back.status == status
        assert back.reason == reason

    @settings(max_examples=50)
    @given(body=_bodies)
    def test_empty_and_delimiter_bodies(self, body):
        back = HttpResponse.from_wire(HttpResponse(200, body).to_wire())
        assert back.body == body
