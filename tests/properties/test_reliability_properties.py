"""Property-based tests for the reliability layer's wire-level claims:
MessageID uniqueness, ack correlation through real XML round-trips, and
backoff-schedule invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reliability import (
    RetryPolicy,
    ack_relates_to,
    ack_requested,
    build_ack,
    is_ack,
    mark_ack_requested,
)
from repro.soap.envelope import SoapEnvelope
from repro.soap.rpc import build_rpc_request
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import (
    MessageAddressingProperties,
    message_id_of,
    new_message_id,
    relates_to_of,
)

_ids = st.text(
    alphabet=string.ascii_letters + string.digits + ":-._", min_size=1, max_size=40
)
_addresses = st.text(
    alphabet=string.ascii_letters + string.digits + ":/-._", min_size=1, max_size=40
)


class TestMessageIdUniqueness:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=200))
    def test_minted_ids_never_collide(self, n):
        ids = [new_message_id() for _ in range(n)]
        assert len(set(ids)) == n

    @settings(max_examples=50, deadline=None)
    @given(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10))
    def test_uniqueness_holds_across_prefixes(self, prefix):
        a = new_message_id(prefix=f"urn:{prefix}")
        b = new_message_id(prefix=f"urn:{prefix}")
        assert a != b
        assert a.startswith(f"urn:{prefix}-")

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_ids_survive_request_xml_round_trip(self, n):
        seen = set()
        target = EndpointReference("http://prov:80/services/Echo")
        for _ in range(n):
            envelope = build_rpc_request("urn:test", "echo", {"message": "x"})
            maps = MessageAddressingProperties.for_request(target, "echo")
            maps.apply_to(envelope, target=target)
            revived = SoapEnvelope.from_wire(envelope.to_wire())
            mid = message_id_of(revived)
            assert mid == maps.message_id
            assert mid not in seen
            seen.add(mid)


class TestAckRoundTrip:
    @settings(max_examples=100, deadline=None)
    @given(_ids, _addresses)
    def test_relates_to_survives_serialization(self, message_id, to):
        ack = build_ack(message_id, to)
        revived = SoapEnvelope.from_wire(ack.to_wire())
        assert is_ack(revived)
        assert ack_relates_to(revived) == message_id
        assert relates_to_of(revived) == message_id

    @settings(max_examples=100, deadline=None)
    @given(_ids, _addresses)
    def test_ack_addressing_preserved(self, message_id, to):
        revived = SoapEnvelope.from_wire(build_ack(message_id, to).to_wire())
        maps = MessageAddressingProperties.extract_from(revived)
        assert maps.to == to
        assert maps.relates_to == message_id

    @settings(max_examples=50, deadline=None)
    @given(_ids)
    def test_ack_requested_marker_survives_round_trip(self, message_id):
        envelope = build_rpc_request("urn:test", "note", {"text": "x"})
        maps = MessageAddressingProperties(
            to="p2ps://prov/Notes", action="urn:test#note", message_id=message_id
        )
        maps.apply_to(envelope)
        mark_ack_requested(envelope)
        revived = SoapEnvelope.from_wire(envelope.to_wire())
        assert ack_requested(revived)
        assert message_id_of(revived) == message_id
        # requests are not acks, and marking twice stays a single header
        assert not is_ack(revived)
        before = envelope.to_wire()
        mark_ack_requested(envelope)
        assert envelope.to_wire() == before


class TestBackoffProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10),
        st.floats(min_value=0.001, max_value=1.0),
        st.floats(min_value=1.0, max_value=4.0),
        st.floats(min_value=0.0, max_value=0.5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_delays_bounded_and_deterministic(
        self, attempts, base, multiplier, jitter, seed
    ):
        policy = RetryPolicy(
            max_attempts=attempts, base_delay=base, multiplier=multiplier,
            max_delay=2.0, jitter=jitter, seed=seed,
        )
        schedule = policy.schedule()
        assert len(schedule) == attempts - 1
        for delay in schedule:
            assert 0.0 <= delay <= 2.0 * (1.0 + jitter)
        policy.reset()
        assert policy.schedule() == schedule
