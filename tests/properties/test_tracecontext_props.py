"""Property-based tests: the trace-context codec vs its reference.

E8 discipline applied to the E17 header: the fast codec
(:func:`encode`/:func:`decode`) must agree byte-for-byte with the
frozen strict reference (:func:`reference_encode`/
:func:`reference_decode`) on every valid context, and the two must
agree on *rejection* for arbitrary malformed text — the fast path
returns ``None`` exactly when the reference raises.
"""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.observability.tracecontext import (
    FLAG_SAMPLED,
    TraceContext,
    TraceContextError,
    decode,
    encode,
    reference_decode,
    reference_encode,
)

_hex = string.hexdigits.lower()[:16]

_trace_ids = st.text(alphabet=_hex, min_size=32, max_size=32).filter(
    lambda s: s != "0" * 32
)
_span_ids = st.text(alphabet=_hex, min_size=16, max_size=16).filter(
    lambda s: s != "0" * 16
)
_flags = st.one_of(
    st.just(FLAG_SAMPLED),
    st.text(alphabet=_hex, min_size=2, max_size=2),
)

_contexts = st.builds(TraceContext, _trace_ids, _span_ids, _flags)


class TestValidContexts:
    @given(_contexts)
    @settings(max_examples=200)
    def test_fast_and_reference_encode_byte_identical(self, ctx):
        assert encode(ctx) == reference_encode(ctx)

    @given(_contexts)
    @settings(max_examples=200)
    def test_inject_extract_round_trips_both_codecs(self, ctx):
        wire = encode(ctx)
        fast = decode(wire)
        ref = reference_decode(wire)
        assert fast == ctx
        assert ref == ctx
        assert (fast.trace_id, fast.span_id, fast.flags) == (
            ref.trace_id, ref.span_id, ref.flags)
        # re-encoding the decoded context reproduces the wire bytes
        assert encode(fast) == wire
        assert reference_encode(ref) == wire

    @given(_contexts)
    @settings(max_examples=100)
    def test_child_round_trips_too(self, ctx):
        # the wire carries (trace_id, span_id, flags); the parent link
        # is implicit — the receiver's own span id IS the wire span id
        child = ctx.child()
        wire = encode(child)
        fast, ref = decode(wire), reference_decode(wire)
        assert fast == ref
        for got in (fast, ref):
            assert got.trace_id == child.trace_id
            assert got.span_id == child.span_id
            assert got.flags == child.flags


class TestMalformedAgreement:
    @given(st.text(max_size=80))
    @settings(max_examples=300)
    def test_fast_none_iff_reference_raises(self, text):
        fast = decode(text)
        try:
            ref = reference_decode(text)
        except TraceContextError:
            assert fast is None, (
                f"fast codec accepted {text!r} the reference rejects")
        else:
            assert fast == ref, (
                f"codecs decoded {text!r} differently: {fast} vs {ref}")

    @given(_contexts, st.integers(min_value=0, max_value=54),
           st.sampled_from("xg -Z."))
    @settings(max_examples=200)
    def test_single_character_corruption_agrees(self, ctx, pos, char):
        wire = encode(ctx)
        corrupted = wire[:pos] + char + wire[pos + 1:]
        fast = decode(corrupted)
        try:
            ref = reference_decode(corrupted)
        except TraceContextError:
            assert fast is None
        else:
            assert fast == ref
