"""Shared fixtures: traced worlds on both bindings.

The canonical setup is one :class:`SpanTracer` (with a *private*
metrics registry, so tests never couple through the process-wide
default) attached to consumer AND provider peers — the multi-peer
stitching the tentpole is about.
"""

import pytest

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.observability import MetricsRegistry, SpanTracer
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network, TraceLog
from repro.uddi import UddiRegistryNode


class Echo:
    def echo(self, message: str) -> str:
        return message


@pytest.fixture
def tracer():
    return SpanTracer(metrics=MetricsRegistry())


@pytest.fixture
def net():
    return Network(latency=FixedLatency(0.002))


@pytest.fixture
def registry_node(net):
    return UddiRegistryNode(net.add_node("registry"))


@pytest.fixture
def http_world(net, registry_node, tracer):
    """(consumer, provider, handle) on the standard binding, traced."""
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry_node.endpoint))
    provider.deploy(Echo(), name="Echo")
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry_node.endpoint))
    consumer.enable_observability(tracer=tracer)
    provider.enable_observability(tracer=tracer)
    return consumer, provider, provider.local_handle("Echo")


@pytest.fixture
def p2ps_world(net, tracer):
    """(consumer, provider, handle) on the p2ps binding, traced."""
    group = PeerGroup("g")
    provider = WSPeer(net.add_node("pprov"), P2psBinding(group), name="pprov")
    provider.deploy(Echo(), name="Echo")
    provider.publish("Echo")
    consumer = WSPeer(net.add_node("pcons"), P2psBinding(group), name="pcons")
    consumer.enable_observability(tracer=tracer)
    provider.enable_observability(tracer=tracer)
    net.run()  # let adverts settle
    return consumer, provider, consumer.locate_one("Echo")


def build_replicated_http_world(net, registry_node, tracer, n_providers=3):
    """N providers of one logical service + a traced consumer; returns
    (providers, consumer, merged_handle)."""
    providers = []
    for i in range(n_providers):
        peer = WSPeer(
            net.add_node(f"prov{i}"), StandardBinding(registry_node.endpoint)
        )
        peer.deploy(Echo(), name="Echo")
        peer.enable_observability(tracer=tracer)
        providers.append(peer)
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry_node.endpoint))
    consumer.enable_observability(tracer=tracer)
    locals_ = [p.local_handle("Echo") for p in providers]
    endpoints = [epr for h in locals_ for epr in h.endpoints]
    handle = ServiceHandle("Echo", locals_[0].wsdl, endpoints, source="merged")
    return providers, consumer, handle
