"""The SLO engine (E17): multi-window burn rates from tree events."""

import json

from repro.core.events import ClientMessageEvent
from repro.observability import MetricsRegistry
from repro.observability.slo import (
    CRITICAL,
    OK,
    WARN,
    ServiceSlo,
    SloEngine,
    SloPolicy,
)


def _engine(**policy_kw):
    return SloEngine(policy=SloPolicy(**policy_kw),
                     metrics=MetricsRegistry())


def _send(engine, mid, t, service="Svc"):
    engine.observe(ClientMessageEvent(
        "request-sent", t, "cons",
        {"service": service, "message_id": mid, "operation": "op"}))


def _ok(engine, mid, t, service="Svc"):
    engine.observe(ClientMessageEvent(
        "response-received", t, "cons",
        {"service": service, "message_id": mid, "operation": "op"}))


def _fail(engine, mid, t, service="Svc", kind="invoke-failed"):
    engine.observe(ClientMessageEvent(
        kind, t, "cons",
        {"service": service, "message_id": mid, "reason": "boom"}))


class TestBurnArithmetic:
    def test_all_good_burns_nothing(self):
        slo = ServiceSlo("Svc", SloPolicy())
        for i in range(100):
            slo.record(float(i) * 0.1, True)
        assert slo.burn_rates(10.0) == (0.0, 0.0)
        assert slo.health(10.0)[0] == OK

    def test_burn_is_error_fraction_over_budget(self):
        policy = SloPolicy(availability_target=0.9)  # budget 0.1
        slo = ServiceSlo("Svc", policy)
        for i in range(10):
            slo.record(1.0 + i * 0.01, i == 0)  # 9 bad of 10
        short, long_ = slo.burn_rates(2.0)
        assert abs(short - 9.0) < 1e-9  # 0.9 error / 0.1 budget
        assert abs(long_ - 9.0) < 1e-9

    def test_windows_disagreeing_stays_quiet(self):
        # a long-ago incident: long window hot, short window calm
        policy = SloPolicy(availability_target=0.9, short_window=10.0,
                           long_window=1000.0, fast_burn=2.0, slow_burn=1.0)
        slo = ServiceSlo("Svc", policy)
        for i in range(50):
            slo.record(float(i), False)  # old failures
        for i in range(50, 60):
            slo.record(float(i), True)   # recent calm
        status, short, long_ = slo.health(60.0)
        assert short < policy.slow_burn <= long_
        assert status == OK

    def test_both_windows_hot_is_critical(self):
        policy = SloPolicy(availability_target=0.9, fast_burn=2.0)
        slo = ServiceSlo("Svc", policy)
        for i in range(20):
            slo.record(float(i), False)
        assert slo.health(20.0)[0] == CRITICAL


class TestEventIntake:
    def test_success_samples_are_good(self):
        engine = _engine()
        _send(engine, "m1", 1.0)
        _ok(engine, "m1", 1.1)
        report = engine.report(2.0)
        assert report["Svc"]["good"] == 1 and report["Svc"]["bad"] == 0

    def test_latency_violation_counts_against_slo(self):
        engine = _engine(latency_threshold=0.5)
        _send(engine, "m1", 1.0)
        _ok(engine, "m1", 2.0)  # 1.0s > 0.5s threshold
        report = engine.report(3.0)
        assert report["Svc"]["bad"] == 1  # slow success burns budget
        assert report["Svc"]["good"] == 0
        assert report["Svc"]["latency_violations"] == 1

    def test_provisional_failure_settles_after_grace(self):
        engine = _engine(settle_after=5.0)
        _send(engine, "m1", 1.0)
        _fail(engine, "m1", 1.5)
        assert engine.report(2.0)["Svc"]["bad"] == 0  # still provisional
        assert engine.report(10.0)["Svc"]["bad"] == 1  # settled

    def test_failover_recovery_cancels_provisional(self):
        engine = _engine(settle_after=5.0)
        _send(engine, "m1", 1.0)
        _fail(engine, "m1", 1.5)       # attempt 1 died
        _send(engine, "m1", 1.6)       # hop re-sends same MessageID
        _ok(engine, "m1", 1.8)         # another endpoint answered
        report = engine.report(10.0)
        assert report["Svc"]["bad"] == 0
        assert report["Svc"]["good"] == 1

    def test_exhausted_failover_is_immediately_bad(self):
        engine = _engine()
        _send(engine, "m1", 1.0)
        _fail(engine, "m1", 2.0, kind="failover-exhausted")
        assert engine.report(2.0)["Svc"]["bad"] == 1

    def test_status_transitions_are_recorded(self):
        engine = _engine(availability_target=0.9, fast_burn=2.0)
        for i in range(10):
            _send(engine, f"m{i}", 1.0 + i * 0.01)
            _fail(engine, f"m{i}", 1.5 + i * 0.01, kind="failover-exhausted")
        report = engine.report(2.0)
        assert report["Svc"]["status"] == CRITICAL
        assert report["Svc"]["transitions"][0]["from"] == OK
        assert report["Svc"]["transitions"][0]["to"] == CRITICAL

    def test_gauges_published(self):
        registry = MetricsRegistry()
        engine = SloEngine(policy=SloPolicy(), metrics=registry)
        _send(engine, "m1", 1.0)
        _ok(engine, "m1", 1.1)
        engine.report(2.0)
        snap = registry.snapshot()
        assert snap["gauges"]["slo.Svc.healthy"] == 1.0
        assert "slo.Svc.burn_short" in snap["gauges"]

    def test_status_json_shape(self):
        engine = _engine()
        _send(engine, "m1", 1.0)
        _ok(engine, "m1", 1.1)
        payload = json.loads(engine.status_json(2.0))
        assert payload["schema"] == "repro.slo/1"
        assert payload["services"]["Svc"]["status"] == OK


class TestLiveWorld:
    def test_engine_on_a_real_failover_world(self, net, registry_node, tracer):
        from tests.observability.conftest import build_replicated_http_world

        providers, consumer, handle = build_replicated_http_world(
            net, registry_node, tracer)
        engine = SloEngine(metrics=MetricsRegistry()).install(consumer)
        executor = consumer.enable_failover()
        for i in range(5):
            executor.invoke(handle, "echo", {"message": str(i)}, timeout=1.0)
        providers[0].node.go_down()
        executor.invoke(handle, "echo", {"message": "hop"}, timeout=1.0)
        report = engine.report(net.now + 60.0)
        assert report["Echo"]["good"] == 6
        assert report["Echo"]["bad"] == 0  # failover saved every call
