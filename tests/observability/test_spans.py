"""SpanTracer: message-correlated trees over the event tree.

Covers the correlation edge cases the layer exists for: retransmits
and failover hops folding into one logical span, bare oneways with no
RelatesTo, dedup replays, admission-rejected requests, and ring-buffer
eviction under retransmission storms.
"""

import json

import pytest

from repro.core.events import ClientMessageEvent
from repro.observability.spans import ERROR, IN_FLIGHT, OK, SENT, MAX_CHILDREN, Span, SpanTracer
from repro.observability import MetricsRegistry
from repro.reliability import ReliabilityPolicy, RetryPolicy
from repro.soap.faults import ServerBusyFault


def retry_policy(attempts=4):
    return ReliabilityPolicy(
        retry=RetryPolicy(max_attempts=attempts, base_delay=0.0, jitter=0.0)
    )


def only_root(tracer):
    mids = tracer.message_ids
    assert len(mids) == 1
    return tracer.trace(mids[0])


class TestHttpStitching:
    def test_clean_call_is_root_attempt_server(self, http_world, tracer):
        consumer, provider, handle = http_world
        assert consumer.invoke(handle, "echo", {"message": "hi"}) == "hi"
        root = only_root(tracer)
        assert root.status == OK
        assert root.name == "Echo.echo"
        assert root.tags["client"] == "cons"
        assert root.duration is not None and root.duration > 0
        kinds = {c.kind for c in root.children}
        assert kinds == {"attempt", "server"}
        attempt = next(c for c in root.children if c.kind == "attempt")
        assert attempt.status == OK
        assert attempt.tags["attempt"] == 1
        assert "prov" in attempt.tags["endpoint"]
        server = next(c for c in root.children if c.kind == "server")
        assert server.status == OK
        assert server.tags["peer"] == "prov"
        # the server span nests inside the attempt's window
        assert attempt.start <= server.start <= server.end <= attempt.end

    def test_latency_histogram_fed_from_root_duration(self, http_world, tracer):
        consumer, _, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        hist = tracer.metrics.histogram("invocation.latency")
        assert hist.count == 1
        assert hist.min > 0

    def test_trace_dict_and_jsonl_round_trip(self, http_world, tracer, tmp_path):
        consumer, _, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        mid = tracer.message_ids[0]
        as_dict = tracer.trace_dict(mid)
        assert as_dict["tags"]["message_id"] == mid
        assert len(as_dict["children"]) == 2
        path = tmp_path / "spans.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        line = json.loads(path.read_text().splitlines()[0])
        assert line["message_id"] == mid
        assert line["status"] == OK

    def test_render_shows_tree_connectors(self, http_world, tracer):
        consumer, _, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        text = tracer.render(tracer.message_ids[0])
        assert "Echo.echo" in text
        assert "├─ " in text or "└─ " in text
        assert tracer.render("urn:uuid:nope").startswith("(no trace for")


class TestRetransmits:
    def test_lost_request_yields_attempt_children_one_root(
        self, http_world, tracer, net
    ):
        consumer, provider, handle = http_world
        dropped = {"n": 0}

        def drop_first_request(frame):
            if frame.port.startswith("http:") and dropped["n"] == 0:
                dropped["n"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first_request)
        assert (
            consumer.invoke(handle, "echo", {"message": "again"},
                            timeout=0.5, policy=retry_policy())
            == "again"
        )
        root = only_root(tracer)  # the retry reused the MessageID
        assert root.status == OK
        attempts = [c for c in root.children if c.kind == "attempt"]
        assert len(attempts) == 2
        assert attempts[0].status == ERROR  # superseded by the retransmit
        assert attempts[1].status == OK
        assert attempts[1].tags["attempt"] == 2

    def test_duplicate_response_after_dedup_tagged_on_tree(
        self, http_world, tracer, net
    ):
        """Response lost -> same MessageID retransmitted -> the provider
        replays from the dedup store; the tree shows the replay instead
        of a phantom second invocation."""
        consumer, provider, handle = http_world
        state = {"dropped": 0}

        def drop_first_response(frame):
            if frame.port.startswith("http-conn:") and state["dropped"] == 0:
                state["dropped"] += 1
                return False
            return True

        net.add_delivery_hook(drop_first_response)
        assert (
            consumer.invoke(handle, "echo", {"message": "once"},
                            timeout=0.5, policy=retry_policy())
            == "once"
        )
        root = only_root(tracer)
        assert root.status == OK
        duplicates = [c for c in root.children if c.tags.get("duplicate")]
        assert duplicates, "dedup replay did not surface in the trace"
        servers = [c for c in root.children if c.kind == "server"]
        # the first (real) execution plus the replay marker — never two
        # plain executions
        assert len([s for s in servers if not s.tags.get("duplicate")]) == 1


class TestFailover:
    def test_failover_hops_stitch_into_one_tree(self, net, registry_node, tracer):
        from tests.observability.conftest import build_replicated_http_world

        providers, consumer, handle = build_replicated_http_world(
            net, registry_node, tracer
        )
        ex = consumer.enable_failover()
        ex.invoke(handle, "echo", {"message": "warm"}, timeout=1.0)
        providers[0].node.go_down()
        before = set(tracer.message_ids)
        assert (
            ex.invoke(handle, "echo", {"message": "rerouted"}, timeout=1.0)
            == "rerouted"
        )
        new = [m for m in tracer.message_ids if m not in before]
        assert len(new) == 1, "failover minted extra MessageIDs"
        root = tracer.trace(new[0])
        assert root.status == OK
        assert "error" not in root.tags  # provisional failure was reopened
        attempts = [c for c in root.children if c.kind == "attempt"]
        assert len(attempts) >= 2
        endpoints = {a.tags.get("endpoint") for a in attempts}
        assert len(endpoints) >= 2, "attempts did not change endpoint"
        assert any(kind == "failover" for _, kind, _ in root.annotations)

    def test_all_endpoints_dead_closes_root_error(self, net, registry_node, tracer):
        from tests.observability.conftest import build_replicated_http_world

        providers, consumer, handle = build_replicated_http_world(
            net, registry_node, tracer, n_providers=2
        )
        from repro.supervision import FailoverConfig

        ex = consumer.enable_failover(FailoverConfig(rounds=1, round_backoff=0.0))
        for p in providers:
            p.node.go_down()
        with pytest.raises(Exception):
            ex.invoke(handle, "echo", {"message": "void"}, timeout=0.3)
        root = tracer.trace(tracer.message_ids[-1])
        assert root.status == ERROR
        assert root.end is not None
        assert root.tags.get("error")


class TestOneway:
    def test_bare_oneway_closes_as_sent_no_relates_to(self, p2ps_world, tracer, net):
        consumer, provider, handle = p2ps_world
        before = len(tracer)
        assert consumer.invoke_oneway(handle, "echo", {"message": "quiet"}) is None
        net.run()
        assert len(tracer) == before + 1
        root = tracer.trace(tracer.message_ids[-1])
        assert root.status == SENT
        assert root.end == root.start  # complete at send time
        (attempt,) = [c for c in root.children if c.kind == "attempt"]
        assert attempt.status == SENT

    def test_acked_oneway_closes_ok_and_feeds_ack_latency(
        self, p2ps_world, tracer, net
    ):
        consumer, provider, handle = p2ps_world
        status = consumer.invoke_oneway(
            handle, "echo", {"message": "sure"}, policy=ReliabilityPolicy.assured()
        )
        net.run()
        assert status.acked
        root = tracer.trace(status.message_id)
        assert root is not None
        assert root.status == OK
        assert tracer.metrics.histogram("oneway.ack_latency").count == 1


class TestAdmissionRejected:
    def test_shed_request_appears_as_busy_server_child(self, http_world, tracer):
        consumer, provider, handle = http_world
        provider.set_admission_control(capacity=1.0, drain_rate=0.01)
        consumer.invoke(handle, "echo", {"message": "a"}, timeout=1.0)
        consumer.invoke(handle, "echo", {"message": "b"}, timeout=1.0)
        before = set(tracer.message_ids)
        with pytest.raises(ServerBusyFault):
            consumer.invoke(handle, "echo", {"message": "c"}, timeout=1.0)
        new = [m for m in tracer.message_ids if m not in before]
        assert len(new) == 1
        root = tracer.trace(new[0])
        assert root.end is not None  # shed calls never stay open
        busy = [c for c in root.children
                if c.kind == "server" and c.status == "busy"]
        assert busy, "no busy server child recorded for the shed request"
        assert busy[0].tags.get("retry_after") is not None
        assert any(kind == "request-shed" for _, kind, _ in root.annotations)


class TestRingBuffer:
    def test_eviction_under_load_keeps_newest(self, net, registry_node):
        from repro.core import WSPeer
        from repro.core.binding import StandardBinding
        from tests.observability.conftest import Echo

        provider = WSPeer(net.add_node("prov"), StandardBinding(registry_node.endpoint))
        provider.deploy(Echo(), name="Echo")
        handle = provider.local_handle("Echo")
        consumer = WSPeer(net.add_node("cons"), StandardBinding(registry_node.endpoint))
        small = SpanTracer(max_spans=4, metrics=MetricsRegistry())
        small.install(consumer)
        for i in range(10):
            consumer.invoke(handle, "echo", {"message": str(i)})
        assert len(small) == 4
        assert small.evicted == 6
        assert small.metrics.get("tracing.spans_evicted") == 6
        # survivors are the newest, all complete
        for _, span in small.traces():
            assert span.status == OK

    def test_retransmission_storm_respects_children_cap(self):
        """Synthetic storm: one MessageID retransmitted far past the cap
        must tally drops instead of growing the tree without bound."""
        tracer = SpanTracer(metrics=MetricsRegistry())
        mid = "urn:uuid:storm"
        tracer.observe(ClientMessageEvent(
            "request-sent", 0.0, "invocation",
            {"message_id": mid, "service": "Echo", "operation": "echo",
             "endpoint": "http://prov:80/Echo"},
        ))
        for i in range(2, MAX_CHILDREN + 50):
            tracer.observe(ClientMessageEvent(
                "retransmit", 0.001 * i, "invocation",
                {"message_id": mid, "attempt": i},
            ))
        root = only_root(tracer)
        assert len(root.children) == MAX_CHILDREN
        assert root.tags["children_dropped"] == 49
        assert len(tracer) == 1  # still one logical span

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            SpanTracer(max_spans=0)


class TestUncorrelatedAndUnknown:
    def test_unknown_kind_with_message_id_is_tallied_and_annotated(self):
        tracer = SpanTracer(metrics=MetricsRegistry())
        mid = "urn:uuid:odd"
        tracer.observe(ClientMessageEvent(
            "request-sent", 0.0, "invocation",
            {"message_id": mid, "service": "S", "operation": "op"},
        ))
        tracer.observe(ClientMessageEvent(
            "mystery-kind", 0.1, "invocation", {"message_id": mid},
        ))
        assert tracer.unknown_kinds == {"mystery-kind": 1}
        root = tracer.trace(mid)
        assert any(kind == "mystery-kind" for _, kind, _ in root.annotations)

    def test_no_message_id_lands_in_uncorrelated(self, http_world, tracer):
        consumer, provider, handle = http_world
        baseline = len(tracer.uncorrelated)
        consumer.locate("Echo", timeout=0.5)  # discovery traffic has no mid
        assert len(tracer.uncorrelated) > baseline
        assert len(tracer) == 0  # and opened no span


class TestSimnetSink:
    def test_frames_annotate_open_attempts_even_with_tracelog_disabled(
        self, net, registry_node, tracer
    ):
        from repro.core import WSPeer
        from repro.core.binding import StandardBinding
        from tests.observability.conftest import Echo

        assert net.trace.enabled is False  # retention off by default...
        net.trace.sink = tracer.simnet_sink()  # ...but the sink still sees all
        provider = WSPeer(net.add_node("prov"), StandardBinding(registry_node.endpoint))
        provider.deploy(Echo(), name="Echo")
        consumer = WSPeer(net.add_node("cons"), StandardBinding(registry_node.endpoint))
        tracer.install(consumer, provider)
        consumer.invoke(provider.local_handle("Echo"), "echo", {"message": "x"})
        assert len(net.trace.records) == 0  # nothing retained
        root = tracer.trace(tracer.message_ids[0])
        attempt = next(c for c in root.children if c.kind == "attempt")
        frame_kinds = {kind for _, kind, _ in attempt.annotations}
        assert any(kind.startswith("frame-") for kind in frame_kinds)
        assert tracer.metrics.get("simnet.delivered") > 0


class TestUninstall:
    def test_uninstall_stops_observation(self, http_world, tracer):
        consumer, provider, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        seen = tracer.events_seen
        tracer.uninstall()
        consumer.invoke(handle, "echo", {"message": "y"})
        assert tracer.events_seen == seen
        assert len(tracer) == 1


class TestSpanPrimitive:
    def test_annotation_cap(self):
        span = Span("s", "test", 0.0)
        from repro.observability.spans import MAX_ANNOTATIONS

        for i in range(MAX_ANNOTATIONS + 5):
            span.annotate(float(i), "k", {})
        assert len(span.annotations) == MAX_ANNOTATIONS
        assert span.tags["annotations_dropped"] == 5

    def test_duration_open_is_none(self):
        span = Span("s", "test", 1.0)
        assert span.duration is None
        assert span.status == IN_FLIGHT
        span.close(3.5, OK)
        assert span.duration == 2.5
