"""stats: the one pure-python quantile implementation.

The repo-wide contract: swapping numpy for these helpers changes no
reported number, and :mod:`repro.observability` itself never imports
numpy (constrained-peer deployability).
"""

import numpy as np
import pytest

from repro.observability import stats
from repro.simnet import trace as simnet_trace

SAMPLE_SETS = [
    [1.0],
    [1.0, 2.0],
    [3.0, 1.0, 2.0],
    [0.005, 0.007, 0.004, 0.120, 0.006, 0.005, 0.009],
    list(range(100)),
    [x * 0.37 for x in range(17)],
]


class TestNumpyParity:
    @pytest.mark.parametrize("samples", SAMPLE_SETS)
    @pytest.mark.parametrize("q", [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0])
    def test_quantile_matches_numpy_percentile(self, samples, q):
        ours = stats.quantile(samples, q)
        theirs = float(np.percentile(np.asarray(samples, dtype=float), q * 100))
        assert ours == pytest.approx(theirs, rel=1e-12, abs=1e-12)

    @pytest.mark.parametrize("samples", SAMPLE_SETS)
    def test_summarize_matches_numpy(self, samples):
        summary = stats.summarize(samples)
        arr = np.asarray(samples, dtype=float)
        assert summary["n"] == arr.size
        assert summary["mean"] == pytest.approx(float(arr.mean()))
        assert summary["median"] == pytest.approx(float(np.median(arr)))
        assert summary["p95"] == pytest.approx(float(np.percentile(arr, 95)))
        assert summary["min"] == float(arr.min())
        assert summary["max"] == float(arr.max())


class TestEdges:
    def test_empty_summary_is_none(self):
        assert stats.summarize([]) is None

    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError):
            stats.quantile([], 0.5)

    def test_out_of_range_quantile_raises(self):
        with pytest.raises(ValueError):
            stats.quantile([1.0], 1.5)

    def test_percentile_is_quantile_over_100(self):
        assert stats.percentile([1, 2, 3, 4], 50) == stats.quantile([1, 2, 3, 4], 0.5)

    def test_unsorted_input_handled(self):
        assert stats.quantile([9.0, 1.0, 5.0], 0.5) == 5.0


class TestSimnetDelegation:
    def test_simnet_summarize_delegates_here(self):
        samples = [0.004, 0.009, 0.005, 0.030]
        assert simnet_trace.summarize(samples) == stats.summarize(samples)

    def test_simnet_summarize_empty_still_none(self):
        assert simnet_trace.summarize([]) is None

    def test_observability_package_never_imports_numpy(self):
        import pathlib
        import re

        import repro.observability as obs

        importer = re.compile(r"^\s*(import|from)\s+numpy", re.MULTILINE)
        pkg_dir = pathlib.Path(obs.__file__).parent
        for path in pkg_dir.glob("*.py"):
            assert not importer.search(path.read_text()), (
                f"{path.name} imports numpy"
            )
