"""Cluster metric aggregation (E17): digests, merging, gossip, scrape."""

import json

import pytest

from repro.observability import MetricsRegistry
from repro.observability.cluster import (
    ClusterMetricsAgent,
    ClusterMetricsStore,
    digest_registry,
    merge_digests,
)


def _registry(counters=(), observations=()):
    registry = MetricsRegistry()
    for name, value in counters:
        registry.inc(name, value)
    for name, value in observations:
        registry.observe(name, value)
    return registry


class TestDigestAndMerge:
    def test_digest_is_json_safe_and_mergeable(self):
        registry = _registry(counters=[("calls", 3)],
                             observations=[("latency", 0.02)])
        digest = digest_registry(registry, "node-a", 1, now=5.0)
        json.dumps(digest)
        assert digest["origin"] == "node-a" and digest["seq"] == 1
        assert digest["counters"]["calls"] == 3
        hist = digest["histograms"]["latency"]
        assert hist["count"] == 1 and sum(hist["counts"]) == 1

    def test_counters_sum_across_origins(self):
        d1 = digest_registry(_registry(counters=[("calls", 3)]), "a", 1)
        d2 = digest_registry(_registry(counters=[("calls", 4), ("errs", 1)]),
                             "b", 1)
        merged = merge_digests([d1, d2])
        assert merged["counters"]["calls"] == 7
        assert merged["counters"]["errs"] == 1
        assert merged["origins"] == ["a", "b"]

    def test_histograms_bucket_merge_exactly(self):
        r1 = _registry(observations=[("lat", 0.001), ("lat", 0.3)])
        r2 = _registry(observations=[("lat", 0.002), ("lat", 9.0)])
        merged = merge_digests([
            digest_registry(r1, "a", 1), digest_registry(r2, "b", 1)])
        hist = merged["histograms"]["lat"]
        assert hist["count"] == 4
        assert abs(hist["sum"] - 9.303) < 1e-9
        assert hist["min"] == 0.001 and hist["max"] == 9.0
        assert hist["p50"] is not None

    def test_mismatched_bounds_are_counted_not_averaged(self):
        r1 = MetricsRegistry()
        r1.histogram("lat", bounds=[0.1, 1.0]).observe(0.05)
        r2 = MetricsRegistry()
        r2.histogram("lat", bounds=[0.5, 5.0]).observe(0.05)
        merged = merge_digests([
            digest_registry(r1, "a", 1), digest_registry(r2, "b", 1)])
        assert merged["histograms_skipped"] == 1
        assert merged["histograms"]["lat"]["count"] == 1  # first wins

    def test_gauges_stay_per_origin(self):
        r1 = MetricsRegistry()
        r1.set_gauge("depth", 4.0)
        r2 = MetricsRegistry()
        r2.set_gauge("depth", 7.0)
        merged = merge_digests([
            digest_registry(r1, "a", 1), digest_registry(r2, "b", 1)])
        assert merged["gauges"]["depth"] == {"a": 4.0, "b": 7.0}


class TestStore:
    def test_accepts_monotonic_rejects_stale(self):
        store = ClusterMetricsStore()
        assert store.accept({"origin": "a", "seq": 2, "counters": {}})
        assert not store.accept({"origin": "a", "seq": 1, "counters": {}})
        assert not store.accept({"origin": "a", "seq": 2, "counters": {}})
        assert store.accept({"origin": "a", "seq": 3, "counters": {}})
        assert store.stale == 2 and len(store) == 1

    def test_malformed_counted(self):
        store = ClusterMetricsStore()
        assert not store.accept({"seq": 1})
        assert not store.accept({"origin": "a", "seq": "x"})
        assert store.malformed == 2


@pytest.fixture
def gossip_triangle(net):
    """Three linked gossip nodes with per-node registries + agents."""
    from repro.discovery.gossip import GossipNode

    agents, gossips = [], []
    for name in ("ga", "gb", "gc"):
        node = net.add_node(name)
        gossip = GossipNode(node, fanout=2, hops=3)
        registry = MetricsRegistry()
        agent = ClusterMetricsAgent(
            registry=registry, gossip=gossip, origin=name,
            clock=lambda: net.now)
        gossips.append(gossip)
        agents.append(agent)
    for g in gossips:
        g.link(*[other.node.id for other in gossips if other is not g])
    return agents, gossips


class TestGossipPath:
    def test_digest_spreads_epidemically(self, net, gossip_triangle):
        agents, _ = gossip_triangle
        agents[0].registry.inc("calls", 5)
        agents[0].publish()
        net.run()
        for agent in agents:
            assert "ga" in agent.store.origins()
            held = [d for d in agent.store.digests() if d["origin"] == "ga"]
            assert held[0]["counters"]["calls"] == 5

    def test_stale_digest_does_not_regress(self, net, gossip_triangle):
        agents, gossips = gossip_triangle
        agents[0].registry.inc("calls", 5)
        agents[0].publish()
        net.run()
        # replay an old digest straight at b: seq 1 <= held seq 1
        import json as _json
        old = digest_registry(MetricsRegistry(), "ga", 1)
        from repro.discovery.gossip import MetricDigest
        gossips[1]._accept_digest(MetricDigest("ga", 1, _json.dumps(old)))
        held = [d for d in agents[1].store.digests() if d["origin"] == "ga"]
        assert held[0]["counters"]["calls"] == 5

    def test_cluster_snapshot_merges_all_origins(self, net, gossip_triangle):
        agents, _ = gossip_triangle
        for i, agent in enumerate(agents):
            agent.registry.inc("calls", i + 1)
            agent.publish()
        net.run()
        merged = agents[0].cluster_snapshot()
        assert merged["counters"]["calls"] == 6  # 1 + 2 + 3
        assert merged["nodes"] == ["ga", "gb", "gc"]

    def test_periodic_publish_on_kernel(self, net, gossip_triangle):
        agents, _ = gossip_triangle
        agents[0].registry.inc("calls", 1)
        agents[0].start(net.kernel, interval=1.0)
        net.run(until=net.now + 3.5)
        assert "ga" in agents[1].store.origins()
        agents[0].stop()


class TestScrapeAndIntrospection:
    def test_scrape_pulls_a_digest(self, http_world):
        consumer, provider, handle = http_world
        provider_agent = provider.enable_cluster_metrics(
            registry=MetricsRegistry())
        provider_agent.registry.inc("calls", 9)
        provider.host_introspection()
        intro = provider.local_handle("Introspection")

        consumer_agent = consumer.enable_cluster_metrics(
            registry=MetricsRegistry())
        assert consumer_agent.scrape(intro)
        held = [d for d in consumer_agent.store.digests()
                if d["origin"] == "prov"]
        assert held[0]["counters"]["calls"] == 9
        merged = consumer_agent.cluster_snapshot()
        assert merged["counters"]["calls"] == 9
        assert set(merged["nodes"]) == {"prov", "cons"}

    def test_get_cluster_metrics_over_the_wire(self, http_world):
        consumer, provider, handle = http_world
        agent = provider.enable_cluster_metrics(registry=MetricsRegistry())
        agent.registry.inc("calls", 2)
        provider.host_introspection()
        provider.publish("Introspection")
        intro = consumer.locate_one("Introspection")
        payload = json.loads(consumer.invoke(intro, "GetClusterMetrics"))
        assert payload["counters"]["calls"] == 2
        assert "prov" in payload["nodes"]

    def test_ops_report_missing_facilities_with_error_shape(self, http_world):
        consumer, provider, handle = http_world
        provider.host_introspection()
        provider.publish("Introspection")
        intro = consumer.locate_one("Introspection")
        for op, code in (("GetClusterMetrics", "no-cluster-agent"),
                         ("GetFlightRecord", "no-flight-recorder"),
                         ("GetSloStatus", "no-slo-engine")):
            payload = json.loads(consumer.invoke(intro, op))
            assert payload["error"]["code"] == code
            assert payload["error"]["message"]

    def test_facilities_enabled_after_hosting_still_serve(self, http_world):
        consumer, provider, handle = http_world
        provider.host_introspection()
        provider.publish("Introspection")
        provider.enable_flight_recorder()
        provider.enable_slo()
        intro = consumer.locate_one("Introspection")
        flight = json.loads(consumer.invoke(intro, "GetFlightRecord"))
        assert flight["schema"] == "repro.flight/1"
        slo = json.loads(consumer.invoke(intro, "GetSloStatus"))
        assert slo["schema"] == "repro.slo/1"
