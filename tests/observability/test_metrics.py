"""MetricsRegistry: instrument semantics, collectors, exporters."""

import pytest

from repro.observability import metrics as m
from repro.observability.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_and_add(self):
        g = Gauge("depth")
        g.set(3.0)
        g.add(-1.0)
        assert g.value == 2.0

    def test_histogram_exact_aggregates(self):
        h = Histogram("lat")
        for v in (0.004, 0.009, 0.030, 0.009):
            h.observe(v)
        assert h.count == 4
        assert h.total == pytest.approx(0.052)
        assert h.mean == pytest.approx(0.013)
        assert h.min == 0.004
        assert h.max == 0.030

    def test_histogram_quantile_within_bucket_width(self):
        h = Histogram("lat")
        samples = [0.001 * i for i in range(1, 101)]  # 1ms .. 100ms
        for v in samples:
            h.observe(v)
        for q, exact in ((0.5, 0.0505), (0.95, 0.0955), (0.99, 0.0995)):
            est = h.quantile(q)
            # estimate must land within one bucket width of the truth
            width = max(
                b - a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
                if a <= exact <= b
            )
            assert abs(est - exact) <= width

    def test_histogram_quantile_clamped_to_observed_range(self):
        h = Histogram("lat")
        h.observe(0.003)
        h.observe(0.004)
        assert h.min <= h.quantile(0.0) <= h.quantile(1.0) <= h.max

    def test_histogram_overflow_bucket(self):
        h = Histogram("lat", bounds=[0.01])
        h.observe(5.0)  # beyond every bound
        assert h.count == 1
        assert h.quantile(0.99) == pytest.approx(5.0)

    def test_empty_histogram_quantile_is_none(self):
        h = Histogram("lat")
        assert h.quantile(0.5) is None
        assert h.mean is None
        snap = h.snapshot()
        assert snap["count"] == 0 and snap["p95"] is None

    def test_bad_quantile_raises(self):
        h = Histogram("lat")
        h.observe(0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_empty_bounds_falls_back_to_defaults(self):
        assert Histogram("lat", bounds=[]).bounds == DEFAULT_BUCKETS


class TestRegistry:
    def test_create_on_use_and_get(self):
        reg = MetricsRegistry()
        reg.inc("a.b")
        reg.inc("a.b", 2)
        assert reg.get("a.b") == 3
        assert reg.get("never.touched") == 0

    def test_same_instrument_returned(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_disabled_registry_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("a")
        reg.observe("h", 1.0)
        reg.set_gauge("g", 9.0)
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["gauges"] == {}
        assert snap["histograms"] == {}

    def test_collector_appears_in_snapshot(self):
        reg = MetricsRegistry()
        reg.add_collector("ext", lambda: {"hits": 7})
        assert reg.snapshot()["ext"] == {"hits": 7}
        reg.remove_collector("ext")
        assert "ext" not in reg.snapshot()

    def test_collector_error_is_captured_not_raised(self):
        reg = MetricsRegistry()

        def boom():
            raise RuntimeError("source down")

        reg.add_collector("ext", boom)
        snap = reg.snapshot()
        assert snap["ext"] == {"error": "RuntimeError: source down"}

    def test_reset_drops_instruments_keeps_collectors(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.add_collector("ext", lambda: {"k": 1})
        reg.reset()
        assert reg.get("a") == 0
        assert reg.snapshot()["ext"] == {"k": 1}

    def test_render_text_one_line_per_instrument(self):
        reg = MetricsRegistry()
        reg.inc("client.requests", 3)
        reg.set_gauge("queue.depth", 2)
        reg.observe("client.latency", 0.012)
        reg.add_collector("caches", lambda: {"templates": 5})
        text = reg.render_text()
        lines = text.splitlines()
        assert lines[0] == "# metrics snapshot"
        assert "counter client.requests 3" in lines
        assert "gauge queue.depth 2" in lines
        assert any(
            line.startswith("histogram client.latency count=1") for line in lines
        )
        assert "caches templates 5" in lines


class TestDefaultRegistry:
    @pytest.fixture(autouse=True)
    def _clean(self):
        m.reset_default_registry()
        m.set_metrics_enabled(True)
        yield
        m.reset_default_registry()
        m.set_metrics_enabled(True)

    def test_module_shortcuts_hit_default(self):
        m.inc("t.c", 2)
        m.observe("t.h", 0.5)
        m.set_gauge("t.g", 4.0)
        reg = m.default_registry()
        assert reg.get("t.c") == 2
        assert reg.histogram("t.h").count == 1
        assert reg.gauge("t.g").value == 4.0

    def test_set_metrics_enabled_gates_shortcuts(self):
        m.set_metrics_enabled(False)
        m.inc("t.c")
        m.observe("t.h", 1.0)
        assert m.default_registry().get("t.c") == 0
        assert m.default_registry().histogram("t.h").count == 0

    def test_default_registry_folds_cache_stats(self):
        snap = m.default_registry().snapshot()
        assert "caches" in snap
        assert isinstance(snap["caches"], dict)
        assert "error" not in snap["caches"]
