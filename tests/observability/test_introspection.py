"""The dogfooded IntrospectionService, invoked over both bindings.

GetMetrics / GetTrace / ListServices must be reachable through the
ordinary deploy → locate → invoke machinery — hosting the tracer's
data over the traced stack is the point.
"""

import json

import pytest

from repro.observability import (
    INTROSPECTION_NS,
    IntrospectionService,
    MetricsRegistry,
    SpanTracer,
)
from repro.observability.introspection import OPERATIONS


class TestDirect:
    """The live object, before any wire involvement."""

    def test_get_metrics_renders_registry(self):
        reg = MetricsRegistry()
        reg.inc("a.b", 3)
        service = IntrospectionService(metrics=reg)
        assert "counter a.b 3" in service.GetMetrics()

    def test_get_trace_without_tracer_reports_error(self):
        service = IntrospectionService()
        payload = json.loads(service.GetTrace("urn:uuid:x"))
        assert payload["error"]["code"] == "no-tracer"
        assert payload["error"]["message"]
        assert payload["message_id"] == "urn:uuid:x"

    def test_get_trace_unknown_mid_reports_error(self):
        tracer = SpanTracer(metrics=MetricsRegistry())
        service = IntrospectionService(tracer=tracer)
        payload = json.loads(service.GetTrace("urn:uuid:gone"))
        assert payload["error"]["code"] == "trace-not-found"
        assert payload["error"]["message"]
        assert payload["message_id"] == "urn:uuid:gone"

    def test_list_services_without_peer_is_empty(self):
        assert json.loads(IntrospectionService().ListServices()) == {"services": []}


class TestOverHttp:
    def test_round_trip_all_operations(self, http_world, tracer):
        consumer, provider, handle = http_world
        consumer.invoke(handle, "echo", {"message": "traced"})
        traced_mid = tracer.message_ids[-1]

        deployed = provider.host_introspection(tracer=tracer)
        assert deployed.namespace == INTROSPECTION_NS
        provider.publish("Introspection")
        intro = consumer.locate_one("Introspection")

        listing = json.loads(consumer.invoke(intro, "ListServices"))
        assert listing["peer"] == "prov"
        assert "Echo" in listing["services"]
        assert "Introspection" in listing["services"]

        metrics_text = consumer.invoke(intro, "GetMetrics")
        assert metrics_text.startswith("# metrics snapshot")
        assert "counter events.request-sent" in metrics_text

        tree = json.loads(
            consumer.invoke(intro, "GetTrace", {"message_id": traced_mid})
        )
        assert tree["message_id"] == traced_mid
        assert tree["status"] == "ok"
        kinds = {c["kind"] for c in tree["children"]}
        assert kinds == {"attempt", "server"}

    def test_fetching_a_trace_is_itself_traced(self, http_world, tracer):
        """The introspection call travels the instrumented stack, so it
        appears in the very store it queries."""
        consumer, provider, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        provider.host_introspection(tracer=tracer)
        provider.publish("Introspection")
        intro = consumer.locate_one("Introspection")
        before = len(tracer)
        consumer.invoke(intro, "GetMetrics")
        assert len(tracer) == before + 1
        root = tracer.trace(tracer.message_ids[-1])
        assert root.name == "Introspection.GetMetrics"
        assert root.status == "ok"


class TestOverP2ps:
    def test_round_trip_all_operations(self, p2ps_world, tracer, net):
        consumer, provider, handle = p2ps_world
        consumer.invoke(handle, "echo", {"message": "traced"})
        traced_mid = tracer.message_ids[-1]

        provider.host_introspection(tracer=tracer)
        provider.publish("Introspection")
        net.run()  # let the pipe adverts settle
        intro = consumer.locate_one("Introspection")

        listing = json.loads(consumer.invoke(intro, "ListServices"))
        assert listing["peer"] == "pprov"
        assert set(listing["services"]) == {"Echo", "Introspection"}

        assert consumer.invoke(intro, "GetMetrics").startswith("# metrics snapshot")

        tree = json.loads(
            consumer.invoke(intro, "GetTrace", {"message_id": traced_mid})
        )
        assert tree["message_id"] == traced_mid
        assert tree["status"] == "ok"

    def test_only_declared_operations_exposed(self, p2ps_world, tracer, net):
        consumer, provider, handle = p2ps_world
        deployed = provider.host_introspection(tracer=tracer)
        assert sorted(deployed.service.operation_names) == sorted(OPERATIONS)
        provider.publish("Introspection")
        net.run()
        intro = consumer.locate_one("Introspection")
        from repro.core import InvocationError

        # underscored helpers get no operation pipe at all
        with pytest.raises(InvocationError, match="no p2ps pipe"):
            consumer.invoke(intro, "_registry")
