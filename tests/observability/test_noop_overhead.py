"""The no-op recorder path must cost nothing on the codec fast path.

Two independent proofs:

1. A recorder whose ``codec_event`` raises (but whose ``active`` flag
   is False) sails through a full invocation — the guard branch is
   provably never taken.
2. ``tracemalloc`` over the warm template-render loop shows zero
   allocations attributed to the observability package — the guard is
   one attribute check, and no detail dict is ever built.
"""

import tracemalloc

import pytest

from repro.caching import clear_all_caches
from repro.observability.recorder import (
    NULL_RECORDER,
    NullRecorder,
    current_recorder,
    set_recorder,
)
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageAddressingProperties, request_templates


class ExplodingRecorder:
    """Inactive, but detonates if any guard is skipped."""

    active = False

    def codec_event(self, kind, detail=None):  # pragma: no cover - must not run
        raise AssertionError(f"codec_event({kind!r}) called on an inactive recorder")


@pytest.fixture(autouse=True)
def _restore_recorder():
    previous = set_recorder(NULL_RECORDER)
    clear_all_caches()
    yield
    set_recorder(previous)
    clear_all_caches()


def render_once(i=0):
    target = EndpointReference("http://node-1:8080/svc/Echo")
    maps = MessageAddressingProperties.for_request(target, "echo")
    return request_templates.render(
        maps, "urn:echo", "echo", {"message": f"v{i}"}, target
    )


class TestGuardBranch:
    def test_null_recorder_is_the_default_and_inactive(self):
        recorder = current_recorder()
        assert isinstance(recorder, NullRecorder)
        assert recorder.active is False
        recorder.codec_event("anything")  # no-op by contract

    def test_inactive_recorder_never_receives_codec_events(self):
        set_recorder(ExplodingRecorder())
        # build (miss) + hit: every guard site on the render path
        assert render_once(0) is not None
        assert render_once(1) is not None

    def test_inactive_recorder_survives_full_invocation(self, http_world):
        consumer, provider, handle = http_world
        set_recorder(ExplodingRecorder())
        assert consumer.invoke(handle, "echo", {"message": "hi"}) == "hi"

    def test_set_recorder_returns_previous(self):
        sentinel = ExplodingRecorder()
        assert set_recorder(sentinel) is NULL_RECORDER
        assert current_recorder() is sentinel
        assert set_recorder(NULL_RECORDER) is sentinel


class TestZeroAllocations:
    def test_warm_template_hit_allocates_nothing_in_observability(self):
        import repro.observability as obs

        pkg_dir = obs.__path__[0]
        render_once()  # warm: template built and cached
        for i in range(3):
            render_once(i)  # stabilize interned strings etc.

        tracemalloc.start(10)
        try:
            before = tracemalloc.take_snapshot()
            for i in range(50):
                render_once(i)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        observability_allocs = [
            stat
            for stat in after.compare_to(before, "traceback")
            if stat.size_diff > 0
            and any(pkg_dir in frame.filename for frame in stat.traceback)
        ]
        assert not observability_allocs, (
            "no-op recorder path allocated in observability code:\n"
            + "\n".join(
                f"{stat.size_diff}B {stat.traceback.format()[-1].strip()}"
                for stat in observability_allocs
            )
        )
