"""Every event kind the tree fires must be documented in the registry.

A subsystem inventing an undocumented ``kind`` string is a silent hole
in every trace; these tests replay representative scenarios through a
recording listener and fail on the first unregistered kind — the CI
tripwire :mod:`repro.observability.kinds` promises.
"""

import pytest

from repro.core.events import (
    ClientMessageEvent,
    DeploymentMessageEvent,
    DiscoveryMessageEvent,
    PublishMessageEvent,
    RecordingListener,
    ServerMessageEvent,
)
from repro.observability.kinds import (
    FAMILIES,
    KIND_REGISTRY,
    KNOWN_KINDS,
    family_of,
    is_known,
)
from repro.reliability import ReliabilityPolicy, RetryPolicy

#: event dataclass -> registry family name
FAMILY_OF_EVENT = {
    ClientMessageEvent: "client",
    ServerMessageEvent: "server",
    DiscoveryMessageEvent: "discovery",
    PublishMessageEvent: "publish",
    DeploymentMessageEvent: "deployment",
}


def assert_all_documented(listener):
    undocumented = sorted(
        {e.kind for e in listener.events}
        - KNOWN_KINDS
        - {e.kind for e in listener.events if e.kind.startswith("circuit-")}
    )
    assert not undocumented, (
        f"event kinds fired but missing from KIND_REGISTRY: {undocumented}"
    )
    for event in listener.events:
        if event.kind.startswith("circuit-"):
            continue
        expected = FAMILY_OF_EVENT[type(event)]
        assert family_of(event.kind) == expected, (
            f"{event.kind!r} registered under {family_of(event.kind)!r} "
            f"but fired as a {expected} event"
        )


class TestRegistryShape:
    def test_families_are_closed_set(self):
        assert set(family for family, _ in KIND_REGISTRY.values()) <= set(FAMILIES)

    def test_every_entry_has_a_meaning(self):
        for kind, (family, meaning) in KIND_REGISTRY.items():
            assert meaning.strip(), f"{kind} has no documented meaning"

    def test_helpers(self):
        assert is_known("request-sent")
        assert not is_known("made-up")
        assert family_of("request-sent") == "client"
        assert family_of("made-up") == "unknown"


class TestLiveScenarios:
    def test_http_lifecycle_fires_only_documented_kinds(
        self, net, registry_node
    ):
        from repro.core import WSPeer
        from repro.core.binding import StandardBinding
        from tests.observability.conftest import Echo

        recorder = RecordingListener()
        provider = WSPeer(
            net.add_node("prov"), StandardBinding(registry_node.endpoint),
            listener=recorder,
        )
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        consumer = WSPeer(
            net.add_node("cons"), StandardBinding(registry_node.endpoint),
            listener=recorder,
        )
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", {"message": "hi"})
        # a failing call (dead provider) exercises the error kinds
        provider.node.go_down()
        from repro.transport import TransportTimeoutError

        with pytest.raises(TransportTimeoutError):
            consumer.invoke(
                handle, "echo", {"message": "x"}, timeout=0.2,
                policy=ReliabilityPolicy(
                    retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0)
                ),
            )
        provider.node.go_up()
        provider.undeploy("Echo")
        assert recorder.of_kind("request-sent")
        assert recorder.of_kind("retransmit")
        assert recorder.of_kind("invoke-failed")
        assert recorder.of_kind("undeployed")
        assert_all_documented(recorder)

    def test_p2ps_lifecycle_fires_only_documented_kinds(self, net):
        from repro.core import WSPeer
        from repro.core.binding import P2psBinding
        from repro.p2ps import PeerGroup
        from tests.observability.conftest import Echo

        recorder = RecordingListener()
        group = PeerGroup("g")
        provider = WSPeer(
            net.add_node("prov"), P2psBinding(group), name="prov",
            listener=recorder,
        )
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        consumer = WSPeer(
            net.add_node("cons"), P2psBinding(group), name="cons",
            listener=recorder,
        )
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", {"message": "hi"})
        consumer.invoke_oneway(handle, "echo", {"message": "bare"})
        status = consumer.invoke_oneway(
            handle, "echo", {"message": "sure"},
            policy=ReliabilityPolicy.assured(),
        )
        net.run()
        assert status.acked
        assert recorder.of_kind("pipes-opened")
        assert recorder.of_kind("oneway-sent")
        assert recorder.of_kind("oneway-acked")
        assert recorder.of_kind("ack-sent")
        assert_all_documented(recorder)

    def test_supervision_scenario_fires_only_documented_kinds(
        self, net, registry_node
    ):
        from tests.supervision.conftest import build_replicated_world

        providers, consumer, handle, _ = build_replicated_world(net, registry_node)
        recorder = RecordingListener()
        consumer.add_listener(recorder)
        for p in providers:
            p.add_listener(recorder)
        ex = consumer.enable_failover()
        ex.invoke(handle, "echo", {"message": "warm"}, timeout=1.0)
        providers[0].node.go_down()
        ex.invoke(handle, "echo", {"message": "hop"}, timeout=1.0)
        assert recorder.of_kind("failover")
        assert_all_documented(recorder)


class TestStaticSweep:
    """AST scan: every kind fired anywhere under src/ is registered.

    The live scenarios above only cover paths they exercise; this sweep
    reads every ``fire_*(...)`` call's literal first argument (and the
    crash harness's action->kind map) so a new emission site cannot
    slip an undocumented kind past CI.  Dynamic kinds are allowed only
    for the breaker's ``circuit-{state}`` family, whose concrete forms
    are registered individually.
    """

    def _fired_kinds(self):
        import ast
        import pathlib

        import repro

        src = pathlib.Path(repro.__file__).parent
        literal, dynamic = set(), []
        fire_names = {
            "fire_client", "fire_server", "fire_discovery",
            "fire_publish", "fire_deployment",
        }
        for path in sorted(src.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                name = getattr(func, "attr", None) or getattr(func, "id", None)
                if name not in fire_names:
                    continue
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    literal.add(first.value)
                else:
                    dynamic.append((str(path), ast.unparse(first)))
        return literal, dynamic

    def test_every_statically_fired_kind_is_registered(self):
        literal, _ = self._fired_kinds()
        assert literal, "the sweep found no fire_* call sites at all"
        undocumented = sorted(literal - KNOWN_KINDS)
        assert not undocumented, (
            f"kinds fired in src/ but missing from KIND_REGISTRY: {undocumented}"
        )

    def test_dynamic_kinds_are_only_the_breaker_family(self):
        _, dynamic = self._fired_kinds()
        for path, expr in dynamic:
            assert "circuit-" in expr, (
                f"{path} fires a dynamic kind {expr!r}; register its "
                f"concrete forms or make it a literal"
            )

    def test_harness_kind_map_is_registered(self):
        from repro.simnet.crash import KIND_BY_ACTION

        for action, kind in KIND_BY_ACTION.items():
            assert kind in KNOWN_KINDS, f"{action} -> {kind} unregistered"
            assert family_of(kind) == "harness"
