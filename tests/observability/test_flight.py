"""The flight recorder (E17): bounded ring, trigger-frozen dumps."""

import json

from repro.core.events import ClientMessageEvent, ServerMessageEvent
from repro.observability import MetricsRegistry
from repro.observability.flight import (
    DUMP_TRIGGERS,
    FLIGHT_SCHEMA,
    FlightRecorder,
)


def _event(kind, time=1.0, **detail):
    return ClientMessageEvent(kind, time, "test", detail)


class TestRing:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=8, metrics=MetricsRegistry())
        for i in range(20):
            recorder.observe(_event("request-sent", time=float(i), n=i))
        assert len(recorder) == 8
        assert recorder.events_seen == 20
        snapshot = recorder.snapshot()
        assert [e["n"] for e in snapshot["events"]] == list(range(12, 20))

    def test_detail_is_summarised_to_primitives(self):
        recorder = FlightRecorder(metrics=MetricsRegistry())
        recorder.observe(_event(
            "request-received", service="Svc", count=3, ratio=0.5,
            flag=True, nothing=None, envelope=object(), items=[1, 2],
        ))
        record = recorder.snapshot()["events"][0]
        assert record["service"] == "Svc"
        assert record["count"] == 3 and record["flag"] is True
        assert "envelope" not in record and "items" not in record
        json.dumps(record)  # always JSON-safe

    def test_peer_tag(self):
        recorder = FlightRecorder(metrics=MetricsRegistry())
        recorder.observe(_event("request-sent"), peer="cons")
        assert recorder.snapshot()["events"][0]["peer"] == "cons"


class TestDumps:
    def test_trigger_kinds_freeze_a_dump(self):
        recorder = FlightRecorder(metrics=MetricsRegistry())
        recorder.observe(_event("request-sent", time=1.0))
        for kind in sorted(DUMP_TRIGGERS):
            recorder.observe(ServerMessageEvent(kind, 2.0, "test", {}))
        assert len(recorder.dumps) == len(DUMP_TRIGGERS)
        first = recorder.dumps[0]
        assert first["schema"] == FLIGHT_SCHEMA
        assert first["reason"] in DUMP_TRIGGERS
        assert any(e["kind"] == "request-sent" for e in first["events"])

    def test_dump_survives_ring_rollover(self):
        recorder = FlightRecorder(capacity=4, metrics=MetricsRegistry())
        recorder.observe(_event("request-sent", time=1.0, mark="early"))
        recorder.observe(_event("circuit-open", time=2.0))
        for i in range(10):
            recorder.observe(_event("request-sent", time=3.0 + i))
        dump = recorder.latest_dump()
        assert any(e.get("mark") == "early" for e in dump["events"])
        assert not any(e.get("mark") == "early"
                       for e in recorder.snapshot()["events"])

    def test_dump_store_is_bounded(self):
        recorder = FlightRecorder(metrics=MetricsRegistry(), max_dumps=2)
        for _ in range(5):
            recorder.observe(_event("circuit-open"))
        assert len(recorder.dumps) == 2
        assert recorder.dumps_dropped == 3

    def test_to_json_prefers_latest_dump(self):
        recorder = FlightRecorder(metrics=MetricsRegistry())
        payload = json.loads(recorder.to_json())
        assert payload["reason"] == "snapshot"
        recorder.observe(_event("state-diverged"))
        payload = json.loads(recorder.to_json())
        assert payload["reason"] == "state-diverged"
        assert payload["dumps"] == 1


class TestHarnessIntegration:
    def test_crash_harness_kill_produces_a_dump(self):
        from repro.simnet import FixedLatency, Network
        from repro.simnet.crash import CrashHarness

        net = Network(latency=FixedLatency(0.001))
        net.add_node("victim")
        harness = CrashHarness(net)
        recorder = FlightRecorder(metrics=MetricsRegistry())
        recorder.attach_harness(harness)

        harness.kill("victim")
        dump = recorder.latest_dump()
        assert dump is not None and dump["reason"] == "node-killed"
        assert dump["events"][-1]["kind"] == "node-killed"
        assert dump["events"][-1]["node"] == "victim"

    def test_harness_events_carry_registered_kinds(self):
        from repro.observability.kinds import KNOWN_KINDS, family_of
        from repro.simnet.crash import KIND_BY_ACTION

        for action, kind in KIND_BY_ACTION.items():
            assert kind in KNOWN_KINDS, f"{action} -> {kind} unregistered"
            assert family_of(kind) == "harness"

    def test_live_peer_events_reach_the_ring(self, http_world):
        consumer, provider, handle = http_world
        recorder = FlightRecorder(metrics=MetricsRegistry())
        recorder.install(consumer, provider)
        consumer.invoke(handle, "echo", {"message": "x"})
        kinds = {e["kind"] for e in recorder.snapshot()["events"]}
        assert {"request-sent", "request-received",
                "response-sent", "response-received"} <= kinds
