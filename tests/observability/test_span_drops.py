"""Ring-truncation accounting (E17 satellite): drops are counted.

The per-span children/annotation caps have always silently capped; a
storm that evicts data must now leave an audit trail — tracer-level
``spans_dropped`` / ``annotations_dropped`` counters, the exported
``tracing.*`` metrics, and the per-span ``*_dropped`` tags.
"""

import json

from repro.core.events import ClientMessageEvent
from repro.observability import MetricsRegistry, SpanTracer
from repro.observability.spans import (
    MAX_ANNOTATIONS,
    MAX_CHILDREN,
    SPAN_SCHEMA,
)

MID = "urn:uuid:storm"


def _tracer():
    return SpanTracer(metrics=MetricsRegistry())


def _event(kind, t, **detail):
    detail.setdefault("message_id", MID)
    detail.setdefault("service", "Svc")
    detail.setdefault("operation", "op")
    return ClientMessageEvent(kind, t, "cons", detail)


class TestDropAccounting:
    def test_child_cap_counts_spans_dropped(self):
        tracer = _tracer()
        n = MAX_CHILDREN + 12
        for i in range(n):
            tracer.observe(_event("request-sent", float(i)), peer="cons")
        root = tracer.trace(MID)
        assert len(root.children) == MAX_CHILDREN
        assert tracer.spans_dropped == 12
        assert tracer.metrics.get("tracing.spans_dropped") == 12
        assert root.tags["children_dropped"] == 12

    def test_annotation_cap_counts_annotations_dropped(self):
        tracer = _tracer()
        tracer.observe(_event("request-sent", 0.0), peer="cons")
        # circuit-* has no dedicated branch, so each event annotates
        # the root — the storm that exhausts the annotation cap
        n = MAX_ANNOTATIONS + 7
        for i in range(n):
            tracer.observe(_event("circuit-open", 1.0 + i, failures=i),
                           peer="cons")
        root = tracer.trace(MID)
        assert len(root.annotations) == MAX_ANNOTATIONS
        assert tracer.annotations_dropped == 7
        assert tracer.metrics.get("tracing.annotations_dropped") == 7
        assert root.tags["annotations_dropped"] == 7

    def test_quiet_trace_drops_nothing(self, http_world, tracer):
        consumer, _, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        assert tracer.spans_dropped == 0
        assert tracer.annotations_dropped == 0
        assert tracer.metrics.get("tracing.spans_dropped") == 0


class TestJsonlSchema:
    def test_records_carry_schema_and_timestamp(self, http_world, tracer,
                                                tmp_path):
        consumer, _, handle = http_world
        consumer.invoke(handle, "echo", {"message": "x"})
        path = tmp_path / "spans.jsonl"
        tracer.export_jsonl(str(path))
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert record["schema"] == SPAN_SCHEMA
            assert isinstance(record["ts"], float)
            assert record["ts"] == record["start"]

    def test_export_parse_round_trip(self, http_world, tracer, tmp_path):
        consumer, _, handle = http_world
        consumer.invoke(handle, "echo", {"message": "one"})
        consumer.invoke(handle, "echo", {"message": "two"})
        path = tmp_path / "spans.jsonl"
        written = tracer.export_jsonl(str(path))
        records = [json.loads(line)
                   for line in path.read_text().splitlines()]
        assert len(records) == written == 2
        # parsed records reconstruct the store's view
        for record in records:
            original = tracer.trace_dict(record["message_id"])
            assert record["status"] == original["status"]
            assert record["tags"] == original["tags"]
            assert len(record["children"]) == len(original["children"])
        # oldest-first ordering survives the round trip
        assert records[0]["ts"] <= records[1]["ts"]
