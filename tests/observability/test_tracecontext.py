"""Wire trace-context propagation (E17).

The codec is exercised directly (encode/decode, malformed handling,
ambient windows) and end-to-end: a traced invocation must carry the
``repro:TraceContext`` header on the wire, the server must continue —
not restart — the caller's trace, and failover hops plus replication
delta ships must stay inside the one trace the client started.
"""

import pytest

from repro.observability import MetricsRegistry, SpanTracer
from repro.observability.tracecontext import (
    TRACE_HEADER,
    TraceContext,
    TraceContextError,
    activate,
    begin_send,
    current_context,
    decode,
    encode,
    extract,
    header_element,
    new_span_id,
    new_trace_id,
    propagation_enabled,
    reference_decode,
    reference_encode,
    reset,
    set_propagation,
)
from repro.soap import SoapEnvelope


class TestCodec:
    def test_round_trip(self):
        ctx = TraceContext.new_root()
        decoded = decode(encode(ctx))
        assert decoded == ctx
        assert decoded.trace_id == ctx.trace_id
        assert decoded.span_id == ctx.span_id

    def test_child_shares_trace_and_links_parent(self):
        parent = TraceContext.new_root()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    @pytest.mark.parametrize("bad", [
        "", "00", "garbage",
        "00-" + "0" * 32 + "-" + "1" * 16 + "-01",   # all-zero trace id
        "00-" + "1" * 32 + "-" + "0" * 16 + "-01",   # all-zero span id
        "99-" + "1" * 32 + "-" + "2" * 16 + "-01",   # unknown version
        "00-" + "g" * 32 + "-" + "2" * 16 + "-01",   # non-hex
        "00-" + "1" * 31 + "-" + "2" * 17 + "-01",   # wrong field widths
    ])
    def test_malformed_decodes_to_none(self, bad):
        assert decode(bad) is None
        with pytest.raises(TraceContextError):
            reference_decode(bad)

    def test_fast_and_reference_encode_agree(self):
        ctx = TraceContext(new_trace_id(), new_span_id(), "01")
        assert encode(ctx) == reference_encode(ctx)


class TestAmbient:
    def test_begin_send_is_none_when_disabled(self):
        reset()
        assert not propagation_enabled()
        assert begin_send() is None

    def test_begin_send_roots_then_children(self):
        set_propagation(True)
        root = begin_send()
        assert root is not None and root.parent_id is None
        with activate(root):
            child = begin_send()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_activate_none_is_a_noop_window(self):
        set_propagation(True)
        with activate(None):
            assert current_context() is None

    def test_extract_reads_the_header(self):
        ctx = TraceContext.new_root()
        envelope = SoapEnvelope()
        envelope.add_header(header_element(encode(ctx)))
        assert extract(envelope) == ctx

    def test_extract_none_without_header(self):
        assert extract(SoapEnvelope()) is None


class TestWirePropagation:
    def test_header_on_the_wire_and_continued_server_side(
        self, http_world, tracer, net
    ):
        consumer, provider, handle = http_world  # propagation on via enable_observability
        consumer.invoke(handle, "echo", {"message": "traced"})

        mid = tracer.message_ids[-1]
        root = tracer.trace(mid)
        trace_id = root.tags.get("trace_id")
        assert trace_id, "client root must be tagged with the wire trace id"

        # the server span continued (not restarted) the trace: its
        # parent is the client attempt's span id
        attempts = [c for c in root.children if c.kind == "attempt"]
        servers = [c for c in root.children if c.kind == "server"]
        assert attempts and servers
        assert servers[0].tags["parent_span_id"] == attempts[0].tags["span_id"]
        assert servers[0].tags["span_id"] != attempts[0].tags["span_id"]

    def test_disabled_propagation_sends_no_header(self, net, registry_node):
        from repro.core import WSPeer
        from repro.core.binding import StandardBinding
        from tests.observability.conftest import Echo

        reset()
        provider = WSPeer(
            net.add_node("prov"), StandardBinding(registry_node.endpoint))
        provider.deploy(Echo(), name="Echo")
        consumer = WSPeer(
            net.add_node("cons"), StandardBinding(registry_node.endpoint))
        tracer = SpanTracer(metrics=MetricsRegistry())
        tracer.install(consumer, provider)
        consumer.invoke(provider.local_handle("Echo"), "echo", {"message": "x"})
        root = tracer.trace(tracer.message_ids[-1])
        assert "trace_id" not in root.tags

    def test_failover_hops_stay_in_one_trace(self, net, registry_node, tracer):
        from tests.observability.conftest import build_replicated_http_world

        providers, consumer, handle = build_replicated_http_world(
            net, registry_node, tracer)
        executor = consumer.enable_failover()
        providers[0].node.go_down()
        executor.invoke(handle, "echo", {"message": "hop"}, timeout=1.0)

        traces = tracer.trace_ids()
        assert len(traces) == 1, "all hops must share the client's trace"
        stitched = tracer.distributed_trace(traces[0])
        assert stitched["invocations"] == 1
        # at least two endpoints attempted, one server answered
        root = tracer.trace(tracer.message_ids[-1])
        endpoints = {c.tags.get("endpoint") for c in root.children
                     if c.kind == "attempt"}
        assert len(endpoints) >= 2

    def test_distributed_trace_links_delta_ships(self, tracer):
        from tests.replication.conftest import CounterService, World

        world = World(CounterService)
        tracer.install(*world.providers)
        world.consumer.enable_observability(tracer=tracer)  # propagation on
        world.replicate(r=2)
        world.executor.invoke(world.handle, "increment", {"by": 1},
                              timeout=1.0)
        world.settle()

        # registry publishes / anti-entropy root their own traces; find
        # the increment call's
        call_roots = [root for _, root in tracer.traces()
                      if root.tags.get("operation") == "increment"
                      and root.tags.get("client") == "cons"]
        assert len(call_roots) == 1
        stitched = tracer.distributed_trace(call_roots[0].tags["trace_id"])
        # client call + one delta ship per replica, all in one tree
        assert stitched["invocations"] >= 3
        assert len(stitched["nodes"]) >= 3
        # the ships nest under the primary's server span, so only the
        # client's own invocation is a top-level root
        assert len(stitched["roots"]) == 1
        assert len(stitched["roots"][0]["calls"]) >= 2
