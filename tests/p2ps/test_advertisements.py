"""Tests for P2PS advertisements, queries and the cache."""

import pytest

from repro.p2ps import (
    AdvertCache,
    AdvertError,
    AdvertQuery,
    PeerAdvertisement,
    PipeAdvertisement,
    ServiceAdvertisement,
    parse_advertisement,
)


def sample_service():
    pipes = [
        PipeAdvertisement("pipe-1", "invoke", "peer-1", "input", "Echo"),
        PipeAdvertisement("pipe-2", "definition", "peer-1", "input", "Echo"),
    ]
    return ServiceAdvertisement(
        "Echo", "peer-1", pipes, definition_pipe="definition",
        attributes={"domain": "test", "version": "1"},
    )


class TestAdvertXml:
    def test_peer_roundtrip(self):
        advert = PeerAdvertisement("peer-1", "n1", "alice", rendezvous=True)
        back = parse_advertisement(advert.to_wire())
        assert back == advert

    def test_pipe_roundtrip(self):
        advert = PipeAdvertisement("pipe-9", "invoke", "peer-1", "input", "Echo")
        back = parse_advertisement(advert.to_wire())
        assert back == advert

    def test_service_roundtrip(self):
        advert = sample_service()
        back = parse_advertisement(advert.to_wire())
        assert back == advert
        assert back.definition_pipe == "definition"
        assert back.attributes == {"domain": "test", "version": "1"}
        assert len(back.pipes) == 2

    def test_service_pipe_named(self):
        advert = sample_service()
        assert advert.pipe_named("invoke").pipe_id == "pipe-1"
        assert advert.pipe_named("nope") is None

    def test_bare_pipe_no_service(self):
        advert = PipeAdvertisement("pipe-5", "reply", "peer-2")
        back = parse_advertisement(advert.to_wire())
        assert back.service_name == ""

    def test_keys(self):
        assert sample_service().key() == "service:peer-1:Echo"
        assert PeerAdvertisement("p", "n").key() == "peer:p"
        assert PipeAdvertisement("x", "n", "p").key() == "pipe:x"

    def test_validation(self):
        with pytest.raises(AdvertError):
            PeerAdvertisement("", "n")
        with pytest.raises(AdvertError):
            PipeAdvertisement("id", "n", "p", pipe_type="sideways")
        with pytest.raises(AdvertError):
            ServiceAdvertisement("", "p")

    def test_parse_rejects_foreign_xml(self):
        with pytest.raises(AdvertError):
            parse_advertisement("<NotAnAdvert/>")

    def test_parse_rejects_wrong_namespace(self):
        with pytest.raises(AdvertError):
            parse_advertisement('<PeerAdvertisement xmlns="urn:other"/>')


class TestQuery:
    def test_service_name_match(self):
        q = AdvertQuery("service", "Echo")
        assert q.matches(sample_service())
        assert not q.matches(PeerAdvertisement("peer-1", "n1"))

    def test_wildcard(self):
        assert AdvertQuery("service", "Ec%").matches(sample_service())
        assert not AdvertQuery("service", "Zz%").matches(sample_service())

    def test_attribute_match(self):
        assert AdvertQuery("service", "%", {"domain": "test"}).matches(sample_service())
        assert not AdvertQuery("service", "%", {"domain": "prod"}).matches(sample_service())

    def test_all_attributes_required(self):
        q = AdvertQuery("service", "%", {"domain": "test", "missing": "x"})
        assert not q.matches(sample_service())

    def test_pipe_query(self):
        pipe = PipeAdvertisement("pipe-1", "invoke", "peer-1")
        assert AdvertQuery("pipe", "invoke").matches(pipe)
        assert not AdvertQuery("pipe", "other").matches(pipe)

    def test_peer_query_matches_name_or_id(self):
        advert = PeerAdvertisement("peer-1", "n1", "alice")
        assert AdvertQuery("peer", "alice").matches(advert)
        anonymous = PeerAdvertisement("peer-2", "n2")
        assert AdvertQuery("peer", "peer-2").matches(anonymous)

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            AdvertQuery("galaxy")

    def test_xml_roundtrip(self):
        q = AdvertQuery("service", "Echo%", {"a": "1", "b": "2"})
        back = AdvertQuery.from_element(q.to_element())
        assert back.kind == "service"
        assert back.name_pattern == "Echo%"
        assert back.attributes == {"a": "1", "b": "2"}


class TestCache:
    def make(self, lifetime=10.0):
        clock = {"t": 0.0}
        cache = AdvertCache(lambda: clock["t"], lifetime)
        return cache, clock

    def test_put_get(self):
        cache, _ = self.make()
        advert = sample_service()
        cache.put(advert)
        assert cache.get(advert.key()) == advert
        assert advert.key() in cache

    def test_newest_wins(self):
        cache, _ = self.make()
        cache.put(PeerAdvertisement("p", "n1"))
        cache.put(PeerAdvertisement("p", "n2"))
        assert cache.get("peer:p").node_id == "n2"
        assert len(cache) == 1

    def test_expiry(self):
        cache, clock = self.make(lifetime=5.0)
        cache.put(sample_service())
        clock["t"] = 4.9
        assert len(cache) == 1
        clock["t"] = 5.1
        assert cache.get("service:peer-1:Echo") is None
        assert len(cache) == 0

    def test_match(self):
        cache, _ = self.make()
        cache.put(sample_service())
        cache.put(PeerAdvertisement("peer-1", "n1"))
        assert len(cache.match(AdvertQuery("service", "%"))) == 1
        assert len(cache.match(AdvertQuery("peer", "%"))) == 1

    def test_match_excludes_expired(self):
        cache, clock = self.make(lifetime=5.0)
        cache.put(sample_service())
        clock["t"] = 6.0
        assert cache.match(AdvertQuery("service", "%")) == []

    def test_remove(self):
        cache, _ = self.make()
        advert = sample_service()
        cache.put(advert)
        cache.remove(advert.key())
        assert advert.key() not in cache

    def test_purge_count(self):
        cache, clock = self.make(lifetime=1.0)
        cache.put(PeerAdvertisement("a", "n"))
        cache.put(PeerAdvertisement("b", "n"))
        clock["t"] = 2.0
        assert cache.purge() == 2
