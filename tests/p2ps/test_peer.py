"""Tests for peers, pipes, groups and rendezvous discovery on the simnet."""

import pytest

from repro.p2ps import (
    AdvertQuery,
    Peer,
    PeerGroup,
    PipeAdvertisement,
    ResolutionError,
    ServiceAdvertisement,
)
from repro.p2ps.group import link_rendezvous
from repro.simnet import FixedLatency, Network


def make_world(n_peers=3, rendezvous_indices=(), latency=0.002):
    net = Network(latency=FixedLatency(latency))
    group = PeerGroup("main")
    peers = []
    for i in range(n_peers):
        node = net.add_node(f"n{i}")
        peer = Peer(node, name=f"p{i}", rendezvous=(i in rendezvous_indices))
        peer.join(group)
        peers.append(peer)
    return net, group, peers


class TestPipes:
    def test_create_input_pipe(self):
        net, _, peers = make_world(1)
        pipe, advert = peers[0].create_input_pipe("invoke", "Echo")
        assert advert.peer_id == peers[0].id
        assert advert.service_name == "Echo"
        assert net.get_node("n0").has_port(f"pipe:{advert.pipe_id}")

    def test_pipe_send_receive(self):
        net, _, peers = make_world(2)
        got = []
        _, advert = peers[0].create_input_pipe(
            "invoke", listener=lambda payload, meta: got.append(payload)
        )
        peers[1].resolver.learn(peers[0].id, "n0")
        out = peers[1].open_output_pipe(advert)
        peers[1].send_down_pipe(out, "<hello/>")
        net.run()
        assert got == ["<hello/>"]
        assert out.sent == 1

    def test_receiver_learns_sender_location(self):
        # the origin metadata lets the provider resolve the consumer's
        # reply pipe without prior discovery
        net, _, peers = make_world(2)
        _, advert = peers[0].create_input_pipe("invoke")
        peers[1].resolver.learn(peers[0].id, "n0")
        out = peers[1].open_output_pipe(advert)
        peers[1].send_down_pipe(out, "x")
        net.run()
        assert peers[0].resolver.known(peers[1].id)

    def test_unresolvable_peer(self):
        net, _, peers = make_world(2)
        foreign = PipeAdvertisement("pipe-zz", "x", "peer-unknown-9999")
        with pytest.raises(ResolutionError):
            peers[0].open_output_pipe(foreign)

    def test_close_input_pipe(self):
        net, _, peers = make_world(1)
        pipe, advert = peers[0].create_input_pipe("invoke")
        peers[0].close_input_pipe(advert.pipe_id)
        assert pipe.closed
        assert not net.get_node("n0").has_port(f"pipe:{advert.pipe_id}")

    def test_multiple_listeners(self):
        net, _, peers = make_world(2)
        got_a, got_b = [], []
        pipe, advert = peers[0].create_input_pipe("invoke")
        pipe.add_listener(lambda p, m: got_a.append(p))
        pipe.add_listener(lambda p, m: got_b.append(p))
        peers[1].resolver.learn(peers[0].id, "n0")
        peers[1].send_down_pipe(peers[1].open_output_pipe(advert), "data")
        net.run()
        assert got_a == ["data"] and got_b == ["data"]


class TestPublishDiscover:
    def publish_echo(self, provider, attributes=None):
        provider.create_input_pipe("invoke", "Echo")
        provider.create_input_pipe("definition", "Echo")
        return provider.publish_service(
            "Echo", ["invoke", "definition"], definition_pipe="definition",
            attributes=attributes,
        )

    def test_publish_reaches_group(self):
        net, _, peers = make_world(3)
        advert = self.publish_echo(peers[0])
        net.run()
        assert peers[1].cache.get(advert.key()) is not None
        assert peers[2].cache.get(advert.key()) is not None

    def test_discover_from_local_cache(self):
        net, _, peers = make_world(2)
        self.publish_echo(peers[0])
        net.run()
        handle = peers[1].discover(AdvertQuery("service", "Echo"))
        assert len(handle.results) == 1  # immediate: already cached

    def test_discover_over_network(self):
        net, _, peers = make_world(2)
        # publish before peer 1 joined: emulate by clearing peer 1's cache
        self.publish_echo(peers[0])
        net.run()
        peers[1].cache.remove(f"service:{peers[0].id}:Echo")
        handle = peers[1].discover(AdvertQuery("service", "Echo"))
        results = handle.wait_for(1)
        assert len(results) == 1
        assert results[0].name == "Echo"

    def test_discovery_learns_provider_endpoint(self):
        net, _, peers = make_world(2)
        self.publish_echo(peers[0])
        net.run()
        peers[1].cache.remove(f"service:{peers[0].id}:Echo")
        handle = peers[1].discover(AdvertQuery("service", "Echo"))
        (service,) = handle.wait_for(1)
        # after discovery the provider's pipes must be resolvable
        out = peers[1].open_output_pipe(service.pipe_named("invoke"))
        assert out.dst_node_id == "n0"

    def test_attribute_based_discovery(self):
        net, _, peers = make_world(3)
        self.publish_echo(peers[0], attributes={"tier": "gold"})
        peers[1].create_input_pipe("invoke", "Echo")
        peers[1].publish_service("Echo", ["invoke"], attributes={"tier": "bronze"})
        net.run()
        handle = peers[2].discover(AdvertQuery("service", "%", {"tier": "gold"}))
        results = handle.wait_for(1)
        assert len(results) == 1
        assert results[0].peer_id == peers[0].id

    def test_on_result_callback(self):
        net, _, peers = make_world(2)
        self.publish_echo(peers[0])
        net.run()
        seen = []
        handle = peers[1].discover(AdvertQuery("service", "Echo"))
        handle.on_result(seen.append)  # registered after local hit
        assert len(seen) == 1

    def test_dead_provider_not_discovered_from_network(self):
        net, _, peers = make_world(2)
        handle = peers[1].discover(AdvertQuery("service", "Ghost"))
        results = handle.wait_for(1, timeout=1.0)
        assert results == []

    def test_duplicate_responses_deduped(self):
        net, _, peers = make_world(4)
        self.publish_echo(peers[0])
        net.run()
        # peers 0,2,3 all have the advert cached and will all respond
        peers[1].cache.remove(f"service:{peers[0].id}:Echo")
        handle = peers[1].discover(AdvertQuery("service", "Echo"))
        handle.wait_for(1)
        net.run()
        assert len(handle.results) == 1


class TestRendezvous:
    def two_group_world(self):
        """Two groups bridged by linked rendezvous peers."""
        net = Network(latency=FixedLatency(0.002))
        group_a, group_b = PeerGroup("A"), PeerGroup("B")
        peers_a, peers_b = [], []
        for i in range(3):
            peer = Peer(net.add_node(f"a{i}"), name=f"a{i}", rendezvous=(i == 0))
            peer.join(group_a)
            peers_a.append(peer)
        for i in range(3):
            peer = Peer(net.add_node(f"b{i}"), name=f"b{i}", rendezvous=(i == 0))
            peer.join(group_b)
            peers_b.append(peer)
        link_rendezvous(peers_a[0], peers_b[0])
        return net, peers_a, peers_b

    def test_query_crosses_groups_via_rendezvous(self):
        net, peers_a, peers_b = self.two_group_world()
        peers_b[1].create_input_pipe("invoke", "Remote")
        peers_b[1].publish_service("Remote", ["invoke"])
        net.run()  # advert spreads through group B (incl. its rendezvous)
        handle = peers_a[2].discover(AdvertQuery("service", "Remote"))
        results = handle.wait_for(1, timeout=5.0)
        assert len(results) == 1
        assert results[0].peer_id == peers_b[1].id

    def test_cross_group_resolution(self):
        net, peers_a, peers_b = self.two_group_world()
        peers_b[1].create_input_pipe("invoke", "Remote")
        peers_b[1].publish_service("Remote", ["invoke"])
        net.run()
        handle = peers_a[2].discover(AdvertQuery("service", "Remote"))
        (service,) = handle.wait_for(1, timeout=5.0)
        out = peers_a[2].open_output_pipe(service.pipe_named("invoke"))
        assert out.dst_node_id == peers_b[1].node.id

    def test_ttl_limits_propagation(self):
        # chain of rendezvous longer than TTL: query dies before the end
        net = Network(latency=FixedLatency(0.002))
        groups = [PeerGroup(f"g{i}") for i in range(5)]
        rdvs = []
        for i in range(5):
            peer = Peer(net.add_node(f"r{i}"), name=f"r{i}", rendezvous=True)
            peer.join(groups[i])
            rdvs.append(peer)
        for a, b in zip(rdvs, rdvs[1:]):
            link_rendezvous(a, b)
        provider = Peer(net.add_node("prov"), name="prov")
        provider.join(groups[4])
        provider.create_input_pipe("invoke", "Far")
        provider.publish_service("Far", ["invoke"])
        net.run()
        seeker = Peer(net.add_node("seek"), name="seek")
        seeker.join(groups[0])
        handle = seeker.discover(AdvertQuery("service", "Far"), ttl=2)
        results = handle.wait_for(1, timeout=5.0)
        assert results == []  # 4 hops away, ttl=2 cannot reach
        handle2 = seeker.discover(AdvertQuery("service", "Far"), ttl=8)
        results2 = handle2.wait_for(1, timeout=5.0)
        assert len(results2) == 1

    def test_loop_suppression(self):
        # a triangle of rendezvous must not amplify queries forever
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("tri")
        rdvs = []
        for i in range(3):
            peer = Peer(net.add_node(f"t{i}"), name=f"t{i}", rendezvous=True)
            peer.join(group)
            rdvs.append(peer)
        link_rendezvous(rdvs[0], rdvs[1])
        link_rendezvous(rdvs[1], rdvs[2])
        link_rendezvous(rdvs[2], rdvs[0])
        rdvs[0].discover(AdvertQuery("service", "Nothing"), ttl=10)
        fired = net.kernel.run(max_events=5000)
        assert fired < 5000  # terminates


class TestGroupMembership:
    def test_join_leave(self):
        net, group, peers = make_world(2)
        assert len(group) == 2
        peers[0].leave()
        assert len(group) == 1
        assert not group.is_member(peers[0].id)

    def test_departed_peer_hears_nothing(self):
        net, group, peers = make_world(2)
        peers[1].leave()
        peers[0].create_input_pipe("invoke", "Echo")
        peers[0].publish_service("Echo", ["invoke"])
        net.run()
        assert peers[1].cache.get(f"service:{peers[0].id}:Echo") is None

    def test_link_requires_rendezvous(self):
        net, _, peers = make_world(2)
        with pytest.raises(ValueError):
            link_rendezvous(peers[0], peers[1])

    def test_down_peer_messages_lost_silently(self):
        net, _, peers = make_world(3)
        peers[2].node.go_down()
        peers[0].create_input_pipe("invoke", "Echo")
        peers[0].publish_service("Echo", ["invoke"])
        net.run()
        assert peers[1].cache.get(f"service:{peers[0].id}:Echo") is not None
        assert peers[2].cache.get(f"service:{peers[0].id}:Echo") is None
