"""Tests for NAT gates and relay routing (§IV-B firewalled peers)."""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import AdvertQuery, Peer, PeerGroup
from repro.simnet import FixedLatency, Network
from repro.simnet.faults import NatGate


class TestNatGate:
    def build(self):
        net = Network(latency=FixedLatency(0.002))
        inside = net.add_node("inside")
        outside = net.add_node("outside")
        gate = NatGate(net, "inside")
        got_inside, got_outside = [], []
        inside.open_port("in", got_inside.append)
        outside.open_port("in", got_outside.append)
        return net, inside, outside, gate, got_inside, got_outside

    def test_cold_inbound_blocked(self):
        net, inside, outside, gate, got_inside, _ = self.build()
        outside.send("inside", "in", "knock")
        net.run()
        assert got_inside == []
        assert gate.blocked == 1

    def test_outbound_allowed_and_opens_session(self):
        net, inside, outside, gate, got_inside, got_outside = self.build()
        inside.send("outside", "in", "hello")
        net.run()
        assert len(got_outside) == 1
        # now the reply gets through the session
        outside.send("inside", "in", "reply")
        net.run()
        assert len(got_inside) == 1
        assert gate.blocked == 0

    def test_session_is_per_remote(self):
        net, inside, outside, gate, got_inside, _ = self.build()
        third = net.add_node("third")
        inside.send("outside", "in", "hello")
        net.run()
        third.send("inside", "in", "stranger")
        net.run()
        assert got_inside == []  # session with 'outside' does not admit 'third'

    def test_remove_gate(self):
        net, inside, outside, gate, got_inside, _ = self.build()
        gate.remove()
        outside.send("inside", "in", "open-now")
        net.run()
        assert len(got_inside) == 1


class TestRelayPeers:
    def build_world(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        relay = Peer(net.add_node("relay"), name="relay", rendezvous=True)
        relay.join(group)
        public = Peer(net.add_node("public"), name="public")
        public.join(group)
        natted = Peer(net.add_node("natted"), name="natted", nat=True, relay=relay)
        natted.join(group)
        net.run()  # hello settles
        return net, group, relay, public, natted

    def test_nat_requires_relay(self):
        net = Network()
        with pytest.raises(ValueError):
            Peer(net.add_node("lonely"), nat=True)

    def test_advert_carries_relay(self):
        net, group, relay, public, natted = self.build_world()
        advert = natted.advertisement()
        assert advert.relay_node == "relay"

    def test_direct_frames_to_natted_pipe_blocked(self):
        net, group, relay, public, natted = self.build_world()
        got = []
        _, advert = natted.create_input_pipe("inbox", listener=lambda p, m: got.append(p))
        # force a direct (relay-less) route: this is what a peer that
        # ignored the relay field would do
        from repro.p2ps.pipes import OutputPipe, Route

        direct = OutputPipe(advert, public.node, Route("natted"))
        public.send_down_pipe(direct, "cold-call")
        net.run()
        assert got == []

    def test_relay_route_reaches_natted_pipe(self):
        net, group, relay, public, natted = self.build_world()
        got = []
        _, advert = natted.create_input_pipe("inbox", listener=lambda p, m: got.append(p))
        public.resolver.learn(natted.id, "natted", relay_node="relay")
        out = public.open_output_pipe(advert)
        assert out.route.via_relay
        public.send_down_pipe(out, "via-relay")
        net.run()
        assert got == ["via-relay"]
        assert relay.relayed_frames == 1

    def test_route_learned_from_query_response(self):
        net, group, relay, public, natted = self.build_world()
        natted.create_input_pipe("invoke", "Hidden")
        natted.publish_service("Hidden", ["invoke"])
        net.run()
        handle = public.discover(AdvertQuery("service", "Hidden"))
        (service,) = handle.wait_for(1, timeout=5.0)
        out = public.open_output_pipe(service.pipe_named("invoke"))
        assert out.route.via_relay
        assert out.route.relay_node == "relay"

    def test_natted_replies_flow_directly(self):
        # hole punching: the NATed peer's own outbound frames open
        # sessions, so replies to it skip the relay
        net, group, relay, public, natted = self.build_world()
        got = []
        _, reply_advert = natted.create_input_pipe(
            "reply", listener=lambda p, m: got.append(p)
        )
        # natted initiates contact with public (outbound, allowed); it
        # learned nothing from broadcasts (its NAT blocked them), so it
        # must be told where public lives
        inbox, inbox_advert = public.create_input_pipe("inbox")
        natted.resolver.learn(public.id, "public")
        natted.send_down_pipe(natted.open_output_pipe(inbox_advert), "ping")
        net.run()
        # public can now reach natted directly through the session
        public.node.send("natted", f"pipe:{reply_advert.pipe_id}", "pong")
        net.run()
        assert got == ["pong"]


class TestNattedWSPeer:
    def test_full_service_behind_nat(self):
        """A WSPeer-hosted service behind NAT, invoked end-to-end via relay."""
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        relay_peer = Peer(net.add_node("relay"), name="relay", rendezvous=True)
        relay_peer.join(group)

        provider = WSPeer(net.add_node("hidden"), P2psBinding(group), name="hidden")
        # retrofit NAT: swap the provider's peer for a NATed one is
        # intrusive; instead gate the node and register with the relay
        provider.peer.relay_node_id = "relay"
        provider.peer._safe_send("relay", "<hello/>")
        net.run()
        gate = NatGate(net, "hidden")
        provider.peer.nat_gate = gate

        class Secret:
            def reveal(self) -> str:
                return "42"

        provider.deploy(Secret(), name="Secret")
        provider.publish("Secret")
        net.run()

        consumer = WSPeer(net.add_node("seeker"), P2psBinding(group), name="seeker")
        handle = consumer.locate_one("Secret", timeout=5.0)
        assert consumer.invoke(handle, "reveal", timeout=5.0) == "42"
        # the exchange rode the relay; the seeker's cold query broadcast
        # to the hidden node was (correctly) eaten by the NAT, and the
        # relay's cached advert answered instead
        assert relay_peer.relayed_frames > 0
        assert gate.blocked >= 1
