"""Tests for the Gnutella-style unstructured overlay (neighbor flooding)."""

import pytest

from repro.p2ps import AdvertQuery, Peer
from repro.p2ps.group import connect_neighbors
from repro.simnet import FixedLatency, Network, TraceLog


def make_line(n, latency=0.002):
    """p0 - p1 - ... - p(n-1), connected as a line of neighbors."""
    net = Network(latency=FixedLatency(latency), trace=TraceLog(enabled=True))
    peers = [Peer(net.add_node(f"n{i}"), name=f"p{i}") for i in range(n)]
    for a, b in zip(peers, peers[1:]):
        connect_neighbors(a, b)
    return net, peers


def make_ring(n):
    net, peers = make_line(n)
    connect_neighbors(peers[-1], peers[0])
    return net, peers


def publish_at(peer, name="Svc"):
    peer.create_input_pipe("invoke", name)
    return peer.publish_service(name, ["invoke"])


class TestNeighborTopology:
    def test_uses_flooding_flag(self):
        net, peers = make_line(2)
        assert peers[0].uses_flooding
        assert not Peer(net.add_node("solo")).uses_flooding

    def test_advert_broadcast_is_one_hop(self):
        net, peers = make_line(3)
        advert = publish_at(peers[0])
        net.run()
        assert peers[1].cache.get(advert.key()) is not None
        assert peers[2].cache.get(advert.key()) is None  # 2 hops away

    def test_query_floods_hop_by_hop(self):
        net, peers = make_line(5)
        advert = publish_at(peers[4], "FarSvc")
        net.run()
        handle = peers[0].discover(AdvertQuery("service", "FarSvc"), ttl=6)
        results = handle.wait_for(1, timeout=5.0)
        assert len(results) == 1
        assert results[0].key() == advert.key()

    def test_ttl_limits_flood_depth(self):
        net, peers = make_line(5)
        publish_at(peers[4], "FarSvc")
        net.run()
        handle = peers[0].discover(AdvertQuery("service", "FarSvc"), ttl=2)
        assert handle.wait_for(1, timeout=2.0) == []

    def test_discovered_service_resolvable(self):
        net, peers = make_line(4)
        publish_at(peers[3], "FarSvc")
        net.run()
        handle = peers[0].discover(AdvertQuery("service", "FarSvc"), ttl=5)
        (service,) = handle.wait_for(1, timeout=5.0)
        out = peers[0].open_output_pipe(service.pipe_named("invoke"))
        assert out.dst_node_id == "n3"

    def test_ring_terminates_via_dedup(self):
        net, peers = make_ring(6)
        peers[0].discover(AdvertQuery("service", "Nothing"), ttl=50)
        fired = net.kernel.run(max_events=10_000)
        assert fired < 10_000  # loop suppression stops the flood

    def test_flood_cost_bounded_by_edges(self):
        net, peers = make_ring(6)
        sent_before = net.sent.total()
        peers[0].discover(AdvertQuery("service", "Nothing"), ttl=50)
        net.run()
        query_frames = net.sent.total() - sent_before
        # each peer forwards a seen query at most once per neighbour
        assert query_frames <= 2 * 6 * 2  # edges x directions, generous

    def test_star_topology(self):
        net = Network(latency=FixedLatency(0.002))
        hub = Peer(net.add_node("hub"), name="hub")
        leaves = [Peer(net.add_node(f"leaf{i}"), name=f"leaf{i}") for i in range(4)]
        for leaf in leaves:
            connect_neighbors(hub, leaf)
        publish_at(leaves[0], "LeafSvc")
        net.run()
        # another leaf finds it through the hub (2 hops)
        handle = leaves[3].discover(AdvertQuery("service", "LeafSvc"), ttl=3)
        assert len(handle.wait_for(1, timeout=3.0)) == 1

    def test_mixed_mode_group_still_works(self):
        # a peer with neighbors configured floods; group members without
        # neighbors still use group broadcast
        from repro.p2ps import PeerGroup

        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        a = Peer(net.add_node("a"), name="a")
        b = Peer(net.add_node("b"), name="b")
        a.join(group)
        b.join(group)
        publish_at(a, "GroupSvc")
        net.run()
        assert b.cache.get(f"service:{a.id}:GroupSvc") is not None


class TestRepublisher:
    def build(self, lifetime=5.0):
        from repro.p2ps import Peer, PeerGroup
        from repro.simnet import FixedLatency, Network

        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = Peer(net.add_node("prov"), name="prov", cache_lifetime=lifetime)
        observer = Peer(net.add_node("obs"), name="obs", cache_lifetime=lifetime)
        provider.join(group)
        observer.join(group)
        provider.create_input_pipe("invoke", "Svc")
        provider.publish_service("Svc", ["invoke"])
        net.run()
        return net, provider, observer

    def test_republisher_keeps_advert_alive(self):
        from repro.p2ps import AdvertQuery

        net, provider, observer = self.build(lifetime=5.0)
        provider.start_republisher(interval=2.0)
        net.run(until=30.0)  # far beyond the cache lifetime
        handle = observer.discover(AdvertQuery("service", "Svc"))
        assert handle.wait_for(1, timeout=1.0)

    def test_without_republisher_advert_dies(self):
        from repro.p2ps import AdvertQuery

        net, provider, observer = self.build(lifetime=5.0)
        net.kernel.schedule(30.0, lambda: None)
        net.run()
        handle = observer.discover(AdvertQuery("service", "Svc"))
        assert handle.wait_for(1, timeout=1.0) == []

    def test_stop_republisher(self):
        from repro.p2ps import AdvertQuery

        net, provider, observer = self.build(lifetime=5.0)
        provider.start_republisher(interval=2.0)
        net.run(until=4.0)
        provider.stop_republisher()
        net.run(until=40.0)
        handle = observer.discover(AdvertQuery("service", "Svc"))
        assert handle.wait_for(1, timeout=1.0) == []

    def test_downed_peer_stops_republishing(self):
        net, provider, observer = self.build(lifetime=5.0)
        provider.start_republisher(interval=2.0)
        provider.node.go_down()
        net.run(until=30.0)
        assert observer.cache.get(f"service:{provider.id}:Svc") is None

    def test_invalid_interval(self):
        import pytest

        net, provider, observer = self.build()
        with pytest.raises(ValueError):
            provider.start_republisher(0)
