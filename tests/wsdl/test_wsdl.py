"""Tests for the WSDL model, generator, parser and validation."""

import pytest

from repro.soap import ServiceObject
from repro.wsdl import (
    Binding,
    Message,
    Operation,
    Part,
    Port,
    PortType,
    Service,
    SOAP_HTTP_TRANSPORT,
    SOAP_P2PS_TRANSPORT,
    WsdlDefinition,
    WsdlError,
    generate_wsdl,
    parse_wsdl,
    to_stub_spec,
    validate_wsdl,
)

NS = "urn:calc"


class TypedCalc:
    """A service with annotated methods."""

    def add(self, a: int, b: int) -> int:
        """Add two integers."""
        return a + b

    def mean(self, values: list) -> float:
        return sum(values) / len(values)

    def label(self, text: str) -> str:
        return f"[{text}]"


class Untyped:
    def anything(self, x, y):
        return x


def build_definition():
    service = ServiceObject.from_instance("Calc", TypedCalc(), NS)
    return generate_wsdl(service, locations={"CalcPort": "http://hostA/services/Calc"})


class TestGenerator:
    def test_messages_per_operation(self):
        d = build_definition()
        assert "addRequest" in d.messages
        assert "addResponse" in d.messages
        assert len(d.messages) == 6  # 3 ops x 2

    def test_typed_parts(self):
        d = build_definition()
        parts = {p.name: p.type_text for p in d.messages["addRequest"].parts}
        assert parts == {"a": "xsd:int", "b": "xsd:int"}
        assert d.messages["addResponse"].parts[0].type_text == "xsd:int"

    def test_list_and_float_types(self):
        d = build_definition()
        assert d.messages["meanRequest"].parts[0].type_text == "soapenc:Array"
        assert d.messages["meanResponse"].parts[0].type_text == "xsd:double"

    def test_untyped_parameters_are_anytype(self):
        service = ServiceObject.from_instance("U", Untyped(), NS)
        d = generate_wsdl(service)
        assert all(p.type_text == "xsd:anyType" for p in d.messages["anythingRequest"].parts)

    def test_port_type_operations(self):
        d = build_definition()
        pt = d.port_types["CalcPortType"]
        assert sorted(op.name for op in pt.operations) == ["add", "label", "mean"]

    def test_operation_documentation_from_docstring(self):
        d = build_definition()
        assert d.port_types["CalcPortType"].operation("add").documentation == "Add two integers."

    def test_binding_defaults_to_http(self):
        d = build_definition()
        assert d.bindings["CalcSoapBinding"].transport == SOAP_HTTP_TRANSPORT

    def test_p2ps_transport_binding(self):
        service = ServiceObject.from_instance("Calc", TypedCalc(), NS)
        d = generate_wsdl(service, transport=SOAP_P2PS_TRANSPORT)
        assert d.bindings["CalcSoapBinding"].transport == SOAP_P2PS_TRANSPORT

    def test_port_locations(self):
        d = build_definition()
        port = d.services["Calc"].ports[0]
        assert port.location == "http://hostA/services/Calc"

    def test_abstract_wsdl_has_no_ports(self):
        service = ServiceObject.from_instance("Calc", TypedCalc(), NS)
        d = generate_wsdl(service)
        assert d.services["Calc"].ports == []

    def test_generated_is_valid(self):
        assert validate_wsdl(build_definition()) == []


class TestWireRoundTrip:
    def test_roundtrip_preserves_structure(self):
        d = build_definition()
        text = d.to_wire()
        back = parse_wsdl(text)
        assert back.name == d.name
        assert back.target_namespace == d.target_namespace
        assert set(back.messages) == set(d.messages)
        assert set(back.port_types) == set(d.port_types)
        assert set(back.bindings) == set(d.bindings)
        assert set(back.services) == set(d.services)

    def test_roundtrip_preserves_parts(self):
        back = parse_wsdl(build_definition().to_wire())
        parts = {p.name: p.type_text for p in back.messages["addRequest"].parts}
        assert parts == {"a": "xsd:int", "b": "xsd:int"}

    def test_roundtrip_preserves_operations(self):
        back = parse_wsdl(build_definition().to_wire())
        op = back.port_types["CalcPortType"].operation("add")
        assert op.input == "addRequest"
        assert op.output == "addResponse"
        assert op.documentation == "Add two integers."

    def test_roundtrip_preserves_port(self):
        back = parse_wsdl(build_definition().to_wire())
        port = back.services["Calc"].ports[0]
        assert port.name == "CalcPort"
        assert port.binding == "CalcSoapBinding"
        assert port.location == "http://hostA/services/Calc"

    def test_roundtrip_valid(self):
        assert validate_wsdl(parse_wsdl(build_definition().to_wire())) == []

    def test_pretty_output_also_parses(self):
        back = parse_wsdl(build_definition().to_wire(pretty=True))
        assert "addRequest" in back.messages


class TestParserErrors:
    def test_not_xml(self):
        with pytest.raises(WsdlError):
            parse_wsdl("this is not xml")

    def test_wrong_root(self):
        with pytest.raises(WsdlError):
            parse_wsdl("<notwsdl/>")

    def test_missing_target_namespace(self):
        with pytest.raises(WsdlError):
            parse_wsdl(
                '<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"/>'
            )

    def test_operation_without_input(self):
        text = (
            '<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"'
            ' targetNamespace="urn:x">'
            '<wsdl:portType name="P"><wsdl:operation name="op"/></wsdl:portType>'
            "</wsdl:definitions>"
        )
        with pytest.raises(WsdlError):
            parse_wsdl(text)


class TestModel:
    def test_duplicate_message_rejected(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_message(Message("m"))
        with pytest.raises(WsdlError):
            d.add_message(Message("m"))

    def test_duplicate_port_type_rejected(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_port_type(PortType("p"))
        with pytest.raises(WsdlError):
            d.add_port_type(PortType("p"))

    def test_first_service_empty_rejected(self):
        with pytest.raises(WsdlError):
            WsdlDefinition("X", "urn:x").first_service()

    def test_port_type_for_port(self):
        d = build_definition()
        port = d.services["Calc"].ports[0]
        assert d.port_type_for_port(port).name == "CalcPortType"

    def test_port_type_for_port_dangling_binding(self):
        d = build_definition()
        with pytest.raises(WsdlError):
            d.port_type_for_port(Port("X", "NoSuchBinding", "http://x/y"))

    def test_one_way_operation(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_message(Message("inOnly", [Part("v", "xsd:string")]))
        d.add_port_type(PortType("P", [Operation("notify", input="inOnly")]))
        back = parse_wsdl(d.to_wire())
        assert back.port_types["P"].operation("notify").output is None


class TestValidation:
    def test_dangling_input_message(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_port_type(PortType("P", [Operation("op", input="ghost")]))
        problems = validate_wsdl(d)
        assert any("ghost" in p for p in problems)

    def test_dangling_binding_port_type(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_binding(Binding("B", "ghostPT"))
        assert any("ghostPT" in p for p in validate_wsdl(d))

    def test_dangling_port_binding(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_service(Service("S", [Port("p", "ghostB", "http://x/y")]))
        assert any("ghostB" in p for p in validate_wsdl(d))

    def test_missing_address(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_binding(Binding("B", "PT"))
        d.add_port_type(PortType("PT"))
        d.add_service(Service("S", [Port("p", "B", "")]))
        assert any("missing address" in p for p in validate_wsdl(d))

    def test_duplicate_operation_names(self):
        d = WsdlDefinition("X", "urn:x")
        d.add_message(Message("m"))
        d.add_port_type(
            PortType("P", [Operation("op", input="m"), Operation("op", input="m")])
        )
        assert any("duplicate operation" in p for p in validate_wsdl(d))


class TestStubSpec:
    def test_spec_from_definition(self):
        spec = to_stub_spec(build_definition())
        assert spec.service_name == "Calc"
        ops = {op.name: op.parameters for op in spec.operations}
        assert ops["add"] == ("a", "b")
        assert ops["mean"] == ("values",)

    def test_spec_doc_carried(self):
        spec = to_stub_spec(build_definition())
        add = next(op for op in spec.operations if op.name == "add")
        assert add.doc == "Add two integers."

    def test_spec_for_abstract_wsdl(self):
        service = ServiceObject.from_instance("Calc", TypedCalc(), NS)
        d = generate_wsdl(service)  # no ports
        spec = to_stub_spec(d)
        assert {op.name for op in spec.operations} == {"add", "mean", "label"}

    def test_unknown_service_rejected(self):
        with pytest.raises(WsdlError):
            to_stub_spec(build_definition(), service_name="Nope")

    def test_unknown_port_rejected(self):
        with pytest.raises(WsdlError):
            to_stub_spec(build_definition(), port_name="Nope")

    def test_spec_feeds_stub_builder(self):
        from repro.soap import DynamicStubBuilder

        spec = to_stub_spec(build_definition())
        calls = []
        stub = DynamicStubBuilder().build(spec, lambda op, args: calls.append((op, args)))
        stub.add(1, 2)
        assert calls == [("add", {"a": 1, "b": 2})]
