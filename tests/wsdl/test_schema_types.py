"""Tests for the <wsdl:types> schema section (registered struct types)."""

from dataclasses import dataclass

import pytest

from repro.soap import ServiceObject, StructRegistry
from repro.wsdl import WsdlDefinition, WsdlError, generate_wsdl, parse_wsdl

NS = "urn:typed-svc"


@dataclass
class Point:
    x: int
    y: int


@dataclass
class Route:
    name: str
    waypoints: list
    start: Point


class Mapper:
    def plan(self, start: Point, end: Point) -> Route:
        return Route("plan", [start, end], start)


@pytest.fixture
def registry():
    reg = StructRegistry()
    reg.register(Point)
    reg.register(Route)
    return reg


def generated(registry):
    service = ServiceObject.from_instance("Mapper", Mapper(), NS)
    return generate_wsdl(service, registry=registry)


class TestSchemaGeneration:
    def test_complex_types_emitted(self, registry):
        definition = generated(registry)
        assert set(definition.schema_types) == {"Point", "Route"}

    def test_field_types_mapped(self, registry):
        definition = generated(registry)
        assert definition.schema_types["Point"] == [
            ("x", "xsd:int"), ("y", "xsd:int"),
        ]
        route = dict(definition.schema_types["Route"])
        assert route["name"] == "xsd:string"
        assert route["waypoints"] == "soapenc:Array"
        assert route["start"] == "tns:Point"

    def test_message_parts_reference_types(self, registry):
        definition = generated(registry)
        parts = {p.name: p.type_text for p in definition.messages["planRequest"].parts}
        assert parts == {"start": "tns:Point", "end": "tns:Point"}
        assert definition.messages["planResponse"].parts[0].type_text == "tns:Route"

    def test_no_registry_no_types(self):
        service = ServiceObject.from_instance("Mapper", Mapper(), NS)
        assert generate_wsdl(service).schema_types == {}

    def test_duplicate_schema_type_rejected(self):
        definition = WsdlDefinition("X", "urn:x")
        definition.add_schema_type("T", [("a", "xsd:int")])
        with pytest.raises(WsdlError):
            definition.add_schema_type("T", [])


class TestSchemaRoundTrip:
    def test_wire_roundtrip(self, registry):
        definition = generated(registry)
        back = parse_wsdl(definition.to_wire())
        assert back.schema_types == definition.schema_types

    def test_wire_contains_schema_elements(self, registry):
        wire = generated(registry).to_wire()
        assert "complexType" in wire
        assert 'name="Point"' in wire

    def test_client_learns_field_layout_from_description(self, registry):
        # the point of the exercise: a consumer that only has the WSDL
        # text knows the struct shape
        back = parse_wsdl(generated(registry).to_wire())
        fields = [name for name, _ in back.schema_types["Route"]]
        assert fields == ["name", "waypoints", "start"]

    def test_pretty_form_parses(self, registry):
        back = parse_wsdl(generated(registry).to_wire(pretty=True))
        assert "Point" in back.schema_types
