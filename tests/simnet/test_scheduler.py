"""Scheduler-semantics tests for the E13 run-queue kernel refactor.

These pin down behaviours the rest of the stack silently relies on:
same-timestamp FIFO order across both the timer heap and the run-queue,
cancellation that takes effect even from inside a same-instant callback,
a timer heap whose physical size tracks the *live* timer count, and a
live O(1) ``pending`` counter.
"""

import pytest

from repro.simnet import Kernel


class TestSameTimestampOrder:
    def test_heap_and_call_soon_interleave_in_schedule_order(self):
        # events landing at one instant fire strictly in scheduling
        # order regardless of whether they arrived via the heap (a
        # delayed schedule) or the run-queue (call_soon at fire time)
        k = Kernel()
        fired = []
        k.schedule(1.0, fired.append, "heap-1")

        def spawn_soon():
            fired.append("spawner")
            k.call_soon(fired.append, "soon-1")
            k.schedule(0.0, fired.append, "soon-2")

        k.schedule(1.0, spawn_soon)
        k.schedule(1.0, fired.append, "heap-2")
        k.run_until_idle()
        assert fired == ["heap-1", "spawner", "heap-2", "soon-1", "soon-2"]

    def test_batched_heap_drain_preserves_seq_order(self):
        # 100 events at the same timestamp are popped as one batch; the
        # batch must come out in sequence order, not heap-internal order
        k = Kernel()
        fired = []
        for i in range(100):
            k.schedule(5.0, fired.append, i)
        k.run_until_idle()
        assert fired == list(range(100))

    def test_schedule_at_now_joins_run_queue(self):
        k = Kernel()
        fired = []

        def at_one():
            fired.append("outer")
            k.schedule_at(k.now, fired.append, "at-now")

        k.schedule(1.0, at_one)
        k.schedule(1.0, fired.append, "sibling")
        k.run_until_idle()
        assert fired == ["outer", "sibling", "at-now"]

    def test_zero_delay_never_touches_heap(self):
        k = Kernel()
        for _ in range(10):
            k.call_soon(lambda: None)
        assert k.heap_size == 0
        assert k.pending == 10


class TestCancellation:
    def test_cancel_from_same_instant_callback(self):
        # a callback cancelling a sibling scheduled for the *same*
        # timestamp must suppress it even though the sibling has already
        # been moved from the heap onto the run-queue batch
        k = Kernel()
        fired = []

        def canceller():
            fired.append("canceller")
            victim.cancel()

        k.schedule(1.0, canceller)
        victim = k.schedule(1.0, fired.append, "victim")
        k.run_until_idle()
        assert fired == ["canceller"]

    def test_cancel_is_idempotent_and_post_fire_safe(self):
        k = Kernel()
        fired = []
        ev = k.schedule(1.0, fired.append, "x")
        ev.cancel()
        ev.cancel()  # double-cancel must not corrupt the pending count
        assert k.pending == 0
        k.run_until_idle()
        assert fired == []

        ev2 = k.schedule(1.0, fired.append, "y")
        k.run_until_idle()
        ev2.cancel()  # cancelling after firing is a no-op
        assert fired == ["y"]
        assert k.pending == 0

    def test_pending_counter_is_live(self):
        k = Kernel()
        events = [k.schedule(float(i + 1), lambda: None) for i in range(50)]
        assert k.pending == 50
        for ev in events[:20]:
            ev.cancel()
        assert k.pending == 30
        k.run_until_idle()
        assert k.pending == 0

    def test_heap_stays_bounded_under_cancel_heavy_workload(self):
        # the retry-timer pattern: schedule a timeout, cancel it when
        # the response lands, repeat 10k times.  Without compaction the
        # heap grows to 10k dead entries; with it the physical size
        # stays proportional to the live set.
        k = Kernel()
        peak = 0
        live = []
        for i in range(10_000):
            ev = k.schedule(1000.0 + i * 0.001, lambda: None)
            live.append(ev)
            if len(live) > 8:
                live.pop(0).cancel()
            peak = max(peak, k.heap_size)
        assert k.pending == len(live) == 8
        # compaction keeps the heap within a small constant factor of
        # the live timer count (the 64-cancelled compaction floor plus
        # the live set, with slack for the between-compaction window)
        assert peak < 300
        assert k.heap_size < 300

    def test_cancelled_heap_head_does_not_advance_clock(self):
        k = Kernel()
        fired = []
        early = k.schedule(1.0, fired.append, "early")
        k.schedule(2.0, lambda: fired.append(k.now))
        early.cancel()
        k.run_until_idle()
        assert fired == [2.0]


class TestDeterminism:
    def _run(self):
        k = Kernel()
        order = []

        def tick(name, n):
            order.append((name, k.now))
            if n > 0:
                k.schedule(0.5, tick, name, n - 1)
                k.call_soon(order.append, (name + "-soon", k.now))

        k.schedule(1.0, tick, "a", 3)
        k.schedule(1.0, tick, "b", 3)
        k.run_until_idle()
        return order

    def test_identical_runs_produce_identical_order(self):
        assert self._run() == self._run()


class TestRunSemantics:
    def test_run_until_with_only_ready_events(self):
        # run(until=...) must dispatch due-now run-queue work even when
        # the heap is empty
        k = Kernel()
        fired = []
        k.call_soon(fired.append, "x")
        k.run(until=10.0)
        assert fired == ["x"]
        assert k.now == 10.0

    def test_pump_until_sees_ready_queue(self):
        k = Kernel()
        box = []
        k.call_soon(box.append, "done")
        t = k.pump_until(lambda: bool(box))
        assert t == 0.0
