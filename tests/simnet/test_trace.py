"""Tests for trace/metric helpers."""

import pytest

from repro.simnet import Counter, TraceLog
from repro.simnet.trace import summarize


class TestTraceLog:
    def test_emit_and_query(self):
        log = TraceLog()
        log.emit(1.0, "sent", src="a")
        log.emit(2.0, "sent", src="b")
        log.emit(3.0, "lost")
        assert log.count("sent") == 2
        assert [r.detail["src"] for r in log.of_kind("sent")] == ["a", "b"]
        assert len(log) == 3

    def test_disabled_log_records_nothing(self):
        log = TraceLog(enabled=False)
        log.emit(1.0, "sent")
        assert len(log) == 0

    def test_clear(self):
        log = TraceLog()
        log.emit(1.0, "x")
        log.clear()
        assert len(log) == 0


class TestRingBufferMode:
    def test_unbounded_by_default(self):
        log = TraceLog()
        for i in range(1000):
            log.emit(float(i), "sent")
        assert len(log) == 1000
        assert log.dropped == 0

    def test_ring_keeps_newest_records(self):
        log = TraceLog(max_records=3)
        for i in range(7):
            log.emit(float(i), "sent", seq=i)
        assert len(log) == 3
        assert [r.detail["seq"] for r in log.records] == [4, 5, 6]
        assert log.emitted == 7
        assert log.dropped == 4

    def test_query_helpers_see_only_retained(self):
        log = TraceLog(max_records=2)
        log.emit(1.0, "lost")
        log.emit(2.0, "sent")
        log.emit(3.0, "sent")
        assert log.count("lost") == 0  # pushed out of the ring
        assert log.count("sent") == 2

    def test_clear_resets_drop_accounting(self):
        log = TraceLog(max_records=2)
        for i in range(5):
            log.emit(float(i), "x")
        log.clear()
        assert len(log) == 0 and log.dropped == 0

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            TraceLog(max_records=0)


class TestCounter:
    def test_incr_get_total(self):
        counter = Counter()
        counter.incr("a")
        counter.incr("a", by=2)
        counter.incr("b")
        assert counter.get("a") == 3
        assert counter.get("missing") == 0
        assert counter.total() == 4

    def test_top(self):
        counter = Counter()
        for key, n in (("x", 5), ("y", 2), ("z", 9)):
            counter.incr(key, by=n)
        assert counter.top(2) == [("z", 9), ("x", 5)]

    def test_max_and_clear(self):
        counter = Counter()
        assert counter.max() == 0
        counter.incr("a", by=7)
        assert counter.max() == 7
        counter.clear()
        assert counter.total() == 0

    def test_as_dict_is_copy(self):
        counter = Counter()
        counter.incr("a")
        d = counter.as_dict()
        d["a"] = 99
        assert counter.get("a") == 1


class TestSummarize:
    def test_stats(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats["n"] == 4
        assert stats["mean"] == pytest.approx(2.5)
        assert stats["median"] == pytest.approx(2.5)
        assert stats["min"] == 1.0 and stats["max"] == 4.0

    def test_p95(self):
        stats = summarize(range(100))
        assert stats["p95"] == pytest.approx(94.05)

    def test_empty_returns_none(self):
        assert summarize([]) is None
