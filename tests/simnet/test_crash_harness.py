"""Unit tests for the crash-consistency harness primitives (E15)."""

from repro.core.events import EventSource, PeerEvent
from repro.simnet import (
    CrashHarness,
    EventTrigger,
    FixedLatency,
    Network,
)


def build(n=3):
    net = Network(latency=FixedLatency(0.001))
    nodes = [net.add_node(f"n{i}") for i in range(n)]
    for node in nodes:
        node.open_port("in", lambda f: None)
    return net, nodes


def event(kind, **detail):
    return PeerEvent(kind=kind, time=0.0, source="test", detail=detail)


class TestEventTrigger:
    def test_fires_on_matching_kind_only(self):
        seen = []
        trigger = EventTrigger("boom", seen.append)
        trigger.message_received(event("other"))
        trigger.message_received(event("boom"))
        assert len(seen) == 1

    def test_once_disarms_after_first_fire(self):
        seen = []
        trigger = EventTrigger("boom", seen.append)
        trigger.message_received(event("boom"))
        trigger.message_received(event("boom"))
        assert len(seen) == 1
        assert trigger.fired == 1

    def test_repeating_trigger(self):
        seen = []
        trigger = EventTrigger("boom", seen.append, once=False)
        for _ in range(3):
            trigger.message_received(event("boom"))
        assert len(seen) == 3

    def test_match_predicate_filters(self):
        seen = []
        trigger = EventTrigger(
            "boom", seen.append, match=lambda e: e.detail.get("n") == 2
        )
        trigger.message_received(event("boom", n=1))
        trigger.message_received(event("boom", n=2))
        assert [e.detail["n"] for e in seen] == [2]

    def test_armed_after_skips_first_matches(self):
        seen = []
        trigger = EventTrigger("boom", seen.append, armed_after=2)
        for i in range(4):
            trigger.message_received(event("boom", n=i))
        assert [e.detail["n"] for e in seen] == [2]  # once=True: fires once

    def test_attaches_to_event_source(self):
        source = EventSource("svc")
        seen = []
        source.add_listener(EventTrigger("boom", seen.append))
        source.fire(event("boom"))
        assert len(seen) == 1


class TestKillPrimitives:
    def test_kill_downs_node_and_logs(self):
        net, nodes = build()
        harness = CrashHarness(net)
        harness.kill("n1")
        assert not nodes[1].up
        assert [a.action for a in harness.kills] == ["kill"]
        assert harness.kills[0].node == "n1"

    def test_kill_is_idempotent_on_dead_node(self):
        net, nodes = build()
        harness = CrashHarness(net)
        harness.kill("n1")
        harness.kill("n1")
        assert len(harness.kills) == 1

    def test_restart_after(self):
        net, nodes = build()
        harness = CrashHarness(net)
        harness.kill("n1", restart_after=1.0)
        assert not nodes[1].up
        net.run(until=2.0)
        assert nodes[1].up
        assert [a.action for a in harness.log] == ["kill", "restart"]

    def test_kill_on_event_immediate(self):
        net, nodes = build()
        harness = CrashHarness(net)
        source = EventSource("svc")
        harness.kill_on_event(source, "response-sent", "n1")
        source.fire(event("response-sent"))
        assert not nodes[1].up

    def test_kill_on_event_deferred_lands_next_step(self):
        """defer=True kills one zero-delay kernel step after the event:
        the node is still up in the firing instant, down after the
        kernel advances."""
        net, nodes = build()
        harness = CrashHarness(net)
        source = EventSource("svc")
        harness.kill_on_event(source, "response-sent", "n1", defer=True)
        source.fire(event("response-sent"))
        assert nodes[1].up  # not yet: the kill is queued
        net.run(until=net.now + 0.01)
        assert not nodes[1].up
        assert "(deferred)" in harness.kills[0].detail

    def test_describe_is_printable(self):
        net, _ = build()
        harness = CrashHarness(net)
        harness.kill("n2")
        lines = harness.describe()
        assert len(lines) == 1
        assert "kill n2" in lines[0]


class TestOneShotDrop:
    def test_drops_exactly_count_then_detaches(self):
        net, nodes = build()
        harness = CrashHarness(net)
        drop = harness.drop_next(lambda f: f.dst == "n1", count=2)
        for _ in range(4):
            nodes[0].send("n1", "in", "x")
        net.run()
        assert drop.dropped == 2
        assert net.stats.get("n1") == 2
        # the hook removed itself: later frames cost nothing
        assert drop.remaining == 0

    def test_detach_idempotent(self):
        net, nodes = build()
        harness = CrashHarness(net)
        drop = harness.drop_next(lambda f: True, count=5)
        drop.detach()
        drop.detach()  # must not raise
        nodes[0].send("n1", "in", "x")
        net.run()
        assert drop.dropped == 0
        assert net.stats.get("n1") == 1

    def test_harness_detach_disarms_all_drops(self):
        net, nodes = build()
        harness = CrashHarness(net)
        harness.drop_next(lambda f: f.dst == "n1")
        harness.drop_next(lambda f: f.dst == "n2")
        harness.detach()
        harness.detach()  # idempotent at the harness level too
        nodes[0].send("n1", "in", "x")
        nodes[0].send("n2", "in", "x")
        net.run()
        assert net.stats.get("n1") == 1
        assert net.stats.get("n2") == 1

    def test_unmatched_frames_untouched(self):
        net, nodes = build()
        harness = CrashHarness(net)
        drop = harness.drop_next(lambda f: f.dst == "n2", count=1)
        nodes[0].send("n1", "in", "x")
        net.run()
        assert drop.dropped == 0
        assert net.stats.get("n1") == 1
