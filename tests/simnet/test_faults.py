"""Tests for fault injection and latency models."""

import pytest

from repro.simnet import (
    ChurnInjector,
    DropInjector,
    FixedLatency,
    Network,
    PartitionInjector,
    SeededLatency,
    TraceLog,
    UniformLatency,
)


def build(n=4):
    net = Network(latency=FixedLatency(0.001), trace=TraceLog(enabled=True))
    nodes = [net.add_node(f"n{i}") for i in range(n)]
    for node in nodes:
        node.open_port("in", lambda f: None)
    return net, nodes


class TestDropInjector:
    def test_p_zero_drops_nothing(self):
        net, nodes = build()
        DropInjector(net, p=0.0, seed=1)
        for _ in range(50):
            nodes[0].send("n1", "in", "x")
        net.run()
        assert net.stats.get("n1") == 50

    def test_p_one_drops_everything(self):
        net, nodes = build()
        inj = DropInjector(net, p=1.0, seed=1)
        for _ in range(50):
            nodes[0].send("n1", "in", "x")
        net.run()
        assert net.stats.get("n1") == 0
        assert inj.dropped == 50

    def test_fractional_drop_rate(self):
        net, nodes = build()
        inj = DropInjector(net, p=0.3, seed=42)
        for _ in range(1000):
            nodes[0].send("n1", "in", "x")
        net.run()
        assert 200 < inj.dropped < 400

    def test_scoped_to_nodes(self):
        net, nodes = build()
        DropInjector(net, p=1.0, seed=1, only_nodes=["n2"])
        nodes[0].send("n1", "in", "x")
        nodes[0].send("n2", "in", "x")
        net.run()
        assert net.stats.get("n1") == 1
        assert net.stats.get("n2") == 0

    def test_detach(self):
        net, nodes = build()
        inj = DropInjector(net, p=1.0, seed=1)
        inj.detach()
        nodes[0].send("n1", "in", "x")
        net.run()
        assert net.stats.get("n1") == 1

    def test_invalid_probability(self):
        net, _ = build()
        with pytest.raises(ValueError):
            DropInjector(net, p=1.5)


class TestPartitionInjector:
    def test_cross_partition_blocked(self):
        net, nodes = build()
        part = PartitionInjector(net, [["n0", "n1"], ["n2", "n3"]])
        nodes[0].send("n1", "in", "x")  # same side
        nodes[0].send("n2", "in", "x")  # crosses
        net.run()
        assert net.stats.get("n1") == 1
        assert net.stats.get("n2") == 0
        assert part.blocked == 1

    def test_heal_restores_connectivity(self):
        net, nodes = build()
        part = PartitionInjector(net, [["n0"], ["n1"]])
        part.heal()
        nodes[0].send("n1", "in", "x")
        net.run()
        assert net.stats.get("n1") == 1

    def test_unlisted_nodes_unaffected(self):
        net, nodes = build()
        PartitionInjector(net, [["n0"], ["n1"]])
        nodes[3].send("n2", "in", "x")
        net.run()
        assert net.stats.get("n2") == 1


class TestChurnInjector:
    def test_fail_at_time(self):
        net, nodes = build()
        churn = ChurnInjector(net)
        churn.fail(["n1"], at=1.0)
        net.run(until=2.0)
        assert not nodes[1].up

    def test_recover(self):
        net, nodes = build()
        churn = ChurnInjector(net)
        churn.fail(["n1"], at=1.0)
        churn.recover(["n1"], at=2.0)
        net.run(until=3.0)
        assert nodes[1].up

    def test_fail_fraction_counts(self):
        net, _ = build(n=10)
        churn = ChurnInjector(net, seed=7)
        chosen = churn.fail_fraction([f"n{i}" for i in range(10)], 0.5, at=1.0)
        assert len(chosen) == 5
        net.run(until=2.0)
        downs = [n for n in net.node_ids if not net.get_node(n).up]
        assert sorted(downs) == sorted(chosen)

    def test_fail_fraction_zero(self):
        net, _ = build()
        churn = ChurnInjector(net)
        assert churn.fail_fraction(["n0"], 0.0, at=1.0) == []

    def test_fail_fraction_deterministic_per_seed(self):
        picks = []
        for _ in range(2):
            net, _ = build(n=10)
            churn = ChurnInjector(net, seed=3)
            picks.append(churn.fail_fraction([f"n{i}" for i in range(10)], 0.3, at=1.0))
        assert picks[0] == picks[1]


class TestLatencyModels:
    def test_fixed(self):
        m = FixedLatency(0.5, per_byte=0.1)
        assert m.sample("a", "b", 10) == pytest.approx(1.5)

    def test_fixed_validation(self):
        with pytest.raises(ValueError):
            FixedLatency(-1)

    def test_uniform_within_bounds(self):
        m = UniformLatency(0.001, 0.002, seed=5)
        for _ in range(100):
            s = m.sample("a", "b", 1)
            assert 0.001 <= s <= 0.002

    def test_uniform_validation(self):
        with pytest.raises(ValueError):
            UniformLatency(2, 1)

    def test_seeded_positive_and_deterministic(self):
        a = [SeededLatency(seed=9).sample("a", "b", 100) for _ in range(1)]
        b = [SeededLatency(seed=9).sample("a", "b", 100) for _ in range(1)]
        assert a == b
        assert a[0] > 0

    def test_seeded_median_validation(self):
        with pytest.raises(ValueError):
            SeededLatency(median=0)

    def test_loopback_is_tiny(self):
        assert FixedLatency(1.0).loopback() < 1e-3
