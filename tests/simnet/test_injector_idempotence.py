"""Injector teardown must be idempotent (E15 satellite).

Crash schedules routinely heal a partition or detach a drop injector
from more than one place (a timed schedule plus a cleanup pass); a
second call must be a harmless no-op, not a ValueError out of the hook
list, and must never remove another injector's hook.
"""

from repro.simnet import (
    ChurnInjector,
    DropInjector,
    FixedLatency,
    Network,
    PartitionInjector,
)


def build(n=4):
    net = Network(latency=FixedLatency(0.001))
    nodes = [net.add_node(f"n{i}") for i in range(n)]
    for node in nodes:
        node.open_port("in", lambda f: None)
    return net, nodes


class TestDropInjectorDetach:
    def test_double_detach_is_noop(self):
        net, nodes = build()
        inj = DropInjector(net, p=1.0, seed=1)
        inj.detach()
        inj.detach()  # must not raise
        assert not inj.attached
        nodes[0].send("n1", "in", "x")
        net.run()
        assert net.stats.get("n1") == 1

    def test_detach_leaves_other_hooks_attached(self):
        net, nodes = build()
        first = DropInjector(net, p=0.0, seed=1)
        second = DropInjector(net, p=1.0, seed=1)
        first.detach()
        first.detach()
        nodes[0].send("n1", "in", "x")
        net.run()
        assert second.dropped == 1
        assert net.stats.get("n1") == 0

    def test_dropped_counter_frozen_after_detach(self):
        net, nodes = build()
        inj = DropInjector(net, p=1.0, seed=1)
        nodes[0].send("n1", "in", "x")
        net.run()
        assert inj.dropped == 1
        inj.detach()
        inj.detach()
        nodes[0].send("n1", "in", "x")
        net.run()
        assert inj.dropped == 1
        assert net.stats.get("n1") == 1


class TestPartitionHeal:
    def test_double_heal_is_noop(self):
        net, nodes = build()
        part = PartitionInjector(net, [["n0"], ["n1"]])
        part.heal()
        part.heal()  # must not raise
        assert part.healed
        nodes[0].send("n1", "in", "x")
        net.run()
        assert net.stats.get("n1") == 1

    def test_heal_does_not_disturb_sibling_partition(self):
        net, nodes = build()
        healed = PartitionInjector(net, [["n0"], ["n1"]])
        standing = PartitionInjector(net, [["n0"], ["n2"]])
        healed.heal()
        healed.heal()
        nodes[0].send("n1", "in", "x")  # released by the heal
        nodes[0].send("n2", "in", "x")  # still blocked
        net.run()
        assert net.stats.get("n1") == 1
        assert net.stats.get("n2") == 0
        assert standing.blocked == 1

    def test_blocked_counter_frozen_after_heal(self):
        net, nodes = build()
        part = PartitionInjector(net, [["n0"], ["n1"]])
        nodes[0].send("n1", "in", "x")
        net.run()
        assert part.blocked == 1
        part.heal()
        nodes[0].send("n1", "in", "x")
        net.run()
        assert part.blocked == 1


class TestChurnDeterminism:
    def test_same_seed_same_call_sequence_same_victims(self):
        """fail_fraction's documented contract: seed + candidate order +
        call sequence fully determine the victim sets."""
        runs = []
        for _ in range(2):
            net, _ = build(n=8)
            churn = ChurnInjector(net, seed=11)
            pool = [f"n{i}" for i in range(8)]
            first = churn.fail_fraction(pool, 0.25, at=1.0)
            second = churn.fail_fraction(pool, 0.5, at=2.0)
            runs.append((first, second))
        assert runs[0] == runs[1]
        assert len(runs[0][0]) == 2 and len(runs[0][1]) == 4

    def test_different_seed_differs(self):
        picks = []
        for seed in (1, 2):
            net, _ = build(n=8)
            churn = ChurnInjector(net, seed=seed)
            picks.append(
                churn.fail_fraction([f"n{i}" for i in range(8)], 0.5, at=1.0)
            )
        assert picks[0] != picks[1]
