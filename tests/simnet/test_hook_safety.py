"""Delivery-hook lifecycle edges: detach mid-iteration, redundant heal.

The churn harness tears injectors down *while traffic is in flight*, so
the network must tolerate hooks detaching themselves (or each other)
from inside delivery, and removing a hook twice must be a no-op.
"""

from repro.simnet import (
    DropInjector,
    FixedLatency,
    Network,
    PartitionInjector,
)


def make_pair(net):
    a = net.add_node("a")
    b = net.add_node("b")
    got = []
    b.open_port("inbox", lambda frame: got.append(frame.payload))
    return a, b, got


class TestDetachDuringDelivery:
    def test_hook_can_detach_itself_mid_frame(self):
        net = Network(latency=FixedLatency(0.001))
        a, b, got = make_pair(net)
        dropper = DropInjector(net, p=1.0)

        calls = []

        def self_detaching(frame):
            calls.append(frame.payload)
            dropper.detach()  # removes the *other* hook mid-iteration
            net.remove_delivery_hook(self_detaching)  # and itself
            return True

        # hook order: dropper first, then self_detaching — ensure the
        # snapshot iteration still consults both for the current frame
        net._delivery_hooks.remove(dropper._hook)
        net.add_delivery_hook(self_detaching)
        net.add_delivery_hook(dropper._hook)

        a.send("b", "inbox", "one")
        net.run()
        # frame one: self_detaching ran, then the (still-snapshotted)
        # dropper dropped it
        assert calls == ["one"] and got == []
        # both hooks are gone now: traffic flows
        a.send("b", "inbox", "two")
        net.run()
        assert got == ["two"]

    def test_detach_is_idempotent(self):
        net = Network(latency=FixedLatency(0.001))
        make_pair(net)
        dropper = DropInjector(net, p=0.5)
        dropper.detach()
        dropper.detach()  # second detach: no ValueError

    def test_remove_never_attached_hook_is_noop(self):
        net = Network(latency=FixedLatency(0.001))
        net.remove_delivery_hook(lambda frame: True)


class TestPartitionHealRoundTrip:
    def test_partition_heal_restores_traffic(self):
        net = Network(latency=FixedLatency(0.001))
        a, b, got = make_pair(net)
        injector = PartitionInjector(net, [["a"], ["b"]])
        a.send("b", "inbox", "blocked")
        net.run()
        assert got == [] and injector.blocked == 1
        injector.heal()
        a.send("b", "inbox", "flows")
        net.run()
        assert got == ["flows"]

    def test_heal_twice_is_noop(self):
        net = Network(latency=FixedLatency(0.001))
        make_pair(net)
        injector = PartitionInjector(net, [["a"], ["b"]])
        injector.heal()
        injector.heal()  # no ValueError

    def test_heal_from_inside_another_hook(self):
        """A schedule's heal fired by a delivery-adjacent callback must
        not corrupt the hook walk of the in-flight frame."""
        net = Network(latency=FixedLatency(0.001))
        a, b, got = make_pair(net)
        injector = PartitionInjector(net, [["a"], ["b"]])

        def healing_hook(frame):
            injector.heal()
            return True

        net._delivery_hooks.insert(0, healing_hook)
        a.send("b", "inbox", "first")
        net.run()
        # the snapshot still contained the partition hook for this frame
        assert got == []
        a.send("b", "inbox", "second")
        net.run()
        assert got == ["second"]
