"""Tests for the discrete-event kernel."""

import pytest

from repro.simnet import Kernel, SimTimeoutError


class TestScheduling:
    def test_starts_at_zero(self):
        assert Kernel().now == 0.0

    def test_events_fire_in_time_order(self):
        k = Kernel()
        fired = []
        k.schedule(2.0, fired.append, "b")
        k.schedule(1.0, fired.append, "a")
        k.schedule(3.0, fired.append, "c")
        k.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_schedule_order(self):
        k = Kernel()
        fired = []
        for name in "abcde":
            k.schedule(1.0, fired.append, name)
        k.run_until_idle()
        assert fired == list("abcde")

    def test_clock_advances_to_event_time(self):
        k = Kernel()
        seen = []
        k.schedule(5.0, lambda: seen.append(k.now))
        k.run_until_idle()
        assert seen == [5.0]
        assert k.now == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Kernel().schedule(-1, lambda: None)

    def test_schedule_at_absolute(self):
        k = Kernel()
        k.schedule(1.0, lambda: None)
        k.run_until_idle()
        k.schedule_at(5.0, lambda: None)
        k.run_until_idle()
        assert k.now == 5.0

    def test_schedule_at_past_rejected(self):
        k = Kernel()
        k.schedule(2.0, lambda: None)
        k.run_until_idle()
        with pytest.raises(ValueError):
            k.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        k = Kernel()
        fired = []

        def outer():
            fired.append(("outer", k.now))
            k.schedule(1.0, lambda: fired.append(("inner", k.now)))

        k.schedule(1.0, outer)
        k.run_until_idle()
        assert fired == [("outer", 1.0), ("inner", 2.0)]

    def test_call_soon_runs_at_current_time(self):
        k = Kernel()
        fired = []
        k.schedule(1.0, lambda: k.call_soon(lambda: fired.append(k.now)))
        k.run_until_idle()
        assert fired == [1.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        k = Kernel()
        fired = []
        ev = k.schedule(1.0, fired.append, "x")
        ev.cancel()
        k.run_until_idle()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        k = Kernel()
        ev = k.schedule(1.0, lambda: None)
        k.schedule(2.0, lambda: None)
        ev.cancel()
        assert k.pending == 1


class TestRun:
    def test_run_until_stops_at_boundary(self):
        k = Kernel()
        fired = []
        k.schedule(1.0, fired.append, 1)
        k.schedule(5.0, fired.append, 5)
        n = k.run(until=2.0)
        assert n == 1
        assert fired == [1]
        assert k.now == 2.0
        k.run_until_idle()
        assert fired == [1, 5]

    def test_run_until_exact_boundary_inclusive(self):
        k = Kernel()
        fired = []
        k.schedule(2.0, fired.append, "x")
        k.run(until=2.0)
        assert fired == ["x"]

    def test_max_events_guard(self):
        k = Kernel()

        def loop():
            k.schedule(0.1, loop)

        k.schedule(0.1, loop)
        fired = k.run(max_events=50)
        assert fired == 50

    def test_events_fired_counter(self):
        k = Kernel()
        for _ in range(7):
            k.schedule(1.0, lambda: None)
        k.run_until_idle()
        assert k.events_fired == 7


class TestPumpUntil:
    def test_pump_until_predicate(self):
        k = Kernel()
        box = []
        k.schedule(3.0, box.append, "done")
        t = k.pump_until(lambda: bool(box))
        assert t == 3.0

    def test_pump_until_already_true_fires_nothing(self):
        k = Kernel()
        k.schedule(1.0, lambda: None)
        k.pump_until(lambda: True)
        assert k.events_fired == 0

    def test_pump_until_timeout(self):
        k = Kernel()
        k.schedule(10.0, lambda: None)
        with pytest.raises(SimTimeoutError):
            k.pump_until(lambda: False, timeout=5.0)
        assert k.now == 5.0

    def test_pump_until_queue_drained(self):
        k = Kernel()
        k.schedule(1.0, lambda: None)
        with pytest.raises(SimTimeoutError):
            k.pump_until(lambda: False)

    def test_pump_leaves_later_events_queued(self):
        k = Kernel()
        box = []
        k.schedule(1.0, box.append, "first")
        k.schedule(9.0, box.append, "later")
        k.pump_until(lambda: bool(box))
        assert box == ["first"]
        assert k.pending == 1


class TestAdvance:
    def test_advance_moves_clock(self):
        k = Kernel()
        k.advance(4.0)
        assert k.now == 4.0

    def test_advance_past_pending_rejected(self):
        k = Kernel()
        k.schedule(1.0, lambda: None)
        with pytest.raises(ValueError):
            k.advance(2.0)
