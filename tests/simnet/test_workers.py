"""Tests for the per-node virtual-time worker pool (E13).

The pool replaces the single serial service queue: N simulated workers
each hold a busy-until time, an arriving frame takes the earliest-free
worker (lowest index breaks ties, keeping seeded runs deterministic),
and an optional queue bound hands overflow frames to the port's
overflow handler instead of queueing forever.
"""

import pytest

from repro.simnet import FixedLatency, Network, TraceLog
from repro.simnet.churn import ChurnSchedule


def build(service_time=0.01, trace=True):
    net = Network(latency=FixedLatency(0.001), trace=TraceLog(enabled=trace))
    server = net.add_node("server")
    server.service_time = service_time
    client = net.add_node("client")
    handled = []
    server.open_port("in", lambda frame: handled.append((frame.payload, net.now)))
    return net, server, client, handled


class TestPoolDispatch:
    def test_two_workers_serve_two_frames_concurrently(self):
        net, server, client, handled = build()
        server.configure_workers(2)
        client.send("server", "in", "a")
        client.send("server", "in", "b")
        net.run()
        # both arrive at 0.001 and finish one service time later —
        # no serialisation, each on its own worker
        assert [t for _, t in handled] == [pytest.approx(0.011)] * 2

    def test_slow_frame_pins_one_worker_while_fast_flow_past(self):
        net, server, client, handled = build()
        server.configure_workers(2)
        server.frame_cost = lambda frame: 0.1 if frame.payload == "slow" else 0.001
        client.send("server", "in", "slow")
        for i in range(3):
            client.send("server", "in", f"fast{i}")
        net.run()
        done = dict(handled)
        assert done["slow"] == pytest.approx(0.101)
        # the fast frames pipeline through the second worker
        assert done["fast0"] == pytest.approx(0.002)
        assert done["fast1"] == pytest.approx(0.003)
        assert done["fast2"] == pytest.approx(0.004)

    def test_fifo_fairness_no_starvation(self):
        # with a pool of 2 and four equal-cost frames, completion order
        # follows arrival order — nobody is starved past a later arrival
        net, server, client, handled = build()
        server.configure_workers(2)
        for i in range(4):
            client.send("server", "in", f"f{i}")
        net.run()
        assert [p for p, _ in handled] == ["f0", "f1", "f2", "f3"]
        assert [t for _, t in handled] == [
            pytest.approx(0.011),
            pytest.approx(0.011),
            pytest.approx(0.021),
            pytest.approx(0.021),
        ]

    def test_single_worker_reproduces_serial_queue(self):
        # workers=1 + unbounded queue is the backward-compat invariant:
        # identical times and trace to the pre-E13 serial queue
        net, server, client, handled = build()
        server.configure_workers(1)
        for _ in range(3):
            client.send("server", "in", "x")
        net.run()
        assert [t for _, t in handled] == [
            pytest.approx(0.011),
            pytest.approx(0.021),
            pytest.approx(0.031),
        ]
        assert net.trace.count("queued") == 2

    def test_queue_depth_tracks_backlog(self):
        net, server, client, handled = build()
        server.configure_workers(2)
        for _ in range(5):
            client.send("server", "in", "x")
        net.kernel.run(until=0.0015)  # all delivered, none finished
        assert server.queue_depth == 3
        net.run()
        assert server.queue_depth == 0

    def test_worker_stats_utilisation(self):
        net, server, client, handled = build(service_time=0.1)
        server.configure_workers(2)
        client.send("server", "in", "a")
        client.send("server", "in", "b")
        net.run()
        stats = server.worker_stats()
        assert stats["workers"] == 2
        assert stats["queue_depth"] == 0
        # each worker was busy 0.1s of the 0.101s elapsed
        assert stats["utilisation"][0] == pytest.approx(0.1 / 0.101)
        assert stats["utilisation"][1] == pytest.approx(0.1 / 0.101)

    def test_deterministic_across_repeats(self):
        def run_once():
            net, server, client, handled = build()
            server.configure_workers(3)
            server.frame_cost = lambda f: 0.02 if f.payload.startswith("s") else 0.003
            for i in range(12):
                client.send("server", "in", ("s" if i % 4 == 0 else "f") + str(i))
            net.run()
            return handled, net.trace.records

        h1, t1 = run_once()
        h2, t2 = run_once()
        assert h1 == h2
        assert t1 == t2


class TestOverflow:
    def test_bounded_queue_invokes_overflow_handler(self):
        net, server, client, handled = build()
        server.configure_workers(1, queue_limit=1)
        shed = []
        server.set_overflow_handler("in", lambda frame, ra: shed.append((frame.payload, ra)))
        for i in range(4):
            client.send("server", "in", f"f{i}")
        net.run()
        # worker takes f0, queue holds f1; f2 and f3 overflow
        assert [p for p, _ in handled] == ["f0", "f1"]
        assert [p for p, _ in shed] == ["f2", "f3"]
        assert server.frames_overflowed == 2
        assert net.trace.count("overflow") == 2

    def test_overflow_retry_after_hints_first_free_worker(self):
        net, server, client, handled = build(service_time=0.05)
        server.configure_workers(1, queue_limit=0)
        shed = []
        server.set_overflow_handler("in", lambda frame, ra: shed.append(ra))
        client.send("server", "in", "busy-maker")
        client.send("server", "in", "rejected")
        net.run()
        # both arrive at 0.001; the worker frees at 0.051, so the hint
        # is the remaining 50ms of the in-flight frame
        assert shed == [pytest.approx(0.05)]

    def test_unbounded_queue_never_overflows(self):
        net, server, client, handled = build()
        server.configure_workers(1)  # queue_limit None
        for _ in range(20):
            client.send("server", "in", "x")
        net.run()
        assert server.frames_overflowed == 0
        assert len(handled) == 20


class TestChurnInteractions:
    def test_death_mid_service_is_traced_and_counted(self):
        net, server, client, handled = build()
        client.send("server", "in", "doomed")
        net.kernel.schedule(0.005, server.go_down)
        net.run()
        assert handled == []
        assert server.frames_lost_in_service == 1
        assert net.lost_in_service.get("server") == 1
        assert net.trace.count("lost-in-service") == 1

    def test_restart_resets_saturation(self):
        # regression: a node that died saturated used to resume with its
        # old busy-until horizon, so the first post-restart frame waited
        # out a queue that no longer existed
        net, server, client, handled = build(service_time=0.1)
        for _ in range(5):
            client.send("server", "in", "pile-up")  # busy horizon: 0.501
        net.kernel.schedule(0.05, server.go_down)
        net.kernel.schedule(0.2, server.go_up)
        # a fresh frame arriving at 0.251 — after restart, well inside
        # the dead queue's old horizon.  Pre-fix it waited until 0.501.
        net.kernel.schedule_at(0.25, client.send, "server", "in", "fresh")
        net.run()
        fresh = [t for p, t in handled if p == "fresh"]
        assert fresh == [pytest.approx(0.25 + 0.001 + 0.1)]

    def test_brownout_restore_skipped_when_service_time_changed(self):
        # regression: an overlapping tuning change mid-brownout must not
        # be stomped by the brownout's scheduled restore
        net, server, client, handled = build(service_time=0.0)
        churn = ChurnSchedule(net)
        churn.brownout("server", at=1.0, until=2.0, service_time=0.5)
        # an operator retunes the node while the brownout is active
        net.kernel.schedule_at(1.5, lambda: setattr(server, "service_time", 0.25))
        net.run()
        assert server.service_time == 0.25  # later change wins
        recover = churn.records("recover")[0]
        assert recover.detail.get("skipped") is True
        assert recover.detail.get("found") == 0.25

    def test_brownout_restores_when_unchanged(self):
        net, server, client, handled = build(service_time=0.002)
        churn = ChurnSchedule(net)
        churn.brownout("server", at=1.0, until=2.0, service_time=0.5)
        net.run()
        assert server.service_time == 0.002
        recover = churn.records("recover")[0]
        assert "skipped" not in recover.detail
