"""Tests for the wiretap conversation inspector."""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.simnet.wiretap import Wiretap, classify
from repro.uddi import UddiRegistryNode


class Echo:
    def echo(self, message: str) -> str:
        return message


@pytest.fixture
def tapped_standard_world():
    net = Network(latency=FixedLatency(0.002))
    tap = Wiretap(net)
    registry = UddiRegistryNode(net.add_node("registry"))
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
    provider.deploy(Echo(), name="Echo")
    provider.publish("Echo")
    return net, tap, provider, consumer


class TestCapture:
    def test_records_every_frame(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", message="x")
        assert len(tap) > 0
        # delivery unaffected by observation
        assert net.stats.total() > 0

    def test_soap_operations_identified(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", message="x")
        summaries = [r.summary for r in tap.records]
        assert any("SOAP echo" in s for s in summaries)
        assert any("SOAP echoResponse" in s for s in summaries)

    def test_http_methods_identified(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        consumer.locate_one("Echo")
        summaries = [r.summary for r in tap.records]
        assert any(s.startswith("HTTP POST") for s in summaries)
        assert any(s.startswith("HTTP GET") for s in summaries)  # wsdl fetch
        assert any(s.startswith("HTTP 200") for s in summaries)

    def test_p2ps_messages_identified(self):
        net = Network(latency=FixedLatency(0.002))
        tap = Wiretap(net)
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("pp"), P2psBinding(group), name="pp")
        consumer = WSPeer(net.add_node("pc"), P2psBinding(group), name="pc")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", message="x")
        summaries = [r.summary for r in tap.records]
        assert any(s == "P2PS advert" for s in summaries)
        assert any("SOAP echo" in s for s in summaries)
        assert any(s == "WSDL document" for s in summaries)

    def test_between_and_involving(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        handle = consumer.locate_one("Echo")
        consumer.invoke(handle, "echo", message="x")
        direct = tap.between("cons", "prov")
        assert direct and all({"cons", "prov"} == {r.src, r.dst} for r in direct)
        assert len(tap.involving("registry")) > 0

    def test_render_sequence(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        consumer.locate_one("Echo")
        text = tap.render_sequence(limit=5)
        assert "cons -> registry" in text
        assert "ms" in text

    def test_render_truncation_notice(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        consumer.locate_one("Echo")
        text = tap.render_sequence(limit=1)
        assert "more frames" in text

    def test_summary_counts(self, tapped_standard_world):
        net, tap, provider, consumer = tapped_standard_world
        tap.clear()
        consumer.locate_one("Echo")
        counts = tap.summary_counts()
        assert sum(counts.values()) == len(tap)

    def test_max_records_cap(self):
        net = Network(latency=FixedLatency(0.001))
        tap = Wiretap(net, max_records=3)
        a, b = net.add_node("a"), net.add_node("b")
        b.open_port("in", lambda f: None)
        for _ in range(10):
            a.send("b", "in", "x")
        net.run()
        assert len(tap) == 3
        assert net.stats.get("b") == 10  # delivery unaffected

    def test_detach(self):
        net = Network(latency=FixedLatency(0.001))
        tap = Wiretap(net)
        a, b = net.add_node("a"), net.add_node("b")
        b.open_port("in", lambda f: None)
        tap.detach()
        a.send("b", "in", "x")
        net.run()
        assert len(tap) == 0


class TestClassify:
    def test_raw_data_fallback(self):
        from repro.simnet.network import Frame

        assert classify(Frame("a", "b", "weird", "12345")) == "5B on weird"

    def test_pipe_data_fallback(self):
        from repro.simnet.network import Frame

        assert classify(Frame("a", "b", "pipe:p-1", "raw-bytes")) == "pipe data"
