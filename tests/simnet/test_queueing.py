"""Tests for the per-node serial processing queue (server saturation)."""

import pytest

from repro.simnet import FixedLatency, Network, TraceLog


def build(service_time=0.01):
    net = Network(latency=FixedLatency(0.001), trace=TraceLog(enabled=True))
    server = net.add_node("server")
    server.service_time = service_time
    client = net.add_node("client")
    handled_at = []
    server.open_port("in", lambda frame: handled_at.append(net.now))
    return net, server, client, handled_at


class TestServiceTime:
    def test_zero_service_time_is_immediate(self):
        net, server, client, handled_at = build(service_time=0.0)
        client.send("server", "in", "a")
        client.send("server", "in", "b")
        net.run()
        assert handled_at == [pytest.approx(0.001)] * 2

    def test_single_frame_costs_one_service_time(self):
        net, server, client, handled_at = build()
        client.send("server", "in", "a")
        net.run()
        assert handled_at == [pytest.approx(0.011)]  # 1ms wire + 10ms service

    def test_concurrent_frames_serialise(self):
        net, server, client, handled_at = build()
        for _ in range(3):
            client.send("server", "in", "x")
        net.run()
        assert handled_at == [
            pytest.approx(0.011),
            pytest.approx(0.021),
            pytest.approx(0.031),
        ]

    def test_queue_delay_recorded(self):
        net, server, client, handled_at = build()
        for _ in range(5):
            client.send("server", "in", "x")
        net.run()
        # the 5th frame waited 4 service times
        assert server.max_queue_delay == pytest.approx(0.04)
        assert net.trace.count("queued") == 4

    def test_idle_gap_resets_queue(self):
        net, server, client, handled_at = build()
        client.send("server", "in", "a")
        net.run()
        client.send("server", "in", "b")
        net.run()
        # both processed exactly one service time after arrival
        assert handled_at[1] - handled_at[0] > 0.009

    def test_node_down_drops_queued_work(self):
        net, server, client, handled_at = build()
        client.send("server", "in", "a")
        net.kernel.schedule(0.005, server.go_down)  # dies mid-processing
        net.run()
        assert handled_at == []

    def test_stats_count_processed_not_arrived(self):
        net, server, client, handled_at = build()
        client.send("server", "in", "a")
        net.kernel.run(until=0.002)  # arrived, not yet processed
        assert net.stats.get("server") == 0
        net.run()
        assert net.stats.get("server") == 1
