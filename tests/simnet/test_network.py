"""Tests for the simulated network."""

import pytest

from repro.simnet import (
    FixedLatency,
    Frame,
    Network,
    NetworkError,
    NodeDownError,
    TraceLog,
)


def make_net(**kwargs):
    net = Network(latency=FixedLatency(0.01), trace=TraceLog(enabled=True), **kwargs)
    a = net.add_node("a")
    b = net.add_node("b")
    return net, a, b


class TestNodes:
    def test_duplicate_node_rejected(self):
        net, *_ = make_net()
        with pytest.raises(NetworkError):
            net.add_node("a")

    def test_get_unknown_node(self):
        net, *_ = make_net()
        with pytest.raises(NetworkError):
            net.get_node("zz")

    def test_port_lifecycle(self):
        net, a, _ = make_net()
        a.open_port("p", lambda f: None)
        assert a.has_port("p")
        with pytest.raises(NetworkError):
            a.open_port("p", lambda f: None)
        a.close_port("p")
        assert not a.has_port("p")

    def test_ports_listing(self):
        _, a, _ = make_net()
        a.open_port("z", lambda f: None)
        a.open_port("a", lambda f: None)
        assert a.ports == ["a", "z"]


class TestDelivery:
    def test_basic_delivery(self):
        net, a, b = make_net()
        got = []
        b.open_port("in", got.append)
        a.send("b", "in", "hello")
        net.run()
        assert len(got) == 1
        assert got[0].payload == "hello"
        assert got[0].src == "a"

    def test_latency_applied(self):
        net, a, b = make_net()
        times = []
        b.open_port("in", lambda f: times.append(net.now))
        a.send("b", "in", "x")
        net.run()
        assert times == [pytest.approx(0.01)]

    def test_loopback_delivery(self):
        net, a, _ = make_net()
        got = []
        a.open_port("self", got.append)
        a.send("a", "self", "me")
        net.run()
        assert len(got) == 1
        assert net.now < 0.001  # loopback is near-instant

    def test_no_handler_is_traced_not_fatal(self):
        net, a, b = make_net()
        a.send("b", "nowhere", "x")
        net.run()
        assert net.trace.count("no-handler") == 1

    def test_unknown_destination_unroutable(self):
        net, a, _ = make_net()
        a.send("ghost", "in", "x")
        net.run()
        assert net.trace.count("unroutable") == 1

    def test_send_from_down_node_raises(self):
        net, a, _ = make_net()
        a.go_down()
        with pytest.raises(NodeDownError):
            a.send("b", "in", "x")

    def test_frame_to_down_node_lost(self):
        net, a, b = make_net()
        got = []
        b.open_port("in", got.append)
        a.send("b", "in", "x")
        b.go_down()
        net.run()
        assert got == []
        assert net.trace.count("lost") == 1

    def test_node_recovers(self):
        net, a, b = make_net()
        got = []
        b.open_port("in", got.append)
        b.go_down()
        b.go_up()
        a.send("b", "in", "x")
        net.run()
        assert len(got) == 1

    def test_stats_count_handled_frames(self):
        net, a, b = make_net()
        b.open_port("in", lambda f: None)
        for _ in range(3):
            a.send("b", "in", "x")
        net.run()
        assert net.stats.get("b") == 3
        assert net.sent.get("a") == 3

    def test_frame_size(self):
        f = Frame("a", "b", "p", "12345")
        assert f.size == 5

    def test_meta_passed_through(self):
        net, a, b = make_net()
        got = []
        b.open_port("in", got.append)
        a.send("b", "in", "x", kind="test")
        net.run()
        assert got[0].meta == {"kind": "test"}


class TestDeliveryHooks:
    def test_hook_can_drop(self):
        net, a, b = make_net()
        got = []
        b.open_port("in", got.append)
        net.add_delivery_hook(lambda f: False)
        a.send("b", "in", "x")
        net.run()
        assert got == []
        assert net.trace.count("dropped") == 1

    def test_hook_removal(self):
        net, a, b = make_net()
        got = []
        b.open_port("in", got.append)
        hook = lambda f: False  # noqa: E731
        net.add_delivery_hook(hook)
        net.remove_delivery_hook(hook)
        a.send("b", "in", "x")
        net.run()
        assert len(got) == 1
