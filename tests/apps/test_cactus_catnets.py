"""Tests for the Cactus streaming scenario and the Catnets market."""

import numpy as np
import pytest

from repro.apps import (
    CactusSimulation,
    ConsumerAgent,
    ProviderAgent,
    ResultCollector,
    run_cactus_scenario,
    run_market_rounds,
)
from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class TestCactusSimulation:
    def test_cfl_validation(self):
        with pytest.raises(ValueError):
            CactusSimulation(courant=1.5)
        with pytest.raises(ValueError):
            CactusSimulation(grid_points=4)

    def test_step_advances(self):
        sim = CactusSimulation(grid_points=64)
        sim.step()
        assert sim.timestep == 1

    def test_boundaries_fixed(self):
        sim = CactusSimulation(grid_points=64)
        for _ in range(20):
            sim.step()
        assert sim.u[0] == 0.0 and sim.u[-1] == 0.0

    def test_energy_approximately_conserved(self):
        sim = CactusSimulation(grid_points=256, courant=0.5)
        initial = None
        for step in range(200):
            sim.step()
            if step == 0:
                initial = sim.energy()
        assert initial is not None
        drift = abs(sim.energy() - initial) / initial
        assert drift < 0.05

    def test_pulse_propagates(self):
        sim = CactusSimulation(grid_points=128, pulse_center=0.5)
        peak_before = int(np.argmax(sim.u))
        for _ in range(30):
            sim.step()
        # the single pulse splits into two travelling pulses
        field = np.abs(sim.u)
        peaks = np.where(field > 0.4 * field.max())[0]
        assert peaks.min() < peak_before < peaks.max()

    def test_snapshot_shape(self):
        sim = CactusSimulation()
        sim.step()
        snap = sim.snapshot(sample_points=8)
        assert snap["timestep"] == 1
        assert len(snap["samples"]) == 8
        assert snap["max"] >= 0
        assert "energy" in snap

    def test_solution_stays_bounded(self):
        sim = CactusSimulation(grid_points=128, courant=0.9)
        for _ in range(500):
            sim.step()
        assert np.abs(sim.u).max() < 2.0  # stable scheme


class TestCactusScenario:
    @pytest.fixture
    def world(self):
        net = Network(latency=FixedLatency(0.002))
        registry = UddiRegistryNode(net.add_node("registry"))
        consumer = WSPeer(net.add_node("triana"), StandardBinding(registry.endpoint))
        resource = WSPeer(net.add_node("hpc"), StandardBinding(registry.endpoint))
        return net, consumer, resource

    def test_all_snapshots_arrive(self, world):
        net, consumer, resource = world
        result, collector = run_cactus_scenario(consumer, resource, timesteps=20)
        assert result.received == 20
        assert collector.count == 20

    def test_snapshots_arrive_in_order_and_real_time(self, world):
        net, consumer, resource = world
        result, collector = run_cactus_scenario(consumer, resource, timesteps=10)
        steps = [s["timestep"] for s in collector.snapshots]
        assert steps == sorted(steps)
        # arrival times strictly increase: streaming, not batch delivery
        arrivals = result.arrival_times
        assert all(a < b for a, b in zip(arrivals, arrivals[1:]))

    def test_runtime_deployment(self, world):
        # the receiving service does not exist until the scenario runs
        net, consumer, resource = world
        assert consumer.deployed_services == []
        run_cactus_scenario(consumer, resource, timesteps=3)
        assert "CactusMonitor" in consumer.deployed_services

    def test_energy_drift_reported(self, world):
        net, consumer, resource = world
        result, _ = run_cactus_scenario(
            consumer, resource, timesteps=20, grid_points=256
        )
        assert result.energy_drift < 0.1

    def test_steps_per_snapshot(self, world):
        net, consumer, resource = world
        result, collector = run_cactus_scenario(
            consumer, resource, timesteps=5, steps_per_snapshot=4
        )
        assert collector.snapshots[-1]["timestep"] == 20


class TestCatnetsMarket:
    def market(self, n_providers=3, n_consumers=2, seed_prices=None):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("market")
        providers = [
            ProviderAgent(
                net, group, f"P{i}",
                base_price=(seed_prices[i] if seed_prices else 10.0),
            )
            for i in range(n_providers)
        ]
        net.run()  # let adverts settle
        consumers = [ConsumerAgent(net, group, f"C{i}") for i in range(n_consumers)]
        return net, providers, consumers

    def test_consumers_buy_every_round(self):
        net, providers, consumers = self.market()
        stats = run_market_rounds(providers, consumers, rounds=5)
        assert stats.purchases == 10  # 2 consumers x 5 rounds
        assert stats.total_spend > 0

    def test_cheapest_provider_wins_first(self):
        net, providers, consumers = self.market(seed_prices=[10.0, 2.0, 10.0])
        consumers[0].buy()
        assert providers[1].service.jobs_done == 1

    def test_price_pressure_spreads_load(self):
        # the economic feedback: the cheap provider's price rises with demand
        # so load spreads over providers rather than starving all but one
        net, providers, consumers = self.market(n_providers=3, n_consumers=3)
        stats = run_market_rounds(providers, consumers, rounds=8)
        busy = [p for p, jobs in stats.jobs_per_provider.items() if jobs > 0]
        assert len(busy) >= 2  # not a monopoly
        assert stats.load_imbalance < 2.5

    def test_prices_adjust(self):
        net, providers, consumers = self.market()
        before = [p.service.price for p in providers]
        run_market_rounds(providers, consumers, rounds=6)
        after = [p.service.price for p in providers]
        assert before != after

    def test_provider_failure_tolerated(self):
        net, providers, consumers = self.market(n_providers=3, n_consumers=1)
        providers[0].wspeer.node.go_down()
        stats = run_market_rounds(providers, consumers, rounds=3)
        assert stats.purchases == 3  # market continues without the dead peer
        assert stats.jobs_per_provider["P0"] == 0
