"""Tests for the Triana-analogue workflow engine."""

import pytest

from repro.apps import Tool, Toolbox, Workflow, WorkflowEngine, WorkflowError
from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class MathService:
    def add(self, a: float, b: float) -> float:
        return a + b

    def multiply(self, a: float, b: float) -> float:
        return a * b

    def negate(self, a: float) -> float:
        return -a


class TextService:
    def join(self, parts: list) -> str:
        return "-".join(str(p) for p in parts)


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
    triana = WSPeer(net.add_node("triana"), StandardBinding(registry.endpoint))
    provider.deploy(MathService(), name="Math")
    provider.deploy(TextService(), name="Text")
    provider.publish("Math")
    provider.publish("Text")
    return net, provider, triana


class TestToolbox:
    def test_discover_registers_all_operations(self, world):
        _, _, triana = world
        toolbox = Toolbox(triana)
        tools = toolbox.discover("Math")
        assert sorted(t.name for t in tools) == [
            "Math.add", "Math.multiply", "Math.negate",
        ]

    def test_tool_lookup(self, world):
        _, _, triana = world
        toolbox = Toolbox(triana)
        toolbox.discover("Math")
        assert toolbox.tool("Math.add").operation == "add"

    def test_missing_tool(self, world):
        _, _, triana = world
        with pytest.raises(WorkflowError):
            Toolbox(triana).tool("Nope.op")

    def test_wildcard_discover_multiple_services(self, world):
        _, _, triana = world
        toolbox = Toolbox(triana)
        toolbox.discover("%")
        assert "Math.add" in toolbox.tool_names
        assert "Text.join" in toolbox.tool_names

    def test_add_local(self, world):
        _, provider, _ = world
        toolbox = Toolbox(provider)
        tools = toolbox.add_local("Math")
        assert len(tools) == 3


class TestWorkflowGraph:
    def make_tool(self, name="t"):
        # graph-structure tests need no live service
        from repro.core.handle import ServiceHandle
        from repro.wsdl.model import WsdlDefinition

        return Tool(name, ServiceHandle("S", WsdlDefinition("S", "urn:s")), "op")

    def test_duplicate_task_rejected(self):
        wf = Workflow()
        wf.add_task("a", self.make_tool())
        with pytest.raises(WorkflowError):
            wf.add_task("a", self.make_tool())

    def test_wire_to_unknown_task_rejected(self):
        wf = Workflow()
        with pytest.raises(WorkflowError):
            wf.add_task("b", self.make_tool(), wires={"x": "missing"})

    def test_waves_respect_dependencies(self):
        wf = Workflow()
        wf.add_task("a", self.make_tool())
        wf.add_task("b", self.make_tool())
        wf.add_task("c", self.make_tool(), wires={"x": "a", "y": "b"})
        waves = wf.waves()
        assert sorted(t.task_id for t in waves[0]) == ["a", "b"]
        assert [t.task_id for t in waves[1]] == ["c"]


class TestExecution:
    def test_linear_pipeline(self, world):
        net, _, triana = world
        toolbox = Toolbox(triana)
        toolbox.discover("Math")
        wf = Workflow("pipeline")
        wf.add_task("sum", toolbox.tool("Math.add"), constants={"a": 2, "b": 3})
        wf.add_task(
            "scaled", toolbox.tool("Math.multiply"),
            constants={"b": 10.0}, wires={"a": "sum"},
        )
        results = WorkflowEngine(triana).run(wf)
        assert results["sum"] == 5
        assert results["scaled"] == 50

    def test_diamond_dag(self, world):
        net, _, triana = world
        toolbox = Toolbox(triana)
        toolbox.discover("Math")
        wf = Workflow("diamond")
        wf.add_task("src", toolbox.tool("Math.add"), constants={"a": 1, "b": 1})
        wf.add_task("left", toolbox.tool("Math.multiply"),
                    constants={"b": 3.0}, wires={"a": "src"})
        wf.add_task("right", toolbox.tool("Math.negate"), wires={"a": "src"})
        wf.add_task("sink", toolbox.tool("Math.add"),
                    wires={"a": "left", "b": "right"})
        results = WorkflowEngine(triana).run(wf)
        assert results["sink"] == 6 - 2

    def test_parallel_wave_overlaps_in_time(self, world):
        # two independent tasks run in the same wave; total virtual time
        # is one round trip, not two
        net, _, triana = world
        toolbox = Toolbox(triana)
        toolbox.discover("Math")
        wf = Workflow()
        wf.add_task("p1", toolbox.tool("Math.add"), constants={"a": 1, "b": 1})
        wf.add_task("p2", toolbox.tool("Math.add"), constants={"a": 2, "b": 2})
        start = net.now
        WorkflowEngine(triana).run(wf)
        elapsed = net.now - start
        assert elapsed < 0.009  # ~2 hops, not ~4

    def test_cross_service_workflow(self, world):
        net, _, triana = world
        toolbox = Toolbox(triana)
        toolbox.discover("%")
        wf = Workflow()
        wf.add_task("n1", toolbox.tool("Math.add"), constants={"a": 1, "b": 2})
        wf.add_task("n2", toolbox.tool("Math.add"), constants={"a": 3, "b": 4})
        # feed numeric results into the text service
        wf.add_task("label", toolbox.tool("Text.join"),
                    constants={"parts": ["x"]})
        results = WorkflowEngine(triana).run(wf)
        assert results["label"] == "x"
        assert results["n1"] == 3 and results["n2"] == 7

    def test_failing_task_surfaces(self, world):
        net, provider, triana = world

        class Bad:
            def fail(self) -> str:
                raise RuntimeError("task exploded")

        provider.deploy(Bad(), name="Bad")
        provider.publish("Bad")
        toolbox = Toolbox(triana)
        toolbox.discover("Bad")
        wf = Workflow()
        wf.add_task("boom", toolbox.tool("Bad.fail"))
        with pytest.raises(WorkflowError, match="task exploded"):
            WorkflowEngine(triana).run(wf)
