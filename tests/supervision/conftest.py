"""Shared fixtures for supervision tests.

The canonical scenario is a *replicated world*: one logical service
deployed on several provider peers, merged into a single multi-endpoint
handle the way an application would after discovery — the raw material
the failover executor supervises.
"""

import pytest

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import StandardBinding
from repro.core.events import RecordingListener
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class Echo:
    def echo(self, message: str) -> str:
        return message


class Counter:
    """Stateful service: duplicate executions are visible in .value."""

    def __init__(self):
        self.value = 0

    def increment(self, by: int) -> int:
        self.value += by
        return self.value


@pytest.fixture
def net():
    return Network(latency=FixedLatency(0.002))


@pytest.fixture
def registry_node(net):
    return UddiRegistryNode(net.add_node("registry"))


def build_replicated_world(net, registry_node, n_providers=3, service=None):
    """N providers all hosting the same service + one consumer.

    Returns (providers, consumer, handle, service_objects) where
    *handle* merges every provider's endpoints — the multi-EPR handle
    the supervision layer is for.
    """
    providers = []
    service_objects = []
    for i in range(n_providers):
        peer = WSPeer(
            net.add_node(f"prov{i}"), StandardBinding(registry_node.endpoint)
        )
        obj = service() if service is not None else Echo()
        peer.deploy(obj, name="Echo")
        providers.append(peer)
        service_objects.append(obj)
    consumer = WSPeer(
        net.add_node("cons"),
        StandardBinding(registry_node.endpoint),
        listener=RecordingListener(),
    )
    locals_ = [p.local_handle("Echo") for p in providers]
    endpoints = [epr for h in locals_ for epr in h.endpoints]
    handle = ServiceHandle("Echo", locals_[0].wsdl, endpoints, source="merged")
    return providers, consumer, handle, service_objects


@pytest.fixture
def replicated_world(net, registry_node):
    return build_replicated_world(net, registry_node)
