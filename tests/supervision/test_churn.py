"""ChurnSchedule scenarios: kills, partitions, brownouts on virtual time."""

import pytest

from repro.simnet import ChurnSchedule, FixedLatency, Network


@pytest.fixture
def net():
    return Network(latency=FixedLatency(0.001))


def wire(net, *node_ids):
    nodes = [net.add_node(n) for n in node_ids]
    for node in nodes:
        node.open_port("inbox", lambda frame: None)
    return nodes


class TestKillRestart:
    def test_kill_fires_at_scheduled_time(self, net):
        (a,) = wire(net, "a")
        churn = ChurnSchedule(net)
        churn.kill("a", at=1.0)
        net.run(until=0.5)
        assert a.up
        net.run(until=2.0)
        assert not a.up
        assert churn.records("kill")[0].time == pytest.approx(1.0)

    def test_kill_with_restart(self, net):
        (a,) = wire(net, "a")
        churn = ChurnSchedule(net)
        churn.kill("a", at=1.0, restart_at=2.0)
        net.run(until=1.5)
        assert not a.up
        net.run(until=2.5)
        assert a.up
        assert [r.kind for r in churn.records()] == ["kill", "restart"]

    def test_restart_before_kill_rejected(self, net):
        wire(net, "a")
        churn = ChurnSchedule(net)
        with pytest.raises(ValueError):
            churn.kill("a", at=2.0, restart_at=1.0)

    def test_kill_restart_cycle_counts(self, net):
        (a,) = wire(net, "a")
        churn = ChurnSchedule(net)
        cycles = churn.kill_restart_cycle(
            "a", start=1.0, downtime=0.5, period=2.0, until=7.0
        )
        assert cycles == 3
        net.run(until=10.0)
        assert len(churn.records("kill")) == 3
        assert len(churn.records("restart")) == 3
        assert a.up

    def test_random_kills_are_seeded(self, net):
        wire(net, "a", "b", "c")
        plan1 = ChurnSchedule(net, seed=7).random_kills(
            ["a", "b", "c"], n_kills=4, start=1.0, until=5.0, downtime=0.5
        )
        net2 = Network(latency=FixedLatency(0.001))
        for n in ("a", "b", "c"):
            net2.add_node(n)
        plan2 = ChurnSchedule(net2, seed=7).random_kills(
            ["a", "b", "c"], n_kills=4, start=1.0, until=5.0, downtime=0.5
        )
        assert plan1 == plan2


class TestPartition:
    def test_partition_blocks_cross_group_frames(self, net):
        a, b = wire(net, "a", "b")
        got = []
        b.close_port("inbox")
        b.open_port("inbox", lambda frame: got.append(frame.payload))
        churn = ChurnSchedule(net)
        churn.partition([["a"], ["b"]], at=1.0, heal_at=2.0)
        net.run(until=1.5)
        a.send("b", "inbox", "blocked")
        net.run(until=1.9)
        assert got == []
        net.run(until=2.5)
        a.send("b", "inbox", "healed")
        net.run(until=3.0)
        assert got == ["healed"]
        assert [r.kind for r in churn.records()] == ["partition", "heal"]

    def test_heal_all_is_idempotent_with_scheduled_heal(self, net):
        a, b = wire(net, "a", "b")
        churn = ChurnSchedule(net)
        churn.partition([["a"], ["b"]], at=0.5, heal_at=1.0)
        net.run(until=0.7)
        churn.heal_all()  # heals now; the scheduled heal at 1.0 re-heals
        net.run(until=2.0)  # must not raise
        got = []
        b.close_port("inbox")
        b.open_port("inbox", lambda frame: got.append(frame.payload))
        a.send("b", "inbox", "after")
        net.run(until=3.0)
        assert got == ["after"]


class TestBrownout:
    def test_brownout_slows_then_recovers(self, net):
        a, b = wire(net, "a", "b")
        churn = ChurnSchedule(net)
        churn.brownout("b", at=1.0, until=2.0, service_time=0.25)
        net.run(until=1.5)
        assert b.service_time == 0.25
        net.run(until=2.5)
        assert b.service_time == 0.0
        kinds = [r.kind for r in churn.records()]
        assert kinds == ["brownout", "recover"]

    def test_nested_brownouts_restore_original(self, net):
        a, b = wire(net, "a", "b")
        b.service_time = 0.01  # a provider with a base cost
        churn = ChurnSchedule(net)
        churn.brownout("b", at=1.0, until=3.0, service_time=0.5)
        net.run(until=4.0)
        assert b.service_time == pytest.approx(0.01)
