"""FailoverExecutor: health-ranked invocation across endpoints/bindings."""

import pytest

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.errors import InvocationError
from repro.core.events import RecordingListener
from repro.core.invocation import HttpInvocation
from repro.p2ps import PeerGroup
from repro.soap.faults import ServerBusyFault, SoapFault
from repro.supervision import FailoverConfig, classify_error, FINAL, BUSY, FAILOVER
from repro.transport.base import TransportError
from tests.supervision.conftest import Counter, build_replicated_world


class TestClassification:
    def test_busy_fault_is_busy(self):
        assert classify_error(ServerBusyFault(retry_after=1.0)) == BUSY

    def test_application_fault_is_final(self):
        from repro.soap.faults import FaultCode

        assert classify_error(SoapFault(FaultCode.SERVER, "boom")) == FINAL

    def test_transport_errors_fail_over(self):
        assert classify_error(TransportError("conn refused")) == FAILOVER
        assert classify_error(InvocationError("no response")) == FAILOVER


class TestHttpFailover:
    def test_invokes_through_healthiest_endpoint(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        ex = consumer.enable_failover()
        assert ex.invoke(handle, "echo", {"message": "hi"}, timeout=1.0) == "hi"
        assert ex.failovers == 0

    def test_fails_over_when_first_endpoint_dies(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        ex = consumer.enable_failover()
        ex.invoke(handle, "echo", {"message": "warm"}, timeout=1.0)
        providers[0].node.go_down()
        assert (
            ex.invoke(handle, "echo", {"message": "rerouted"}, timeout=1.0)
            == "rerouted"
        )
        assert ex.failovers >= 1

    def test_failover_event_fires_on_tree(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        listener = RecordingListener()
        consumer.add_listener(listener)
        ex = consumer.enable_failover()
        providers[0].node.go_down()
        ex.invoke(handle, "echo", {"message": "x"}, timeout=1.0)
        events = listener.of_kind("failover")
        assert events
        detail = events[0].detail
        assert detail["from_endpoint"] != detail["to_endpoint"]
        assert detail["message_id"]

    def test_learned_health_skips_dead_endpoint_next_call(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        ex = consumer.enable_failover()
        providers[0].node.go_down()
        ex.invoke(handle, "echo", {"message": "learn"}, timeout=1.0)
        switches_before = ex.failovers
        ex.invoke(handle, "echo", {"message": "skip"}, timeout=1.0)
        # second call starts at a live endpoint: no new switch needed
        assert ex.failovers == switches_before

    def test_all_endpoints_down_raises_after_rounds(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        ex = consumer.enable_failover(
            config=FailoverConfig(rounds=1, deadline=20.0)
        )
        for p in providers:
            p.node.go_down()
        with pytest.raises(Exception):
            ex.invoke(handle, "echo", {"message": "void"}, timeout=0.5)

    def test_application_fault_does_not_fail_over(self, net, registry_node):
        class Flaky:
            def echo(self, message: str) -> str:
                raise RuntimeError("application exploded")

        providers, consumer, handle, _ = build_replicated_world(
            net, registry_node, n_providers=2, service=Flaky
        )
        ex = consumer.enable_failover()
        with pytest.raises(SoapFault):
            ex.invoke(handle, "echo", {"message": "x"}, timeout=1.0)
        # the fault came from execution, not unreachability: no switch
        assert ex.failovers == 0

    def test_busy_endpoint_fails_over_and_cools_down(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        # saturate the deterministically-first provider
        providers[0].set_admission_control(capacity=1.0, drain_rate=0.001)
        ex = consumer.enable_failover()
        results = [
            ex.invoke(handle, "echo", {"message": f"m{i}"}, timeout=1.0)
            for i in range(5)
        ]
        assert results == [f"m{i}" for i in range(5)]
        busy_address = providers[0].local_handle("Echo").endpoints[0].address
        assert ex.health.in_busy_cooldown(busy_address)

    def test_restarted_endpoint_recovers_traffic(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        ex = consumer.enable_failover()
        providers[0].node.go_down()
        ex.invoke(handle, "echo", {"message": "a"}, timeout=1.0)
        providers[0].node.go_up()
        # health decays/probes aside, a direct success revives the EPR
        addr = providers[0].local_handle("Echo").endpoints[0].address
        ex.health.record_success(addr, latency=0.01)
        assert not ex.health.is_dead(addr)
        assert ex.invoke(handle, "echo", {"message": "b"}, timeout=1.0) == "b"


class TestAtMostOnce:
    def test_failover_does_not_duplicate_execution(self, net, registry_node):
        """The crash-mid-request case: the client times out against a
        slow provider that DID execute, fails over, and the second
        provider executes too — but each *individual* provider executes
        the shared MessageID at most once, and retransmissions to
        either replay instead of re-running."""
        providers, consumer, handle, counters = build_replicated_world(
            net, registry_node, n_providers=2, service=Counter
        )
        ex = consumer.enable_failover()
        value = ex.invoke(handle, "increment", {"by": 1}, timeout=1.0)
        assert value == 1
        assert sum(c.value for c in counters) == 1

    def test_same_provider_retry_after_failover_replays(self, net, registry_node):
        """After a cross-endpoint failover, re-sending the original
        MessageID to a provider that already executed must replay the
        retained response, not increment again."""
        providers, consumer, handle, counters = build_replicated_world(
            net, registry_node, n_providers=1, service=Counter
        )
        container = providers[0].server.container

        from repro.soap.rpc import build_rpc_request
        from repro.wsa.headers import MessageAddressingProperties

        endpoint = handle.endpoints[0]
        maps = MessageAddressingProperties.for_request(endpoint, "increment")
        envelope = build_rpc_request(
            handle.namespace, "increment", {"by": 1},
            container.require("Echo").registry,
        )
        maps.apply_to(envelope, target=endpoint)
        first = container.process_request("Echo", envelope)
        replay = container.process_request("Echo", envelope)
        assert counters[0].value == 1

        from repro.soap.rpc import extract_rpc_result

        registry = container.require("Echo").registry
        assert extract_rpc_result(first, registry) == 1
        assert extract_rpc_result(replay, registry) == 1
        assert container.require("Echo").duplicates_suppressed == 1


class TestCrossBinding:
    @pytest.fixture
    def cross_world(self, net, registry_node):
        class Echo:
            def echo(self, message: str) -> str:
                return message

        group = PeerGroup("g")
        http_prov = WSPeer(
            net.add_node("hprov"), StandardBinding(registry_node.endpoint)
        )
        http_prov.deploy(Echo(), name="Echo")
        p2ps_prov = WSPeer(net.add_node("pprov"), P2psBinding(group), name="pprov")
        p2ps_prov.deploy(Echo(), name="Echo")
        p2ps_prov.publish("Echo")
        consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
        net.run()
        located = consumer.locate_one("Echo", timeout=5.0)
        hh = http_prov.local_handle("Echo")
        handle = ServiceHandle(
            "Echo", hh.wsdl, list(hh.endpoints) + list(located.endpoints)
        )
        ex = consumer.enable_failover(
            extra_invokers={
                "http": HttpInvocation(consumer.node, parent=consumer.client)
            }
        )
        return net, http_prov, p2ps_prov, consumer, handle, ex

    def test_candidates_span_bindings(self, cross_world):
        net, http_prov, p2ps_prov, consumer, handle, ex = cross_world
        schemes = {
            e.address.split("://")[0] for e in ex.candidate_endpoints(handle, "echo")
        }
        assert schemes == {"http", "p2ps"}

    def test_http_to_p2ps_failover(self, cross_world):
        net, http_prov, p2ps_prov, consumer, handle, ex = cross_world
        net.get_node("hprov").go_down()
        assert ex.invoke(handle, "echo", {"message": "hop"}, timeout=1.0) == "hop"
        assert ex.failovers >= 1

    def test_p2ps_to_http_failover(self, cross_world):
        net, http_prov, p2ps_prov, consumer, handle, ex = cross_world
        # drive traffic to the pipe first so it is the preferred EPR
        net.get_node("hprov").go_down()
        ex.invoke(handle, "echo", {"message": "warm"}, timeout=1.0)
        net.get_node("hprov").go_up()
        net.get_node("pprov").go_down()
        assert ex.invoke(handle, "echo", {"message": "back"}, timeout=2.0) == "back"


class TestNoCandidates:
    def test_unreachable_scheme_reports_clearly(self, replicated_world):
        providers, consumer, handle, _ = replicated_world
        from repro.simnet import Kernel
        from repro.supervision import FailoverExecutor

        ex = FailoverExecutor(consumer.node.network.kernel)  # nothing registered
        with pytest.raises(InvocationError, match="no endpoint"):
            ex.invoke(handle, "echo", {"message": "x"}, timeout=0.5)
