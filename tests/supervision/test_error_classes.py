"""classify_error taxonomy, including the E15 replication verdicts."""

from repro.core.errors import InvocationError
from repro.transport.base import TransportError
from repro.replication.errors import ReplicaLagError, StateDivergedError
from repro.soap.faults import FaultCode, ReplicaLagFault, ServerBusyFault, SoapFault
from repro.supervision import BUSY, FAILOVER, FINAL, classify_error


class TestReplicationVerdicts:
    def test_replica_lag_fault_is_failover(self):
        """A lagging replica did not execute: the call should move to a
        more caught-up member, not die."""
        fault = ReplicaLagFault(behind_by=3, retry_after=0.25)
        assert classify_error(fault) == FAILOVER

    def test_replica_lag_error_is_failover(self):
        assert classify_error(ReplicaLagError("s", behind_by=2)) == FAILOVER

    def test_lag_fault_beats_generic_soap_fault_rule(self):
        """ReplicaLagFault *is* a SoapFault; the lag check must win over
        the faults-are-final default."""
        fault = ReplicaLagFault(behind_by=1, retry_after=0.1)
        assert isinstance(fault, SoapFault)
        assert classify_error(fault) == FAILOVER

    def test_state_diverged_is_final(self):
        """Divergence means no member is trustworthy — redirecting would
        silently pick a side of the conflict."""
        assert classify_error(StateDivergedError("cart-1")) == FINAL

    def test_lag_fault_survives_wire_round_trip(self):
        from repro.soap.envelope import SoapEnvelope
        from repro.xmlkit.reference import parse_reference

        wire = SoapEnvelope.for_fault(
            ReplicaLagFault(behind_by=4, retry_after=0.5)
        ).to_wire()
        back = SoapEnvelope.from_element(parse_reference(wire)).fault()
        assert isinstance(back, ReplicaLagFault)
        assert back.behind_by == 4
        assert back.retry_after == 0.5
        assert classify_error(back) == FAILOVER


class TestExistingTaxonomyUnchanged:
    def test_busy_is_busy(self):
        assert classify_error(ServerBusyFault(retry_after=1.0)) == BUSY

    def test_plain_soap_fault_is_final(self):
        assert classify_error(SoapFault(FaultCode.SERVER, "boom")) == FINAL

    def test_transport_errors_fail_over(self):
        assert classify_error(TransportError("conn refused")) == FAILOVER
        assert classify_error(InvocationError("no response")) == FAILOVER

    def test_unclassified_exceptions_fall_back_to_failover(self):
        """Anything the taxonomy has never heard of is treated as an
        infrastructure problem: try elsewhere rather than give up."""
        assert classify_error(RuntimeError("cosmic ray")) == FAILOVER
        assert classify_error(ValueError("bad juju")) == FAILOVER
        assert classify_error(KeyError("missing")) == FAILOVER
