"""AdmissionController and container-level load shedding."""

import pytest

from repro.core.events import RecordingListener
from repro.simnet import Kernel
from repro.soap.envelope import SoapEnvelope
from repro.soap.faults import ServerBusyFault
from repro.supervision import AdmissionController


def controller(kernel=None, **kwargs):
    kernel = kernel or Kernel()
    kwargs.setdefault("capacity", 2.0)
    kwargs.setdefault("drain_rate", 1.0)
    return kernel, AdmissionController(clock=lambda: kernel.now, **kwargs)


class TestLeakyBucket:
    def test_admits_until_capacity(self):
        _, a = controller(capacity=2.0)
        assert a.try_admit() == (True, 0.0)
        assert a.try_admit() == (True, 0.0)
        ok, retry_after = a.try_admit()
        assert not ok and retry_after > 0
        assert a.admitted == 2 and a.shed == 1

    def test_drains_over_virtual_time(self):
        kernel, a = controller(capacity=1.0, drain_rate=2.0)
        assert a.try_admit()[0]
        assert not a.try_admit()[0]
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        assert a.try_admit()[0]  # 2 units drained in 1s

    def test_retry_after_sized_to_drain(self):
        _, a = controller(capacity=1.0, drain_rate=4.0)
        a.try_admit()
        _, retry_after = a.try_admit()
        # level 1, capacity 1: one unit of room needs 1/4 s
        assert retry_after == pytest.approx(0.25)

    def test_unbounded_controller_never_sheds(self):
        _, a = controller(capacity=None)
        for _ in range(100):
            assert a.try_admit()[0]
        assert a.shed == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0.5)
        with pytest.raises(ValueError):
            AdmissionController(drain_rate=0.0)

    def test_saturation_reflects_level(self):
        _, a = controller(capacity=4.0)
        a.try_admit()
        a.try_admit()
        assert a.saturation == pytest.approx(0.5)


class TestContainerShedding:
    @pytest.fixture
    def world(self, net, registry_node):
        from tests.supervision.conftest import build_replicated_world

        providers, consumer, handle, _ = build_replicated_world(
            net, registry_node, n_providers=1
        )
        return net, providers[0], consumer, handle

    def test_overloaded_container_answers_busy(self, world):
        net, provider, consumer, handle = world
        provider.set_admission_control(capacity=1.0, drain_rate=0.01)
        assert consumer.invoke(handle, "echo", {"message": "a"}, timeout=1.0) == "a"
        assert consumer.invoke(handle, "echo", {"message": "b"}, timeout=1.0) == "b"
        with pytest.raises(ServerBusyFault) as excinfo:
            consumer.invoke(handle, "echo", {"message": "c"}, timeout=1.0)
        assert excinfo.value.retry_after > 0
        # the per-endpoint retry policy may retry the busy answer a few
        # times before surfacing it; every attempt is a shed
        assert provider.server.container.requests_shed >= 1

    def test_shed_fires_server_event(self, world):
        net, provider, consumer, handle = world
        listener = RecordingListener()
        provider.add_listener(listener)
        provider.set_admission_control(capacity=1.0, drain_rate=0.01)
        consumer.invoke(handle, "echo", {"message": "a"}, timeout=1.0)
        consumer.invoke(handle, "echo", {"message": "b"}, timeout=1.0)
        with pytest.raises(ServerBusyFault):
            consumer.invoke(handle, "echo", {"message": "c"}, timeout=1.0)
        assert listener.of_kind("request-shed")

    def test_shed_request_is_not_remembered_for_dedup(self, world):
        """A retransmitted MessageID whose first attempt was shed must
        execute once capacity frees — not replay 'busy' forever."""
        net, provider, consumer, handle = world
        container = provider.server.container
        admission = provider.set_admission_control(capacity=1.0, drain_rate=1.0)

        from repro.soap.rpc import build_rpc_request
        from repro.wsa.headers import MessageAddressingProperties

        endpoint = handle.endpoints[0]
        maps = MessageAddressingProperties.for_request(endpoint, "echo")
        envelope = build_rpc_request(handle.namespace, "echo", {"message": "x"},
                                     container.require("Echo").registry)
        maps.apply_to(envelope, target=endpoint)

        admission.level = admission.capacity  # saturated right now
        first = container.process_request("Echo", envelope)
        assert first.is_fault

        net.kernel.schedule(2.0, lambda: None)
        net.run()  # bucket drains
        second = container.process_request("Echo", envelope)  # same MessageID
        assert not second.is_fault

    def test_dedup_replay_bypasses_admission(self, world):
        """A duplicate of an already-executed request replays the
        retained response even when the provider is saturated — replay
        is cheap and must not burn admission budget."""
        net, provider, consumer, handle = world
        container = provider.server.container

        from repro.soap.rpc import build_rpc_request
        from repro.wsa.headers import MessageAddressingProperties

        endpoint = handle.endpoints[0]
        maps = MessageAddressingProperties.for_request(endpoint, "echo")
        envelope = build_rpc_request(handle.namespace, "echo", {"message": "x"},
                                     container.require("Echo").registry)
        maps.apply_to(envelope, target=endpoint)

        first = container.process_request("Echo", envelope)
        assert not first.is_fault
        admission = provider.set_admission_control(capacity=1.0, drain_rate=0.01)
        admission.level = admission.capacity
        replay = container.process_request("Echo", envelope)
        assert not replay.is_fault
        assert container.requests_shed == 0


class TestBusyFaultShape:
    def test_busy_fault_carries_hint_through_wire(self):
        fault = ServerBusyFault("at capacity", retry_after=0.75)
        wire = SoapEnvelope.for_fault(fault).to_wire()
        parsed = SoapEnvelope.from_wire(wire).fault()
        assert isinstance(parsed, ServerBusyFault)
        assert parsed.retry_after == pytest.approx(0.75)
