"""Locator staleness: supervision verdicts purge poisoned EPRs.

Discovery caches (UDDI registrations, flooded adverts) outlive the
providers that made them — the paper's transient peers guarantee it.
These tests walk the full staleness loop: deploy → locate → undeploy →
invoke (fails) → dead verdict → the next locate no longer hands out the
dead endpoint.
"""

import pytest

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.core.events import RecordingListener
from repro.supervision import HealthMonitor
from tests.supervision.conftest import Echo


@pytest.fixture
def world(net, registry_node):
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry_node.endpoint))
    provider.deploy(Echo(), name="Echo")
    provider.publish("Echo")
    consumer = WSPeer(
        net.add_node("cons"),
        StandardBinding(registry_node.endpoint),
        listener=RecordingListener(),
    )
    return net, provider, consumer


class TestQuarantine:
    def test_located_handle_keeps_live_endpoints(self, world):
        net, provider, consumer = world
        handle = consumer.locate_one("Echo")
        assert handle.endpoints
        assert consumer.invoke(handle, "echo", {"message": "ok"}) == "ok"

    def test_dead_verdict_drops_epr_from_next_locate(self, world):
        net, provider, consumer = world
        handle = consumer.locate_one("Echo")
        address = handle.endpoints[0].address

        ex = consumer.enable_failover()
        # the registry entry outlives the service: undeploy + down node
        provider.undeploy("Echo")
        provider.node.go_down()

        # enough failed calls to cross the dead_after threshold
        for _ in range(ex.health.dead_after):
            with pytest.raises(Exception):
                ex.invoke(handle, "echo", {"message": "x"}, timeout=0.25)
        assert ex.health.is_dead(address)
        assert address in consumer.client.locator.quarantined

        # stale registration is still in UDDI, but the locator now
        # filters the poisoned EPR out of what it returns
        stale = consumer.locate("Echo")
        assert all(
            e.address != address for h in stale for e in h.endpoints
        )

    def test_alive_verdict_restores_epr(self, world):
        net, provider, consumer = world
        handle = consumer.locate_one("Echo")
        address = handle.endpoints[0].address
        ex = consumer.enable_failover()
        locator = consumer.client.locator

        locator.mark_endpoint_dead(address)
        assert not consumer.locate("Echo")  # only EPR is quarantined

        ex.health.mark_dead(address)
        ex.health.record_success(address)  # e.g. a probe answered
        assert address not in locator.quarantined
        relocated = consumer.locate_one("Echo")
        assert relocated.endpoints[0].address == address

    def test_quarantine_events_fire_on_tree(self, world):
        net, provider, consumer = world
        listener = RecordingListener()
        consumer.add_listener(listener)
        locator = consumer.client.locator
        locator.mark_endpoint_dead("http://prov:80/services/Echo")
        locator.mark_endpoint_alive("http://prov:80/services/Echo")
        assert listener.of_kind("endpoint-quarantined")
        assert listener.of_kind("endpoint-restored")

    def test_direct_monitor_wiring_without_failover(self, world):
        """watch_health is usable standalone — no executor required."""
        net, provider, consumer = world
        monitor = HealthMonitor(
            clock=lambda: net.kernel.now, dead_after=1
        )
        consumer.client.locator.watch_health(monitor)
        handle = consumer.locate_one("Echo")
        monitor.record_failure(handle.endpoints[0].address)
        assert handle.endpoints[0].address in consumer.client.locator.quarantined
