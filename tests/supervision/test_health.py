"""HealthMonitor: decayed scores, verdicts, ranking, probes."""

from repro.reliability import OPEN, BreakerConfig, CircuitBreakerRegistry
from repro.simnet import Kernel
from repro.supervision import ALIVE, DEAD, HealthMonitor
from repro.wsa.epr import EndpointReference


def monitor(kernel=None, **kwargs):
    kernel = kernel or Kernel()
    return kernel, HealthMonitor(clock=lambda: kernel.now, **kwargs)


class TestScoring:
    def test_unknown_endpoint_scores_neutral(self):
        _, h = monitor()
        assert h.score("http://nowhere") == 0.5

    def test_successes_raise_failures_lower(self):
        _, h = monitor()
        for _ in range(5):
            h.record_success("http://good")
            h.record_failure("http://bad")
        assert h.score("http://good") > 0.5 > h.score("http://bad")

    def test_old_evidence_decays_toward_neutral(self):
        kernel, h = monitor(tau=10.0)
        for _ in range(10):
            h.record_failure("http://a")
        low = h.score("http://a")
        kernel.schedule(100.0, lambda: None)
        kernel.run()
        decayed = h.score("http://a")
        assert low < decayed < 0.51  # back near the prior

    def test_latency_ewma_tracks_observations(self):
        _, h = monitor()
        h.record_success("http://a", latency=0.1)
        h.record_success("http://a", latency=0.2)
        assert 0.1 < h.latency("http://a") < 0.2
        assert h.latency("http://unknown") is None


class TestVerdicts:
    def test_dead_after_consecutive_failures(self):
        _, h = monitor(dead_after=3)
        verdicts = []
        h.add_verdict_listener(lambda addr, v: verdicts.append((addr, v)))
        h.record_failure("http://a")
        h.record_failure("http://a")
        assert not h.is_dead("http://a")
        h.record_failure("http://a")
        assert h.is_dead("http://a")
        assert verdicts == [("http://a", DEAD)]

    def test_success_revives_and_emits_alive(self):
        _, h = monitor(dead_after=1)
        verdicts = []
        h.add_verdict_listener(lambda addr, v: verdicts.append(v))
        h.record_failure("http://a")
        h.record_success("http://a")
        assert not h.is_dead("http://a")
        assert verdicts == [DEAD, ALIVE]

    def test_mark_dead_is_immediate(self):
        _, h = monitor(dead_after=10)
        h.mark_dead("http://a")
        assert h.is_dead("http://a")

    def test_each_transition_fires_once(self):
        _, h = monitor(dead_after=1)
        verdicts = []
        h.add_verdict_listener(lambda addr, v: verdicts.append(v))
        h.record_failure("http://a")
        h.record_failure("http://a")  # still dead: no second verdict
        assert verdicts == [DEAD]

    def test_busy_does_not_count_toward_dead(self):
        _, h = monitor(dead_after=2)
        h.record_failure("http://a")
        h.record_busy("http://a", retry_after=1.0)
        h.record_failure("http://a")  # consecutive count was reset by busy
        assert not h.is_dead("http://a")


class TestBusyCooldown:
    def test_cooldown_lapses_with_time(self):
        kernel, h = monitor()
        h.record_busy("http://a", retry_after=2.0)
        assert h.in_busy_cooldown("http://a")
        kernel.schedule(2.5, lambda: None)
        kernel.run()
        assert not h.in_busy_cooldown("http://a")

    def test_success_clears_cooldown(self):
        _, h = monitor()
        h.record_busy("http://a", retry_after=100.0)
        h.record_success("http://a")
        assert not h.in_busy_cooldown("http://a")


class TestRanking:
    def eprs(self, *addresses):
        return [EndpointReference(a) for a in addresses]

    def test_healthy_before_unhealthy(self):
        _, h = monitor()
        h.record_success("http://good")
        h.record_failure("http://bad")
        ranked = h.rank(self.eprs("http://bad", "http://good"))
        assert [e.address for e in ranked] == ["http://good", "http://bad"]

    def test_dead_endpoints_sort_last_but_stay(self):
        _, h = monitor(dead_after=1)
        h.record_failure("http://dead")
        ranked = h.rank(self.eprs("http://dead", "http://unknown"))
        assert [e.address for e in ranked] == ["http://unknown", "http://dead"]

    def test_busy_cooldown_sorts_behind_fresh(self):
        _, h = monitor()
        h.record_busy("http://busy", retry_after=10.0)
        ranked = h.rank(self.eprs("http://busy", "http://fresh"))
        assert ranked[0].address == "http://fresh"

    def test_tie_breaks_by_address_deterministically(self):
        _, h = monitor()
        ranked = h.rank(self.eprs("http://b", "http://a", "http://c"))
        assert [e.address for e in ranked] == ["http://a", "http://b", "http://c"]

    def test_open_breaker_sorts_behind_closed(self):
        kernel, h = monitor()
        registry = CircuitBreakerRegistry(clock=lambda: kernel.now)
        breaker = registry.for_endpoint(
            "http://tripped", BreakerConfig(min_calls=1, failure_threshold=0.5)
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        h.attach_breakers(registry)
        # give the tripped endpoint a *better* score than the other:
        # breaker state must still dominate
        h.record_success("http://tripped")
        ranked = h.rank(self.eprs("http://tripped", "http://quiet"))
        assert ranked[0].address == "http://quiet"


class TestProbing:
    def test_probe_revives_dead_endpoint(self):
        kernel, h = monitor(dead_after=1)
        h.record_failure("http://a")
        assert h.is_dead("http://a")
        h.set_prober(lambda addr, done: done(True, 0.01))
        h.probe("http://a")
        assert not h.is_dead("http://a")
        assert h.probes_sent == 1

    def test_periodic_probing_targets_suspects(self):
        kernel, h = monitor(dead_after=1)
        h.record_failure("http://down")
        h.record_success("http://fine")
        probed = []
        h.set_prober(lambda addr, done: (probed.append(addr), done(True, 0.01)))
        h.start_probing(kernel, interval=1.0, until=3.5)
        kernel.run(until=10.0)
        assert "http://down" in probed
        assert "http://fine" not in probed

    def test_probe_without_prober_is_noop(self):
        _, h = monitor()
        h.probe("http://a")
        assert h.probes_sent == 0
