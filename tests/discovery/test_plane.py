"""The discovery plane end-to-end: publish, replicate, resolve, repair.

These tests drive real WSPeer peers over the simulated network — SOAP
frames, WSDL fetches, gossip frames and all.
"""

import pytest

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.core.errors import DiscoveryError
from repro.discovery import DiscoveryPlane
from repro.simnet import FixedLatency, Network


class Echo:
    def echo(self, message: str) -> str:
        return message


@pytest.fixture
def net():
    return Network(latency=FixedLatency(0.002))


@pytest.fixture
def plane(net):
    return DiscoveryPlane(net, shards=4, replication=2, cache_lifetime=30.0)


def make_peer(net, plane, node_id, **attach_kwargs):
    peer = WSPeer(net.add_node(node_id), StandardBinding(plane.registry_uris["registry-0"]))
    peer.enable_distributed_discovery(plane, **attach_kwargs)
    return peer


def publish_echo(net, plane, node_id="prov0", name="Echo", **attach_kwargs):
    prov = make_peer(net, plane, node_id, **attach_kwargs)
    prov.deploy(Echo(), name=name)
    prov.publish(name)
    net.run()
    return prov


class TestPublish:
    def test_replicated_r_ways(self, net, plane):
        publish_echo(net, plane)
        holding = [
            sid for sid, reg in plane.registries.items()
            if reg.registry.find_service("Echo")
        ]
        assert len(holding) == plane.replication
        assert set(holding) == set(plane.ring.nodes_for("Echo", plane.replication))

    def test_replica_keys_identical(self, net, plane):
        """Replication copies records verbatim — replicas agree on the key."""
        publish_echo(net, plane)
        keys = {
            reg.registry.find_service("Echo")[0]["serviceKey"]
            for reg in plane.registries.values()
            if reg.registry.find_service("Echo")
        }
        assert len(keys) == 1

    def test_shards_never_mint_colliding_keys(self, net, plane):
        """Two services homed on different shards get distinct keys
        (the operator-namespaced ``_new_key`` regression)."""
        for i in range(12):
            publish_echo(net, plane, node_id=f"p{i}", name=f"Svc{i}")
        keys = [
            s["serviceKey"]
            for reg in plane.registries.values()
            for s in reg.registry.find_service("%")
        ]
        # every occupied shard contributed; replicas share keys but
        # distinct services never collide
        assert len(set(keys)) == 12

    def test_publish_survives_dead_primary(self, net, plane):
        primary = plane.ring.nodes_for("Echo", 2)[0]
        plane.shard_node(primary).go_down()
        prov = publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        handles = cons.locate("Echo")
        assert len(handles) == 1

    def test_publish_fails_when_all_replicas_dead(self, net, plane):
        for shard in plane.ring.nodes_for("Echo", plane.replication):
            plane.shard_node(shard).go_down()
        prov = make_peer(net, plane, "prov0")
        prov.deploy(Echo(), name="Echo")
        from repro.core.errors import DeploymentError

        with pytest.raises(DeploymentError):
            prov.publish("Echo")

    def test_withdraw_removes_everywhere(self, net, plane):
        prov = publish_echo(net, plane)
        prov.server.publisher.withdraw(prov._deployed["Echo"])
        net.run()
        for reg in plane.registries.values():
            assert reg.registry.find_service("Echo") == []


class TestResolve:
    def test_locate_and_invoke_transparently(self, net, plane):
        publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        handle = cons.locate_one("Echo")
        assert cons.invoke(handle, "echo", {"message": "hi"}) == "hi"

    def test_second_locate_hits_cache_no_frames(self, net, plane):
        publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        cons.locate("Echo")
        net.run()
        before = net.sent.get("cons")
        handles = cons.locate("Echo")
        assert handles and net.sent.get("cons") == before
        assert cons.discovery.cache.hits == 1

    def test_cache_expiry_falls_back_to_registry(self, net, plane):
        publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        cons.locate("Echo")
        net.kernel.advance(31.0)  # past cache lifetime
        before = net.sent.get("cons")
        cons.locate("Echo")
        assert net.sent.get("cons") > before

    def test_lookup_survives_one_dead_replica(self, net, plane):
        publish_echo(net, plane)
        replicas = plane.ring.nodes_for("Echo", plane.replication)
        plane.shard_node(replicas[0]).go_down()
        cons = make_peer(net, plane, "cons")
        assert len(cons.locate("Echo", timeout=40.0)) == 1

    def test_lookup_fails_when_all_replicas_dead(self, net, plane):
        publish_echo(net, plane)
        for shard in plane.ring.nodes_for("Echo", plane.replication):
            plane.shard_node(shard).go_down()
        cons = make_peer(net, plane, "cons")
        with pytest.raises(DiscoveryError):
            cons.locate("Echo", timeout=40.0)

    def test_wildcard_scatters_to_all_shards(self, net, plane):
        for i in range(6):
            publish_echo(net, plane, node_id=f"p{i}", name=f"Svc{i}")
        cons = make_peer(net, plane, "cons")
        handles = cons.locate("Svc%")
        assert sorted(h.name for h in handles) == [f"Svc{i}" for i in range(6)]

    def test_locate_async_mirrors_sync(self, net, plane):
        publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        box = {}
        cons.locate_async(
            "Echo",
            lambda handle: box.setdefault("handle", handle),
            on_complete=lambda count, error: box.setdefault("done", (count, error)),
        )
        net.run()
        assert box["handle"].name == "Echo"
        assert box["done"] == (1, None)

    def test_locate_async_cache_hit_without_frames(self, net, plane):
        publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        cons.locate("Echo")
        net.run()
        before = net.sent.get("cons")
        box = {}
        cons.locate_async("Echo", lambda h: box.setdefault("handle", h))
        net.run()
        assert box["handle"].name == "Echo"
        assert net.sent.get("cons") == before


class TestReadRepair:
    def test_stale_replica_repaired_on_lookup(self, net, plane):
        publish_echo(net, plane)
        replicas = plane.ring.nodes_for("Echo", plane.replication)
        primary, secondary = replicas[0], replicas[1]
        # make the secondary diverge: wipe it behind the plane's back
        reg = plane.registries[secondary].registry
        for svc in reg.find_service("Echo"):
            reg.delete_service(svc["serviceKey"])
        assert reg.find_service("Echo") == []
        cons = make_peer(net, plane, "cons")
        cons.locate("Echo")
        net.run()  # let background imports land
        assert reg.find_service("Echo"), "lookup must write the record back"

    def test_repair_propagates_newest_revision(self, net, plane):
        prov = publish_echo(net, plane)
        prov.publish("Echo")  # re-publish bumps the revision on the primary
        net.run()
        replicas = plane.ring.nodes_for("Echo", plane.replication)
        revisions = set()
        for shard in replicas:
            reg = plane.registries[shard].registry
            svc = reg.find_service("Echo")[0]
            revisions.add(reg.revision_of(svc["serviceKey"]))
        assert len(revisions) == 1, "replicas converge on one revision"


class TestGossipFreshness:
    def test_reannounce_updates_consumer_cache(self, net, plane):
        prov = publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        cons.locate("Echo")
        net.run()
        rev_before = cons.discovery.cache.get("Echo")[0].revision
        prov.publish("Echo")  # re-publish gossips a fresher announcement
        net.run()
        items = cons.discovery.cache.get("Echo")
        assert items is not None and items[0].revision > rev_before

    def test_withdraw_tombstone_clears_consumer_cache(self, net, plane):
        prov = publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        cons.locate("Echo")
        net.run()
        prov.server.publisher.withdraw(prov._deployed["Echo"])
        net.run()
        assert cons.discovery.cache.get("Echo") is None


class TestSupervisionIntegration:
    def test_dead_verdict_invalidates_cache_and_quarantines(self, net, plane):
        publish_echo(net, plane)
        cons = make_peer(net, plane, "cons")
        cons.enable_failover()
        handle = cons.locate_one("Echo")
        address = handle.endpoints[0].address
        assert cons.discovery.cache.get("Echo") is not None
        health = cons.failover.health
        for _ in range(10):
            health.record_failure(address, fatal=True)
        health.mark_dead(address)
        assert cons.discovery.cache.get("Echo") is None
        assert address in cons.client.locator.quarantined

    def test_failover_before_discovery_order_also_wires(self, net, plane):
        publish_echo(net, plane)
        cons = WSPeer(
            net.add_node("cons"), StandardBinding(plane.registry_uris["registry-0"])
        )
        cons.enable_failover()
        cons.enable_distributed_discovery(plane)
        handle = cons.locate_one("Echo")
        address = handle.endpoints[0].address
        health = cons.failover.health
        for _ in range(10):
            health.record_failure(address, fatal=True)
        health.mark_dead(address)
        assert cons.discovery.cache.get("Echo") is None


class TestLeases:
    def test_expired_lease_drops_out_of_lookups(self, net, plane):
        publish_echo(net, plane, lease_ttl=20.0)
        cons = make_peer(net, plane, "cons")
        assert cons.locate("Echo")
        net.kernel.advance(60.0)  # past lease AND past consumer cache
        assert cons.locate("Echo") == []

    def test_republish_refreshes_lease(self, net, plane):
        prov = publish_echo(net, plane, lease_ttl=20.0)
        cons = make_peer(net, plane, "cons", with_gossip=False)
        net.kernel.advance(15.0)
        prov.publish("Echo")
        net.run()
        net.kernel.advance(15.0)  # 30s after first publish, 15 after refresh
        assert cons.locate("Echo")
