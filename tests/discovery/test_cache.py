"""RendezvousCache: TTL, gossip reconciliation, health invalidation."""

import pytest

from repro.discovery.cache import RendezvousCache
from repro.discovery.gossip import ServiceAnnouncement


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def cache(clock):
    return RendezvousCache(clock, lifetime=10.0)


def put_echo(cache, key="uuid:r0:svc-000001", endpoints=None, revision=1):
    cache.put("Echo", key, endpoints or ["http://prov:80/e"], "<wsdl/>", revision)


class TestBasics:
    def test_miss_then_hit(self, cache):
        assert cache.get("Echo") is None
        put_echo(cache)
        items = cache.get("Echo")
        assert items is not None and items[0].wsdl_text == "<wsdl/>"
        assert cache.hits == 1 and cache.misses == 1

    def test_expires_after_lifetime(self, cache, clock):
        put_echo(cache)
        clock.now = 11.0
        assert cache.get("Echo") is None

    def test_put_rearms_ttl(self, cache, clock):
        put_echo(cache)
        clock.now = 8.0
        put_echo(cache, revision=2)
        clock.now = 16.0  # 8s after refresh
        assert cache.get("Echo") is not None

    def test_never_regresses_to_stale_revision(self, cache):
        put_echo(cache, revision=5, endpoints=["http://new/e"])
        put_echo(cache, revision=3, endpoints=["http://old/e"])
        assert cache.get("Echo")[0].endpoints == ["http://new/e"]

    def test_multiple_providers_kept(self, cache):
        put_echo(cache, key="uuid:r0:svc-1")
        put_echo(cache, key="uuid:r1:svc-2", endpoints=["http://other:80/e"])
        assert len(cache.get("Echo")) == 2

    def test_invalidate(self, cache):
        put_echo(cache)
        cache.invalidate("Echo")
        assert cache.get("Echo") is None
        assert cache.invalidations == 1


class TestGossipReconciliation:
    def test_fresher_announcement_updates_endpoints(self, cache):
        put_echo(cache, revision=1)
        cache.on_announcement(
            ServiceAnnouncement(
                "Echo", "prov", 3, endpoints=["http://moved:80/e"],
                service_key="uuid:r0:svc-000001",
            )
        )
        item = cache.get("Echo")[0]
        assert item.endpoints == ["http://moved:80/e"]
        assert item.revision == 3

    def test_stale_announcement_ignored(self, cache):
        put_echo(cache, revision=5)
        cache.on_announcement(
            ServiceAnnouncement(
                "Echo", "prov", 2, endpoints=["http://old:80/e"],
                service_key="uuid:r0:svc-000001",
            )
        )
        assert cache.get("Echo")[0].endpoints == ["http://prov:80/e"]

    def test_tombstone_drops_provider(self, cache):
        put_echo(cache, revision=1)
        cache.on_announcement(
            ServiceAnnouncement(
                "Echo", "prov", 2, endpoints=[], service_key="uuid:r0:svc-000001"
            )
        )
        assert cache.get("Echo") is None

    def test_unknown_provider_invalidates_entry(self, cache):
        """News about a provider we don't hold means our picture is
        incomplete — force a refetch rather than serve half an answer."""
        put_echo(cache)
        cache.on_announcement(
            ServiceAnnouncement(
                "Echo", "other", 1, endpoints=["http://second:80/e"],
                service_key="uuid:r9:svc-000099",
            )
        )
        assert cache.get("Echo") is None

    def test_uncached_service_untouched(self, cache):
        cache.on_announcement(
            ServiceAnnouncement("Nope", "prov", 1, endpoints=["e"], service_key="k")
        )
        assert cache.size == 0


class TestHealthInvalidation:
    def test_dead_endpoint_stripped_everywhere(self, cache):
        put_echo(cache, key="k1", endpoints=["http://a:80/e", "http://b:80/e"])
        cache.invalidate_endpoint("http://a:80/e")
        assert cache.get("Echo")[0].endpoints == ["http://b:80/e"]

    def test_entry_dropped_when_no_endpoint_left(self, cache):
        put_echo(cache, endpoints=["http://a:80/e"])
        cache.invalidate_endpoint("http://a:80/e")
        assert cache.get("Echo") is None

    def test_watch_health_wires_dead_verdicts(self, clock):
        from repro.supervision.health import HealthMonitor

        cache = RendezvousCache(clock, lifetime=100.0)
        put_echo(cache, endpoints=["http://a:80/e"])
        monitor = HealthMonitor(clock=clock)
        cache.watch_health(monitor)
        for _ in range(10):
            monitor.record_failure("http://a:80/e", fatal=True)
        monitor.mark_dead("http://a:80/e")
        assert cache.get("Echo") is None
