"""Consistent-hash ring: ownership, replica sets, stability."""

import pytest

from repro.discovery.ring import HashRing, stable_hash


def shard_ids(n):
    return [f"registry-{i}" for i in range(n)]


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("Echo") == stable_hash("Echo")

    def test_spreads(self):
        values = {stable_hash(f"svc-{i}") for i in range(1000)}
        assert len(values) == 1000

    def test_differs_from_builtin_hash_salting(self):
        # 64-bit range, not Python's salted hash
        assert 0 <= stable_hash("x") < 2**64


class TestOwnership:
    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert ring.node_for("anything") == "only"

    def test_empty_ring_raises(self):
        with pytest.raises(ValueError):
            HashRing().node_for("x")

    def test_owner_is_member(self):
        ring = HashRing(shard_ids(5))
        for i in range(100):
            assert ring.node_for(f"svc-{i}") in ring

    def test_every_client_agrees(self):
        a = HashRing(shard_ids(4))
        b = HashRing(reversed(shard_ids(4)))  # insertion order irrelevant
        for i in range(200):
            assert a.node_for(f"svc-{i}") == b.node_for(f"svc-{i}")

    def test_distribution_roughly_even(self):
        ring = HashRing(shard_ids(4))
        counts = {n: 0 for n in ring.nodes}
        for i in range(4000):
            counts[ring.node_for(f"svc-{i}")] += 1
        for count in counts.values():
            assert 500 < count < 1700  # ~1000 each with vnode smoothing


class TestReplicaSets:
    def test_distinct_replicas(self):
        ring = HashRing(shard_ids(5))
        for i in range(100):
            replicas = ring.nodes_for(f"svc-{i}", 3)
            assert len(replicas) == 3
            assert len(set(replicas)) == 3

    def test_primary_first(self):
        ring = HashRing(shard_ids(5))
        for i in range(50):
            key = f"svc-{i}"
            assert ring.nodes_for(key, 3)[0] == ring.node_for(key)

    def test_n_clamped_to_ring_size(self):
        ring = HashRing(shard_ids(2))
        assert len(ring.nodes_for("x", 5)) == 2


class TestStability:
    def test_adding_shard_remaps_about_one_over_n(self):
        """The consistent-hashing property: scaling out N -> N+1 moves
        only ~1/(N+1) of the keyspace."""
        n = 4
        before = HashRing(shard_ids(n))
        after = HashRing(shard_ids(n + 1))
        keys = [f"svc-{i}" for i in range(5000)]
        moved = sum(1 for k in keys if before.node_for(k) != after.node_for(k))
        expected = len(keys) / (n + 1)
        assert moved < 2 * expected  # ~1000 expected; far below the ~4000 a mod-hash moves
        assert moved > 0

    def test_removing_shard_only_remaps_its_keys(self):
        ring = HashRing(shard_ids(4))
        keys = [f"svc-{i}" for i in range(2000)]
        owners = {k: ring.node_for(k) for k in keys}
        ring.remove_node("registry-2")
        for k in keys:
            if owners[k] != "registry-2":
                assert ring.node_for(k) == owners[k]
            else:
                assert ring.node_for(k) != "registry-2"

    def test_add_remove_round_trip(self):
        ring = HashRing(shard_ids(4))
        keys = [f"svc-{i}" for i in range(500)]
        owners = {k: ring.node_for(k) for k in keys}
        ring.add_node("registry-9")
        ring.remove_node("registry-9")
        assert {k: ring.node_for(k) for k in keys} == owners
