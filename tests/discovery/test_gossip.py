"""Gossip: freshness counters, supersession, TTL expiry, spread."""

import pytest

from repro.discovery.gossip import GOSSIP_PORT, GossipNode, ServiceAnnouncement
from repro.simnet import FixedLatency, Network


@pytest.fixture
def net():
    return Network(latency=FixedLatency(0.002))


def mesh(net, n, **kwargs):
    """n fully-linked gossip agents."""
    agents = [GossipNode(net.add_node(f"peer-{i}"), **kwargs) for i in range(n)]
    for a in agents:
        a.link(*[b.node.id for b in agents if b is not a])
    return agents


class TestAnnouncementWire:
    def test_round_trip(self):
        ann = ServiceAnnouncement(
            "Echo", "peer-0", 7, 30.0, ["http://prov:80/services/Echo"],
            service_key="uuid:prov:svc-000001", wsdl_url="http://prov:80/x.wsdl",
            hops=3,
        )
        back = ServiceAnnouncement.from_wire(ann.to_wire())
        assert back.service == "Echo"
        assert back.origin == "peer-0"
        assert back.seq == 7
        assert back.valid_time == 30.0
        assert back.endpoints == ["http://prov:80/services/Echo"]
        assert back.service_key == "uuid:prov:svc-000001"
        assert back.wsdl_url == "http://prov:80/x.wsdl"
        assert back.hops == 3

    def test_withdrawal_is_empty_endpoints(self):
        ann = ServiceAnnouncement("Echo", "peer-0", 2, endpoints=[])
        assert ann.is_withdrawal
        assert ServiceAnnouncement.from_wire(ann.to_wire()).is_withdrawal


class TestFreshness:
    def test_higher_seq_supersedes(self, net):
        a, b, *_ = mesh(net, 3)
        a.announce("Echo", ["http://old:80/e"])
        net.run()
        a.announce("Echo", ["http://new:80/e"])
        net.run()
        assert b.freshest_for("Echo").endpoints == ["http://new:80/e"]
        assert b.freshest_for("Echo").seq == 2

    def test_stale_seq_dropped_without_clocks(self, net):
        a, b, *_ = mesh(net, 3)
        # b already holds seq 5 for (Echo, peer-0)
        b._accept(ServiceAnnouncement("Echo", "peer-0", 5, endpoints=["http://v5/e"]))
        assert not b._accept(
            ServiceAnnouncement("Echo", "peer-0", 3, endpoints=["http://v3/e"])
        )
        assert b.freshest_for("Echo").endpoints == ["http://v5/e"]

    def test_equal_seq_dropped(self, net):
        (a,) = mesh(net, 1)
        assert a._accept(ServiceAnnouncement("Echo", "x", 1, endpoints=["e"]))
        assert not a._accept(ServiceAnnouncement("Echo", "x", 1, endpoints=["e2"]))

    def test_per_origin_counters_independent(self, net):
        (a,) = mesh(net, 1)
        a._accept(ServiceAnnouncement("Echo", "p1", 9, endpoints=["e1"]))
        assert a._accept(ServiceAnnouncement("Echo", "p2", 1, endpoints=["e2"]))
        assert len(a.entries_for("Echo")) == 2

    def test_explicit_seq_keeps_counter_monotonic(self, net):
        (a,) = mesh(net, 1)
        a.announce("Echo", ["e"], seq=10)
        nxt = a.announce("Echo", ["e2"])  # implicit must go beyond 10
        assert nxt.seq == 11


class TestExpiry:
    def test_entries_expire_after_valid_time(self, net):
        a, b = mesh(net, 2, valid_time=5.0)
        a.announce("Echo", ["http://prov/e"])
        net.run()
        assert b.freshest_for("Echo") is not None
        net.kernel.advance(6.0)
        assert b.freshest_for("Echo") is None

    def test_reannounce_rearms_ttl(self, net):
        a, b = mesh(net, 2, valid_time=5.0)
        a.announce("Echo", ["e"])
        net.run()
        net.kernel.advance(4.0)
        a.announce("Echo", ["e"])
        net.run()
        net.kernel.advance(4.0)  # 8s after first, 4s after second
        assert b.freshest_for("Echo") is not None


class TestSpread:
    def test_reaches_all_members_of_mesh(self, net):
        agents = mesh(net, 8)
        agents[0].announce("Echo", ["http://prov/e"])
        net.run()
        for agent in agents[1:]:
            assert agent.freshest_for("Echo") is not None

    def test_epidemic_terminates(self, net):
        agents = mesh(net, 6)
        agents[0].announce("Echo", ["e"])
        fired = net.run()
        assert fired < 10_000  # stale-drop rule stops re-forwarding

    def test_withdrawal_spreads(self, net):
        agents = mesh(net, 4)
        agents[0].announce("Echo", ["e"])
        net.run()
        agents[0].withdraw("Echo")
        net.run()
        for agent in agents:
            assert agent.freshest_for("Echo") is None

    def test_gossip_frames_tagged_in_trace(self, net):
        from repro.simnet.trace import TraceLog

        net.trace = TraceLog(enabled=True)
        a, b = mesh(net, 2)
        a.announce("Echo", ["e"])
        net.run()
        tagged = [r for r in net.trace.records if r.detail.get("gossip")]
        assert tagged, "gossip frames must carry the gossip trace tag"
        assert all(
            r.detail["port"] == GOSSIP_PORT for r in tagged if "port" in r.detail
        )

    def test_down_node_neither_sends_nor_wedges(self, net):
        a, b, c = mesh(net, 3)
        b.node.go_down()
        a.announce("Echo", ["e"])
        net.run()
        assert c.freshest_for("Echo") is not None
        assert b.freshest_for("Echo") is None

    def test_listeners_fire_on_accept(self, net):
        a, b = mesh(net, 2)
        seen = []
        b.add_listener(lambda ann: seen.append((ann.service, ann.seq)))
        a.announce("Echo", ["e"])
        a.announce("Echo", ["e2"])
        net.run()
        assert ("Echo", 1) in seen and ("Echo", 2) in seen
