"""Robustness under hostile/garbage input: servers must never crash."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.transport.http import HttpClient, HttpRequest
from repro.uddi import UddiRegistryNode


class Echo:
    def echo(self, message: str) -> str:
        return message


GARBAGE = [
    "",
    "not xml at all",
    "<unclosed",
    "<?xml version='1.0'?><wrong-root/>",
    "<soapenv:Envelope xmlns:soapenv='http://schemas.xmlsoap.org/soap/envelope/'>"
    "</soapenv:Envelope>",  # no Body
    "\x00\x01\x02 binary-ish",
    "<a>" * 50,  # deeply unclosed
    "<!DOCTYPE html><a/>",
]


@pytest.fixture
def http_world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
    provider.deploy(Echo(), name="Echo")
    client_node = net.add_node("attacker")
    return net, provider, HttpClient(client_node, default_timeout=2.0)


class TestHttpGarbage:
    def test_garbage_bodies_get_error_responses(self, http_world):
        net, provider, client = http_world
        for garbage in GARBAGE:
            response = client.request(
                "prov", 80, HttpRequest("POST", "/services/Echo", garbage)
            )
            assert response.status in (400, 500), garbage
        # the server is still alive and serving
        ok = client.request(
            "prov", 80,
            HttpRequest("GET", "/services/Echo.wsdl"),
        )
        assert ok.status == 200

    def test_unknown_paths_still_404(self, http_world):
        net, provider, client = http_world
        response = client.request("prov", 80, HttpRequest("POST", "/evil", "x"))
        assert response.status == 404

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=200))
    def test_fuzzed_bodies_never_crash_the_server(self, body):
        net = Network(latency=FixedLatency(0.001))
        registry = UddiRegistryNode(net.add_node("registry"))
        provider = WSPeer(net.add_node("prov"), StandardBinding(registry.endpoint))
        provider.deploy(Echo(), name="Echo")
        client = HttpClient(net.add_node("fuzzer"), default_timeout=2.0)
        response = client.request(
            "prov", 80, HttpRequest("POST", "/services/Echo", body)
        )
        assert response.status in (200, 400, 500)


class TestP2psGarbage:
    @pytest.fixture
    def pipe_world(self):
        net = Network(latency=FixedLatency(0.002))
        group = PeerGroup("g")
        provider = WSPeer(net.add_node("prov"), P2psBinding(group), name="prov")
        provider.deploy(Echo(), name="Echo")
        provider.publish("Echo")
        net.run()
        consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
        handle = consumer.locate_one("Echo")
        return net, provider, consumer, handle

    def test_garbage_down_invoke_pipe_does_not_crash_provider(self, pipe_world):
        net, provider, consumer, handle = pipe_world
        from repro.core.events import RecordingListener
        from repro.core.p2psmap import pipe_from_epr

        listener = RecordingListener()
        provider.add_listener(listener)
        target = pipe_from_epr(handle.endpoints[0])
        out = consumer.peer.open_output_pipe(target)
        for garbage in GARBAGE:
            consumer.peer.send_down_pipe(out, garbage)
        net.run()  # must not raise
        assert listener.of_kind("malformed-request")
        # the provider still answers real requests afterwards
        assert consumer.invoke(handle, "echo", message="alive") == "alive"

    def test_garbage_p2ps_protocol_messages_ignored(self, pipe_world):
        net, provider, consumer, handle = pipe_world
        # raw junk on the p2ps protocol port — a peer that crashed here
        # would take discovery down with it
        attacker = net.add_node("attacker")
        for garbage in GARBAGE:
            attacker.send("prov", "p2ps", garbage)
        attacker.send("prov", "p2ps", "<NotAMessage/>")  # well-formed, wrong shape
        net.run()  # must not raise
        assert consumer.invoke(handle, "echo", message="still-up") == "still-up"

    def test_soap_without_wsa_headers_is_processed_oneway(self, pipe_world):
        # a bare SOAP request with no addressing headers: dispatched but
        # no reply can be routed — the provider must not fall over
        net, provider, consumer, handle = pipe_world
        from repro.core.p2psmap import pipe_from_epr
        from repro.soap.rpc import build_rpc_request

        target = pipe_from_epr(handle.endpoints[0])
        out = consumer.peer.open_output_pipe(target)
        naked = build_rpc_request(handle.namespace, "echo", {"message": "x"})
        consumer.peer.send_down_pipe(out, naked.to_wire())
        net.run()
        assert consumer.invoke(handle, "echo", message="fine") == "fine"
