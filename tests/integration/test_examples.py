"""Smoke tests: every shipped example must run cleanly end-to-end."""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return buffer.getvalue()


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name):
    output = run_example(name)
    assert output.strip(), f"{name} produced no output"


def test_expected_example_set_present():
    assert {
        "quickstart.py",
        "p2p_discovery.py",
        "triana_workflow.py",
        "cactus_streaming.py",
        "catnets_market.py",
        "semantic_discovery.py",
        "wire_inspection.py",
    } <= set(EXAMPLES)


class TestExampleOutputs:
    def test_quickstart_shows_invocation_and_events(self):
        output = run_example("quickstart.py")
        assert "Hello, world!" in output
        assert "MessageEvent" in output

    def test_p2p_discovery_invokes_across_groups(self):
        output = run_example("p2p_discovery.py")
        assert "rendered:nebula@640px" in output
        assert "async completed" in output

    def test_workflow_reports(self):
        output = run_example("triana_workflow.py")
        assert "signal report" in output
        assert "wave 2: mean, peak" in output

    def test_cactus_streams(self):
        output = run_example("cactus_streaming.py")
        assert "streamed 24 snapshots" in output

    def test_market_clears(self):
        output = run_example("catnets_market.py")
        assert "purchases" in output

    def test_semantic_ranks(self):
        output = run_example("semantic_discovery.py")
        assert "EXACT" in output and "PLUGIN" in output

    def test_wiretap_shows_soap(self):
        output = run_example("wire_inspection.py")
        assert "SOAP ask" in output
        assert "wsa:ReplyTo" in output
