"""The grand integration scenario: everything at once.

A two-campus network: campus A runs the standard stack (UDDI registry,
HTTP services); campus B is a P2PS peer group.  Rendezvous bridges, a
NATed peer with a relay, mixed-binding consumers, a cross-campus
workflow, churn, and retransmission — all in one seeded world.  This is
the closest thing to the paper's vision of one homogenising layer over
"vastly different environments".
"""

import pytest

from repro.apps import Toolbox, Workflow, WorkflowEngine
from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.invocation import HttpInvocation
from repro.core.locator import UddiServiceLocator
from repro.p2ps import Peer, PeerGroup
from repro.simnet import FixedLatency, Network, TraceLog
from repro.simnet.faults import NatGate
from repro.uddi import UddiRegistryNode


class Sensors:
    def sample(self, count: int) -> list:
        return [float(i % 7) for i in range(count)]


class Statistics:
    def mean(self, values: list) -> float:
        return sum(values) / len(values)


class Archive:
    def __init__(self):
        self.records = []

    def store(self, value: float) -> int:
        self.records.append(value)
        return len(self.records)


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.004), trace=TraceLog(enabled=True))
    registry = UddiRegistryNode(net.add_node("registry"))
    campus_b = PeerGroup("campus-b")

    # campus A: standard-stack providers
    sensors_host = WSPeer(net.add_node("sensors"), StandardBinding(registry.endpoint))
    sensors_host.deploy(Sensors(), name="Sensors")
    sensors_host.publish("Sensors")

    # campus B: P2PS providers, one behind NAT with a relay
    relay = Peer(net.add_node("relay"), name="relay", rendezvous=True)
    relay.join(campus_b)
    stats_host = WSPeer(net.add_node("stats"), P2psBinding(campus_b), name="stats")
    stats_host.deploy(Statistics(), name="Statistics")
    stats_host.publish("Statistics")

    archive = Archive()
    archive_host = WSPeer(net.add_node("archive"), P2psBinding(campus_b), name="archive")
    archive_host.peer.relay_node_id = "relay"
    archive_host.peer._safe_send("relay", "<hello/>")
    net.run()
    archive_host.peer.nat_gate = NatGate(net, "archive")
    archive_host.deploy(archive, name="Archive")
    archive_host.publish("Archive")
    net.run()

    # the orchestrating node: P2PS-bound, UDDI locator mixed in for
    # campus-A services (the paper's §IV composition)
    triana = WSPeer(net.add_node("triana"), P2psBinding(campus_b), name="triana")
    return net, registry, triana, archive


def test_grand_scenario(world):
    net, registry, triana, archive = world

    # --- discovery across both worlds -------------------------------------
    p2ps_locator = triana.client.locator
    uddi_locator = UddiServiceLocator(triana.node, registry.endpoint)
    p2ps_invoker = triana.client.invocation
    http_invoker = HttpInvocation(triana.node)

    triana.client.register_locator(uddi_locator)
    triana.client.register_invocation(http_invoker)
    sensors = triana.locate_one("Sensors")
    assert sensors.source == "uddi"

    triana.client.register_locator(p2ps_locator)
    triana.client.register_invocation(p2ps_invoker)
    stats = triana.locate_one("Statistics", timeout=5.0)
    archive_handle = triana.locate_one("Archive", timeout=5.0)
    assert stats.source == "p2ps"
    assert archive_handle.endpoints[0].address.startswith("p2ps://")

    # --- cross-campus pipeline --------------------------------------------
    triana.client.register_invocation(http_invoker)
    samples = triana.invoke(sensors, "sample", count=21)
    assert len(samples) == 21

    triana.client.register_invocation(p2ps_invoker)
    mean = triana.invoke(stats, "mean", values=samples)
    assert mean == pytest.approx(sum(samples) / len(samples))

    # the archive is behind NAT: the invocation must ride the relay
    count = triana.invoke(archive_handle, "store", value=mean)
    assert count == 1
    assert archive.records == [mean]

    # --- churn: the stats host dies; retries fail cleanly; a newly
    #     deployed replacement takes over at runtime --------------------------
    stats_node = net.get_node("stats")
    stats_node.go_down()
    from repro.core import InvocationError

    with pytest.raises(InvocationError):
        triana.invoke(stats, "mean", {"values": samples}, timeout=0.5)

    replacement = WSPeer(
        net.add_node("stats2"), P2psBinding(triana.peer.group), name="stats2"
    )
    replacement.deploy(Statistics(), name="Statistics")
    replacement.publish("Statistics")
    net.run()
    handles = triana.locate("Statistics", timeout=5.0, expect=2)
    live = [h for h in handles if replacement.peer.id in h.endpoints[0].address]
    assert live, "replacement service must be discoverable"
    assert triana.invoke(live[0], "mean", values=[2.0, 4.0]) == 3.0


def test_grand_scenario_workflow(world):
    net, registry, triana, archive = world
    # toolbox mixing both discovery worlds
    uddi_locator = UddiServiceLocator(triana.node, registry.endpoint)
    http_invoker = HttpInvocation(triana.node)
    p2ps_locator = triana.client.locator
    p2ps_invoker = triana.client.invocation

    triana.client.register_locator(uddi_locator)
    triana.client.register_invocation(http_invoker)
    toolbox = Toolbox(triana)
    toolbox.discover("Sensors")

    triana.client.register_locator(p2ps_locator)
    triana.client.register_invocation(p2ps_invoker)
    toolbox.discover("Statistics")

    # workflow engine invokes through whatever invoker is registered at
    # run time — here P2PS can't reach the HTTP-only Sensors, so run the
    # sensor task over HTTP first, then the stats leg over pipes
    wf = Workflow("cross-campus")
    wf.add_task("acquire", toolbox.tool("Sensors.sample"), constants={"count": 14})
    triana.client.register_invocation(http_invoker)
    acquired = WorkflowEngine(triana).run(wf)["acquire"]

    wf2 = Workflow("analyse")
    wf2.add_task("mean", toolbox.tool("Statistics.mean"),
                 constants={"values": acquired})
    triana.client.register_invocation(p2ps_invoker)
    results = WorkflowEngine(triana).run(wf2)
    assert results["mean"] == pytest.approx(sum(acquired) / len(acquired))
