"""Suite-wide hygiene fixtures.

Trace-context propagation (E17) is a process-global switch with an
ambient context stack — ``WSPeer.enable_observability`` turns it on
for the whole process.  Every test therefore gets the switch and the
stack restored afterwards, so a test that enables propagation cannot
leak header emission into its neighbours.
"""

import pytest

from repro.observability import tracecontext


@pytest.fixture(autouse=True)
def _reset_trace_propagation():
    yield
    tracecontext.reset()
