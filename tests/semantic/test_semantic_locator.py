"""Integration: semantic discovery plugged into the WSPeer tree."""

import pytest

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.core.events import RecordingListener
from repro.p2ps import PeerGroup
from repro.semantic import (
    MatchDegree,
    Ontology,
    SemanticServiceLocator,
    SemanticServiceQuery,
    ServiceProfile,
)
from repro.semantic.locator import attach_profile, profile_of
from repro.simnet import FixedLatency, Network


class CarSeller:
    def sell(self, budget: float) -> dict:
        return {"car": "roadster", "price": budget}


class TruckSeller:
    def sell(self, budget: float) -> dict:
        return {"truck": "hauler", "price": budget}


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("market")
    onto = Ontology("vehicles")
    onto.add_concept("Vehicle")
    onto.add_concept("Car", ["Vehicle"])
    onto.add_concept("SportsCar", ["Car"])
    onto.add_concept("Truck", ["Vehicle"])
    onto.add_concept("Price")

    def provider(name, service, profile):
        peer = WSPeer(net.add_node(f"n-{name}"), P2psBinding(group), name=name)
        peer.deploy(service, name=name)
        attach_profile(peer, name, profile)
        peer.publish(name)
        return peer

    sports = provider(
        "SportsCarShop", CarSeller(),
        ServiceProfile("SportsCarShop", ("Price",), ("SportsCar",)),
    )
    trucks = provider(
        "TruckShop", TruckSeller(),
        ServiceProfile("TruckShop", ("Price",), ("Truck",)),
    )
    net.run()
    consumer = WSPeer(net.add_node("buyer"), P2psBinding(group), name="buyer")
    consumer.client.register_locator(
        SemanticServiceLocator(consumer.client.locator, onto)
    )
    return net, consumer, onto


class TestSemanticLocate:
    def test_capability_query_finds_by_concept(self, world):
        net, consumer, _ = world
        handles = consumer.locate(
            SemanticServiceQuery(outputs=("Car",)), timeout=5.0
        )
        # only the sports-car shop produces a Car (SportsCar plugs in)
        assert [h.name for h in handles] == ["SportsCarShop"]
        assert handles[0].attributes["match-degree"] == "PLUGIN"

    def test_general_query_ranks_all(self, world):
        net, consumer, _ = world
        handles = consumer.locate(
            SemanticServiceQuery(outputs=("Vehicle",)), timeout=5.0
        )
        assert {h.name for h in handles} == {"SportsCarShop", "TruckShop"}

    def test_min_degree_exact_filters_plugins(self, world):
        net, consumer, _ = world
        handles = consumer.locate(
            SemanticServiceQuery(outputs=("Car",), min_degree=MatchDegree.EXACT),
            timeout=5.0,
        )
        assert handles == []

    def test_located_service_is_invocable(self, world):
        net, consumer, _ = world
        handle = consumer.locate(SemanticServiceQuery(outputs=("Car",)), timeout=5.0)[0]
        result = consumer.invoke(handle, "sell", budget=100.0)
        assert result["car"] == "roadster"

    def test_plain_queries_pass_through(self, world):
        net, consumer, _ = world
        handles = consumer.locate("TruckShop", timeout=5.0)
        assert [h.name for h in handles] == ["TruckShop"]

    def test_profile_extractable_from_handle(self, world):
        net, consumer, _ = world
        handle = consumer.locate("TruckShop", timeout=5.0)[0]
        profile = profile_of(handle)
        assert profile.outputs == ("Truck",)

    def test_unprofiled_services_skipped_with_event(self, world):
        net, consumer, onto = world
        # add a provider without a profile
        group = consumer.peer.group
        plain = WSPeer(net.add_node("plain"), P2psBinding(group), name="plain")
        plain.deploy(CarSeller(), name="PlainShop")
        plain.publish("PlainShop")
        net.run()
        listener = RecordingListener()
        consumer.add_listener(listener)
        handles = consumer.locate(SemanticServiceQuery(outputs=("Vehicle",)), timeout=5.0)
        assert "PlainShop" not in [h.name for h in handles]
        skipped = [e for e in listener.of_kind("service-skipped")
                   if e.detail.get("service") == "PlainShop"]
        assert skipped

    def test_semantic_events_fired(self, world):
        net, consumer, _ = world
        listener = RecordingListener()
        consumer.add_listener(listener)
        consumer.locate(SemanticServiceQuery(outputs=("Car",)), timeout=5.0)
        kinds = listener.kinds()
        assert "query-issued" in kinds
        found = [e for e in listener.of_kind("service-found")
                 if e.detail.get("via") == "semantic"]
        assert found and found[0].detail["degree"] == "PLUGIN"
