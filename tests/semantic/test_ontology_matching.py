"""Tests for the ontology, profiles and capability matchmaking."""

import pytest

from repro.semantic import (
    MatchDegree,
    Matchmaker,
    Ontology,
    OntologyError,
    ServiceProfile,
)


@pytest.fixture
def vehicles():
    """The classic example hierarchy."""
    onto = Ontology("vehicles")
    onto.add_concept("Vehicle")
    onto.add_concept("Car", ["Vehicle"])
    onto.add_concept("SportsCar", ["Car"])
    onto.add_concept("Truck", ["Vehicle"])
    onto.add_concept("Price")
    onto.add_concept("RetailPrice", ["Price"])
    onto.add_concept("Location")
    return onto


class TestOntology:
    def test_root_exists(self):
        assert Ontology().has("Thing")

    def test_default_parent_is_root(self, vehicles):
        assert vehicles.parents("Vehicle") == {"Thing"}

    def test_duplicate_rejected(self, vehicles):
        with pytest.raises(OntologyError):
            vehicles.add_concept("Car")

    def test_unknown_parent_rejected(self, vehicles):
        with pytest.raises(OntologyError):
            vehicles.add_concept("Boat", ["Watercraft"])

    def test_empty_name_rejected(self):
        with pytest.raises(OntologyError):
            Ontology().add_concept("  ")

    def test_ancestors(self, vehicles):
        assert vehicles.ancestors("SportsCar") == {"Car", "Vehicle", "Thing"}

    def test_descendants(self, vehicles):
        assert vehicles.descendants("Vehicle") == {"Car", "SportsCar", "Truck"}

    def test_subsumption_reflexive(self, vehicles):
        assert vehicles.is_subconcept("Car", "Car")

    def test_subsumption_transitive(self, vehicles):
        assert vehicles.is_subconcept("SportsCar", "Vehicle")
        assert not vehicles.is_subconcept("Vehicle", "SportsCar")

    def test_siblings_unrelated(self, vehicles):
        assert not vehicles.is_subconcept("Car", "Truck")
        assert not vehicles.is_subconcept("Truck", "Car")

    def test_distance(self, vehicles):
        assert vehicles.distance("SportsCar", "SportsCar") == 0
        assert vehicles.distance("SportsCar", "Car") == 1
        assert vehicles.distance("SportsCar", "Vehicle") == 2
        assert vehicles.distance("Car", "Truck") is None

    def test_multiple_inheritance(self, vehicles):
        vehicles.add_concept("AmphibiousCar", ["Car", "Truck"])
        assert vehicles.is_subconcept("AmphibiousCar", "Car")
        assert vehicles.is_subconcept("AmphibiousCar", "Truck")

    def test_everything_is_a_thing(self, vehicles):
        for concept in vehicles.concepts:
            assert vehicles.is_subconcept(concept, "Thing")

    def test_unknown_concept_errors(self, vehicles):
        with pytest.raises(OntologyError):
            vehicles.is_subconcept("Spaceship", "Vehicle")


class TestProfile:
    def test_xml_roundtrip(self):
        profile = ServiceProfile("CarSeller", ("Location",), ("Car", "Price"), "Commerce")
        back = ServiceProfile.from_wire(profile.to_wire())
        assert back == profile

    def test_compact_roundtrip(self):
        profile = ServiceProfile("CarSeller", ("Location",), ("Car", "Price"))
        back = ServiceProfile.from_compact("CarSeller", profile.to_compact())
        assert back == profile

    def test_compact_empty_io(self):
        profile = ServiceProfile("S")
        back = ServiceProfile.from_compact("S", profile.to_compact())
        assert back.inputs == () and back.outputs == ()

    def test_compact_rejects_separator_in_concept(self):
        with pytest.raises(ValueError):
            ServiceProfile("S", outputs=("a|b",)).to_compact()

    def test_malformed_compact(self):
        with pytest.raises(ValueError):
            ServiceProfile.from_compact("S", "only-one-part")


class TestConceptDegrees:
    def test_exact(self, vehicles):
        mm = Matchmaker(vehicles)
        assert mm.concept_degree("Car", "Car") is MatchDegree.EXACT

    def test_plugin_advertised_more_specific(self, vehicles):
        mm = Matchmaker(vehicles)
        assert mm.concept_degree("Car", "SportsCar") is MatchDegree.PLUGIN

    def test_subsumes_advertised_more_general(self, vehicles):
        mm = Matchmaker(vehicles)
        assert mm.concept_degree("Car", "Vehicle") is MatchDegree.SUBSUMES

    def test_fail_unrelated(self, vehicles):
        mm = Matchmaker(vehicles)
        assert mm.concept_degree("Car", "Price") is MatchDegree.FAIL

    def test_unknown_concepts_fail(self, vehicles):
        mm = Matchmaker(vehicles)
        assert mm.concept_degree("Car", "Unheard") is MatchDegree.FAIL

    def test_ordering(self):
        assert MatchDegree.EXACT > MatchDegree.PLUGIN > MatchDegree.SUBSUMES > MatchDegree.FAIL


class TestProfileMatching:
    def test_overall_is_weakest_output(self, vehicles):
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req", outputs=("Car", "Price"))
        advertised = ServiceProfile("CarSeller", outputs=("Car", "RetailPrice"))
        match = mm.match(request, advertised)
        # Car exact, RetailPrice plugs into Price -> weakest is PLUGIN
        assert match.output_degree is MatchDegree.PLUGIN
        assert match.degree is MatchDegree.PLUGIN

    def test_missing_output_fails(self, vehicles):
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req", outputs=("Car", "Location"))
        advertised = ServiceProfile("CarSeller", outputs=("Car",))
        assert mm.match(request, advertised).degree is MatchDegree.FAIL

    def test_inputs_direction(self, vehicles):
        mm = Matchmaker(vehicles)
        # requester provides a SportsCar; service expects any Car: fits
        request = ServiceProfile("req", inputs=("SportsCar",), outputs=("Price",))
        advertised = ServiceProfile("Valuer", inputs=("Car",), outputs=("Price",))
        match = mm.match(request, advertised)
        assert match.input_degree is MatchDegree.PLUGIN
        # the reverse: providing a Vehicle where a Car is expected is weaker
        loose = ServiceProfile("req2", inputs=("Vehicle",), outputs=("Price",))
        assert mm.match(loose, advertised).input_degree is MatchDegree.SUBSUMES

    def test_no_outputs_requested_is_exact(self, vehicles):
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req")
        advertised = ServiceProfile("Anything", outputs=("Car",))
        assert mm.match(request, advertised).degree is MatchDegree.EXACT

    def test_service_without_outputs_fails_demand(self, vehicles):
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req", outputs=("Car",))
        advertised = ServiceProfile("Mute")
        assert mm.match(request, advertised).degree is MatchDegree.FAIL


class TestRanking:
    def test_rank_orders_by_degree(self, vehicles):
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req", outputs=("Car",))
        exact = ServiceProfile("Exact", outputs=("Car",))
        plugin = ServiceProfile("Plugin", outputs=("SportsCar",))
        subsumes = ServiceProfile("Subsumes", outputs=("Vehicle",))
        fail = ServiceProfile("Fail", outputs=("Price",))
        ranked = mm.rank(request, [fail, subsumes, plugin, exact])
        assert [m.profile.service_name for m in ranked] == ["Exact", "Plugin", "Subsumes"]

    def test_min_degree_filters(self, vehicles):
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req", outputs=("Car",))
        candidates = [
            ServiceProfile("Plugin", outputs=("SportsCar",)),
            ServiceProfile("Subsumes", outputs=("Vehicle",)),
        ]
        ranked = mm.rank(request, candidates, min_degree=MatchDegree.PLUGIN)
        assert [m.profile.service_name for m in ranked] == ["Plugin"]

    def test_tie_breaks_on_distance(self, vehicles):
        vehicles.add_concept("HyperCar", ["SportsCar"])
        mm = Matchmaker(vehicles)
        request = ServiceProfile("req", outputs=("Vehicle",))
        near = ServiceProfile("Near", outputs=("Car",))       # distance 1
        far = ServiceProfile("Far", outputs=("HyperCar",))    # distance 3
        ranked = mm.rank(request, [far, near])
        assert [m.profile.service_name for m in ranked] == ["Near", "Far"]
