"""Integration tests: UDDI registry over SOAP/HTTP on the simnet."""

import pytest

from repro.simnet import FixedLatency, Network
from repro.soap import SoapFault
from repro.uddi import UddiClient, UddiRegistryNode


@pytest.fixture
def world():
    net = Network(latency=FixedLatency(0.002))
    registry_node = UddiRegistryNode(net.add_node("registry"))
    client_node = net.add_node("client")
    client = UddiClient(client_node, registry_node.endpoint)
    return net, registry_node, client


class TestRemoteRegistry:
    def test_publish_and_find(self, world):
        net, registry_node, client = world
        client.publish_service(
            "Cardiff", "EchoService", "http://provider:80/services/Echo",
            wsdl_url="http://provider:80/services/Echo.wsdl",
        )
        services = client.find_services("Echo%")
        assert len(services) == 1
        assert services[0].name == "EchoService"

    def test_access_points(self, world):
        net, _, client = world
        client.publish_service("Biz", "Svc", "http://p:80/services/Svc")
        service = client.find_services("Svc")[0]
        points = client.access_points(service)
        assert points[0].access_point == "http://p:80/services/Svc"

    def test_wsdl_url_retrieval(self, world):
        net, _, client = world
        client.publish_service(
            "Biz", "Svc", "http://p:80/services/Svc",
            wsdl_url="http://p:80/services/Svc.wsdl",
        )
        service = client.find_services("Svc")[0]
        assert client.wsdl_url_for(service) == "http://p:80/services/Svc.wsdl"

    def test_wsdl_url_missing(self, world):
        net, _, client = world
        client.publish_service("Biz", "Svc", "http://p:80/services/Svc")
        service = client.find_services("Svc")[0]
        assert client.wsdl_url_for(service) == ""

    def test_business_reused_across_publishes(self, world):
        net, registry_node, client = world
        client.publish_service("Cardiff", "S1", "http://p/1")
        client.publish_service("Cardiff", "S2", "http://p/2")
        assert registry_node.registry.business_count == 1
        assert registry_node.registry.service_count == 2

    def test_category_search_remote(self, world):
        net, _, client = world
        cat = {"tModelKey": "uuid:cat", "keyName": "domain", "keyValue": "math"}
        client.publish_service("B", "Calc", "http://p/c", categories=[cat])
        client.publish_service("B", "Echo", "http://p/e")
        found = client.find_services("%", categories=[cat])
        assert [s.name for s in found] == ["Calc"]

    def test_fault_propagates_to_client(self, world):
        net, _, client = world
        with pytest.raises(SoapFault):
            client.call("get_service_detail", service_key="uuid:nope")

    def test_registry_counts_remote_traffic(self, world):
        net, registry_node, client = world
        client.publish_service("B", "S", "http://p/s")
        client.find_services("%")
        assert registry_node.registry.inquiries >= 2  # find_business + find_service
        assert net.stats.get("registry") > 0

    def test_multiple_clients_share_registry(self, world):
        net, registry_node, client = world
        other = UddiClient(net.add_node("client2"), registry_node.endpoint)
        client.publish_service("B", "S", "http://p/s")
        assert len(other.find_services("S")) == 1

    def test_registry_stop_breaks_inquiry(self, world):
        net, registry_node, client = world
        registry_node.stop()
        client.http.default_timeout = 0.5
        from repro.transport import TransportTimeoutError

        with pytest.raises(TransportTimeoutError):
            client.find_services("%")
