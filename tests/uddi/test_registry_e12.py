"""E12 registry semantics: namespaced keys, leases, revisions,
export/import replication records, metrics, and edge-case pins."""

import pytest

from repro.observability import metrics as obs_metrics
from repro.uddi import UddiError, UddiRegistry
from repro.uddi.model import match_name


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def registry(clock):
    return UddiRegistry(operator="r0", clock=clock)


def publish_echo(registry, name="EchoService", ttl=None, access_point=None):
    business = registry.find_business("WSPeer") or [registry.save_business("WSPeer")]
    business_key = business[0]["businessKey"]
    service = registry.save_service(business_key, name, ttl=ttl)
    registry.save_binding(
        service["serviceKey"], access_point or f"http://host/{name}"
    )
    return service


class TestKeyNamespacing:
    def test_keys_carry_operator(self, registry):
        service = publish_echo(registry)
        assert service["serviceKey"].startswith("uuid:r0:svc-")

    def test_two_shards_never_collide(self):
        """The regression the plane depends on: independent registries
        used to mint identical ``uuid:svc-000001`` keys."""
        a, b = UddiRegistry(operator="registry-0"), UddiRegistry(operator="registry-1")
        keys = set()
        for reg in (a, b):
            biz = reg.save_business("WSPeer")["businessKey"]
            for i in range(25):
                svc = reg.save_service(biz, f"Svc{i}")
                keys.add(svc["serviceKey"])
                keys.add(reg.save_binding(svc["serviceKey"], f"http://h/{i}")["bindingKey"])
            keys.add(biz)
        assert len(keys) == 2 * (25 * 2 + 1)

    def test_default_operator_unchanged(self):
        assert UddiRegistry().operator == "repro-registry"


class TestUpserts:
    def test_save_service_same_name_updates_in_place(self, registry):
        first = publish_echo(registry)
        second = publish_echo(registry)
        assert first["serviceKey"] == second["serviceKey"]
        assert len(registry.find_service("EchoService")) == 1

    def test_save_binding_same_access_point_dedupes(self, registry):
        service = publish_echo(registry)
        registry.save_binding(service["serviceKey"], "http://host/EchoService", ["uuid:tm1"])
        detail = registry.get_service_detail(service["serviceKey"])
        assert len(detail["bindingTemplates"]) == 1
        assert detail["bindingTemplates"][0]["tModelKeys"] == ["uuid:tm1"]

    def test_save_tmodel_same_name_updates(self, registry):
        registry.save_tmodel("Echo-wsdlSpec", "http://old/x.wsdl")
        registry.save_tmodel("Echo-wsdlSpec", "http://new/x.wsdl")
        assert len(registry.find_tmodel("Echo-wsdlSpec")) == 1
        assert registry.find_tmodel("Echo-wsdlSpec")[0]["overviewURL"] == "http://new/x.wsdl"

    def test_revision_bumps_on_every_mutation(self, registry):
        service = publish_echo(registry)
        key = service["serviceKey"]
        r1 = registry.revision_of(key)
        publish_echo(registry)  # service upsert
        r2 = registry.revision_of(key)
        registry.save_binding(key, "http://other/e")
        r3 = registry.revision_of(key)
        assert r1 < r2 < r3


class TestLeases:
    def test_expired_lease_drops_from_inquiries(self, registry, clock):
        publish_echo(registry, ttl=10.0)
        assert registry.find_service("EchoService")
        clock.now = 11.0
        assert registry.find_service("EchoService") == []
        assert registry.leases_expired == 1

    def test_expired_service_detail_raises(self, registry, clock):
        service = publish_echo(registry, ttl=10.0)
        clock.now = 11.0
        with pytest.raises(UddiError):
            registry.get_service_detail(service["serviceKey"])

    def test_republish_refreshes_lease(self, registry, clock):
        publish_echo(registry, ttl=10.0)
        clock.now = 8.0
        publish_echo(registry, ttl=10.0)
        clock.now = 16.0  # 16s after first, 8s after refresh
        assert registry.find_service("EchoService")

    def test_no_ttl_means_no_expiry(self, registry, clock):
        publish_echo(registry)
        clock.now = 1e9
        assert registry.find_service("EchoService")

    def test_clockless_registry_never_expires(self):
        timeless = UddiRegistry()
        biz = timeless.save_business("B")["businessKey"]
        timeless.save_service(biz, "S", ttl=0.001)
        assert timeless.find_service("S")

    def test_business_service_keys_pruned(self, registry, clock):
        publish_echo(registry, ttl=5.0)
        clock.now = 6.0
        registry.find_service("%")
        business = registry.find_business("WSPeer")[0]
        assert business["serviceKeys"] == []


class TestExportImport:
    def test_round_trip(self, registry):
        other = UddiRegistry(operator="r1")
        service = publish_echo(registry)
        record = registry.export_service(service["serviceKey"])
        assert other.import_service(record)
        detail = other.get_service_detail(service["serviceKey"])
        assert detail["name"] == "EchoService"
        assert detail["bindingTemplates"][0]["accessPoint"] == "http://host/EchoService"
        assert other.find_business("WSPeer")

    def test_record_contains_revision_and_lease(self, registry, clock):
        service = publish_echo(registry, ttl=20.0)
        clock.now = 5.0
        record = registry.export_service(service["serviceKey"])
        assert record["revision"] >= 1
        assert record["lease"] == pytest.approx(15.0)

    def test_stale_import_ignored(self, registry):
        other = UddiRegistry(operator="r1")
        service = publish_echo(registry)
        old = registry.export_service(service["serviceKey"])
        publish_echo(registry)  # bump revision
        new = registry.export_service(service["serviceKey"])
        assert other.import_service(new)
        assert not other.import_service(old), "lower revision must be ignored"
        assert other.revision_of(service["serviceKey"]) == new["revision"]

    def test_equal_revision_refreshes_lease_only(self, clock):
        a = UddiRegistry(operator="r0", clock=clock)
        b = UddiRegistry(operator="r1", clock=clock)
        service = publish_echo(a, ttl=10.0)
        record = a.export_service(service["serviceKey"])
        b.import_service(record)
        clock.now = 8.0
        record2 = a.export_service(service["serviceKey"])  # same revision, less lease
        a_lease = record2["lease"]
        assert not b.import_service(record2)  # not applied ...
        clock.now = 8.0 + a_lease + 1.0  # ... but b's lease was NOT re-armed beyond a's
        assert b.find_service("EchoService") == []

    def test_imported_lease_expires(self, clock):
        a = UddiRegistry(operator="r0", clock=clock)
        b = UddiRegistry(operator="r1", clock=clock)
        service = publish_echo(a, ttl=10.0)
        b.import_service(a.export_service(service["serviceKey"]))
        clock.now = 11.0
        assert b.find_service("EchoService") == []

    def test_export_unknown_key_raises(self, registry):
        with pytest.raises(UddiError):
            registry.export_service("uuid:r0:svc-999999")


class TestFindServiceRecords:
    def test_one_round_trip_resolution(self, registry):
        service = publish_echo(registry)
        registry.save_tmodel("EchoService-wsdlSpec", "http://host/EchoService.wsdl")
        registry.save_binding(
            service["serviceKey"],
            "http://host/EchoService",
            [registry.find_tmodel("EchoService-wsdlSpec")[0]["tModelKey"]],
        )
        records = registry.find_service_records("EchoService")
        assert len(records) == 1
        record = records[0]
        assert record["service"]["name"] == "EchoService"
        assert record["business"]["name"] == "WSPeer"
        assert record["tModels"][0]["overviewURL"] == "http://host/EchoService.wsdl"
        assert record["revision"] >= 1

    def test_respects_max_rows(self, registry):
        for i in range(5):
            publish_echo(registry, name=f"Svc{i}")
        assert len(registry.find_service_records("Svc%", max_rows=2)) == 2


class TestMetricsSurface:
    def test_publish_and_inquiry_counters(self, registry):
        obs_metrics.reset_default_registry()
        publish_echo(registry)
        registry.find_service("%")
        metrics = obs_metrics.default_registry()
        assert metrics.get("uddi.publishes") == 3  # business + service + binding
        assert metrics.get("uddi.inquiries") >= 1

    def test_registry_size_gauge(self, registry):
        obs_metrics.reset_default_registry()
        publish_echo(registry)
        publish_echo(registry, name="Other")
        snapshot = obs_metrics.default_registry().snapshot()
        assert snapshot["gauges"]["uddi.services"] == 2


class TestEdgeCasePins:
    """Satellite (d): pin current find/match semantics as regressions."""

    def test_find_service_max_rows_zero_is_unlimited(self, registry):
        for i in range(4):
            publish_echo(registry, name=f"Svc{i}")
        assert len(registry.find_service("%", max_rows=0)) == 4
        assert len(registry.find_service("%", max_rows=2)) == 2
        assert len(registry.find_service("%", max_rows=99)) == 4

    def test_find_business_max_rows_zero_is_unlimited(self, registry):
        for i in range(3):
            registry.save_business(f"B{i}")
        assert len(registry.find_business("%", max_rows=0)) == 3
        assert len(registry.find_business("%", max_rows=1)) == 1

    def test_exact_match_is_case_insensitive(self, registry):
        publish_echo(registry, name="EchoService")
        assert registry.find_service("ECHOSERVICE")
        assert registry.find_service("echoservice")

    def test_exact_match_no_substring(self, registry):
        publish_echo(registry, name="EchoService")
        assert registry.find_service("Echo") == []
        assert registry.find_service("Service") == []

    def test_wildcard_boundaries(self):
        assert match_name("%", "")  # bare wildcard matches empty
        assert match_name("%", "anything")
        assert match_name("a%", "a")  # trailing % may consume nothing
        assert match_name("%a", "a")
        assert not match_name("a%b", "ab c")  # pattern must end at name end
        assert match_name("a%b", "ab")
        assert not match_name("ab", "a")

    def test_case_boundary_with_wildcard(self):
        assert match_name("ECHO%", "echoService")
        assert match_name("%SERVICE", "echoservice")

    def test_exact_name_uses_index_same_result_as_scan(self, registry):
        # the exact-name fast path must agree with a wildcard scan
        publish_echo(registry, name="EchoService")
        publish_echo(registry, name="Echoservice2")
        by_index = registry.find_service("EchoService")
        by_scan = [
            s for s in registry.find_service("%")
            if s["name"].lower() == "echoservice"
        ]
        assert by_index == by_scan
