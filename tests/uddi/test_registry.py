"""Tests for the UDDI registry core and name matching."""

import pytest

from repro.uddi import UddiError, UddiRegistry
from repro.uddi.model import match_name


class TestMatchName:
    def test_exact_case_insensitive(self):
        assert match_name("Echo", "echo")
        assert not match_name("Echo", "EchoService")

    def test_trailing_wildcard_prefix(self):
        assert match_name("Echo%", "EchoService")
        assert match_name("%", "anything")
        assert not match_name("Echo%", "TheEcho")

    def test_leading_wildcard_suffix(self):
        assert match_name("%Service", "EchoService")
        assert not match_name("%Service", "ServiceEcho")

    def test_interior_wildcard(self):
        assert match_name("E%o", "Echo")
        assert not match_name("E%x", "Echo")

    def test_double_wildcard_contains(self):
        assert match_name("%cho%", "EchoService")

    def test_empty_pattern(self):
        assert match_name("", "")
        assert not match_name("", "x")


@pytest.fixture
def registry():
    return UddiRegistry()


def publish_echo(registry, name="EchoService", categories=None):
    business = registry.save_business("Cardiff")
    service = registry.save_service(
        business["businessKey"], name, category_bag=categories or []
    )
    registry.save_binding(service["serviceKey"], f"http://host/{name}")
    return business, service


class TestPublish:
    def test_save_business(self, registry):
        business = registry.save_business("Cardiff", "uni")
        # keys are namespaced by the registry operator (E12 shard fix)
        assert business["businessKey"].startswith("uuid:repro-registry:biz-")
        assert registry.business_count == 1

    def test_save_service_links_business(self, registry):
        business, service = publish_echo(registry)
        detail = registry.get_business_detail(business["businessKey"])
        assert service["serviceKey"] in detail["serviceKeys"]

    def test_save_service_unknown_business(self, registry):
        with pytest.raises(UddiError):
            registry.save_service("uuid:biz-999999", "X")

    def test_save_binding_attaches(self, registry):
        _, service = publish_echo(registry)
        detail = registry.get_service_detail(service["serviceKey"])
        assert detail["bindingTemplates"][0]["accessPoint"] == "http://host/EchoService"

    def test_save_binding_unknown_service(self, registry):
        with pytest.raises(UddiError):
            registry.save_binding("uuid:svc-999999", "http://x/y")

    def test_save_tmodel(self, registry):
        tm = registry.save_tmodel("Echo-wsdlSpec", "http://host/Echo.wsdl")
        detail = registry.get_tmodel_detail(tm["tModelKey"])
        assert detail["overviewURL"] == "http://host/Echo.wsdl"

    def test_keys_unique(self, registry):
        keys = {registry.save_business(f"b{i}")["businessKey"] for i in range(20)}
        assert len(keys) == 20

    def test_delete_service(self, registry):
        business, service = publish_echo(registry)
        assert registry.delete_service(service["serviceKey"])
        assert registry.find_service("EchoService") == []
        detail = registry.get_business_detail(business["businessKey"])
        assert detail["serviceKeys"] == []

    def test_delete_missing_service(self, registry):
        assert not registry.delete_service("uuid:svc-000000")

    def test_delete_business_cascades(self, registry):
        business, service = publish_echo(registry)
        registry.delete_business(business["businessKey"])
        with pytest.raises(UddiError):
            registry.get_service_detail(service["serviceKey"])


class TestInquiry:
    def test_find_by_exact_name(self, registry):
        publish_echo(registry)
        assert len(registry.find_service("EchoService")) == 1

    def test_find_by_pattern(self, registry):
        publish_echo(registry, "EchoService")
        publish_echo(registry, "EchoV2")
        publish_echo(registry, "Calc")
        assert len(registry.find_service("Echo%")) == 2

    def test_find_all(self, registry):
        publish_echo(registry, "A")
        publish_echo(registry, "B")
        assert len(registry.find_service("%")) == 2

    def test_find_by_category(self, registry):
        cat = {"tModelKey": "uuid:cat", "keyName": "domain", "keyValue": "math"}
        publish_echo(registry, "Calc", categories=[cat])
        publish_echo(registry, "Echo")
        results = registry.find_service("%", category_bag=[cat])
        assert [s["name"] for s in results] == ["Calc"]

    def test_category_all_must_match(self, registry):
        cat1 = {"tModelKey": "uuid:c1", "keyName": "", "keyValue": "a"}
        cat2 = {"tModelKey": "uuid:c2", "keyName": "", "keyValue": "b"}
        publish_echo(registry, "S1", categories=[cat1])
        results = registry.find_service("%", category_bag=[cat1, cat2])
        assert results == []

    def test_find_scoped_to_business(self, registry):
        business, _ = publish_echo(registry, "Echo")
        other = registry.save_business("Other")
        registry.save_service(other["businessKey"], "Echo")
        scoped = registry.find_service("Echo", business_key=business["businessKey"])
        assert len(scoped) == 1

    def test_find_business(self, registry):
        registry.save_business("Cardiff")
        registry.save_business("Cambridge")
        assert len(registry.find_business("Ca%")) == 2
        assert len(registry.find_business("Cardiff")) == 1

    def test_find_tmodel(self, registry):
        registry.save_tmodel("Echo-wsdlSpec")
        assert len(registry.find_tmodel("%wsdlSpec")) == 1

    def test_unknown_keys_raise(self, registry):
        with pytest.raises(UddiError):
            registry.get_service_detail("uuid:nope")
        with pytest.raises(UddiError):
            registry.get_business_detail("uuid:nope")
        with pytest.raises(UddiError):
            registry.get_tmodel_detail("uuid:nope")

    def test_counters(self, registry):
        publish_echo(registry)
        registry.find_service("%")
        assert registry.publishes == 3  # business + service + binding
        assert registry.inquiries == 1


class TestMaxRows:
    def test_find_service_truncates(self, registry):
        for i in range(6):
            publish_echo(registry, f"Svc{i}")
        assert len(registry.find_service("%", max_rows=3)) == 3
        assert len(registry.find_service("%")) == 6

    def test_find_business_truncates(self, registry):
        for i in range(4):
            registry.save_business(f"B{i}")
        assert len(registry.find_business("%", max_rows=2)) == 2

    def test_find_tmodel_truncates(self, registry):
        for i in range(4):
            registry.save_tmodel(f"T{i}")
        assert len(registry.find_tmodel("%", max_rows=1)) == 1

    def test_zero_means_unlimited(self, registry):
        for i in range(3):
            publish_echo(registry, f"Svc{i}")
        assert len(registry.find_service("%", max_rows=0)) == 3
