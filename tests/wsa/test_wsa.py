"""Tests for WS-Addressing: EPRs, headers, SOAP binding, p2ps URIs."""

import pytest

from repro.soap import SoapEnvelope
from repro.wsa import (
    EndpointReference,
    MessageAddressingProperties,
    P2psAddress,
    WsaError,
    make_p2ps_uri,
    new_message_id,
    parse_p2ps_uri,
)
from repro.xmlkit import Element, QName, ns


def pipe_props():
    return [
        Element(QName(ns.P2PS, "PipeName", "p2ps"), text="echoString"),
        Element(QName(ns.P2PS, "PipeType", "p2ps"), text="input"),
    ]


class TestEndpointReference:
    def test_address_required(self):
        with pytest.raises(WsaError):
            EndpointReference("")

    def test_xml_roundtrip(self):
        epr = EndpointReference("p2ps://peer-1/Echo", pipe_props())
        back = EndpointReference.from_element(epr.to_element())
        assert back == epr
        assert back.address == "p2ps://peer-1/Echo"
        assert len(back.reference_properties) == 2

    def test_through_real_wire_text(self):
        from repro.xmlkit import parse, serialize

        epr = EndpointReference("http://h/svc", pipe_props())
        back = EndpointReference.from_element(parse(serialize(epr.to_element())))
        assert back == epr

    def test_missing_address_rejected(self):
        elem = Element(QName(ns.WSA, "EndpointReference", "wsa"))
        with pytest.raises(WsaError):
            EndpointReference.from_element(elem)

    def test_find_property_by_qname_and_local(self):
        epr = EndpointReference("http://h/x", pipe_props())
        assert epr.find_property(QName(ns.P2PS, "PipeName")).text == "echoString"
        assert epr.property_text("PipeType") == "input"
        assert epr.property_text("Missing", "dflt") == "dflt"

    def test_properties_copied_not_aliased(self):
        props = pipe_props()
        epr = EndpointReference("http://h/x", props)
        props[0].text = "mutated"
        assert epr.property_text("PipeName") == "echoString"

    def test_custom_tag(self):
        epr = EndpointReference("http://h/x")
        elem = epr.to_element(QName(ns.WSA, "ReplyTo", "wsa"))
        assert elem.name.local == "ReplyTo"

    def test_equality(self):
        a = EndpointReference("http://h/x", pipe_props())
        b = EndpointReference("http://h/x", pipe_props())
        c = EndpointReference("http://h/y", pipe_props())
        assert a == b
        assert a != c


class TestMessageIds:
    def test_unique(self):
        ids = {new_message_id() for _ in range(100)}
        assert len(ids) == 100

    def test_prefix(self):
        assert new_message_id("urn:test").startswith("urn:test-")


class TestMaps:
    def test_to_and_action_mandatory(self):
        with pytest.raises(WsaError):
            MessageAddressingProperties(to="", action="a")
        with pytest.raises(WsaError):
            MessageAddressingProperties(to="http://h/x", action="")

    def test_for_request_builds_action_fragment(self):
        target = EndpointReference("p2ps://peer-1/Echo")
        maps = MessageAddressingProperties.for_request(target, "echoString")
        assert maps.to == "p2ps://peer-1/Echo"
        assert maps.action == "p2ps://peer-1/Echo#echoString"
        assert maps.operation == "echoString"
        assert maps.message_id

    def test_operation_empty_without_fragment(self):
        maps = MessageAddressingProperties(to="http://h/x", action="http://h/x")
        assert maps.operation == ""

    def test_envelope_roundtrip(self):
        target = EndpointReference("p2ps://peer-1/Echo", pipe_props())
        reply = EndpointReference("p2ps://peer-2#reply-1")
        maps = MessageAddressingProperties.for_request(target, "echo", reply_to=reply)
        env = SoapEnvelope()
        maps.apply_to(env, target)
        back = MessageAddressingProperties.extract_from(
            SoapEnvelope.from_wire(env.to_wire())
        )
        assert back.to == maps.to
        assert back.action == maps.action
        assert back.message_id == maps.message_id
        assert back.reply_to == reply

    def test_reference_properties_copied_into_header(self):
        # binding rule 3: the target EPR's ReferenceProperties appear
        # directly as SOAP header blocks
        target = EndpointReference("p2ps://peer-1/Echo", pipe_props())
        env = SoapEnvelope()
        MessageAddressingProperties.for_request(target, "op").apply_to(env, target)
        wire = SoapEnvelope.from_wire(env.to_wire())
        names = [h.name.local for h in wire.headers]
        assert "PipeName" in names
        assert "PipeType" in names

    def test_relates_to_roundtrip(self):
        maps = MessageAddressingProperties(
            to="http://h/x", action="http://h/x#op",
            relates_to="urn:uuid:repro-00000042",
        )
        env = SoapEnvelope()
        maps.apply_to(env)
        back = MessageAddressingProperties.extract_from(env)
        assert back.relates_to == "urn:uuid:repro-00000042"

    def test_source_and_fault_to(self):
        maps = MessageAddressingProperties(
            to="http://h/x", action="a://b#c",
            source=EndpointReference("http://me/x"),
            fault_to=EndpointReference("http://me/faults"),
        )
        env = SoapEnvelope()
        maps.apply_to(env)
        back = MessageAddressingProperties.extract_from(
            SoapEnvelope.from_wire(env.to_wire())
        )
        assert back.source.address == "http://me/x"
        assert back.fault_to.address == "http://me/faults"

    def test_extract_missing_to_rejected(self):
        with pytest.raises(WsaError):
            MessageAddressingProperties.extract_from(SoapEnvelope())

    def test_extract_missing_action_rejected(self):
        env = SoapEnvelope()
        env.add_header(Element(QName(ns.WSA, "To", "wsa"), text="http://h/x"))
        with pytest.raises(WsaError):
            MessageAddressingProperties.extract_from(env)


class TestP2psUri:
    def test_paper_example(self):
        addr = parse_p2ps_uri("p2ps://peer-1234/Echo#echoString")
        assert addr.peer_id == "peer-1234"
        assert addr.service_name == "Echo"
        assert addr.pipe_name == "echoString"

    def test_build_matches_parse(self):
        text = make_p2ps_uri("peer-9", "Calc", "addPipe")
        assert parse_p2ps_uri(text) == P2psAddress("peer-9", "Calc", "addPipe")

    def test_bare_pipe(self):
        # reply channels have no service: "the Address field is just
        # the scheme and the host component" + fragment
        addr = parse_p2ps_uri("p2ps://peer-2#reply-7")
        assert addr.is_bare_pipe
        assert addr.service_name == ""
        assert addr.pipe_name == "reply-7"

    def test_peer_only(self):
        addr = parse_p2ps_uri("p2ps://peer-2")
        assert addr == P2psAddress("peer-2")
        assert not addr.is_bare_pipe

    def test_service_uri_strips_fragment(self):
        addr = parse_p2ps_uri("p2ps://p/Echo#pipe")
        assert addr.service_uri() == "p2ps://p/Echo"

    def test_missing_peer_rejected(self):
        with pytest.raises(WsaError):
            make_p2ps_uri("")

    def test_wrong_scheme_rejected(self):
        with pytest.raises(WsaError):
            parse_p2ps_uri("http://h/x")

    def test_nested_path_rejected(self):
        with pytest.raises(WsaError):
            parse_p2ps_uri("p2ps://p/a/b#c")

    def test_not_a_uri_rejected(self):
        with pytest.raises(WsaError):
            parse_p2ps_uri("garbage")

    def test_roundtrip_without_service(self):
        text = make_p2ps_uri("peer-5", "", "pipe-1")
        assert text == "p2ps://peer-5#pipe-1"
        assert parse_p2ps_uri(text).pipe_name == "pipe-1"
