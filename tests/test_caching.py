"""The artifact-cache subsystem: counters, LRU, invalidation, fast-path
switch, and the derived caches built on it (URIs, WSDL, stub specs and
classes, envelope templates)."""

import pytest

from repro.caching import (
    ArtifactCache,
    cache_stats,
    clear_all_caches,
    fastpath_disabled,
    fastpath_enabled,
    reset_cache_stats,
    set_fastpath_enabled,
)
from repro.soap.encoding import StructRegistry
from repro.soap.envelope import EnvelopeTemplate
from repro.soap.rpc import build_rpc_request
from repro.soap.stubs import DynamicStubBuilder, OperationSpec, StubSpec
from repro.transport.uri import Uri, UriError, parse_uri_cached
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageAddressingProperties, request_templates
from repro.wsdl.parser import parse_wsdl, parse_wsdl_cached
from repro.wsdl.stubspec import stub_spec_cached, to_stub_spec
from repro.xmlkit import Element, QName, ns


@pytest.fixture(autouse=True)
def _clean_caches():
    clear_all_caches()
    reset_cache_stats()
    yield
    clear_all_caches()
    set_fastpath_enabled(True)


# ----------------------------------------------------------------------
# ArtifactCache core behaviour
# ----------------------------------------------------------------------
class TestArtifactCache:
    def test_hit_and_miss_counters(self):
        cache = ArtifactCache("t-counters", max_entries=4)
        assert cache.get("k") is None
        cache.put("k", 1)
        assert cache.get("k") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_rate == 0.5

    def test_lru_eviction_order(self):
        cache = ArtifactCache("t-lru", max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # freshen a; b is now the LRU entry
        cache.put("c", 3)
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate_counts_and_removes(self):
        cache = ArtifactCache("t-invalidate", max_entries=4)
        cache.put("k", 1)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        assert cache.get("k") is None
        assert cache.stats.invalidations == 1

    def test_clear_drops_everything(self):
        cache = ArtifactCache("t-clear", max_entries=8)
        for i in range(5):
            cache.put(i, i)
        assert cache.clear() == 5
        assert len(cache) == 0
        assert cache.stats.invalidations == 5

    def test_get_or_build_builds_once(self):
        cache = ArtifactCache("t-build", max_entries=4)
        calls = []
        build = lambda: calls.append(1) or "value"  # noqa: E731
        assert cache.get_or_build("k", build) == "value"
        assert cache.get_or_build("k", build) == "value"
        assert len(calls) == 1

    def test_fastpath_disabled_bypasses(self):
        cache = ArtifactCache("t-switch", max_entries=4)
        cache.put("k", 1)
        with fastpath_disabled():
            assert not fastpath_enabled()
            assert cache.get("k") is None  # counted as a miss
            cache.put("x", 9)  # dropped
        assert fastpath_enabled()
        assert cache.get("k") == 1
        assert "x" not in cache

    def test_registry_reports_all_caches(self):
        ArtifactCache("t-registry", max_entries=4).put("k", 1)
        stats = cache_stats()
        assert "t-registry" in stats
        assert stats["t-registry"]["size"] == 1
        assert set(stats["t-registry"]) >= {"hits", "misses", "hit_rate", "evictions"}

    def test_reset_cache_stats_keeps_entries(self):
        cache = ArtifactCache("t-reset", max_entries=4)
        cache.put("k", 1)
        cache.get("k")
        reset_cache_stats()
        assert cache.stats.hits == 0
        assert cache.get("k") == 1


# ----------------------------------------------------------------------
# URI cache
# ----------------------------------------------------------------------
class TestUriCache:
    def test_same_instance_on_repeat(self):
        a = parse_uri_cached("http://node-1:8080/svc")
        b = parse_uri_cached("http://node-1:8080/svc")
        assert a is b
        assert a == Uri.parse("http://node-1:8080/svc")

    def test_errors_not_cached(self):
        for _ in range(2):
            with pytest.raises(UriError):
                parse_uri_cached("not a uri")

    def test_disabled_fastpath_reparses(self):
        with fastpath_disabled():
            a = parse_uri_cached("http://node-2/x")
            b = parse_uri_cached("http://node-2/x")
        assert a is not b
        assert a == b


# ----------------------------------------------------------------------
# WSDL cache
# ----------------------------------------------------------------------
WSDL = """<?xml version="1.0"?>
<definitions xmlns="http://schemas.xmlsoap.org/wsdl/"
             xmlns:soap="http://schemas.xmlsoap.org/wsdl/soap/"
             name="Echo" targetNamespace="urn:echo">
  <message name="echoRequest"><part name="text" type="xsd:string"/></message>
  <message name="echoResponse"><part name="return" type="xsd:string"/></message>
  <portType name="EchoPortType">
    <operation name="echo">
      <input message="tns:echoRequest"/>
      <output message="tns:echoResponse"/>
    </operation>
  </portType>
  <binding name="EchoBinding" type="tns:EchoPortType">
    <soap:binding transport="http://schemas.xmlsoap.org/soap/http" style="rpc"/>
  </binding>
  <service name="EchoService">
    <port name="EchoPort" binding="tns:EchoBinding">
      <soap:address location="http://node-1:8080/svc/Echo"/>
    </port>
  </service>
</definitions>
"""


class TestWsdlCache:
    def test_identical_text_shares_definition(self):
        a = parse_wsdl_cached(WSDL)
        b = parse_wsdl_cached(WSDL)
        assert a is b
        assert a.target_namespace == "urn:echo"

    def test_different_text_distinct_definitions(self):
        a = parse_wsdl_cached(WSDL)
        b = parse_wsdl_cached(WSDL.replace("urn:echo", "urn:other"))
        assert a is not b
        assert b.target_namespace == "urn:other"

    def test_matches_uncached_parser(self):
        cached = parse_wsdl_cached(WSDL)
        fresh = parse_wsdl(WSDL)
        assert cached.target_namespace == fresh.target_namespace
        assert sorted(cached.messages) == sorted(fresh.messages)
        assert sorted(cached.services) == sorted(fresh.services)


# ----------------------------------------------------------------------
# stub spec / class caches
# ----------------------------------------------------------------------
class TestStubCaches:
    def test_spec_cached_per_definition(self):
        definition = parse_wsdl(WSDL)
        a = stub_spec_cached(definition)
        b = stub_spec_cached(definition)
        assert a is b
        assert a == to_stub_spec(definition)

    def test_spec_guard_detects_new_definition(self):
        # two equal-content but distinct definitions must not share a
        # stale entry even if id() is recycled; at minimum, distinct
        # live objects get their own entries
        d1 = parse_wsdl(WSDL)
        d2 = parse_wsdl(WSDL)
        s1 = stub_spec_cached(d1)
        s2 = stub_spec_cached(d2)
        assert s1 == s2  # same shape

    def test_stub_class_shared_for_equal_specs(self):
        spec_a = StubSpec("Echo", (OperationSpec("echo", ("text",)),))
        spec_b = StubSpec("Echo", (OperationSpec("echo", ("text",)),))
        builder = DynamicStubBuilder()
        assert builder.build_class(spec_a) is builder.build_class(spec_b)

    def test_stub_class_still_validates_when_disabled(self):
        bad = StubSpec("S", (OperationSpec("not a name", ()),))
        with fastpath_disabled():
            with pytest.raises(ValueError):
                DynamicStubBuilder().build_class(bad)

    def test_stub_instances_work_from_cached_class(self):
        spec = StubSpec("Echo", (OperationSpec("echo", ("text",)),))
        calls = []
        stub = DynamicStubBuilder().build(spec, lambda op, a: calls.append((op, a)))
        stub.echo("hi")
        assert calls == [("echo", {"text": "hi"})]


# ----------------------------------------------------------------------
# envelope templates
# ----------------------------------------------------------------------
def _p2ps_prop(local: str, text: str) -> Element:
    return Element(QName(ns.P2PS, local, "p2ps"), text=text, nsdecls={"p2ps": ns.P2PS})


def _slow_wire(maps: MessageAddressingProperties, namespace, operation, args, target):
    envelope = build_rpc_request(namespace, operation, args, StructRegistry())
    maps.apply_to(envelope, target=target)
    return envelope.to_wire()


class TestEnvelopeTemplates:
    def test_template_split_and_render(self):
        template = EnvelopeTemplate.from_wire(
            "<a>\x000\x00</a><b>\x001\x00</b>", {"x": "\x000\x00", "y": "\x001\x00"}
        )
        assert template.render({"x": "1", "y": "2"}) == "<a>1</a><b>2</b>"

    def test_template_rejects_duplicated_sentinel(self):
        assert EnvelopeTemplate.from_wire("\x000\x00 \x000\x00", {"x": "\x000\x00"}) is None

    def test_template_rejects_missing_sentinel(self):
        assert EnvelopeTemplate.from_wire("static only", {"x": "\x000\x00"}) is None

    def test_http_shape_matches_slow_path(self):
        target = EndpointReference("http://node-1:8080/svc/Echo")
        args = {"text": "hello & <world>", "n": 41, "f": 2.5, "b": False, "z": None}
        for _ in range(2):  # second call renders from the cached template
            maps = MessageAddressingProperties.for_request(target, "echo")
            fast = request_templates.render(maps, "urn:echo", "echo", args, target)
            maps2 = MessageAddressingProperties(
                to=maps.to, action=maps.action, message_id=maps.message_id
            )
            assert fast == _slow_wire(maps2, "urn:echo", "echo", args, target)
        stats = cache_stats()["envelope-templates"]
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_p2ps_shape_matches_slow_path(self):
        target = EndpointReference(
            "p2ps://peer-1/Echo",
            [_p2ps_prop("PipeId", "pipe-7"), _p2ps_prop("PipeName", "echo")],
        )
        for i in range(3):
            reply = EndpointReference(
                "p2ps://peer-2",
                [_p2ps_prop("PipeId", f"pipe-r{i}"), _p2ps_prop("PipeName", "reply-echo")],
            )
            maps = MessageAddressingProperties(
                to=target.address,
                action="p2ps://peer-1/Echo#echo",
                reply_to=reply,
                message_id=f"urn:uuid:m-{i}",
            )
            fast = request_templates.render(
                maps, "urn:echo", "echo", {"text": f"v{i}"}, target
            )
            assert fast == _slow_wire(maps, "urn:echo", "echo", {"text": f"v{i}"}, target)

    def test_non_primitive_args_fall_back(self):
        target = EndpointReference("http://node-1/svc")
        maps = MessageAddressingProperties.for_request(target, "op")
        assert (
            request_templates.render(maps, "urn:x", "op", {"items": [1, 2]}, target)
            is None
        )

    def test_empty_string_value_falls_back(self):
        # '' self-closes on the slow path, so the template must decline
        target = EndpointReference("http://node-1/svc")
        maps = MessageAddressingProperties.for_request(target, "op")
        assert request_templates.render(maps, "urn:x", "op", {"text": ""}, target) is None

    def test_disabled_fastpath_falls_back(self):
        target = EndpointReference("http://node-1/svc")
        maps = MessageAddressingProperties.for_request(target, "op")
        with fastpath_disabled():
            assert (
                request_templates.render(maps, "urn:x", "op", {"n": 1}, target) is None
            )

    def test_invalidate_all_forces_rebuild(self):
        target = EndpointReference("http://node-1/svc")
        maps = MessageAddressingProperties.for_request(target, "op")
        assert request_templates.render(maps, "urn:x", "op", {"n": 1}, target)
        assert request_templates.invalidate_all() >= 1
        stats_before = cache_stats()["envelope-templates"]
        assert request_templates.render(maps, "urn:x", "op", {"n": 1}, target)
        stats_after = cache_stats()["envelope-templates"]
        assert stats_after["misses"] == stats_before["misses"] + 1


# ----------------------------------------------------------------------
# end-to-end: cached wire equals slow wire as parsed envelopes too
# ----------------------------------------------------------------------
def test_rendered_wire_reparses_identically():
    from repro.soap.envelope import SoapEnvelope

    target = EndpointReference("http://node-9:8080/svc/Calc")
    maps = MessageAddressingProperties.for_request(target, "add")
    wire = request_templates.render(maps, "urn:calc", "add", {"a": 2, "b": 3}, target)
    envelope = SoapEnvelope.from_wire(wire)
    extracted = MessageAddressingProperties.extract_from(envelope)
    assert extracted.to == target.address
    assert extracted.action == f"{target.address}#add"
    assert extracted.message_id == maps.message_id
    assert envelope.body_content.name == QName("urn:calc", "add")
