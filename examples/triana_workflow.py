"""Triana-style workflow: discover services, wire a DAG, choreograph.

The paper's §V scenario: discovered Web services "appear as standard
tools within a Triana toolbox.  Users can drag these icons onto a
scratchpad and wire them together to create Web service workflows."

Run:  python examples/triana_workflow.py
"""

from repro.apps import Toolbox, Workflow, WorkflowEngine
from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class SignalService:
    def generate(self, length: int, period: int) -> list:
        """A square-ish wave as a list of floats."""
        return [1.0 if (i // period) % 2 == 0 else -1.0 for i in range(length)]

    def smooth(self, signal: list, window: int) -> list:
        out = []
        for i in range(len(signal)):
            lo = max(0, i - window)
            chunk = signal[lo : i + 1]
            out.append(sum(chunk) / len(chunk))
        return out


class StatsService:
    def mean(self, values: list) -> float:
        return sum(values) / len(values)

    def peak(self, values: list) -> float:
        return max(abs(v) for v in values)


class ReportService:
    def format(self, mean: float, peak: float) -> str:
        return f"signal report: mean={mean:+.3f} peak={peak:.3f}"


def main() -> None:
    net = Network(latency=FixedLatency(0.004))
    registry = UddiRegistryNode(net.add_node("registry"))

    # three independent providers, as in a real service network
    for node_name, service, name in [
        ("dsp-host", SignalService(), "Signal"),
        ("stats-host", StatsService(), "Stats"),
        ("report-host", ReportService(), "Report"),
    ]:
        peer = WSPeer(net.add_node(node_name), StandardBinding(registry.endpoint))
        peer.deploy(service, name=name)
        peer.publish(name)

    # the Triana node: discover everything into the toolbox
    triana = WSPeer(net.add_node("triana"), StandardBinding(registry.endpoint))
    toolbox = Toolbox(triana)
    toolbox.discover("%")
    print("toolbox:", ", ".join(toolbox.tool_names))

    # wire the scratchpad: generate -> smooth -> (mean | peak) -> format
    wf = Workflow("signal-analysis")
    wf.add_task("gen", toolbox.tool("Signal.generate"),
                constants={"length": 64, "period": 8})
    wf.add_task("smooth", toolbox.tool("Signal.smooth"),
                constants={"window": 4}, wires={"signal": "gen"})
    wf.add_task("mean", toolbox.tool("Stats.mean"), wires={"values": "smooth"})
    wf.add_task("peak", toolbox.tool("Stats.peak"), wires={"values": "smooth"})
    wf.add_task("report", toolbox.tool("Report.format"),
                wires={"mean": "mean", "peak": "peak"})

    waves = wf.waves()
    print("\nexecution plan:")
    for i, wave in enumerate(waves):
        print(f"  wave {i}: {', '.join(t.task_id for t in wave)}")

    start = net.now
    results = WorkflowEngine(triana).run(wf)
    print(f"\n{results['report']}")
    print(f"choreographed {wf.task_count} remote invocations "
          f"in {(net.now - start) * 1000:.1f}ms virtual time "
          f"(mean and peak ran in parallel)")


if __name__ == "__main__":
    main()
