"""The SC2004 demo: stream PDE simulation output through a service
deployed at runtime.

"A Triana unit ... used WSPeer to launch a Web service, having first
launched a Cactus simulation on a distributed resource ... output files
... were passed back to Triana via the WSPeer generated Web service in
real-time as the simulation iterated through its time steps." (§V)

Run:  python examples/cactus_streaming.py
"""

from repro.apps import run_cactus_scenario
from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import Network, SeededLatency
from repro.uddi import UddiRegistryNode


def sparkline(samples: list, width: int = 48) -> str:
    """Render one snapshot as a terminal sparkline (the JPEG analogue)."""
    blocks = " .:-=+*#%@"
    lo, hi = min(samples), max(samples)
    span = (hi - lo) or 1.0
    idx = [int((v - lo) / span * (len(blocks) - 1)) for v in samples]
    return "".join(blocks[i] for i in idx)


def main() -> None:
    net = Network(latency=SeededLatency(median=0.015, seed=7))
    registry = UddiRegistryNode(net.add_node("registry"))

    triana = WSPeer(net.add_node("triana"), StandardBinding(registry.endpoint))
    hpc = WSPeer(net.add_node("hpc-resource"), StandardBinding(registry.endpoint))

    print("before the run, the Triana node hosts nothing:",
          triana.deployed_services)
    result, collector = run_cactus_scenario(
        triana, hpc, timesteps=24, steps_per_snapshot=6, grid_points=192
    )
    print("after: dynamically deployed services:", triana.deployed_services)

    print(f"\nstreamed {result.received} snapshots "
          f"({result.timesteps} PDE timesteps) in real (virtual) time")
    print(f"energy drift over the run: {result.energy_drift * 100:.2f}%\n")

    for snap, arrived in zip(collector.snapshots, result.arrival_times):
        print(f"  t={arrived * 1000:7.1f}ms  step {snap['timestep']:3d}  "
              f"|{sparkline(snap['samples'])}|  max={snap['max']:.3f}")


if __name__ == "__main__":
    main()
