"""Semantic (DAML-style) service discovery — the §III extension.

The paper: "More complex queries could be constructed from languages
such as DAML."  Here providers carry DAML-S-style capability profiles
over a shared ontology, and a consumer asks for *what it needs*
(produce me a Car) rather than guessing service names.

Run:  python examples/semantic_discovery.py
"""

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import PeerGroup
from repro.semantic import (
    Ontology,
    SemanticServiceLocator,
    SemanticServiceQuery,
    ServiceProfile,
)
from repro.semantic.locator import attach_profile
from repro.simnet import FixedLatency, Network


class Dealership:
    def __init__(self, inventory: str, price: float):
        self.inventory = inventory
        self.price = price

    def purchase(self, budget: float) -> str:
        if budget < self.price:
            return f"declined: {self.inventory} costs {self.price}"
        return f"sold: {self.inventory} for {self.price}"


def main() -> None:
    # a shared ontology: the vocabulary both sides reason over
    onto = Ontology("mobility")
    onto.add_concept("Vehicle")
    onto.add_concept("Car", ["Vehicle"])
    onto.add_concept("SportsCar", ["Car"])
    onto.add_concept("Bicycle", ["Vehicle"])

    net = Network(latency=FixedLatency(0.003))
    group = PeerGroup("bazaar")

    stock = [
        ("FastLane", "SportsCar", 90_000.0),
        ("CityCars", "Car", 25_000.0),
        ("PedalPower", "Bicycle", 800.0),
    ]
    for name, concept, price in stock:
        peer = WSPeer(net.add_node(f"n-{name}"), P2psBinding(group), name=name)
        peer.deploy(Dealership(concept, price), name=name)
        attach_profile(peer, name, ServiceProfile(name, (), (concept,)))
        peer.publish(name)
    net.run()

    buyer = WSPeer(net.add_node("buyer"), P2psBinding(group), name="buyer")
    buyer.client.register_locator(
        SemanticServiceLocator(buyer.client.locator, onto)
    )

    for wanted in ("Car", "Vehicle"):
        print(f"\nlooking for something that produces a {wanted}:")
        handles = buyer.locate(SemanticServiceQuery(outputs=(wanted,)), timeout=5.0)
        for handle in handles:
            degree = handle.attributes["match-degree"]
            print(f"  {handle.name:12s} matches at degree {degree}")
        if handles:
            best = handles[0]
            print(f"  buying from the best match, {best.name}:")
            print(f"    {buyer.invoke(best, 'purchase', budget=100_000.0)}")


if __name__ == "__main__":
    main()
