"""P2P service hosting: groups, rendezvous, pipes and WS-Addressing.

Reproduces the paper's Fig. 4–6 flows: a provider peer in group B
deploys a service over P2PS pipes; a consumer peer in group A discovers
it through the rendezvous overlay, retrieves the WSDL through the
*definition pipe*, and invokes it with a ReplyTo reply pipe.

Run:  python examples/p2p_discovery.py
"""

from repro.core import P2PSServiceQuery, WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import PeerGroup
from repro.p2ps.group import link_rendezvous
from repro.simnet import Network, SeededLatency


class Imaging:
    """A service with attribute-tagged capabilities."""

    def render(self, scene: str, width: int) -> str:
        return f"rendered:{scene}@{width}px"

    def thumbnail(self, scene: str) -> str:
        return f"thumb:{scene}"


def main() -> None:
    # WAN-ish latency with a heavy tail, seeded for reproducibility
    net = Network(latency=SeededLatency(median=0.02, seed=42))

    # two peer groups bridged by linked rendezvous peers
    campus, lab = PeerGroup("campus"), PeerGroup("lab")
    rdv_campus = WSPeer(net.add_node("rdv-campus"),
                        P2psBinding(campus, rendezvous=True), name="rdv-campus")
    rdv_lab = WSPeer(net.add_node("rdv-lab"),
                     P2psBinding(lab, rendezvous=True), name="rdv-lab")
    link_rendezvous(rdv_campus.peer, rdv_lab.peer)

    # the provider lives in the lab group
    provider = WSPeer(net.add_node("workstation"), P2psBinding(lab), name="workstation")
    provider.deploy(Imaging(), name="Imaging")
    advert = provider.server.deployer.advert_for("Imaging")
    advert.attributes["gpu"] = "yes"
    provider.publish("Imaging")
    print(f"provider peer id: {provider.peer.id}")
    print(f"service advert pipes: {sorted(p.name for p in advert.pipes)}")

    net.run()  # let adverts settle through group + rendezvous caches

    # the consumer lives in the campus group — different broadcast domain
    consumer = WSPeer(net.add_node("laptop"), P2psBinding(campus), name="laptop")
    handle = consumer.locate_one(
        P2PSServiceQuery("Imaging", attributes={"gpu": "yes"}), timeout=10.0
    )
    print(f"\nlocated via {handle.source}; endpoints:")
    for epr in handle.endpoints:
        print(f"  {epr.address}  (pipe {epr.property_text('PipeName')})")

    # invoke over pipes: a reply pipe is created, serialised into the
    # WS-Addressing ReplyTo header, and the response comes back down it
    print("\nrender:   ", consumer.invoke(handle, "render", scene="nebula", width=640))
    print("thumbnail:", consumer.invoke(handle, "thumbnail", scene="nebula"))

    # asynchronous, event-driven invocation (the P2P-native mode)
    outcomes = []
    consumer.invoke_async(
        handle, "render", {"scene": "async-galaxy", "width": 320},
        lambda result, error: outcomes.append(result or error),
    )
    print("\nasync dispatched; virtual clock:", f"{net.now * 1000:.1f}ms")
    net.run()
    print("async completed:", outcomes[0], "at", f"{net.now * 1000:.1f}ms")


if __name__ == "__main__":
    main()
