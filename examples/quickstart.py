"""Quickstart: host, publish, discover and invoke a Web service.

Reproduces the paper's Fig. 3 loop with the standard (HTTP/UDDI)
binding on a simulated network:

    deploy -> launch HTTP server -> publish(UDDI) -> locate(UDDI) -> invoke(HTTP)

Run:  python examples/quickstart.py
"""

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.core.events import RecordingListener
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


class Greeter:
    """The application object we expose — note: no container, no
    deployment descriptor; the live object *is* the service."""

    def __init__(self, greeting: str):
        self.greeting = greeting

    def greet(self, name: str) -> str:
        """Produce a greeting for *name*."""
        return f"{self.greeting}, {name}!"

    def rename(self, greeting: str) -> str:
        """Change the greeting at runtime (the object is stateful)."""
        self.greeting = greeting
        return greeting


def main() -> None:
    # -- the world: a simulated network with a UDDI registry node -----
    net = Network(latency=FixedLatency(0.005))
    registry = UddiRegistryNode(net.add_node("registry"))
    print(f"UDDI registry listening at {registry.endpoint}")

    # -- the provider peer ------------------------------------------------
    listener = RecordingListener()
    provider = WSPeer(
        net.add_node("provider"), StandardBinding(registry.endpoint), listener=listener
    )
    greeter = Greeter("Hello")
    provider.deploy(greeter, name="Greeter")   # HTTP server launches *now*
    provider.publish("Greeter")                # registers in UDDI + WSDL URL
    print(f"deployed + published: {provider.deployed_services}")

    # -- the consumer peer ------------------------------------------------
    consumer = WSPeer(net.add_node("consumer"), StandardBinding(registry.endpoint))
    handle = consumer.locate_one("Greeter")
    print(f"located via {handle.source}: operations {handle.operation_names()}")
    print(f"endpoint: {handle.endpoints[0].address}")

    # direct invocation
    print("invoke:", consumer.invoke(handle, "greet", name="world"))

    # dynamic stub — built straight to a class, no code generation
    stub = consumer.create_stub(handle)
    print("stub:  ", stub.greet(name="stub user"))

    # the service fronts the *live* object: mutate it and re-invoke
    greeter.greeting = "Howdy"
    print("live:  ", stub.greet(name="again"))
    stub.rename(greeting="Hei")
    print("remote:", greeter.greeting, "(changed via the wire)")

    # the event stream the provider's application observed
    print("\nprovider events:")
    for event in listener.events[:12]:
        print(f"  t={event.time * 1000:7.2f}ms  {type(event).__name__:26s} {event.kind}")


if __name__ == "__main__":
    main()
