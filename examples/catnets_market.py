"""Catnets: economy-driven services in a decentralised topology (§V).

Provider peers sell compute through P2PS-hosted services; consumer
peers discover them with attribute queries, collect quotes and buy from
the cheapest.  Prices respond to demand, so load spreads across the
market — no central broker anywhere.

Run:  python examples/catnets_market.py
"""

from repro.apps import ConsumerAgent, ProviderAgent, run_market_rounds
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network


def main() -> None:
    net = Network(latency=FixedLatency(0.003))
    group = PeerGroup("catnets-market")

    providers = [
        ProviderAgent(net, group, "alpha", base_price=12.0),
        ProviderAgent(net, group, "beta", base_price=6.0),
        ProviderAgent(net, group, "gamma", base_price=9.0),
    ]
    net.run()  # adverts settle
    consumers = [ConsumerAgent(net, group, f"buyer{i}") for i in range(4)]

    print("initial asks:", {p.name: p.service.price for p in providers})
    stats = run_market_rounds(providers, consumers, rounds=12)

    print(f"\nafter {stats.rounds} rounds, {stats.purchases} purchases, "
          f"total spend {stats.total_spend:.1f}")
    print("jobs per provider:", stats.jobs_per_provider)
    print("final asks:      ", {k: round(v, 2) for k, v in stats.final_prices.items()})
    print(f"load imbalance (max/mean): {stats.load_imbalance:.2f}  "
          f"(1.0 = perfectly even)")
    print(f"price spread: {stats.price_spread:.2f}")
    print("\nthe cheap provider attracted demand, its price rose, and the "
          "market\nredistributed load — catallactic behaviour with no broker.")


if __name__ == "__main__":
    main()
