"""Watch the actual wire: Figs. 5 and 6 as captured frames.

Attaches a wiretap to the simulated network and replays one P2PS
publish → locate → invoke cycle, printing the real frames (SOAP
envelopes, P2PS messages, WSDL documents) as a sequence diagram — the
message flows of the paper's Figs. 5/6, observed rather than drawn.

Run:  python examples/wire_inspection.py
"""

from repro import Network, P2psBinding, PeerGroup, WSPeer
from repro.simnet import FixedLatency
from repro.simnet.wiretap import Wiretap


class Oracle:
    def ask(self, question: str) -> str:
        return f"the answer to {question!r} is 42"


def main() -> None:
    net = Network(latency=FixedLatency(0.005))
    tap = Wiretap(net)
    group = PeerGroup("agora")

    provider = WSPeer(net.add_node("delphi"), P2psBinding(group), name="delphi")
    provider.deploy(Oracle(), name="Oracle")
    provider.publish("Oracle")
    net.run()

    consumer = WSPeer(net.add_node("pilgrim"), P2psBinding(group), name="pilgrim")

    print("== locate: query + definition pipe (WSDL fetch) ==")
    tap.clear()
    handle = consumer.locate_one("Oracle")
    print(tap.render_sequence())

    print("\n== invoke: Fig.5 request + Fig.6 response over pipes ==")
    tap.clear()
    answer = consumer.invoke(handle, "ask", question="everything")
    print(tap.render_sequence())
    print(f"\nresult: {answer}")

    print("\n== frame classification totals ==")
    for summary, count in sorted(tap.summary_counts().items()):
        print(f"  {count:3d}x {summary}")

    print("\n== one raw SOAP request, as it crosses the wire ==")
    from repro.soap.rpc import build_rpc_request
    from repro.wsa import EndpointReference, MessageAddressingProperties

    envelope = build_rpc_request(handle.namespace, "ask", {"question": "everything"})
    target = handle.endpoints[0]
    maps = MessageAddressingProperties.for_request(target, "ask")
    maps.reply_to = EndpointReference("p2ps://pilgrim-peer#reply")
    maps.apply_to(envelope, target=target)
    print(envelope.to_wire(pretty=True))


if __name__ == "__main__":
    main()
