"""E15 — replicated stateful services: crash consistency + handoff.

E9 showed *stateless* availability under churn: failover keeps calls
answered and MessageID reuse keeps execution at-most-once.  But a
stateful service that fails over to a fresh replica silently loses the
session — the paper's transient-peer setting makes that the common
case, not a corner.  E15 measures what the replication plane buys:

1. *survival* — paced stateful calls (a whole-object counter and a
   session-partitioned cart) under the E9 churn schedule, replicated
   vs unreplicated.  A *consistency violation* is an answered call
   whose result breaks the session's expected sequence — a lost update
   or a duplicate execution, as the client actually observes it.
2. *crash points* — the simnet crash harness kills the primary at
   adversarial protocol instants (before the delta ships, mid-ship,
   after ship but before the reply, mid-snapshot-catch-up, and during
   the handoff itself) and asserts zero violations and zero duplicate
   acknowledgements survive each one.
3. *overhead* — happy-path cost of shipping deltas: client latency
   ratio (ships are asynchronous, so this should be ~1.0) plus the
   wire amplification (r extra frames per mutation).

Results land in BENCH_E15.json.  ``E15_SMOKE=1`` shrinks the run.
"""

import os

from _workloads import emit_json, fmt_ms, print_table

import numpy as np

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import StandardBinding
from repro.replication import ReplicationConfig
from repro.simnet import ChurnSchedule, CrashHarness, FixedLatency, Network
from repro.uddi import UddiRegistryNode
from repro.simnet.wiretap import payload_text

SMOKE = bool(os.environ.get("E15_SMOKE"))
N_PROVIDERS = 3
N_CALLS = 30 if SMOKE else 200
REQUEST_GAP = 0.05
ATTEMPT_TIMEOUT = 0.25
DOWNTIME = 1.0
CYCLE = 4.5  # staggered: at most one provider down at a time


class CounterService:
    """Whole-object session state; every execution moves the value."""

    def __init__(self):
        self.value = 0

    def increment(self, by: int) -> int:
        self.value += by
        return self.value


class CartService:
    """Session-partitioned state via the session protocol."""

    def __init__(self):
        self._carts = {}

    def get_session_state(self, session):
        return dict(self._carts.get(session, {}))

    def set_session_state(self, session, state):
        self._carts[session] = dict(state)

    def add_item(self, session: str, item: str) -> int:
        cart = self._carts.setdefault(session, {"items": []})
        cart["items"] = list(cart["items"]) + [item]
        return len(cart["items"])


class World:
    """One logical stateful service on N providers."""

    def __init__(self, service_factory, replicated, config=None):
        self.net = Network(latency=FixedLatency(0.002))
        self.registry = UddiRegistryNode(self.net.add_node("registry"))
        self.providers, self.services = [], []
        endpoints, wsdl = [], None
        for i in range(N_PROVIDERS):
            peer = WSPeer(
                self.net.add_node(f"prov{i}"),
                StandardBinding(self.registry.endpoint),
            )
            service = service_factory()
            peer.deploy(service, name="Svc")
            self.providers.append(peer)
            self.services.append(service)
            local = peer.local_handle("Svc")
            wsdl = wsdl or local.wsdl
            endpoints.extend(local.endpoints)
        self.consumer = WSPeer(
            self.net.add_node("cons"), StandardBinding(self.registry.endpoint)
        )
        self.executor = self.consumer.enable_failover()
        self.group = None
        if replicated:
            self.group = self.providers[0].enable_replication(
                "Svc", self.providers[1:], r=N_PROVIDERS - 1, config=config
            )
            self.executor.attach_replication(self.group)
            self.handle = self.group.handle()
        else:
            self.handle = ServiceHandle("Svc", wsdl, endpoints, source="merged")

    def pace(self, dt=REQUEST_GAP):
        """Advance *dt* WITHOUT draining future churn kills."""
        self.net.run(until=self.net.now + dt)

    def invoke(self, operation, args):
        return self.executor.invoke(
            self.handle, operation, args, timeout=ATTEMPT_TIMEOUT
        )


def schedule_churn(world, horizon):
    churn = ChurnSchedule(world.net)
    cycles = 0
    for i, provider in enumerate(world.providers):
        cycles += churn.kill_restart_cycle(
            provider.node.id,
            start=0.5 + i * (CYCLE / N_PROVIDERS),
            downtime=DOWNTIME,
            period=CYCLE,
            until=horizon,
        )
    return cycles


# ----------------------------------------------------------------------
# E15a  survival + consistency under churn
# ----------------------------------------------------------------------
def drive_counter(world, n_calls):
    """Paced increments; an answered call must return exactly one more
    than the last answered value (lost update ⇒ repeat/drop, duplicate
    execution ⇒ skip — both break contiguity)."""
    answered = violations = 0
    expected = 0
    for _ in range(n_calls):
        try:
            value = world.invoke("increment", {"by": 1})
        except Exception:  # noqa: BLE001 - unavailability is the metric
            world.pace()
            continue
        answered += 1
        if value != expected + 1:
            violations += 1
        expected = value  # resync so one break is counted once
        world.pace()
    return answered, violations


def drive_cart(world, n_calls):
    """Paced add_item calls alternating between two sessions."""
    answered = violations = 0
    expected = {"alice": 0, "bob": 0}
    for i in range(n_calls):
        session = "alice" if i % 2 == 0 else "bob"
        try:
            size = world.invoke(
                "add_item", {"session": session, "item": f"i{i}"}
            )
        except Exception:  # noqa: BLE001
            world.pace()
            continue
        answered += 1
        if size != expected[session] + 1:
            violations += 1
        expected[session] = size
        world.pace()
    return answered, violations


def measure_survival(workload, replicated):
    factory, driver = {
        "counter": (CounterService, drive_counter),
        "cart": (CartService, drive_cart),
    }[workload]
    world = World(factory, replicated=replicated)
    horizon = N_CALLS * (REQUEST_GAP + 4 * ATTEMPT_TIMEOUT)
    cycles = schedule_churn(world, horizon)
    answered, violations = driver(world, N_CALLS)
    out = {
        "calls": N_CALLS,
        "answered": answered,
        "survival": answered / N_CALLS,
        "consistency_violations": violations,
        "failovers": world.executor.failovers,
        "handoffs": world.executor.handoffs,
        "churn_cycles": cycles,
    }
    if world.group is not None:
        world.pace(3.0)  # let anti-entropy settle before judging
        out["divergences"] = world.group.divergences()
        out["converged_live"] = world.group.converged()
    return out


# ----------------------------------------------------------------------
# E15b  adversarial crash points
# ----------------------------------------------------------------------
def _arm(world, harness, point):
    """Install the crash for *point*, to fire on the next mutation."""
    primary = world.providers[0]
    svc = lambda e: e.detail.get("service") == "Svc"  # noqa: E731
    if point == "before_ship":
        # kill at the request-received instant: the write completes but
        # is never shipped nor acknowledged (an orphan)
        harness.kill_on_event(
            primary, "request-received", primary.node.id, match=svc
        )
    elif point == "during_ship":
        # one replica's delta is lost in flight, then the primary dies:
        # the under-shipped replica must not serve the session
        behind = world.group.members[1]
        harness.drop_next(
            lambda f: f.dst == behind.node_id and "apply_delta" in payload_text(f),
            count=1,
            label="lose one delta ship",
        )
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True, match=svc
        )
    elif point == "after_ship":
        # deltas out, reply lost, primary dead: the handoff target must
        # answer the retransmission from its dedup window, not re-run
        harness.drop_replies_from(primary.node.id, count=1)
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True, match=svc
        )
    elif point == "during_handoff":
        # after_ship, plus the first handoff target dies mid-redirect:
        # the call has to survive a second hop
        harness.drop_replies_from(primary.node.id, count=1)
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True, match=svc
        )
        target = world.providers[1]
        harness.kill_on_event(
            target, "request-received", target.node.id, match=svc,
            label="kill first handoff target",
        )
    else:
        raise ValueError(point)


class CounterDrive:
    """A resumable paced counter drive: tracks the last answered value
    so crash scenarios can interleave kills between call batches."""

    def __init__(self, world):
        self.world = world
        self.answered = 0
        self.violations = 0
        self.expected = 0
        self.calls = 0

    def run(self, n_calls):
        for _ in range(n_calls):
            self.calls += 1
            try:
                value = self.world.invoke("increment", {"by": 1})
            except Exception:  # noqa: BLE001
                self.world.pace()
                continue
            self.answered += 1
            if value != self.expected + 1:
                self.violations += 1
            self.expected = value  # resync so one break counts once
            self.world.pace()
        return self


def measure_crash_point(point):
    if point == "mid_snapshot":
        return measure_mid_snapshot_crash()
    world = World(CounterService, replicated=True)
    harness = CrashHarness(world.net)
    drive = CounterDrive(world).run(2)  # warm-up
    _arm(world, harness, point)
    drive.run(6)
    world.pace(3.0)  # anti-entropy repair window
    return {
        "answered": drive.answered,
        "calls": drive.calls,
        "consistency_violations": drive.violations,
        "kills": harness.describe(),
        "handoffs": world.executor.handoffs,
        "divergences": world.group.divergences(),
        "converged_live": world.group.converged(),
    }


def measure_mid_snapshot_crash():
    """A replica returns from a long outage (its gap is past the
    compaction floor, so catch-up needs a snapshot) and the primary
    dies the moment it comes back: the snapshot must come from the
    surviving member, and calls must keep flowing meanwhile."""
    config = ReplicationConfig(compact_after=2)
    world = World(CounterService, replicated=True, config=config)
    harness = CrashHarness(world.net)
    lagging = world.providers[2]

    drive = CounterDrive(world).run(1)
    harness.kill(lagging.node.id)
    drive.run(5)  # history compacts past the floor while it is down
    harness.schedule_restart(lagging.node.id, 0.1)
    # the primary dies just as the lagging member restarts, mid-resync
    harness.kill_on_event(
        world.providers[0], "request-received",
        world.providers[0].node.id,
        match=lambda e: e.detail.get("service") == "Svc",
    )
    drive.run(4)
    world.pace(3.0)
    member = world.group.members[2]
    return {
        "answered": drive.answered,
        "calls": drive.calls,
        "consistency_violations": drive.violations,
        "kills": harness.describe(),
        "handoffs": world.executor.handoffs,
        "divergences": world.group.divergences(),
        "converged_live": world.group.converged(),
        "snapshots_installed": member.store.snapshots_installed,
    }


CRASH_POINTS = [
    "before_ship",
    "during_ship",
    "after_ship",
    "mid_snapshot",
    "during_handoff",
]


# ----------------------------------------------------------------------
# E15c  happy-path overhead
# ----------------------------------------------------------------------
def measure_overhead():
    n = 20 if SMOKE else 100
    out = {}
    for mode in ("unreplicated", "replicated"):
        world = World(CounterService, replicated=(mode == "replicated"))
        times = []
        for _ in range(n):
            start = world.net.now
            world.invoke("increment", {"by": 1})
            times.append(world.net.now - start)
            world.pace()
        out[mode] = {
            "p50_ms": float(np.percentile(times, 50)) * 1000,
            "mean_ms": float(np.mean(times)) * 1000,
        }
        if world.group is not None:
            out[mode]["ships_sent"] = world.group.ships_sent
            out[mode]["ships_per_mutation"] = world.group.ships_sent / n
    base = out["unreplicated"]["mean_ms"]
    rep = out["replicated"]["mean_ms"]
    out["overhead_pct"] = (rep - base) / base * 100 if base else 0.0
    return out


# ----------------------------------------------------------------------
def run_e15_experiment():
    results = {"survival": {}, "crash_points": {}, "overhead": {}}

    rows = []
    for workload in ("counter", "cart"):
        results["survival"][workload] = {}
        for mode, replicated in (("unreplicated", False), ("replicated", True)):
            metrics = measure_survival(workload, replicated)
            results["survival"][workload][mode] = metrics
            rows.append([
                workload,
                mode,
                f"{metrics['survival'] * 100:.1f}%",
                metrics["consistency_violations"],
                metrics["failovers"],
                metrics.get("handoffs", 0),
            ])
    print_table(
        f"E15a  stateful survival under churn ({N_CALLS} calls, "
        f"{N_PROVIDERS} providers cycling {DOWNTIME:g}s/{CYCLE:g}s down)",
        ["workload", "mode", "survival", "violations", "failovers",
         "handoffs"],
        rows,
        note="a violation is an answered call whose result breaks the "
        "session's sequence: without replication every failover silently "
        "resets the session",
    )

    rows = []
    for point in CRASH_POINTS:
        metrics = measure_crash_point(point)
        results["crash_points"][point] = metrics
        rows.append([
            point,
            f"{metrics['answered']}/{metrics['calls']}",
            metrics["consistency_violations"],
            metrics["divergences"],
            "yes" if metrics["converged_live"] else "NO",
        ])
    print_table(
        "E15b  adversarial primary kills (crash harness)",
        ["crash point", "answered", "violations", "divergences",
         "converged"],
        rows,
        note="the harness kills the primary at event-defined protocol "
        "instants; shipped dedup state makes handoff replay, never re-run",
    )

    overhead = measure_overhead()
    results["overhead"] = overhead
    print_table(
        "E15c  happy-path replication overhead",
        ["mode", "p50", "mean", "ships/mutation"],
        [
            [
                mode,
                fmt_ms(overhead[mode]["p50_ms"] / 1000),
                fmt_ms(overhead[mode]["mean_ms"] / 1000),
                overhead[mode].get("ships_per_mutation", "-"),
            ]
            for mode in ("unreplicated", "replicated")
        ],
        note=f"client-visible overhead {overhead['overhead_pct']:+.1f}% — "
        "delta ships are asynchronous, so the cost is wire amplification "
        "(r extra frames per mutation), not latency",
    )

    emit_json("BENCH_E15.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E15_SMOKE=1)
# ----------------------------------------------------------------------
def test_e15_replication_survives_churn_consistently():
    replicated = measure_survival("counter", replicated=True)
    unreplicated = measure_survival("counter", replicated=False)
    assert replicated["survival"] >= 0.99
    assert replicated["consistency_violations"] == 0
    assert replicated["divergences"] == 0
    assert replicated["converged_live"]
    # the contrast: an unreplicated stateful service loses its session
    # on every failover
    assert unreplicated["consistency_violations"] > 0


def test_e15_cart_sessions_survive_churn():
    metrics = measure_survival("cart", replicated=True)
    assert metrics["survival"] >= 0.99
    assert metrics["consistency_violations"] == 0
    assert metrics["converged_live"]


def test_e15_crash_points_lose_nothing_acknowledged():
    for point in CRASH_POINTS:
        metrics = measure_crash_point(point)
        assert metrics["consistency_violations"] == 0, point
        assert metrics["divergences"] == 0, point
        assert metrics["converged_live"], point
        assert metrics["answered"] >= metrics["calls"] - 1, point


def test_e15_happy_path_overhead_negligible():
    overhead = measure_overhead()
    assert overhead["overhead_pct"] <= 10.0
    assert overhead["replicated"]["ships_per_mutation"] == N_PROVIDERS - 1


if __name__ == "__main__":
    run_e15_experiment()
