"""AB1 — ablation: rendezvous replication.

Rendezvous peers are the only bridges between groups (§IV-B).  With one
bridge the overlay has a single point of failure of its own; replicating
the rendezvous restores resilience.  Ablation: bridge two groups with k
parallel rendezvous links, kill one rendezvous, measure cross-group
discovery success.
"""

from _workloads import EchoService, print_table

from repro.core import DiscoveryError, WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import PeerGroup
from repro.p2ps.group import link_rendezvous
from repro.simnet import FixedLatency, Network


def build_bridged_world(replication: int):
    """Two groups joined by *replication* independent rendezvous pairs."""
    net = Network(latency=FixedLatency(0.002))
    group_a, group_b = PeerGroup("A"), PeerGroup("B")
    rendezvous = []
    for k in range(replication):
        ra = WSPeer(net.add_node(f"ra{k}"), P2psBinding(group_a, rendezvous=True), name=f"ra{k}")
        rb = WSPeer(net.add_node(f"rb{k}"), P2psBinding(group_b, rendezvous=True), name=f"rb{k}")
        link_rendezvous(ra.peer, rb.peer)
        rendezvous.append((ra, rb))
    provider = WSPeer(net.add_node("prov"), P2psBinding(group_b), name="prov")
    provider.deploy(EchoService(), name="Far")
    provider.publish("Far")
    net.run()
    consumer = WSPeer(net.add_node("cons"), P2psBinding(group_a), name="cons")
    return net, rendezvous, provider, consumer


def cross_group_success(replication: int, kill_bridges: int) -> bool:
    net, rendezvous, provider, consumer = build_bridged_world(replication)
    for k in range(kill_bridges):
        rendezvous[k][0].node.go_down()  # kill the group-A side bridge
    try:
        handle = consumer.locate_one("Far", timeout=5.0)
        return consumer.invoke(handle, "echo", {"message": "x"}, timeout=5.0) == "x"
    except (DiscoveryError, Exception):  # noqa: BLE001
        return False


def run_ab1_experiment():
    rows = []
    for replication in (1, 2, 3):
        for killed in (0, 1):
            ok = cross_group_success(replication, killed)
            rows.append([replication, killed, "succeeds" if ok else "FAILS"])
    print_table(
        "AB1  rendezvous replication vs bridge failure (cross-group locate)",
        ["rendezvous pairs", "bridges killed", "discovery"],
        rows,
        note="a single rendezvous pair is the overlay's own single point "
        "of failure; one extra pair restores cross-group discovery",
    )
    return rows


def test_ab1_single_bridge_is_fragile():
    assert cross_group_success(replication=1, kill_bridges=0)
    assert not cross_group_success(replication=1, kill_bridges=1)


def test_ab1_replication_restores_resilience():
    assert cross_group_success(replication=2, kill_bridges=1)
    assert cross_group_success(replication=3, kill_bridges=1)


def test_bench_cross_group_locate(benchmark):
    net, rendezvous, provider, consumer = build_bridged_world(2)
    handle = consumer.locate_one("Far", timeout=5.0)

    benchmark(lambda: consumer.invoke(handle, "echo", message="bench"))


if __name__ == "__main__":
    run_ab1_experiment()
