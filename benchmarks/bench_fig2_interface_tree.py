"""F2 — Fig. 2: the interface tree.

Peer → {Client → (ServiceLocator, Invocation), Server → (ServiceDeployer,
ServicePublisher)}.  Reproduction: verify the constructed tree matches
the figure, that every leaf's events reach the root, that child nodes
can be replaced at runtime, and time the propagation overhead.
"""

from _workloads import build_standard_world, print_table

from repro.core.events import EventSource, RecordingListener
from repro.core.invocation import HttpInvocation
from repro.core.locator import UddiServiceLocator


def tree_shape(wspeer):
    """(child node, parent node) edges of a live WSPeer tree."""
    return {
        ("client", wspeer.client.parent.node_name),
        ("server", wspeer.server.parent.node_name),
        ("locator", wspeer.client.locator.parent.node_name),
        ("invocation", wspeer.client.invocation.parent.node_name),
        ("deployer", wspeer.server.deployer.parent.node_name),
        ("publisher", wspeer.server.publisher.parent.node_name),
        ("container", wspeer.server.container.parent.node_name),
    }


def run_tree_experiment():
    world = build_standard_world(n_providers=0, n_consumers=1)
    from _workloads import EchoService

    from repro.core import WSPeer
    from repro.core.binding import StandardBinding

    peer = WSPeer(world.net.add_node("prov"), StandardBinding(world.registry.endpoint))
    listener = RecordingListener()
    peer.add_listener(listener)  # listening BEFORE any activity
    peer.deploy(EchoService(), name="Echo0")
    peer.publish("Echo0")
    consumer = world.consumers[0]
    handle = consumer.locate_one("Echo0")
    consumer.invoke(handle, "echo", message="x")

    per_source = {}
    for event in listener.events:
        per_source.setdefault(event.source, []).append(event.kind)
    rows = [[src, len(kinds), ", ".join(sorted(set(kinds)))] for src, kinds in sorted(per_source.items())]
    print_table(
        "F2  Fig.2: events fired per tree node, all heard at the Peer root",
        ["tree node", "events", "kinds"],
        rows,
    )
    return rows


def test_fig2_tree_matches_figure():
    world = build_standard_world()
    edges = tree_shape(world.providers[0])
    assert ("client", "peer") in edges
    assert ("server", "peer") in edges
    assert ("locator", "client") in edges
    assert ("invocation", "client") in edges
    assert ("deployer", "server") in edges
    assert ("publisher", "server") in edges


def test_fig2_all_leaves_report_to_root():
    rows = run_tree_experiment()
    sources = {row[0] for row in rows}
    assert "deployer" in sources        # deployment events
    assert "publisher" in sources       # publish events
    assert "container" in sources       # server-side request events


def test_fig2_runtime_child_replacement():
    # "individual nodes in the tree [can] be replaced either at runtime
    #  or as part of a new implementation without disrupting the overall
    #  structure"
    world = build_standard_world(n_consumers=1)
    consumer = world.consumers[0]
    listener = RecordingListener()
    consumer.add_listener(listener)
    replacement = UddiServiceLocator(consumer.node, world.registry.endpoint)
    consumer.client.register_locator(replacement)
    consumer.client.register_invocation(HttpInvocation(consumer.node))
    handle = consumer.locate_one("Echo0")
    assert consumer.invoke(handle, "echo", message="y") == "y"
    # events from the replacement still reach the root
    assert any(e.kind == "service-found" for e in listener.events)


def test_bench_event_propagation(benchmark):
    # cost of one event traversing leaf -> mid -> root with a listener
    root = EventSource("peer")
    mid = EventSource("client", parent=root)
    leaf = EventSource("invocation", parent=mid)
    root.add_listener(RecordingListener())

    benchmark(lambda: leaf.fire_client("request-sent", service="S", operation="op"))


def test_bench_tree_construction(benchmark):
    def build():
        return build_standard_world(n_providers=0, n_consumers=1, publish=False)

    benchmark(build)


if __name__ == "__main__":
    run_tree_experiment()
