"""A3 — §V: the Catnets market scenario.

"...exploring how economy driven services interact in a decentralised
topology."  Experiment: run the P2PS service market at several sizes
and report allocation and price statistics.  Expected catallactic
shape: demand pressure spreads load across providers (imbalance stays
near 1) and prices converge (small spread) — all with no central
broker node anywhere in the topology.
"""

from _workloads import print_table

from repro.apps import ConsumerAgent, ProviderAgent, run_market_rounds
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network

SIZES = [(2, 2), (3, 4), (5, 6)]
ROUNDS = 10


def build_market(n_providers: int, n_consumers: int, seed_spread: bool = True):
    net = Network(latency=FixedLatency(0.003))
    group = PeerGroup("market")
    providers = [
        ProviderAgent(
            net, group, f"P{i}",
            base_price=5.0 + (3.0 * i if seed_spread else 0.0),
        )
        for i in range(n_providers)
    ]
    net.run()
    consumers = [ConsumerAgent(net, group, f"C{i}") for i in range(n_consumers)]
    return net, providers, consumers


def run_a3_experiment(sizes=SIZES):
    rows = []
    stats_list = []
    for n_providers, n_consumers in sizes:
        net, providers, consumers = build_market(n_providers, n_consumers)
        stats = run_market_rounds(providers, consumers, rounds=ROUNDS)
        stats_list.append(stats)
        rows.append(
            [
                f"{n_providers}x{n_consumers}",
                stats.purchases,
                f"{stats.total_spend:.0f}",
                f"{stats.load_imbalance:.2f}",
                f"{stats.price_spread:.2f}",
            ]
        )
    print_table(
        f"A3  Catnets market, {ROUNDS} rounds (providers x consumers)",
        ["market size", "purchases", "spend", "load imbalance", "price spread"],
        rows,
        note="shape: imbalance stays near 1 (load spreads) and final asks "
        "converge despite a 3x initial price spread; no broker node exists",
    )
    return stats_list


def test_a3_market_clears_every_round():
    stats_list = run_a3_experiment([(3, 4)])
    assert stats_list[0].purchases == 4 * ROUNDS


def test_a3_load_spreads():
    stats_list = run_a3_experiment([(3, 4)])
    stats = stats_list[0]
    busy = [p for p, jobs in stats.jobs_per_provider.items() if jobs > 0]
    assert len(busy) == 3  # everyone got work despite unequal start prices
    assert stats.load_imbalance < 2.0


def test_a3_prices_converge():
    net, providers, consumers = build_market(3, 4, seed_spread=True)
    initial = [p.service.price for p in providers]
    initial_spread = (max(initial) - min(initial)) / (sum(initial) / len(initial))
    stats = run_market_rounds(providers, consumers, rounds=12)
    assert stats.price_spread < initial_spread


def test_a3_no_central_node():
    net, providers, consumers = build_market(3, 2)
    run_market_rounds(providers, consumers, rounds=3)
    # traffic is spread: the busiest node carries well under half of it
    assert net.stats.max() < 0.5 * net.stats.total()


def test_bench_market_round(benchmark):
    net, providers, consumers = build_market(3, 3)

    benchmark(lambda: run_market_rounds(providers, consumers, rounds=1))


if __name__ == "__main__":
    run_a3_experiment()
