"""E2 — §II/§VI claim: P2P systems are robust to node failure; a
central registry is a single point of failure.

"[P2P systems] have developed sophisticated mechanisms for dealing with
discovery and the unreliability of nodes.  This has lead to the
development of networks that are scalable and robust in the face of
node failure."

Experiment: publish services, then kill nodes, then measure discovery
success from the surviving consumers.

- standard binding: kill the registry node → discovery success collapses
  to 0% even though every provider is still alive;
- P2PS binding: kill a random fraction f of peers → queries for services
  of *surviving* providers keep succeeding (cached adverts are spread
  over the group), degrading only gradually.
"""

from _workloads import EchoService, build_p2ps_world, build_standard_world, print_table

from repro.core import DiscoveryError
from repro.simnet import ChurnInjector

FRACTIONS = [0.0, 0.25, 0.5]
N_PEERS = 12


def standard_success_after_registry_death() -> tuple[float, float]:
    """(success before, success after) killing the registry."""
    world = build_standard_world(n_providers=4, n_consumers=1)
    consumer = world.consumers[0]
    before = 0
    for i in range(4):
        try:
            consumer.locate_one(f"Echo{i}", timeout=2.0)
            before += 1
        except DiscoveryError:
            pass
    world.registry.node.go_down()
    after = 0
    for i in range(4):
        try:
            consumer.locate_one(f"Echo{i}", timeout=2.0)
            after += 1
        except DiscoveryError:
            pass
    return before / 4, after / 4


def p2ps_success_under_churn(fraction: float, seed: int = 11) -> float:
    """Discovery success rate for surviving providers' services after
    downing *fraction* of the provider peers."""
    world = build_p2ps_world(n_providers=N_PEERS, n_consumers=1)
    consumer = world.consumers[0]
    churn = ChurnInjector(world.net, seed=seed)
    provider_nodes = [p.node.id for p in world.providers]
    killed = set(churn.fail_fraction(provider_nodes, fraction, at=world.net.now))
    world.net.run()

    survivors = [
        (i, p) for i, p in enumerate(world.providers) if p.node.id not in killed
    ]
    if not survivors:
        return 0.0
    successes = 0
    for i, provider in survivors:
        try:
            handle = consumer.locate_one(f"Echo{i}", timeout=2.0)
            # end-to-end: the service must actually be invocable
            consumer.invoke(handle, "echo", message="alive?", timeout=2.0)
            successes += 1
        except Exception:  # noqa: BLE001 - anything counts as failure here
            pass
    return successes / len(survivors)


def run_e2_experiment():
    before, after = standard_success_after_registry_death()
    rows = [
        ["standard", "registry dies", f"{before * 100:.0f}%", f"{after * 100:.0f}%"],
    ]
    for fraction in FRACTIONS:
        success = p2ps_success_under_churn(fraction)
        rows.append(
            ["p2ps", f"{fraction * 100:.0f}% of peers die",
             "100%", f"{success * 100:.0f}%"]
        )
    print_table(
        "E2  discovery success under failure (surviving services only)",
        ["binding", "failure", "success before", "success after"],
        rows,
        note="shape: one registry death zeroes standard discovery although "
        "all providers still run; P2PS keeps finding surviving providers",
    )
    return before, after, rows


def test_e2_registry_is_single_point_of_failure():
    before, after = standard_success_after_registry_death()
    assert before == 1.0
    assert after == 0.0


def test_e2_p2ps_survives_churn():
    assert p2ps_success_under_churn(0.0) == 1.0
    assert p2ps_success_under_churn(0.25) == 1.0
    assert p2ps_success_under_churn(0.5) >= 0.9


def test_e2_dead_providers_not_invocable_but_do_not_poison():
    # adverts of dead peers may linger in caches; invoking them fails,
    # but surviving services stay reachable
    world = build_p2ps_world(n_providers=3, n_consumers=1)
    consumer = world.consumers[0]
    world.providers[0].node.go_down()
    handle = consumer.locate_one("Echo1", timeout=2.0)
    assert consumer.invoke(handle, "echo", message="x", timeout=2.0) == "x"


def test_bench_p2ps_churn_scenario(benchmark):
    benchmark(lambda: p2ps_success_under_churn(0.25))


if __name__ == "__main__":
    run_e2_experiment()
