"""A1 — §V: Triana workflows over WSPeer.

Discovered services "appear as standard tools within a Triana toolbox
... wire them together to create Web service workflows".  Experiment:
choreograph fan-out workflows of growing width and show the engine's
wave scheduling overlaps independent invocations — width-w fan-out
costs ~one round trip, not w.
"""

from _workloads import fmt_ms, print_table

from repro.apps import Toolbox, Workflow, WorkflowEngine
from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode

WIDTHS = [1, 2, 4, 8]


class MathService:
    def add(self, a: float, b: float) -> float:
        return a + b

    def total(self, values: list) -> float:
        return float(sum(values))


def build_world():
    net = Network(latency=FixedLatency(0.005))
    registry = UddiRegistryNode(net.add_node("registry"))
    provider = WSPeer(net.add_node("mathhost"), StandardBinding(registry.endpoint))
    provider.deploy(MathService(), name="Math")
    provider.publish("Math")
    triana = WSPeer(net.add_node("triana"), StandardBinding(registry.endpoint))
    toolbox = Toolbox(triana)
    toolbox.discover("Math")
    return net, triana, toolbox


def fanout_workflow(toolbox, width: int) -> Workflow:
    """width parallel adds feeding one total."""
    wf = Workflow(f"fanout-{width}")
    for i in range(width):
        wf.add_task(f"branch{i}", toolbox.tool("Math.add"),
                    constants={"a": i, "b": i})
    # note: the sink takes the list of upstream ids as constants resolved
    # through a staging trick: wire each branch into a distinct parameter
    return wf


def run_a1_experiment(widths=WIDTHS):
    rows = []
    times = {}
    for width in widths:
        net, triana, toolbox = build_world()
        wf = fanout_workflow(toolbox, width)
        start = net.now
        results = WorkflowEngine(triana).run(wf)
        elapsed = net.now - start
        times[width] = elapsed
        rows.append(
            [width, wf.task_count, fmt_ms(elapsed), f"{elapsed / 0.010:.1f} RTTs"]
        )
    print_table(
        "A1  workflow fan-out: virtual completion time vs width",
        ["fan-out width", "tasks", "completion", "round trips"],
        rows,
        note="shape: a width-w wave completes in ~1 RTT because the engine "
        "dispatches independent tasks asynchronously together",
    )
    return times


def test_a1_fanout_is_one_rtt_wide():
    times = run_a1_experiment([1, 8])
    # 8-wide costs about the same as 1-wide, not 8x
    assert times[8] < times[1] * 2


def test_a1_dependent_chain_costs_scale_with_depth():
    net, triana, toolbox = build_world()
    wf = Workflow("chain")
    wf.add_task("t0", toolbox.tool("Math.add"), constants={"a": 1, "b": 1})
    for i in range(1, 5):
        wf.add_task(f"t{i}", toolbox.tool("Math.add"),
                    constants={"b": 1}, wires={"a": f"t{i - 1}"})
    start = net.now
    results = WorkflowEngine(triana).run(wf)
    elapsed = net.now - start
    assert results["t4"] == 6
    assert elapsed >= 5 * 0.010 * 0.99  # five sequential round trips


def test_a1_results_correct_at_any_width():
    net, triana, toolbox = build_world()
    wf = fanout_workflow(toolbox, 6)
    results = WorkflowEngine(triana).run(wf)
    assert all(results[f"branch{i}"] == 2 * i for i in range(6))


def test_bench_workflow_execution(benchmark):
    net, triana, toolbox = build_world()

    def run():
        wf = fanout_workflow(toolbox, 4)
        return WorkflowEngine(triana).run(wf)

    benchmark(run)


if __name__ == "__main__":
    run_a1_experiment()
