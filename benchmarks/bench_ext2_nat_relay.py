"""EXT2 — extension: firewalled/NATed peers via relays.

§IV-B motivates logical peer ids because pipes must work for "peers ...
who may be behind firewalls or NAT systems and therefore do not have
accessible network addresses".  The extension adds a NAT gate model and
relay forwarding.  Experiment: host the same service on a public peer
and on a NATed peer (with and without a relay) and measure
reachability and the relay's latency cost.
"""

from _workloads import fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import Peer, PeerGroup
from repro.simnet import FixedLatency, Network
from repro.simnet.faults import NatGate


class Echo:
    def echo(self, message: str) -> str:
        return message


def build_provider(net, group, kind: str):
    """kind: 'public' | 'natted-relayed' | 'natted-bare'."""
    name = f"prov-{kind}"
    provider = WSPeer(net.add_node(name), P2psBinding(group), name=name)
    if kind.startswith("natted"):
        if kind == "natted-relayed":
            relay = Peer(net.add_node(f"relay-{kind}"), name=f"relay-{kind}")
            relay.join(group)
            provider.peer.relay_node_id = relay.node.id
            provider.peer._safe_send(relay.node.id, "<hello/>")
            net.run()
        provider.peer.nat_gate = NatGate(net, name)
    provider.deploy(Echo(), name=f"Echo-{kind}")
    provider.publish(f"Echo-{kind}")
    net.run()
    return provider


def probe(kind: str):
    net = Network(latency=FixedLatency(0.005))
    group = PeerGroup("g")
    build_provider(net, group, kind)
    consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
    start = net.now
    try:
        handle = consumer.locate_one(f"Echo-{kind}", timeout=3.0)
        result = consumer.invoke(handle, "echo", {"message": "hi"}, timeout=3.0)
        return result == "hi", net.now - start
    except Exception:  # noqa: BLE001 - reachability probe
        return False, net.now - start


def run_ext2_experiment():
    rows = []
    outcomes = {}
    for kind in ("public", "natted-relayed", "natted-bare"):
        ok, elapsed = probe(kind)
        outcomes[kind] = (ok, elapsed)
        rows.append([kind, "reachable" if ok else "UNREACHABLE",
                     fmt_ms(elapsed) if ok else "-"])
    print_table(
        "EXT2  service reachability behind NAT",
        ["provider", "end-to-end invoke", "locate+invoke time"],
        rows,
        note="the bare NATed peer published its advert (outbound frames "
        "pass) but nobody can call it; the relay restores reachability at "
        "one extra hop per inbound frame",
    )
    return outcomes


def test_ext2_public_and_relayed_reachable():
    outcomes = run_ext2_experiment()
    assert outcomes["public"][0]
    assert outcomes["natted-relayed"][0]


def test_ext2_bare_natted_unreachable():
    ok, _ = probe("natted-bare")
    assert not ok


def test_ext2_relay_costs_one_extra_hop():
    _, t_public = probe("public")
    ok, t_relayed = probe("natted-relayed")
    assert ok
    # inbound request detours through the relay: +1 hop each inbound leg
    assert t_relayed > t_public


def test_bench_relayed_invoke(benchmark):
    net = Network(latency=FixedLatency(0.005))
    group = PeerGroup("g")
    build_provider(net, group, "natted-relayed")
    consumer = WSPeer(net.add_node("cons"), P2psBinding(group), name="cons")
    handle = consumer.locate_one("Echo-natted-relayed", timeout=3.0)

    benchmark(lambda: consumer.invoke(handle, "echo", message="bench"))


if __name__ == "__main__":
    run_ext2_experiment()
