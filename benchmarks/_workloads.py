"""Shared scenario builders and table rendering for the benchmark suite.

Every experiment in DESIGN.md §4 builds its world through these
helpers, so the topology/latency assumptions are stated once.  The
leading underscore keeps pytest from collecting this as a test module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.p2ps import PeerGroup
from repro.p2ps.group import link_rendezvous
from repro.simnet import FixedLatency, Network, SeededLatency, TraceLog
from repro.uddi import UddiRegistryNode

DEFAULT_LATENCY = 0.005  # 5 ms per hop, LAN-ish


class EchoService:
    """The canonical workload service."""

    def echo(self, message: str) -> str:
        return message

    def compute(self, values: list) -> float:
        return float(sum(values))


@dataclass
class StandardWorld:
    """A registry plus provider/consumer peers on the standard binding."""

    net: Network
    registry: UddiRegistryNode
    providers: list[WSPeer]
    consumers: list[WSPeer]


def build_standard_world(
    n_providers: int = 1,
    n_consumers: int = 1,
    latency: float = DEFAULT_LATENCY,
    publish: bool = True,
    trace: bool = False,
) -> StandardWorld:
    net = Network(latency=FixedLatency(latency), trace=TraceLog(enabled=trace))
    registry = UddiRegistryNode(net.add_node("registry"))
    providers = []
    for i in range(n_providers):
        peer = WSPeer(net.add_node(f"prov{i}"), StandardBinding(registry.endpoint))
        peer.deploy(EchoService(), name=f"Echo{i}")
        if publish:
            peer.publish(f"Echo{i}")
        providers.append(peer)
    consumers = [
        WSPeer(net.add_node(f"cons{i}"), StandardBinding(registry.endpoint))
        for i in range(n_consumers)
    ]
    return StandardWorld(net, registry, providers, consumers)


@dataclass
class P2psWorld:
    """A peer group (optionally several bridged by rendezvous)."""

    net: Network
    groups: list[PeerGroup]
    providers: list[WSPeer]
    consumers: list[WSPeer]
    rendezvous: list[WSPeer]


def build_p2ps_world(
    n_providers: int = 1,
    n_consumers: int = 1,
    n_groups: int = 1,
    latency: float = DEFAULT_LATENCY,
    publish: bool = True,
    trace: bool = False,
) -> P2psWorld:
    """Providers/consumers spread round-robin over *n_groups* groups;
    with multiple groups, one rendezvous per group, all linked in a
    chain (the overlay)."""
    net = Network(latency=FixedLatency(latency), trace=TraceLog(enabled=trace))
    groups = [PeerGroup(f"g{i}") for i in range(n_groups)]
    rendezvous = []
    if n_groups > 1:
        for i, group in enumerate(groups):
            peer = WSPeer(
                net.add_node(f"rdv{i}"), P2psBinding(group, rendezvous=True),
                name=f"rdv{i}",
            )
            rendezvous.append(peer)
        for a, b in zip(rendezvous, rendezvous[1:]):
            link_rendezvous(a.peer, b.peer)
    providers = []
    for i in range(n_providers):
        group = groups[i % n_groups]
        peer = WSPeer(net.add_node(f"pprov{i}"), P2psBinding(group), name=f"pprov{i}")
        peer.deploy(EchoService(), name=f"Echo{i}")
        if publish:
            peer.publish(f"Echo{i}")
        providers.append(peer)
    consumers = [
        WSPeer(
            net.add_node(f"pcons{i}"),
            P2psBinding(groups[i % n_groups]),
            name=f"pcons{i}",
        )
        for i in range(n_consumers)
    ]
    if publish:
        net.run()  # let adverts settle
    return P2psWorld(net, groups, providers, consumers, rendezvous)


def print_table(title: str, headers: list[str], rows: list[list], note: str = "") -> None:
    """Render one experiment table the way EXPERIMENTS.md records it."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n== {title}")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))
    if note:
        print(f"note: {note}")


def fmt_ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}ms"


def emit_json(filename: str, payload: dict[str, Any]) -> Path:
    """Write an experiment's machine-readable results next to the bench.

    Every experiment table printed for EXPERIMENTS.md should also land
    on disk as JSON (e.g. ``BENCH_E7.json``) so downstream tooling can
    diff runs without scraping tables.
    """
    path = Path(__file__).parent / filename
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")
    return path


def advance(net: Network, dt: float) -> None:
    """Let *dt* of virtual time pass (client pacing between requests)."""
    net.kernel.schedule(dt, lambda: None)
    net.run()
