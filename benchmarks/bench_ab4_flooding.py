"""AB4 — ablation: group broadcast vs Gnutella-style neighbor flooding.

§II: Gnutella "employs in-network discovery mechanisms which can be
used to form impromptu network connectivity between peers in order to
search for content".  The P2PS substrate supports both a group
(multicast-like) broadcast domain and an unstructured neighbor overlay.
Ablation: on N peers, compare discovery reach, latency and message cost
of (a) one flat group, (b) a random k-regular neighbor graph, as a
function of TTL.
"""

from _workloads import fmt_ms, print_table

import networkx as nx

from repro.p2ps import AdvertQuery, Peer, PeerGroup
from repro.p2ps.group import connect_neighbors
from repro.simnet import FixedLatency, Network

N_PEERS = 24
DEGREE = 3


def build_flat_group(n=N_PEERS):
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("flat")
    peers = [Peer(net.add_node(f"n{i}"), name=f"p{i}") for i in range(n)]
    for peer in peers:
        peer.join(group)
    return net, peers


def build_regular_graph(n=N_PEERS, k=DEGREE, seed=7):
    net = Network(latency=FixedLatency(0.002))
    peers = [Peer(net.add_node(f"n{i}"), name=f"p{i}") for i in range(n)]
    graph = nx.random_regular_graph(k, n, seed=seed)
    for a, b in graph.edges:
        connect_neighbors(peers[a], peers[b])
    return net, peers


def probe(build, ttl: int):
    """Publish at peer 0, query from the 'farthest' peer (last index)."""
    net, peers = build()
    peers[0].create_input_pipe("invoke", "Target")
    peers[0].publish_service("Target", ["invoke"])
    net.run()
    frames_before = net.sent.total()
    start = net.now
    handle = peers[-1].discover(AdvertQuery("service", "Target"), ttl=ttl)
    found = bool(handle.wait_for(1, timeout=3.0))
    elapsed = net.now - start
    net.run()
    return found, elapsed, net.sent.total() - frames_before


def run_ab4_experiment():
    rows = []
    for label, build in (("flat group", build_flat_group),
                         ("3-regular overlay", build_regular_graph)):
        for ttl in (1, 3, 6):
            found, elapsed, frames = probe(build, ttl)
            rows.append(
                [label, ttl, "found" if found else "not found",
                 fmt_ms(elapsed) if found else "-", frames]
            )
    print_table(
        f"AB4  discovery topology ablation ({N_PEERS} peers)",
        ["topology", "ttl", "result", "latency", "frames"],
        rows,
        note="the flat group reaches everyone in one hop at O(N) frames "
        "per query; the sparse overlay needs TTL ~ graph diameter but "
        "each peer only ever talks to its k neighbours",
    )
    return rows


def test_ab4_flat_group_always_one_hop():
    found, elapsed, _ = probe(build_flat_group, ttl=1)
    assert found
    assert elapsed < 0.02


def test_ab4_overlay_needs_ttl():
    found_small, _, _ = probe(build_regular_graph, ttl=1)
    found_large, _, _ = probe(build_regular_graph, ttl=8)
    assert found_large
    # on a 24-node 3-regular graph the farthest peer is >1 hop away
    assert not found_small


def test_ab4_overlay_per_peer_fanout_is_degree_bounded():
    net, peers = build_regular_graph()
    peers[0].create_input_pipe("invoke", "Target")
    peers[0].publish_service("Target", ["invoke"])
    net.run()
    net.sent.clear()
    peers[-1].discover(AdvertQuery("service", "Target"), ttl=10)
    net.run()
    # no peer ever sends more frames per query than its degree + response
    assert net.sent.max() <= DEGREE + 2


def test_bench_overlay_discovery(benchmark):
    benchmark(lambda: probe(build_regular_graph, ttl=8))


if __name__ == "__main__":
    run_ab4_experiment()
