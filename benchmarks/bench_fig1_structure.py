"""F1 — Fig. 1: WSPeer structure (application ⇄ WSPeer ⇄ remote services).

The figure shows WSPeer sitting between application code and remote
services, acting as "buffer and interpreter".  The reproduction: run the
same application loop over both bindings and show (a) the application
listener observes the full event stream of every exchange, and (b) the
application code is byte-identical across middleware (the buffering
claim).
"""

from _workloads import build_p2ps_world, build_standard_world, fmt_ms, print_table

from repro.core.events import RecordingListener

FAMILIES = [
    "DiscoveryMessageEvent",
    "PublishMessageEvent",
    "ClientMessageEvent",
    "ServerMessageEvent",
    "DeploymentMessageEvent",
]


def application_loop(peer, consumer, service_name: str):
    """The binding-agnostic application: locate then invoke twice."""
    handle = consumer.locate_one(service_name)
    consumer.invoke(handle, "echo", message="hello")
    consumer.invoke(handle, "compute", values=[1.0, 2.0, 3.0])
    return handle


def run_structure_experiment():
    rows = []
    for label, builder in (("standard", build_standard_world), ("p2ps", build_p2ps_world)):
        world = builder(n_providers=1, n_consumers=1)
        listener = RecordingListener()
        world.providers[0].add_listener(listener)
        world.consumers[0].add_listener(listener)
        start = world.net.now
        application_loop(world.providers[0], world.consumers[0], "Echo0")
        elapsed = world.net.now - start
        counts = {family: 0 for family in FAMILIES}
        for event in listener.events:
            counts[type(event).__name__] += 1
        rows.append(
            [label, fmt_ms(elapsed)]
            + [counts[family] for family in FAMILIES]
        )
    print_table(
        "F1  Fig.1: app <-> WSPeer <-> middleware, same app loop on both bindings",
        ["binding", "loop time", "discovery", "publish", "client", "server", "deploy"],
        rows,
        note="the application loop is identical code; only the Binding differs",
    )
    return rows


def test_fig1_app_sees_all_event_families():
    rows = run_structure_experiment()
    for row in rows:
        # discovery, client and server events must all have been heard
        assert row[2] > 0, f"{row[0]}: no discovery events reached the app"
        assert row[4] > 0, f"{row[0]}: no client events reached the app"
        assert row[5] > 0, f"{row[0]}: no server events reached the app"


def test_fig1_loop_is_binding_agnostic():
    standard = build_standard_world()
    p2ps = build_p2ps_world()
    r1 = application_loop(standard.providers[0], standard.consumers[0], "Echo0")
    r2 = application_loop(p2ps.providers[0], p2ps.consumers[0], "Echo0")
    assert r1.operation_names() == r2.operation_names()
    assert r1.source == "uddi" and r2.source == "p2ps"


def test_bench_full_cycle_standard(benchmark):
    def cycle():
        world = build_standard_world()
        return application_loop(world.providers[0], world.consumers[0], "Echo0")

    benchmark(cycle)


def test_bench_full_cycle_p2ps(benchmark):
    def cycle():
        world = build_p2ps_world()
        return application_loop(world.providers[0], world.consumers[0], "Echo0")

    benchmark(cycle)


if __name__ == "__main__":
    run_structure_experiment()
