"""E9 — availability under provider churn, with and without failover.

The paper's P2P setting assumes transient providers: peers "may
connect and disconnect frequently" while the services they host stay
advertised.  E9 replicates one logical service across several provider
peers, runs a churn schedule that cycles each provider down and back
up, and drives a paced client against the merged multi-endpoint
handle:

1. *baseline* — plain invocation: the client always talks to the
   deterministically-first endpoint; when that provider is in its down
   window the call burns its retry schedule and fails;
2. *failover* — the supervision subsystem: health-ranked endpoint
   choice, cross-EPR failover on retryable faults, original MessageID
   propagated so provider-side dedup keeps execution at-most-once.

Reported per mode: availability (fraction of calls answered), p50/p99
completion latency of the answered calls, and failover counts.  A
separate churn run against a stateful counter service asserts the
at-most-once guarantee: no provider executes a MessageID twice, ever.

Results land in BENCH_E9.json.  ``E9_SMOKE=1`` shrinks the run for CI.
"""

import os

from _workloads import emit_json, fmt_ms, print_table

import numpy as np

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import ChurnSchedule, FixedLatency, Network
from repro.uddi import UddiRegistryNode

SMOKE = bool(os.environ.get("E9_SMOKE"))
N_PROVIDERS = 3
N_CALLS = 40 if SMOKE else 300
REQUEST_GAP = 0.05      # virtual pacing between client calls
ATTEMPT_TIMEOUT = 0.25  # per-attempt budget inside one endpoint
DOWNTIME = 1.0          # seconds each provider spends down per cycle
CYCLE = 4.5             # staggered: at most one provider down at a time


class EchoService:
    def echo(self, message: str) -> str:
        return message


class CounterService:
    """Stateful: every *execution* is visible, duplicates included."""

    def __init__(self):
        self.value = 0

    def increment(self, by: int) -> int:
        self.value += by
        return self.value


def build_replicated_world(service_factory):
    """One logical service on N providers, merged into one handle."""
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    providers, services, endpoints = [], [], []
    wsdl = None
    for i in range(N_PROVIDERS):
        peer = WSPeer(net.add_node(f"prov{i}"), StandardBinding(registry.endpoint))
        service = service_factory()
        peer.deploy(service, name="Echo")
        providers.append(peer)
        services.append(service)
        local = peer.local_handle("Echo")
        wsdl = wsdl or local.wsdl
        endpoints.extend(local.endpoints)
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
    handle = ServiceHandle("Echo", wsdl, endpoints, source="merged")
    return net, providers, consumer, handle, services


def schedule_churn(net, providers, horizon):
    """Cycle every provider down/up, phase-shifted so the service as a
    whole is never fully dark.  Identical between modes (no seeds)."""
    churn = ChurnSchedule(net)
    cycles = 0
    for i, provider in enumerate(providers):
        cycles += churn.kill_restart_cycle(
            provider.node.id,
            start=0.5 + i * (CYCLE / N_PROVIDERS),
            downtime=DOWNTIME,
            period=CYCLE,
            until=horizon,
        )
    return churn, cycles


def pace(net, dt):
    """Let *dt* pass WITHOUT draining the churn schedule: a bare
    ``net.run()`` would fast-forward through every future kill."""
    net.run(until=net.now + dt)


def drive(consumer, handle, net, invoke):
    """N paced calls; returns (availability, latencies, errors)."""
    ok, times, errors = 0, [], 0
    for i in range(N_CALLS):
        start = net.now
        try:
            result = invoke(f"m{i}")
            assert result == f"m{i}"
            ok += 1
            times.append(net.now - start)
        except Exception:  # noqa: BLE001 - unavailability is the metric
            errors += 1
        pace(net, REQUEST_GAP)
    return ok / N_CALLS, times, errors


def measure_availability(mode):
    net, providers, consumer, handle, _ = build_replicated_world(EchoService)
    horizon = N_CALLS * (REQUEST_GAP + 4 * ATTEMPT_TIMEOUT)
    churn, cycles = schedule_churn(net, providers, horizon)

    if mode == "failover":
        executor = consumer.enable_failover()
        invoke = lambda msg: executor.invoke(  # noqa: E731
            handle, "echo", {"message": msg}, timeout=ATTEMPT_TIMEOUT
        )
    else:
        executor = None
        invoke = lambda msg: consumer.invoke(  # noqa: E731
            handle, "echo", {"message": msg}, timeout=ATTEMPT_TIMEOUT
        )

    availability, times, errors = drive(consumer, handle, net, invoke)
    return {
        "availability": availability,
        "p50_ms": float(np.percentile(times, 50)) * 1000 if times else None,
        "p99_ms": float(np.percentile(times, 99)) * 1000 if times else None,
        "failed_calls": errors,
        "failovers": executor.failovers if executor else 0,
        "churn_cycles": cycles,
    }


def measure_at_most_once():
    """Churn + failover against stateful counters: every provider must
    execute each MessageID at most once, so per provider the execution
    count equals the unique-request count exactly."""
    net, providers, consumer, handle, services = build_replicated_world(
        CounterService
    )
    horizon = N_CALLS * (REQUEST_GAP + 4 * ATTEMPT_TIMEOUT)
    schedule_churn(net, providers, horizon)
    executor = consumer.enable_failover()

    ok = 0
    for _ in range(N_CALLS):
        try:
            executor.invoke(handle, "increment", {"by": 1}, timeout=ATTEMPT_TIMEOUT)
            ok += 1
        except Exception:  # noqa: BLE001
            pass
        pace(net, REQUEST_GAP)

    per_provider = []
    duplicate_executions = 0
    for provider, service in zip(providers, services):
        deployed = provider.server.container.require("Echo")
        per_provider.append({
            "node": provider.node.id,
            "executions": service.value,
            "unique_requests": deployed.requests_processed,
            "duplicates_suppressed": deployed.duplicates_suppressed,
        })
        duplicate_executions += service.value - deployed.requests_processed
    return {
        "calls": N_CALLS,
        "answered": ok,
        "failovers": executor.failovers,
        "duplicate_executions": duplicate_executions,
        "per_provider": per_provider,
    }


# ----------------------------------------------------------------------
def run_e9_experiment():
    results = {"availability": {}, "at_most_once": {}}

    rows = []
    for mode in ("baseline", "failover"):
        metrics = measure_availability(mode)
        results["availability"][mode] = metrics
        rows.append([
            mode,
            f"{metrics['availability'] * 100:.1f}%",
            fmt_ms(metrics["p50_ms"] / 1000) if metrics["p50_ms"] else "-",
            fmt_ms(metrics["p99_ms"] / 1000) if metrics["p99_ms"] else "-",
            metrics["failed_calls"],
            metrics["failovers"],
        ])
    print_table(
        f"E9a  availability under provider churn ({N_CALLS} calls, "
        f"{N_PROVIDERS} providers cycling {DOWNTIME:g}s/{CYCLE:g}s down)",
        ["client", "availability", "p50", "p99", "failed", "failovers"],
        rows,
        note="the baseline client is pinned to the deterministically-first "
        "endpoint; failover re-ranks by health and hops EPRs mid-call",
    )

    amo = measure_at_most_once()
    results["at_most_once"] = amo
    print_table(
        "E9b  at-most-once across failovers (stateful counters)",
        ["calls", "answered", "failovers", "duplicate executions"],
        [[amo["calls"], amo["answered"], amo["failovers"],
          amo["duplicate_executions"]]],
        note="per provider, executions == unique MessageIDs processed: "
        "failover reuses the original MessageID so dedup replays instead "
        "of re-running",
    )

    emit_json("BENCH_E9.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E9_SMOKE=1)
# ----------------------------------------------------------------------
def test_e9_failover_beats_baseline_availability():
    baseline = measure_availability("baseline")
    failover = measure_availability("failover")
    assert failover["availability"] >= 0.99
    assert baseline["availability"] < failover["availability"] - 0.05
    assert failover["failovers"] > 0


def test_e9_no_duplicate_executions_across_failovers():
    amo = measure_at_most_once()
    assert amo["answered"] > 0
    assert amo["duplicate_executions"] == 0
    for row in amo["per_provider"]:
        assert row["executions"] == row["unique_requests"]


if __name__ == "__main__":
    run_e9_experiment()
