"""AB2 — ablation: query TTL vs reach and message cost.

Queries propagate across the rendezvous overlay with a hop budget.
Small TTL limits both how far a query can see and how many frames it
costs; the ablation sweeps TTL over a chain of groups and reports
reach, latency and total frames.
"""

from _workloads import EchoService, fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.core.query import P2PSServiceQuery
from repro.p2ps import PeerGroup
from repro.p2ps.group import link_rendezvous
from repro.simnet import FixedLatency, Network

CHAIN_LENGTH = 6  # groups in a row; provider lives in the last one


def build_chain():
    net = Network(latency=FixedLatency(0.002))
    groups = [PeerGroup(f"g{i}") for i in range(CHAIN_LENGTH)]
    rdvs = []
    for i, group in enumerate(groups):
        rdv = WSPeer(net.add_node(f"r{i}"), P2psBinding(group, rendezvous=True), name=f"r{i}")
        rdvs.append(rdv)
    for a, b in zip(rdvs, rdvs[1:]):
        link_rendezvous(a.peer, b.peer)
    provider = WSPeer(net.add_node("prov"), P2psBinding(groups[-1]), name="prov")
    provider.deploy(EchoService(), name="Far")
    provider.publish("Far")
    net.run()
    consumer = WSPeer(net.add_node("cons"), P2psBinding(groups[0]), name="cons")
    return net, consumer


def probe(ttl: int):
    net, consumer = build_chain()
    frames_before = net.sent.total()
    start = net.now
    handles = consumer.locate(P2PSServiceQuery("Far", ttl=ttl), timeout=5.0)
    elapsed = net.now - start
    net.run()
    frames = net.sent.total() - frames_before
    return bool(handles), elapsed, frames


def run_ab2_experiment():
    rows = []
    outcomes = {}
    for ttl in (1, 2, 4, 6, 10):
        found, elapsed, frames = probe(ttl)
        outcomes[ttl] = found
        rows.append(
            [ttl, "found" if found else "not found",
             fmt_ms(elapsed) if found else "-", frames]
        )
    print_table(
        f"AB2  query TTL vs reach (provider {CHAIN_LENGTH - 1} overlay hops away)",
        ["ttl", "discovery", "locate time", "frames spent"],
        rows,
        note="TTL bounds the flood: too small and remote services are "
        "invisible; larger TTL finds them at linear extra message cost",
    )
    return outcomes


def test_ab2_small_ttl_cannot_reach():
    found, _, _ = probe(2)
    assert not found


def test_ab2_sufficient_ttl_reaches():
    found, _, _ = probe(CHAIN_LENGTH + 1)
    assert found


def test_ab2_cost_grows_with_ttl():
    _, _, frames_small = probe(1)
    _, _, frames_large = probe(10)
    assert frames_large > frames_small


def test_bench_deep_locate(benchmark):
    def deep():
        net, consumer = build_chain()
        return consumer.locate(P2PSServiceQuery("Far", ttl=10), timeout=5.0)

    benchmark(deep)


if __name__ == "__main__":
    run_ab2_experiment()
