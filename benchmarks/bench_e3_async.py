"""E3 — §III break 1: asynchrony suits unreliable nodes.

"Asynchronicity allows for P2P style interactions with unreliable
nodes ... current Web service implementations are often synchronous due
in part to the use of HTTP which maintains an open connection."

Experiment: N providers, a fraction of which are dead (the P2P reality
of transient peers).  A client must collect one result from each.

- sync client: invokes one at a time; every dead provider stalls it for
  a full timeout — completion time grows linearly with failures;
- async client: dispatches all invocations at once and reacts to events;
  all timeouts overlap — completion time stays ~one timeout regardless.
"""

from _workloads import EchoService, build_standard_world, fmt_ms, print_table

import numpy as np

from repro.transport import TransportTimeoutError

N_PROVIDERS = 12
TIMEOUT = 2.0
DEAD_FRACTIONS = [0.0, 0.25, 0.5]


def build_world_with_dead(dead_fraction: float):
    world = build_standard_world(n_providers=N_PROVIDERS, n_consumers=1)
    consumer = world.consumers[0]
    handles = [consumer.locate_one(f"Echo{i}") for i in range(N_PROVIDERS)]
    n_dead = int(N_PROVIDERS * dead_fraction)
    rng = np.random.default_rng(5)
    dead = rng.choice(N_PROVIDERS, size=n_dead, replace=False)
    for i in dead:
        world.providers[i].node.go_down()
    return world, consumer, handles


def sync_client(dead_fraction: float) -> tuple[float, int]:
    """(virtual completion time, successes) invoking sequentially."""
    world, consumer, handles = build_world_with_dead(dead_fraction)
    start = world.net.now
    successes = 0
    for handle in handles:
        try:
            consumer.invoke(handle, "echo", {"message": "x"}, timeout=TIMEOUT)
            successes += 1
        except TransportTimeoutError:
            pass
    return world.net.now - start, successes


def async_client(dead_fraction: float) -> tuple[float, int]:
    """(virtual completion time, successes) dispatching all at once."""
    world, consumer, handles = build_world_with_dead(dead_fraction)
    start = world.net.now
    outcomes = []
    for handle in handles:
        consumer.invoke_async(
            handle, "echo", {"message": "x"},
            lambda result, error: outcomes.append(error is None),
            timeout=TIMEOUT,
        )
    world.net.kernel.pump_until(lambda: len(outcomes) == len(handles))
    return world.net.now - start, sum(outcomes)


def run_e3_experiment():
    rows = []
    for fraction in DEAD_FRACTIONS:
        sync_time, sync_ok = sync_client(fraction)
        async_time, async_ok = async_client(fraction)
        speedup = sync_time / async_time if async_time else float("inf")
        rows.append(
            [
                f"{fraction * 100:.0f}%",
                fmt_ms(sync_time),
                fmt_ms(async_time),
                f"{speedup:.1f}x",
                f"{sync_ok}/{N_PROVIDERS}",
            ]
        )
    print_table(
        f"E3  sync vs async client, {N_PROVIDERS} providers, timeout={TIMEOUT}s",
        ["dead providers", "sync completion", "async completion",
         "async speedup", "successes"],
        rows,
        note="shape: sync completion grows by one full timeout per dead "
        "provider; async overlaps everything and stays near one timeout",
    )
    return rows


def test_e3_sync_degrades_linearly_with_dead_nodes():
    time_clean, _ = sync_client(0.0)
    time_quarter, _ = sync_client(0.25)
    time_half, _ = sync_client(0.5)
    n_dead_quarter = int(N_PROVIDERS * 0.25)
    n_dead_half = int(N_PROVIDERS * 0.5)
    assert time_quarter >= time_clean + n_dead_quarter * TIMEOUT * 0.95
    assert time_half >= time_clean + n_dead_half * TIMEOUT * 0.95


def test_e3_async_completion_flat():
    time_clean, _ = async_client(0.0)
    time_half, ok = async_client(0.5)
    # with failures, async completes in ~one timeout, not N_dead timeouts
    assert time_half <= TIMEOUT * 1.2
    assert ok == N_PROVIDERS - int(N_PROVIDERS * 0.5)


def test_e3_async_beats_sync_when_nodes_fail():
    sync_time, _ = sync_client(0.5)
    async_time, _ = async_client(0.5)
    assert sync_time / async_time > 4


def test_e3_both_collect_same_successes():
    _, sync_ok = sync_client(0.25)
    _, async_ok = async_client(0.25)
    assert sync_ok == async_ok == N_PROVIDERS - int(N_PROVIDERS * 0.25)


def test_bench_async_fanout(benchmark):
    benchmark(lambda: async_client(0.0))


if __name__ == "__main__":
    run_e3_experiment()
