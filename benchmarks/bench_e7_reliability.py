"""E7 — WS-ReliableMessaging-lite on an unreliable substrate.

The paper's event model assumes networks where "components ... are
notified when and if responses are returned" (§III).  E7 measures what
the reliability layer buys under frame loss, for both bindings:

1. request/response invokes at drop rates {0, 5, 20, 50}% — delivery
   rate and p50/p99 completion time for three client profiles:
   *naive* (one attempt), *retry* (8 attempts, exponential backoff,
   same MessageID), *assured* (retry + circuit breaker; for one-way
   sends also explicit acks);
2. one-way P2PS notifications — bare fire-and-forget vs the ack +
   retransmit handshake, measured by what the provider actually
   executed;
3. duplicate suppression — a stateful counter under retransmission
   must execute once per unique request;
4. load shedding — total frames thrown at a *dead* provider with and
   without the breaker.

Results land in BENCH_E7.json for machine consumption.
"""

from _workloads import (
    advance,
    build_p2ps_world,
    build_standard_world,
    emit_json,
    fmt_ms,
    print_table,
)

import numpy as np

from repro.core.events import RecordingListener
from repro.reliability import (
    BreakerConfig,
    ReliabilityPolicy,
    RetryPolicy,
)
from repro.simnet import DropInjector

DROP_RATES = [0.0, 0.05, 0.2, 0.5]
N_REQUESTS = 100
N_ONEWAY = 100
REQUEST_GAP = 0.05  # virtual pacing between client calls
ATTEMPT_TIMEOUT = 0.5


class CountingService:
    """Non-idempotent stateful workload for the dedup experiment."""

    def __init__(self):
        self.executions = 0

    def bump(self) -> int:
        self.executions += 1
        return self.executions


def client_policy(profile: str, seed: int = 0):
    """The three client profiles compared throughout E7."""
    if profile == "naive":
        return ReliabilityPolicy.naive()
    retry = RetryPolicy(
        max_attempts=8, base_delay=0.05, multiplier=2.0, max_delay=0.5,
        jitter=0.1, seed=seed,
    )
    if profile == "retry":
        return ReliabilityPolicy(retry=retry)
    # assured: retry + ack (one-way flows) + a breaker tuned to shed
    # dead peers (near-total loss) without tripping on lossy links
    return ReliabilityPolicy(
        retry=retry,
        ack=True,
        breaker=BreakerConfig(
            window=16, failure_threshold=0.9, min_calls=8, open_timeout=1.0
        ),
    )


# ----------------------------------------------------------------------
# 1. request/response delivery + completion time
# ----------------------------------------------------------------------
def measure_invokes(binding: str, profile: str, drop: float, seed: int = 0):
    """One fresh world per configuration; returns the metrics dict."""
    if binding == "standard":
        world = build_standard_world(n_providers=1, n_consumers=1)
    else:
        world = build_p2ps_world(n_providers=1, n_consumers=1)
    net, consumer = world.net, world.consumers[0]
    handle = consumer.locate_one("Echo0", timeout=5.0)  # before the loss starts
    listener = RecordingListener()
    consumer.add_listener(listener)
    if drop > 0:
        DropInjector(net, p=drop, seed=seed)
    policy = client_policy(profile, seed=seed)
    delivered, times = 0, []
    for i in range(N_REQUESTS):
        start = net.now
        try:
            result = consumer.invoke(
                handle, "echo", {"message": f"m{i}"},
                timeout=ATTEMPT_TIMEOUT, policy=policy,
            )
            assert result == f"m{i}"
            delivered += 1
            times.append(net.now - start)
        except Exception:  # noqa: BLE001 - loss is the point
            pass
        advance(net, REQUEST_GAP)
    return {
        "delivery": delivered / N_REQUESTS,
        "p50_ms": float(np.percentile(times, 50)) * 1000 if times else None,
        "p99_ms": float(np.percentile(times, 99)) * 1000 if times else None,
        "retransmits": len(listener.of_kind("retransmit")),
    }


# ----------------------------------------------------------------------
# 2. one-way notifications over pipes (ack vs fire-and-forget)
# ----------------------------------------------------------------------
def measure_oneway(profile: str, drop: float, seed: int = 0):
    """Delivery measured at the *provider*: executions of the target op."""
    world = build_p2ps_world(n_providers=1, n_consumers=1)
    net, provider, consumer = world.net, world.providers[0], world.consumers[0]
    service = CountingService()
    provider.deploy(service, name="Counting")
    provider.publish("Counting")
    net.run()
    handle = consumer.locate_one("Counting", timeout=5.0)
    if drop > 0:
        DropInjector(net, p=drop, seed=seed)
    policy = None if profile == "naive" else ReliabilityPolicy(
        retry=RetryPolicy(
            max_attempts=8, base_delay=0.05, multiplier=2.0, max_delay=0.5,
            jitter=0.1, seed=seed,
        ),
        ack=True,
    )
    statuses = []
    for _ in range(N_ONEWAY):
        if profile == "naive":
            consumer.invoke_oneway(handle, "bump")
        else:
            statuses.append(
                consumer.invoke_oneway(handle, "bump", policy=policy, timeout=0.3)
            )
        advance(net, REQUEST_GAP)
    net.run()
    acked = sum(1 for s in statuses if s is not None and s.acked)
    return {
        "executed": service.executions / N_ONEWAY,
        "acked": (acked / len(statuses)) if statuses else None,
        "duplicates_suppressed": provider.server.deployer.duplicates_suppressed,
    }


# ----------------------------------------------------------------------
# 3. duplicate suppression under retransmission
# ----------------------------------------------------------------------
def measure_dedup(drop: float = 0.2, seed: int = 4, n: int = 40):
    world = build_p2ps_world(n_providers=1, n_consumers=1)
    net, provider, consumer = world.net, world.providers[0], world.consumers[0]
    service = CountingService()
    deployed = provider.deploy(service, name="Counting")
    provider.publish("Counting")
    net.run()
    handle = consumer.locate_one("Counting", timeout=5.0)
    listener = RecordingListener()
    consumer.add_listener(listener)
    DropInjector(net, p=drop, seed=seed)
    policy = client_policy("retry", seed=seed)
    for _ in range(n):
        try:
            consumer.invoke(handle, "bump", timeout=ATTEMPT_TIMEOUT, policy=policy)
        except Exception:  # noqa: BLE001
            pass
        advance(net, REQUEST_GAP)
    return {
        "requests": n,
        "unique_requests_processed": deployed.requests_processed,
        "executions": service.executions,
        "retransmits": len(listener.of_kind("retransmit")),
        "duplicates_suppressed": provider.server.deployer.duplicates_suppressed,
    }


# ----------------------------------------------------------------------
# 4. load shedding at a dead peer
# ----------------------------------------------------------------------
def measure_shedding(profile: str, n_calls: int = 25, binding: str = "p2ps"):
    """Total frames a client throws at a dead provider over *n_calls*."""
    world = build_p2ps_world(n_providers=1, n_consumers=1, trace=True)
    net, provider, consumer = world.net, world.providers[0], world.consumers[0]
    handle = consumer.locate_one("Echo0", timeout=5.0)
    provider.node.go_down()
    net.trace.clear()
    policy = client_policy(profile)
    shed = 0
    for _ in range(n_calls):
        try:
            consumer.invoke(
                handle, "echo", {"message": "x"},
                timeout=ATTEMPT_TIMEOUT, policy=policy,
            )
        except Exception as exc:  # noqa: BLE001
            from repro.reliability import CircuitOpenError

            if isinstance(exc, CircuitOpenError):
                shed += 1
        advance(net, REQUEST_GAP)
    frames = sum(
        1 for r in net.trace.of_kind("sent") if r.detail.get("src") == consumer.node.id
    )
    return {"frames_sent": frames, "calls_shed": shed}


# ----------------------------------------------------------------------
def run_e7_experiment():
    results = {"request_response": {}, "oneway": {}, "dedup": {}, "shedding": {}}

    rows = []
    for binding in ("standard", "p2ps"):
        results["request_response"][binding] = {}
        for profile in ("naive", "retry", "assured"):
            per_drop = {}
            for k, drop in enumerate(DROP_RATES):
                metrics = measure_invokes(binding, profile, drop, seed=17 + k)
                per_drop[str(drop)] = metrics
                rows.append([
                    binding, profile, f"{drop * 100:.0f}%",
                    f"{metrics['delivery'] * 100:.0f}%",
                    fmt_ms(metrics["p50_ms"] / 1000) if metrics["p50_ms"] else "-",
                    fmt_ms(metrics["p99_ms"] / 1000) if metrics["p99_ms"] else "-",
                    metrics["retransmits"],
                ])
            results["request_response"][binding][profile] = per_drop
    print_table(
        "E7a  request/response delivery under frame loss "
        f"({N_REQUESTS} invokes per cell)",
        ["binding", "client", "drop", "delivery", "p50", "p99", "retransmits"],
        rows,
        note="retry/assured reuse the MessageID across attempts, so provider "
        "dedup keeps the stateful path safe",
    )

    rows = []
    for profile in ("naive", "assured"):
        per_drop = {}
        for k, drop in enumerate(DROP_RATES):
            metrics = measure_oneway(profile, drop, seed=31 + k)
            per_drop[str(drop)] = metrics
            rows.append([
                profile, f"{drop * 100:.0f}%",
                f"{metrics['executed'] * 100:.0f}%",
                "-" if metrics["acked"] is None else f"{metrics['acked'] * 100:.0f}%",
                metrics["duplicates_suppressed"],
            ])
        results["oneway"][profile] = per_drop
    print_table(
        f"E7b  one-way pipe notifications ({N_ONEWAY} sends per cell)",
        ["client", "drop", "executed", "acked", "dups suppressed"],
        rows,
        note="bare one-ways silently lose frames; AckRequested + retransmit "
        "recovers them, and duplicates are re-acked without re-execution",
    )

    dedup = measure_dedup()
    results["dedup"] = dedup
    print_table(
        "E7c  at-most-once execution under retransmission (20% drop)",
        ["requests", "unique processed", "executions", "retransmits", "dups suppressed"],
        [[dedup["requests"], dedup["unique_requests_processed"],
          dedup["executions"], dedup["retransmits"], dedup["duplicates_suppressed"]]],
        note="executions == unique requests processed: retransmitted "
        "MessageIDs replay the retained response instead of re-running",
    )

    rows = []
    for profile in ("naive", "retry", "assured"):
        metrics = measure_shedding(profile)
        results["shedding"][profile] = metrics
        rows.append([profile, metrics["frames_sent"], metrics["calls_shed"]])
    print_table(
        "E7d  frames thrown at a dead provider (25 calls)",
        ["client", "frames sent", "calls shed fast"],
        rows,
        note="the breaker opens after sustained failure and fails calls "
        "without touching the network until its open-timeout lapses",
    )

    results["config"] = {
        "drop_rates": DROP_RATES,
        "n_requests": N_REQUESTS,
        "n_oneway": N_ONEWAY,
        "attempt_timeout_s": ATTEMPT_TIMEOUT,
        "request_gap_s": REQUEST_GAP,
    }
    emit_json("BENCH_E7.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (ride along under pytest benchmarks/)
# ----------------------------------------------------------------------
def test_e7_assured_beats_naive_at_twenty_percent_drop():
    for binding in ("standard", "p2ps"):
        assured = measure_invokes(binding, "assured", 0.2, seed=19)
        naive = measure_invokes(binding, "naive", 0.2, seed=19)
        assert assured["delivery"] >= 0.99, binding
        assert naive["delivery"] < 0.99, binding


def test_e7_acked_oneway_recovers_lost_notifications():
    assured = measure_oneway("assured", 0.2, seed=33)
    naive = measure_oneway("naive", 0.2, seed=33)
    assert assured["executed"] >= 0.99
    assert naive["executed"] < 0.95


def test_e7_dedup_keeps_executions_at_unique_requests():
    dedup = measure_dedup()
    assert dedup["retransmits"] > 0
    assert dedup["executions"] == dedup["unique_requests_processed"]
    assert dedup["duplicates_suppressed"] > 0


def test_e7_breaker_sheds_load_from_dead_peer():
    retry = measure_shedding("retry")
    assured = measure_shedding("assured")
    assert assured["frames_sent"] < retry["frames_sent"] / 3
    assert assured["calls_shed"] > 0


def test_bench_e7_invoke_under_loss(benchmark):
    benchmark(lambda: measure_invokes("p2ps", "assured", 0.2, seed=19))


if __name__ == "__main__":
    run_e7_experiment()
