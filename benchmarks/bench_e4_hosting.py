"""E4 — §III break 2: the lightweight container.

"WSPeer reverses the power relationship between the deployed component
and the environment ... allowing the component to become its own
container."  The traditional model "becomes cumbersome and un-intuitive
if the user wishes to deploy an application which already has an
established environment or requires user input at runtime."

Experiment: (a) deploy-to-first-response time — WSPeer deploys at
runtime in zero virtual time (pure local state) and the service answers
its first request one RTT later; (b) a *container-style* comparator
that models the traditional cost: services must be packaged and
registered before the container starts, and adding one more service
requires a container restart (modelled as a fixed startup delay during
which requests are refused); (c) request interception: the application
handles requests directly, including for services the engine has no
dispatcher for.
"""

from _workloads import EchoService, build_standard_world, fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.soap.rpc import build_rpc_request

CONTAINER_RESTART = 5.0  # a traditional redeploy cycle, virtual seconds


class ContainerStyleHost:
    """Comparator: the traditional container deployment model.

    Adding a service requires a restart; during restart the endpoint is
    down.  This models the "deploy into an external entity" pattern the
    paper argues against.
    """

    def __init__(self, wspeer: WSPeer):
        self.wspeer = wspeer
        self.net = wspeer.node.network

    def add_service(self, instance, name: str) -> float:
        """Returns the virtual time spent unavailable."""
        node = self.wspeer.node
        was_up = node.up
        node.go_down()  # container restart: endpoint offline
        self.net.kernel.schedule(CONTAINER_RESTART, node.go_up)
        self.net.run(until=self.net.now + CONTAINER_RESTART)
        self.wspeer.deploy(instance, name=name)
        if was_up and not node.up:
            node.go_up()
        return CONTAINER_RESTART


def deploy_to_first_response(world, style: str) -> float:
    """Virtual time from 'decide to deploy' to first successful reply."""
    net = world.net
    provider = WSPeer(
        net.add_node(f"host-{style}-{len(net.node_ids)}"),
        StandardBinding(world.registry.endpoint),
    )
    consumer = world.consumers[0]
    start = net.now
    if style == "wspeer":
        provider.deploy(EchoService(), name="Svc")
    else:
        ContainerStyleHost(provider).add_service(EchoService(), "Svc")
    handle = provider.local_handle("Svc")
    consumer.invoke(handle, "echo", message="first")
    return net.now - start


def run_e4_experiment():
    world = build_standard_world(n_providers=0, n_consumers=1)
    wspeer_time = deploy_to_first_response(world, "wspeer")
    container_time = deploy_to_first_response(world, "container")

    rows = [
        ["WSPeer lightweight (runtime deploy)", fmt_ms(wspeer_time)],
        ["container-style (restart cycle)", fmt_ms(container_time)],
        ["ratio", f"{container_time / wspeer_time:.0f}x"],
    ]
    print_table(
        "E4  deploy-to-first-response time",
        ["hosting model", "virtual time"],
        rows,
        note="WSPeer cost is exactly one request RTT: deployment itself is "
        "local state, no container lifecycle anywhere",
    )
    return wspeer_time, container_time


def test_e4_wspeer_deploy_costs_one_rtt():
    world = build_standard_world(n_providers=0, n_consumers=1)
    elapsed = deploy_to_first_response(world, "wspeer")
    assert abs(elapsed - 0.010) < 0.002  # request + response hop


def test_e4_container_model_is_orders_slower():
    wspeer_time, container_time = run_e4_experiment()
    assert container_time > 100 * wspeer_time


def test_e4_interception_serves_undeployed_operations():
    # the application as container: it can answer requests the engine
    # has no dispatcher for
    world = build_standard_world(n_providers=1, n_consumers=1)
    provider, consumer = world.providers[0], world.consumers[0]
    canned = build_rpc_request("urn:wspeer:Echo0", "anythingResponse", {"return": "app"})
    provider.set_interceptor(lambda service, request: canned)
    handle = consumer.locate_one("Echo0")
    # 'anything' is NOT an operation of EchoService — the app answers it
    assert consumer.invoke(handle, "echo", message="ignored") == "app"


def test_e4_many_runtime_deploys_no_downtime():
    world = build_standard_world(n_providers=0, n_consumers=1)
    provider = WSPeer(world.net.add_node("multi"), StandardBinding(world.registry.endpoint))
    consumer = world.consumers[0]
    for k in range(8):
        provider.deploy(EchoService(), name=f"S{k}")
        handle = provider.local_handle(f"S{k}")
        # every earlier service still answers while new ones appear
        assert consumer.invoke(handle, "echo", message=str(k)) == str(k)
    assert len(provider.deployed_services) == 8


def test_bench_runtime_deploy(benchmark):
    world = build_standard_world(n_providers=0)
    provider = WSPeer(world.net.add_node("bench"), StandardBinding(world.registry.endpoint))
    counter = [0]

    def deploy():
        counter[0] += 1
        provider.deploy(EchoService(), name=f"B{counter[0]}")

    benchmark(deploy)


if __name__ == "__main__":
    run_e4_experiment()
