"""F3 — Fig. 3: the standard implementation's four processes.

deploy → (launch HTTP server) → publish(UDDI) → locate(UDDI) →
invoke(HTTP).  Reproduction: run each numbered process, record its
virtual-time cost, and check the figure's structure — publishing talks
to the UDDI node, locating talks to the UDDI node, invoking talks to
the provider directly.
"""

from _workloads import EchoService, build_standard_world, fmt_ms, print_table

import numpy as np

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import summarize


def run_fig3_experiment(n_invocations: int = 50):
    world = build_standard_world(n_providers=0, n_consumers=1, trace=True)
    net = world.net
    provider = WSPeer(net.add_node("prov"), StandardBinding(world.registry.endpoint))
    consumer = world.consumers[0]

    marks = {}
    t0 = net.now
    provider.deploy(EchoService(), name="Echo")
    marks["deploy (launch server)"] = net.now - t0

    t0 = net.now
    provider.publish("Echo")
    marks["publish (UDDI)"] = net.now - t0

    t0 = net.now
    handle = consumer.locate_one("Echo")
    marks["locate (UDDI + WSDL fetch)"] = net.now - t0

    samples = []
    for i in range(n_invocations):
        t0 = net.now
        consumer.invoke(handle, "echo", message=f"m{i}")
        samples.append(net.now - t0)
    stats = summarize(samples)
    marks[f"invoke (HTTP, n={n_invocations})"] = stats["mean"]

    rows = [[process, fmt_ms(duration)] for process, duration in marks.items()]
    print_table(
        "F3  Fig.3 standard implementation: per-process virtual latency",
        ["process", "virtual time"],
        rows,
        note=f"invoke p95={fmt_ms(stats['p95'])}; "
        "deploy is purely local (server launch, no network)",
    )
    return world, provider, consumer, marks, stats


def test_fig3_processes_and_traffic_pattern():
    world, provider, consumer, marks, _ = run_fig3_experiment(10)
    # deploy is local: zero network time
    assert marks["deploy (launch server)"] == 0.0
    # publish and locate both touched the registry node
    assert world.net.stats.get("registry") > 0
    # invoke goes direct to the provider, not through the registry
    registry_before = world.net.stats.get("registry")
    consumer.invoke(consumer.locate_one("Echo"), "echo", message="again")
    # one more locate hit the registry, but the invoke itself went to prov
    assert world.net.stats.get("prov") > 0
    assert world.net.stats.get("registry") >= registry_before


def test_fig3_invoke_latency_is_two_hops():
    world, provider, consumer, marks, stats = run_fig3_experiment(20)
    # request + response at 5 ms per hop = 10 ms
    assert abs(stats["mean"] - 0.010) < 0.002


def test_bench_invoke_http(benchmark):
    world = build_standard_world()
    handle = world.consumers[0].locate_one("Echo0")
    consumer = world.consumers[0]

    benchmark(lambda: consumer.invoke(handle, "echo", message="bench"))


def test_bench_locate_uddi(benchmark):
    world = build_standard_world()
    consumer = world.consumers[0]

    benchmark(lambda: consumer.locate_one("Echo0"))


def test_bench_deploy_publish(benchmark):
    world = build_standard_world(n_providers=0)
    counter = [0]

    def deploy_publish():
        peer = WSPeer(
            world.net.add_node(f"dp{counter[0]}"),
            StandardBinding(world.registry.endpoint),
        )
        counter[0] += 1
        peer.deploy(EchoService(), name=f"Svc{counter[0]}")
        peer.publish(f"Svc{counter[0]}")

    benchmark(deploy_publish)


if __name__ == "__main__":
    run_fig3_experiment()
