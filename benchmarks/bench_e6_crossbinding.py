"""E6 — §IV: cross-binding composition.

"It is also worth noting that these implementations need not remain
self-contained.  A P2PS Client could use the UDDI enabled
ServiceLocator defined in the standard implementation to search for
services.  Likewise, a P2PS Server could use the UDDI conversant
ServicePublisher."

Experiment: run the locator × invoker matrix on one network hosting the
same service both ways, and report which combinations complete an
end-to-end invocation (plus the round-trip cost of each working combo).
"""

from _workloads import EchoService, fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import P2psBinding, StandardBinding
from repro.core.invocation import HttpInvocation, P2psInvocation
from repro.core.locator import P2psServiceLocator, UddiServiceLocator
from repro.p2ps import PeerGroup
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode


def build_dual_world():
    """One service reachable over HTTP/UDDI *and* over P2PS pipes."""
    net = Network(latency=FixedLatency(0.005))
    registry = UddiRegistryNode(net.add_node("registry"))
    group = PeerGroup("main")

    http_provider = WSPeer(net.add_node("hprov"), StandardBinding(registry.endpoint))
    http_provider.deploy(EchoService(), name="Echo")
    http_provider.publish("Echo")

    p2ps_provider = WSPeer(net.add_node("pprov"), P2psBinding(group), name="pprov")
    p2ps_provider.deploy(EchoService(), name="Echo")
    p2ps_provider.publish("Echo")
    net.run()
    return net, registry, group


def consumer_with(net, registry, group, locator_kind: str, invoker_kind: str):
    """A consumer whose tree mixes the requested component kinds."""
    name = f"mix-{locator_kind}-{invoker_kind}-{len(net.node_ids)}"
    consumer = WSPeer(net.add_node(name), P2psBinding(group), name=name)
    if locator_kind == "uddi":
        consumer.client.register_locator(
            UddiServiceLocator(consumer.node, registry.endpoint)
        )
    else:
        consumer.client.register_locator(P2psServiceLocator(consumer.peer))
    if invoker_kind == "http":
        consumer.client.register_invocation(HttpInvocation(consumer.node))
    else:
        consumer.client.register_invocation(P2psInvocation(consumer.peer))
    return consumer


def run_e6_experiment():
    net, registry, group = build_dual_world()
    rows = []
    outcomes = {}
    for locator_kind in ("uddi", "p2ps"):
        for invoker_kind in ("http", "p2ps"):
            consumer = consumer_with(net, registry, group, locator_kind, invoker_kind)
            start = net.now
            try:
                handle = consumer.locate_one("Echo", timeout=5.0)
                result = consumer.invoke(
                    handle, "echo", {"message": "mix"}, timeout=5.0
                )
                ok = result == "mix"
                status = fmt_ms(net.now - start) if ok else "wrong result"
            except Exception as exc:  # noqa: BLE001 - matrix probes failure modes
                ok = False
                status = f"fails: {type(exc).__name__}"
            outcomes[(locator_kind, invoker_kind)] = ok
            rows.append([locator_kind, invoker_kind, "works" if ok else "no", status])
    print_table(
        "E6  locator x invoker matrix (same service on both stacks)",
        ["locator", "invoker", "end-to-end", "cost / failure"],
        rows,
        note="uddi+http and p2ps+p2ps are the native pairs; uddi+p2ps fails "
        "because UDDI stores no pipe ids — exactly why the paper's EPR "
        "mapping matters; p2ps+http fails for the reverse reason",
    )
    return outcomes


def test_e6_native_pairs_work():
    outcomes = run_e6_experiment()
    assert outcomes[("uddi", "http")]
    assert outcomes[("p2ps", "p2ps")]


def test_e6_mismatched_pairs_fail_cleanly():
    # failures must be clean errors, not hangs or crashes
    outcomes = run_e6_experiment()
    assert not outcomes[("uddi", "p2ps")]
    assert not outcomes[("p2ps", "http")]


def test_e6_uddi_locator_on_p2ps_peer_is_the_papers_mix():
    # the specific §IV sentence: a P2PS client with a UDDI locator
    net, registry, group = build_dual_world()
    consumer = consumer_with(net, registry, group, "uddi", "http")
    handle = consumer.locate_one("Echo")
    assert handle.source == "uddi"
    assert consumer.peer is not None  # it really is a P2PS-bound peer
    assert consumer.invoke(handle, "echo", message="x") == "x"


def test_bench_mixed_locate_invoke(benchmark):
    net, registry, group = build_dual_world()
    consumer = consumer_with(net, registry, group, "uddi", "http")
    handle = consumer.locate_one("Echo")

    benchmark(lambda: consumer.invoke(handle, "echo", message="bench"))


if __name__ == "__main__":
    run_e6_experiment()
