"""E5 — §IV-A: stub generation "directly to bytes".

"WSPeer actually extends the stub generation capabilities of Axis by
generating stubs directly to bytes, bypassing source generation and
compilation."

Experiment: build client stubs for WSDLs of m operations via both
strategies — :class:`DynamicStubBuilder` (the WSPeer way: classes
assembled in memory) and :class:`SourceCodegenStubBuilder` (the Axis
way: render source text, compile, exec) — and compare wall-clock build
time.  Expected shape: both linear in m; the dynamic path faster by a
constant factor because no text rendering/parsing/compilation happens.
"""

import timeit

from _workloads import print_table

from repro.caching import fastpath_disabled
from repro.soap import DynamicStubBuilder, SourceCodegenStubBuilder
from repro.soap.stubs import OperationSpec, StubSpec

OP_COUNTS = [1, 4, 16, 64]


def make_spec(m: int) -> StubSpec:
    return StubSpec(
        "Generated",
        tuple(
            OperationSpec(f"operation{i}", (f"arg{i}a", f"arg{i}b"))
            for i in range(m)
        ),
    )


def measure(builder, spec: StubSpec, repeats: int = 200) -> float:
    """Mean seconds per build_class call.

    Runs with the stub-class cache bypassed: E5 measures *generation*
    strategies, and a cache hit would measure a dict lookup instead.
    """
    with fastpath_disabled():
        return timeit.timeit(lambda: builder.build_class(spec), number=repeats) / repeats


def run_e5_experiment(op_counts=OP_COUNTS):
    dynamic, codegen = DynamicStubBuilder(), SourceCodegenStubBuilder()
    rows = []
    ratios = []
    for m in op_counts:
        spec = make_spec(m)
        t_dynamic = measure(dynamic, spec)
        t_codegen = measure(codegen, spec)
        ratios.append(t_codegen / t_dynamic)
        rows.append(
            [
                m,
                f"{t_dynamic * 1e6:.1f}us",
                f"{t_codegen * 1e6:.1f}us",
                f"{t_codegen / t_dynamic:.1f}x",
            ]
        )
    print_table(
        "E5  stub build time: direct-to-bytes vs source codegen",
        ["operations", "dynamic (WSPeer)", "codegen (Axis-style)", "codegen/dynamic"],
        rows,
        note="shape: both linear in operation count; the direct path wins "
        "by a constant factor (no source rendering, parsing or compiling)",
    )
    return ratios


def test_e5_dynamic_beats_codegen():
    ratios = run_e5_experiment([4, 16])
    assert all(r > 1.5 for r in ratios), ratios


def test_e5_both_produce_equivalent_stubs():
    spec = make_spec(8)
    calls_a, calls_b = [], []
    a = DynamicStubBuilder().build(spec, lambda op, args: calls_a.append((op, args)))
    b = SourceCodegenStubBuilder().build(spec, lambda op, args: calls_b.append((op, args)))
    a.operation3("x", "y")
    b.operation3("x", "y")
    assert calls_a == calls_b


def test_e5_scaling_is_linear_not_quadratic():
    dynamic = DynamicStubBuilder()
    t_small = measure(dynamic, make_spec(8), repeats=100)
    t_large = measure(dynamic, make_spec(64), repeats=100)
    # 8x the operations should cost well under 64x the time
    assert t_large < t_small * 30


def test_bench_dynamic_stub_build(benchmark):
    spec = make_spec(16)
    builder = DynamicStubBuilder()
    benchmark(lambda: builder.build_class(spec))


def test_bench_codegen_stub_build(benchmark):
    spec = make_spec(16)
    builder = SourceCodegenStubBuilder()
    benchmark(lambda: builder.build_class(spec))


if __name__ == "__main__":
    run_e5_experiment()
