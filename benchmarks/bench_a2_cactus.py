"""A2 — §V: the SC2004 Cactus scenario.

"Cactus generated output files ... passed back to Triana via the WSPeer
generated Web service in real-time as the simulation iterated through
its time steps."  Experiment: stream a wave-equation run through a
runtime-deployed service for several problem sizes; verify every
snapshot arrives, in order, at a steady real-time cadence, and that the
numerics behave (bounded energy drift).
"""

from _workloads import fmt_ms, print_table

import numpy as np

from repro.apps import run_cactus_scenario
from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.simnet import FixedLatency, Network
from repro.uddi import UddiRegistryNode

GRIDS = [64, 128, 256]
TIMESTEPS = 30


def build_world():
    net = Network(latency=FixedLatency(0.005))
    registry = UddiRegistryNode(net.add_node("registry"))
    triana = WSPeer(net.add_node("triana"), StandardBinding(registry.endpoint))
    hpc = WSPeer(net.add_node("hpc"), StandardBinding(registry.endpoint))
    return net, triana, hpc


def run_a2_experiment(grids=GRIDS):
    rows = []
    outcomes = []
    for grid in grids:
        net, triana, hpc = build_world()
        result, collector = run_cactus_scenario(
            triana, hpc, timesteps=TIMESTEPS, grid_points=grid,
            service_name=f"Monitor{grid}",
        )
        gaps = np.diff(result.arrival_times)
        rows.append(
            [
                grid,
                f"{result.received}/{TIMESTEPS}",
                fmt_ms(float(gaps.mean())) if gaps.size else "-",
                f"{result.energy_drift * 100:.2f}%",
                fmt_ms(result.arrival_times[-1]),
            ]
        )
        outcomes.append((result, collector))
    print_table(
        "A2  Cactus streaming: runtime-deployed service receives every timestep",
        ["grid points", "snapshots received", "mean cadence",
         "energy drift", "run (virtual)"],
        rows,
        note="cadence equals one invocation RTT: each snapshot streams as "
        "produced, not batched at the end",
    )
    return outcomes


def test_a2_every_snapshot_arrives_in_order():
    outcomes = run_a2_experiment([128])
    result, collector = outcomes[0]
    assert result.received == TIMESTEPS
    steps = [s["timestep"] for s in collector.snapshots]
    assert steps == sorted(steps)


def test_a2_streaming_not_batched():
    outcomes = run_a2_experiment([64])
    result, _ = outcomes[0]
    gaps = np.diff(result.arrival_times)
    # steady cadence: every consecutive gap is a full round trip
    assert gaps.min() > 0.009
    assert gaps.max() < 0.02


def test_a2_numerics_stable_across_grids():
    for result, _ in run_a2_experiment([64, 256]):
        assert result.energy_drift < 0.1


def test_bench_cactus_run(benchmark):
    def run():
        net, triana, hpc = build_world()
        return run_cactus_scenario(triana, hpc, timesteps=10, grid_points=64)

    benchmark(run)


if __name__ == "__main__":
    run_a2_experiment()
