"""E16 — streaming large payloads: chunked envelopes, attachments,
zero-copy codec path.

Axis-era SOAP stacks fell over on multi-megabyte payloads: base64
inflation, full-document buffering at every layer, and head-of-line
blocking on the shared connection.  E16 measures what the streamed
path buys at each layer:

1. *container codec* — the multipart attachment container, buffered
   (``message_to_wire``/``message_from_wire``) vs streamed
   (``iter_message_wire`` → ``MultipartFeedParser`` with a hashing
   sink), payload sizes 1 KB → 64 MB.  Reported: throughput and
   tracemalloc peak.  The streamed gate: peak stays O(chunk) while the
   buffered path's peak scales with the payload.
2. *XML codec* — batch ``serialize``/``parse`` vs the streaming twins
   ``iter_serialize``/``FeedParser`` on a multi-MB envelope; byte
   parity is asserted, peaks and throughput reported.
3. *end-to-end invocation* — virtual-time simnet with per-byte
   transmission cost: a large echo plus pipelined small calls on one
   pooled connection, buffered vs ``enable_streaming``.  Streaming
   must cut the small calls' worst-case latency (no head-of-line
   blocking) while the big payload round-trips byte-identically.

Results land in BENCH_E16.json.  ``E16_SMOKE=1`` shrinks the run for CI.
"""

import hashlib
import os
import time
import tracemalloc

from _workloads import build_standard_world, emit_json, fmt_ms, print_table

from repro.soap import Attachment
from repro.soap.attachments import (
    MultipartFeedParser,
    iter_message_wire,
    message_from_wire,
    message_to_wire,
)
from repro.xmlkit import Element, FeedParser, QName, iter_serialize, serialize

SMOKE = bool(os.environ.get("E16_SMOKE"))
CHUNK = 64 * 1024
KB, MB = 1024, 1024 * 1024
CONTAINER_SIZES = (
    [1 * KB, 256 * KB, 4 * MB] if SMOKE else [1 * KB, 64 * KB, 1 * MB, 16 * MB, 64 * MB]
)
XML_DOC_TARGET = 1 * MB if SMOKE else 8 * MB
E2E_BIG = 512 * KB if SMOKE else 4 * MB
E2E_SMALL_CALLS = 8

#: 64 KiB repeating pattern — payloads are generated from this block so
#: the streamed producer never materialises the full payload
BLOCK = bytes(range(256)) * 256
ENVELOPE = '<?xml version="1.0"?><env>e16</env>'


def _block_chunks(size):
    reps, rem = divmod(size, len(BLOCK))

    def chunks():
        for _ in range(reps):
            yield BLOCK
        if rem:
            yield BLOCK[:rem]

    return chunks


def _expected_digest(size):
    digest = hashlib.sha256()
    for piece in _block_chunks(size)():
        digest.update(piece)
    return digest.hexdigest()


class _HashSink:
    def __init__(self):
        self.digest = hashlib.sha256()

    def write(self, data):
        self.digest.update(data)

    def close(self):
        return self.digest.hexdigest()


# ----------------------------------------------------------------------
# E16a — multipart container: buffered vs streamed
# ----------------------------------------------------------------------
def _run_buffered(size):
    payload = b"".join(_block_chunks(size)())
    wire = message_to_wire(ENVELOPE, [Attachment("payload", payload)])
    _, parts = message_from_wire(wire)
    return hashlib.sha256(parts[0].materialise()).hexdigest()


def _run_streamed(size):
    att = Attachment("payload", chunks=_block_chunks(size), size=size)
    parser = MultipartFeedParser(sink_factory=lambda cid, ctype, n: _HashSink())
    for piece in iter_message_wire(ENVELOPE, [att], chunk_size=CHUNK):
        parser.feed(piece)
    _, parts = parser.close()
    return parts[0].delivered


def measure_container(size, mode):
    run = _run_buffered if mode == "buffered" else _run_streamed
    t0 = time.perf_counter()
    digest = run(size)
    elapsed = time.perf_counter() - t0
    assert digest == _expected_digest(size), f"{mode} corrupted {size}B payload"
    tracemalloc.start()
    tracemalloc.reset_peak()
    run(size)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "size_bytes": size,
        "mode": mode,
        "throughput_mb_s": (size / MB) / elapsed if elapsed else float("inf"),
        "peak_bytes": peak,
    }


# ----------------------------------------------------------------------
# E16b — XML codec: batch vs streaming twins
# ----------------------------------------------------------------------
def _build_document(target_bytes):
    text = ("lorem <ipsum> & \"dolor\" sit amet — データ " * 24)[:1000]
    root = Element(QName("urn:e16", "doc", "d"), nsdecls={"d": "urn:e16"})
    i = 0
    while target_bytes > 0:
        root.append(
            Element(QName("urn:e16", "item", "d"), text=text, attributes={"i": str(i)})
        )
        target_bytes -= len(text) + 40
        i += 1
    return root


def measure_xml_codec():
    doc = _build_document(XML_DOC_TARGET)

    t0 = time.perf_counter()
    batch_text = serialize(doc, xml_declaration=True)
    batch_s = time.perf_counter() - t0
    batch_bytes = batch_text.encode("utf-8")
    tracemalloc.start()
    tracemalloc.reset_peak()
    serialize(doc, xml_declaration=True)
    _, batch_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    def stream_once():
        digest = hashlib.sha256()
        for piece in iter_serialize(doc, chunk_size=CHUNK, xml_declaration=True):
            digest.update(piece)
        return digest.hexdigest()

    t0 = time.perf_counter()
    stream_digest = stream_once()
    stream_s = time.perf_counter() - t0
    assert stream_digest == hashlib.sha256(batch_bytes).hexdigest()
    tracemalloc.start()
    tracemalloc.reset_peak()
    stream_once()
    _, stream_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    t0 = time.perf_counter()
    feed = FeedParser()
    for i in range(0, len(batch_bytes), CHUNK):
        feed.feed(batch_bytes[i : i + CHUNK])
    tree = feed.close()
    parse_s = time.perf_counter() - t0
    assert serialize(tree) == serialize(doc)

    size = len(batch_bytes)
    return {
        "doc_bytes": size,
        "batch_serialize_mb_s": (size / MB) / batch_s,
        "stream_serialize_mb_s": (size / MB) / stream_s,
        "batch_serialize_peak_bytes": batch_peak,
        "stream_serialize_peak_bytes": stream_peak,
        "feed_parse_mb_s": (size / MB) / parse_s,
    }


# ----------------------------------------------------------------------
# E16c — end-to-end: head-of-line blocking, buffered vs streamed
# ----------------------------------------------------------------------
def measure_end_to_end(mode):
    from repro.observability.metrics import default_registry
    from repro.simnet import FixedLatency

    world = build_standard_world(
        n_providers=1, n_consumers=1,
        latency=0.0,  # replaced below with a per-byte model
    )
    net = world.net
    net.latency = FixedLatency(0.0005, per_byte=1e-8)
    provider, consumer = world.providers[0], world.consumers[0]
    handle = consumer.locate_one("Echo0")
    if mode == "streamed":
        knobs = dict(chunk_threshold=CHUNK, chunk_size=CHUNK, window=8)
        provider.enable_streaming(**knobs)
        consumer.enable_streaming(**knobs)
    else:
        consumer.enable_http_keepalive()
    chunks_before = default_registry().get("transport.http.chunks_sent")

    big = "B" * E2E_BIG
    done = {}
    t_issue = net.now
    consumer.invoke_async(
        handle, "echo", {"message": big},
        lambda result, error: done.__setitem__(
            "big",
            (net.now - t_issue, error if error else ("mismatch" if result != big else None)),
        ),
    )
    for i in range(E2E_SMALL_CALLS):
        consumer.invoke_async(
            handle, "echo", {"message": f"s{i}"},
            lambda result, error, i=i: done.__setitem__(
                f"s{i}", (net.now - t_issue, error)
            ),
        )
    net.run()
    assert len(done) == 1 + E2E_SMALL_CALLS
    assert all(err is None for _, err in done.values())
    small = sorted(latency for key, (latency, _) in done.items() if key != "big")
    return {
        "mode": mode,
        "big_bytes": E2E_BIG,
        "big_makespan_s": done["big"][0],
        "small_calls": E2E_SMALL_CALLS,
        "small_p50_s": small[len(small) // 2],
        "small_max_s": small[-1],
        "chunks_sent": default_registry().get("transport.http.chunks_sent")
        - chunks_before,
    }


# ----------------------------------------------------------------------
def run_e16_experiment():
    results = {"smoke": SMOKE, "chunk_bytes": CHUNK}

    container = [
        measure_container(size, mode)
        for size in CONTAINER_SIZES
        for mode in ("buffered", "streamed")
    ]
    results["container"] = container
    print_table(
        "E16a multipart container codec (buffered vs streamed)",
        ["payload", "mode", "MB/s", "peak"],
        [
            [
                f"{m['size_bytes'] // KB}KB",
                m["mode"],
                f"{m['throughput_mb_s']:.0f}",
                f"{m['peak_bytes'] // KB}KB",
            ]
            for m in container
        ],
        note="streamed peak is O(chunk) at every size; buffered peak "
        "scales with the payload",
    )

    xml = measure_xml_codec()
    results["xml_codec"] = xml
    print_table(
        "E16b XML codec streaming twins (byte parity asserted)",
        ["doc", "batch MB/s", "stream MB/s", "batch peak", "stream peak",
         "feed-parse MB/s"],
        [[
            f"{xml['doc_bytes'] // KB}KB",
            f"{xml['batch_serialize_mb_s']:.0f}",
            f"{xml['stream_serialize_mb_s']:.0f}",
            f"{xml['batch_serialize_peak_bytes'] // KB}KB",
            f"{xml['stream_serialize_peak_bytes'] // KB}KB",
            f"{xml['feed_parse_mb_s']:.0f}",
        ]],
    )

    e2e = {mode: measure_end_to_end(mode) for mode in ("buffered", "streamed")}
    results["end_to_end"] = e2e
    print_table(
        f"E16c pipelined small calls during a {E2E_BIG // KB}KB echo",
        ["mode", "big makespan", "small p50", "small max", "chunks"],
        [
            [
                mode,
                fmt_ms(m["big_makespan_s"]),
                fmt_ms(m["small_p50_s"]),
                fmt_ms(m["small_max_s"]),
                m["chunks_sent"],
            ]
            for mode, m in e2e.items()
        ],
        note="buffered mode delivers responses in request order behind the "
        "big body; chunked framing lets small replies overtake it",
    )

    emit_json("BENCH_E16.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E16_SMOKE=1)
# ----------------------------------------------------------------------
def test_e16_streamed_container_memory_o_chunk():
    size = CONTAINER_SIZES[-1]
    streamed = measure_container(size, "streamed")
    buffered = measure_container(size, "buffered")
    # zero-copy gate: the streamed path never holds more than a few
    # chunks while the buffered path holds whole-payload copies
    assert streamed["peak_bytes"] < 8 * CHUNK
    assert buffered["peak_bytes"] >= size


def test_e16_xml_streaming_parity_and_memory():
    xml = measure_xml_codec()  # parity asserted inside
    assert xml["stream_serialize_peak_bytes"] < xml["batch_serialize_peak_bytes"] / 4


def test_e16_streaming_avoids_head_of_line_blocking():
    buffered = measure_end_to_end("buffered")
    streamed = measure_end_to_end("streamed")
    assert buffered["chunks_sent"] == 0
    assert streamed["chunks_sent"] > 0
    assert streamed["small_max_s"] < buffered["small_max_s"]


if __name__ == "__main__":
    run_e16_experiment()
