"""E8 — fast-path message codec: before/after in one process.

PR "fast-path message codec" rewrote the XML tokenizer (lazy position
tracking), flattened serializer namespace scopes, added pre-serialised
request-envelope templates and derived-artifact caches (WSDL, stub
specs/classes, URIs).  E8 quantifies each layer against the frozen
pre-change implementation in :mod:`repro.xmlkit.reference`, measured in
the *same process* by flipping :func:`reference_codec` (which swaps the
tokenizer/serializer hooks and disables every cache):

1. tokenizer throughput (token stream fully drained);
2. parse / serialize throughput over a corpus of representative SOAP
   envelopes (small echo, header-heavy P2PS shape, wide 64-parameter
   body);
3. request-encode micro-benchmark — envelope template splice vs full
   build-and-serialise;
4. end-to-end ``invoke`` throughput over simnet for both bindings,
   wall-clock (virtual latency costs nothing, so codec CPU dominates).

Byte parity is asserted before anything is timed: both codecs must
produce identical wires and identical trees — the fast path is an
optimisation, not a behaviour change.  Results land in BENCH_E8.json.

``E8_SMOKE=1`` shrinks every measurement for CI smoke runs.
"""

import os
import time

from _workloads import build_p2ps_world, build_standard_world, emit_json, print_table

from repro.caching import cache_stats, clear_all_caches, reset_cache_stats
from repro.soap.encoding import StructRegistry
from repro.soap.rpc import build_rpc_request
from repro.wsa.epr import EndpointReference
from repro.wsa.headers import MessageAddressingProperties, request_templates
from repro.xmlkit import Element, QName, ns, parse
from repro.xmlkit.reference import ReferenceTokenizer, reference_codec
from repro.xmlkit.serializer import serialize
from repro.xmlkit.tokenizer import Tokenizer

SMOKE = bool(os.environ.get("E8_SMOKE"))
MIN_SECONDS = 0.02 if SMOKE else 0.25  # per measurement
N_E2E = 15 if SMOKE else 250  # invokes per binding per codec
REPEATS = 1 if SMOKE else 3  # interleaved ref/fast measurement rounds
ECHO_NS = "urn:repro:echo"


# ----------------------------------------------------------------------
# corpus: representative request envelopes built by the real pipeline
# ----------------------------------------------------------------------
def _reply_epr() -> EndpointReference:
    """A P2PS-style reply EPR: three namespaced reference properties."""
    epr = EndpointReference("p2ps://pcons0/reply-echo")
    for pname, text in (
        ("PipeId", "pipe-00000042"),
        ("PipeName", "reply-echo"),
        ("PipeType", "input"),
    ):
        epr.add_property(
            Element(QName(ns.P2PS, pname, "p2ps"), text=text,
                    nsdecls={"p2ps": ns.P2PS})
        )
    return epr


def _request_wire(n_args: int, payload: int, reply: bool) -> str:
    args = {f"arg{i}": f"value-{i:03d}-" + "x" * payload for i in range(n_args)}
    envelope = build_rpc_request(ECHO_NS, "echo", args, StructRegistry())
    target = EndpointReference("http://prov0:80/Echo0")
    maps = MessageAddressingProperties.for_request(
        target, "echo", reply_to=_reply_epr() if reply else None
    )
    maps.apply_to(envelope, target=target)
    return envelope.to_wire()


def build_corpus() -> dict[str, str]:
    return {
        "small-echo": _request_wire(1, 16, reply=False),
        "p2ps-headers": _request_wire(4, 24, reply=True),
        "wide-body-64": _request_wire(64, 48, reply=False),
    }


# ----------------------------------------------------------------------
# parity: both codecs must agree byte-for-byte before anything is timed
# ----------------------------------------------------------------------
def assert_corpus_parity(corpus: dict[str, str]) -> dict[str, bool]:
    checks = {}
    for label, wire in corpus.items():
        fast_tree = parse(wire)
        with reference_codec():
            ref_tree = parse(wire)
            ref_wire = serialize(ref_tree, xml_declaration=True)
        assert fast_tree == ref_tree, f"{label}: parsed trees differ"
        fast_wire = serialize(fast_tree, xml_declaration=True)
        assert fast_wire == ref_wire, f"{label}: serialised wires differ"
        fast_tokens = [
            (t.type, t.value, list(t.attrs), t.line, t.column)
            for t in Tokenizer(wire).tokens()
        ]
        ref_tokens = [
            (t.type, t.value, list(t.attrs), t.line, t.column)
            for t in ReferenceTokenizer(wire).tokens()
        ]
        assert fast_tokens == ref_tokens, f"{label}: token streams differ"
        checks[label] = True
    return checks


def assert_template_parity() -> str:
    """The template splice must reproduce the slow-path wire exactly."""
    target = EndpointReference("http://prov0:80/Echo0")
    args = {"message": "hello <&> world", "count": 7, "ratio": 0.25, "flag": True}
    request_templates.invalidate_all()
    for _ in range(2):  # build pass, then cache-hit pass
        maps = MessageAddressingProperties.for_request(
            target, "echo", reply_to=_reply_epr()
        )
        fast_wire = request_templates.render(
            maps, ECHO_NS, "echo", args, target=target
        )
        assert fast_wire is not None, "template unexpectedly fell back"
        envelope = build_rpc_request(ECHO_NS, "echo", args, StructRegistry())
        maps.apply_to(envelope, target=target)
        assert fast_wire == envelope.to_wire(), "template wire != slow-path wire"
    return fast_wire


# ----------------------------------------------------------------------
# measurement helpers
# ----------------------------------------------------------------------
def ops_per_second(fn, min_seconds: float = MIN_SECONDS) -> float:
    """Calibrated wall-clock throughput of *fn* (ops/s)."""
    fn()  # warm-up / first-call caches
    n, elapsed = 1, 0.0
    while True:
        start = time.perf_counter()
        for _ in range(n):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return n / elapsed
        n = max(n * 2, int(n * min_seconds / max(elapsed, 1e-9) * 1.2))


def fast_vs_reference(fn) -> tuple[float, float]:
    """(fast ops/s, reference ops/s) for the same callable, same process.

    Measurements are interleaved (reference, fast, reference, fast, ...)
    and the best of each side is kept, so a slow machine phase hits both
    sides rather than biasing whichever ran during it.
    """
    ref = fast = 0.0
    for _ in range(REPEATS):
        with reference_codec():
            ref = max(ref, ops_per_second(fn))
        fast = max(fast, ops_per_second(fn))
    return fast, ref


# ----------------------------------------------------------------------
# 1+2. tokenize / parse / serialize throughput over the corpus
# ----------------------------------------------------------------------
def measure_codec(corpus: dict[str, str]) -> dict:
    results = {}
    for label, wire in corpus.items():
        tree = parse(wire)
        tok_fast, tok_ref = fast_vs_reference(
            lambda w=wire: sum(1 for _ in _active_tokenizer()(w).tokens())
        )
        parse_fast, parse_ref = fast_vs_reference(lambda w=wire: parse(w))
        ser_fast, ser_ref = fast_vs_reference(lambda t=tree: serialize(t))
        results[label] = {
            "bytes": len(wire),
            "tokenize": {"fast": tok_fast, "reference": tok_ref,
                         "speedup": tok_fast / tok_ref},
            "parse": {"fast": parse_fast, "reference": parse_ref,
                      "speedup": parse_fast / parse_ref},
            "serialize": {"fast": ser_fast, "reference": ser_ref,
                          "speedup": ser_fast / ser_ref},
        }
    return results


def _active_tokenizer():
    from repro.xmlkit import parser as _parser

    return _parser._ACTIVE_TOKENIZER


# ----------------------------------------------------------------------
# 3. request-encode micro-benchmark (template splice vs full build)
# ----------------------------------------------------------------------
def measure_encode() -> dict:
    target = EndpointReference("http://prov0:80/Echo0")
    reply = _reply_epr()
    args = {"message": "hello world, this is a medium payload", "count": 7}
    registry = StructRegistry()
    counter = {"n": 0}

    def encode():
        counter["n"] += 1
        maps = MessageAddressingProperties(
            to=target.address,
            action=f"{target.address}#echo",
            reply_to=reply,
            message_id=f"urn:uuid:repro-{counter['n']:08d}",
        )
        wire = request_templates.render(maps, ECHO_NS, "echo", args, target=target)
        if wire is None:  # slow path (reference run: fastpath disabled)
            envelope = build_rpc_request(ECHO_NS, "echo", args, registry)
            maps.apply_to(envelope, target=target)
            wire = envelope.to_wire()
        return wire

    fast, ref = fast_vs_reference(encode)
    return {"fast": fast, "reference": ref, "speedup": fast / ref}


# ----------------------------------------------------------------------
# 4. end-to-end invoke throughput over simnet, wall-clock
# ----------------------------------------------------------------------
def _e2e_invokes_per_second(binding: str, n: int) -> float:
    """Fresh world; returns wall-clock invokes/s over *n* echo calls."""
    if binding == "standard":
        world = build_standard_world(n_providers=1, n_consumers=1)
    else:
        world = build_p2ps_world(n_providers=1, n_consumers=1)
    consumer = world.consumers[0]
    handle = consumer.locate_one("Echo0", timeout=5.0)
    for i in range(3):  # warm caches / code paths outside the timed region
        assert consumer.invoke(handle, "echo", {"message": f"w{i}"}) == f"w{i}"
    start = time.perf_counter()
    for i in range(n):
        result = consumer.invoke(handle, "echo", {"message": f"m{i}"})
        assert result == f"m{i}"
    return n / (time.perf_counter() - start)


def measure_e2e(binding: str, n: int = N_E2E) -> dict:
    """Interleaved repeats, best of each side (see fast_vs_reference)."""
    ref = fast = 0.0
    for _ in range(REPEATS):
        with reference_codec():
            ref = max(ref, _e2e_invokes_per_second(binding, n))
        clear_all_caches()
        fast = max(fast, _e2e_invokes_per_second(binding, n))
    return {"fast": fast, "reference": ref, "speedup": fast / ref, "invokes": n}


# ----------------------------------------------------------------------
def run_e8_experiment():
    corpus = build_corpus()
    parity = {
        "corpus": assert_corpus_parity(corpus),
        "template_wire": True if assert_template_parity() else False,
    }
    print("parity: fast codec byte-identical to reference on all corpus docs")

    reset_cache_stats()
    codec = measure_codec(corpus)
    rows = []
    for label, r in codec.items():
        for stage in ("tokenize", "parse", "serialize"):
            rows.append([
                label, stage, r["bytes"],
                f"{r[stage]['reference']:.0f}/s",
                f"{r[stage]['fast']:.0f}/s",
                f"{r[stage]['speedup']:.1f}x",
            ])
    print_table(
        "E8a  codec throughput: fast vs reference (same process)",
        ["document", "stage", "bytes", "reference", "fast", "speedup"],
        rows,
        note="lazy-position tokenizer + flattened namespace scopes; parity "
        "asserted on every document before timing",
    )

    encode = measure_encode()
    print_table(
        "E8b  request encode: envelope-template splice vs full build",
        ["reference", "fast", "speedup"],
        [[f"{encode['reference']:.0f}/s", f"{encode['fast']:.0f}/s",
          f"{encode['speedup']:.1f}x"]],
        note="invariant SOAP/WSA skeleton pre-serialised once per shape; "
        "per-call fields (MessageID, params, reply EPR) spliced in",
    )

    e2e = {}
    rows = []
    for binding in ("standard", "p2ps"):
        e2e[binding] = measure_e2e(binding)
        rows.append([
            binding, e2e[binding]["invokes"],
            f"{e2e[binding]['reference']:.0f}/s",
            f"{e2e[binding]['fast']:.0f}/s",
            f"{e2e[binding]['speedup']:.1f}x",
        ])
    print_table(
        f"E8c  end-to-end invoke throughput over simnet (wall-clock)",
        ["binding", "invokes", "reference", "fast", "speedup"],
        rows,
        note="whole stack: template encode, transport framing, server "
        "parse/dispatch/encode, client response parse",
    )

    results = {
        "parity": parity,
        "codec": codec,
        "encode": encode,
        "e2e": e2e,
        "cache_stats": cache_stats(),
        "config": {
            "smoke": SMOKE,
            "n_e2e": N_E2E,
            "min_seconds": MIN_SECONDS,
            "repeats": REPEATS,
        },
    }
    if not SMOKE:
        emit_json("BENCH_E8.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (ride along under pytest benchmarks/; CI runs E8_SMOKE=1)
# ----------------------------------------------------------------------
def test_e8_corpus_parity():
    assert_corpus_parity(build_corpus())


def test_e8_template_matches_slow_path_byte_for_byte():
    assert_template_parity()


def test_e8_parse_speedup():
    wire = build_corpus()["p2ps-headers"]
    fast, ref = fast_vs_reference(lambda: parse(wire))
    # full-run floor is 3x (BENCH_E8.json); loose here to absorb CI noise
    assert fast > ref * 1.5, (fast, ref)


def test_e8_template_encode_speedup():
    encode = measure_encode()
    assert encode["speedup"] > 1.5, encode


def test_e8_e2e_invokes_work_under_both_codecs():
    for binding in ("standard", "p2ps"):
        e2e = measure_e2e(binding, n=10 if SMOKE else 25)
        assert e2e["speedup"] > 1.0, (binding, e2e)


if __name__ == "__main__":
    run_e8_experiment()
