"""F5 — Fig. 5: the WSPeer/P2PS request process, step by step.

1. Request input pipe and corresponding pipe advertisement from P2PS
2. P2PS returns pipe and advertisement
3. Serialise the pipe advert to WS-Addressing standards, add to SOAP request
4. Add myself as a listener to the pipe
5. Send SOAP down remote pipe

The reproduction drives one asynchronous invocation, freezing virtual
time between steps so each numbered step is observable and asserted.
"""

from _workloads import build_p2ps_world, fmt_ms, print_table

from repro.wsa import MessageAddressingProperties


def run_fig5_experiment():
    world = build_p2ps_world()
    consumer, provider = world.consumers[0], world.providers[0]
    net = world.net
    handle = consumer.locate_one("Echo0")

    captured = {}

    def interceptor(service, request):
        captured["maps"] = MessageAddressingProperties.extract_from(request)
        return None

    provider.set_interceptor(interceptor)

    ports_before = set(consumer.node.ports)
    results = []
    t_dispatch = net.now
    consumer.invoke_async(
        handle, "echo", {"message": "fig5"},
        lambda result, error: results.append((result, error)),
    )
    # steps 1-5 have run synchronously inside the consumer; the frame is
    # now in flight but NOT yet delivered (virtual time is frozen here)
    reply_ports = set(consumer.node.ports) - ports_before
    steps = {
        "1-2: reply pipe created locally": len(reply_ports) == 1,
        "4: consumer listening on it": all(
            p.startswith("pipe:") for p in reply_ports
        ),
        "5: request frame in flight": net.kernel.pending > 0,
        "no response yet (async)": not results,
    }
    net.run()
    maps = captured["maps"]
    steps["3: ReplyTo EPR in SOAP header"] = maps.reply_to is not None
    steps["3: EPR maps to the reply pipe"] = (
        maps.reply_to.property_text("PipeId").startswith("pipe-")
    )
    steps["Action carries pipe-name fragment"] = maps.action.endswith("#echo")
    t_complete = net.now

    rows = [[step, "PASS" if ok else "FAIL"] for step, ok in steps.items()]
    rows.append(["round trip", fmt_ms(t_complete - t_dispatch)])
    print_table(
        "F5  Fig.5 request process: numbered steps observed",
        ["step", "status"],
        rows,
    )
    assert results and results[0] == ("fig5", None)
    return steps


def test_fig5_all_steps_observed():
    steps = run_fig5_experiment()
    assert all(steps.values()), {k: v for k, v in steps.items() if not v}


def test_fig5_reply_pipe_is_bare():
    # reply channels have no service: the EPR address is peer-only
    world = build_p2ps_world()
    consumer, provider = world.consumers[0], world.providers[0]
    handle = consumer.locate_one("Echo0")
    captured = {}
    provider.set_interceptor(
        lambda service, request: captured.update(
            maps=MessageAddressingProperties.extract_from(request)
        )
        or None
    )
    consumer.invoke(handle, "echo", message="x")
    reply_address = captured["maps"].reply_to.address
    assert reply_address == f"p2ps://{consumer.peer.id}"


def test_bench_request_process(benchmark):
    world = build_p2ps_world()
    consumer = world.consumers[0]
    handle = consumer.locate_one("Echo0")

    def request_only():
        # measures steps 1-5 (everything before the wire)
        consumer.invoke_async(handle, "echo", {"message": "x"}, lambda r, e: None)
        world.net.run()

    benchmark(request_only)


if __name__ == "__main__":
    run_fig5_experiment()
