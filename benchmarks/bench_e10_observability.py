"""E10 — the cost and the payoff of the observability layer.

Three questions, one per section:

1. *Cost* (E10a): what does observing add to a call?  The signal is
   ~10µs of tracer work on a ~350µs invocation, and on a shared
   machine CPU drift between any two timed blocks is larger than
   that — so the measurement has two layers.  The **gate** rides on
   direct cost: a real invocation's event stream is captured once,
   then replayed straight through ``SpanTracer.observe`` thousands of
   times (and the metrics module's ``inc`` / the codec recorder hook
   are timed the same way); composing those per-event costs with the
   live-measured events-per-call and dividing by the off-mode per-call
   baseline gives a low-noise estimate of the instrumentation's
   first-order cost as a fraction of a call.  The **cross-check** is that A/B: persistent
   worlds per mode (``off``, ``metrics``, ``tracing``), timed as small
   paired batches back-to-back (rotated order, CPU seconds, GC
   parked), reported as the median of per-batch ratios — alongside a
   ``null`` column (a second off-mode world through the identical
   estimator) that shows the measurement's noise floor and explains
   why the gate does not ride on it.
2. *Payoff* (E10b): an E9-style churn run with failover enabled,
   traced.  The stitched span tree for one churn-induced failover must
   show a single logical span (one MessageID) with ≥ 2 attempt
   children carrying different endpoint tags — the whole multi-hop
   journey in one picture.
3. *Dogfood* (E10c): the introspection service answers ``GetMetrics``
   / ``GetTrace`` / ``ListServices`` over BOTH bindings — HTTP and
   P2PS pipes — including fetching the E10b-style trace through the
   very machinery the trace describes.

Results land in BENCH_E10.json.  ``E10_SMOKE=1`` shrinks the run for CI.
"""

import gc
import json
import os
import time

from _workloads import (
    EchoService,
    build_p2ps_world,
    build_standard_world,
    emit_json,
    print_table,
)

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import StandardBinding
from repro.core.events import RecordingListener
from repro.observability import (
    MetricsRegistry,
    SpanTracer,
    set_metrics_enabled,
    set_recorder,
)
from repro.observability import metrics as obs_metrics
from repro.observability.metrics import default_registry, reset_default_registry
from repro.simnet import ChurnSchedule, FixedLatency, Network
from repro.uddi import UddiRegistryNode

SMOKE = bool(os.environ.get("E10_SMOKE"))
BATCH_CALLS = 25                    # invokes per timed batch
N_BATCHES = 8 if SMOKE else 24      # paired batches (one per mode each)
N_WARMUP = 10                       # untimed cache/world warmers
N_REPLAY = 500 if SMOKE else 2000   # captured calls replayed through observe()
N_TIGHT = 5000 if SMOKE else 20000  # iterations for single-op cost loops
OVERHEAD_GATE = 0.05                # tracing must cost <= 5%

# E9-style churn shape for the traced failover run
N_PROVIDERS = 3
REQUEST_GAP = 0.05
ATTEMPT_TIMEOUT = 0.25
DOWNTIME = 1.0
CYCLE = 4.5
MAX_CHURN_CALLS = 40 if SMOKE else 120


# ----------------------------------------------------------------------
# E10a — observing the E8 workload: off vs metrics vs tracing
# ----------------------------------------------------------------------
class _ModeWorld:
    """One persistent world per mode; (de)activated around each batch."""

    def __init__(self, mode: str):
        self.mode = mode
        world = build_standard_world(n_providers=1, n_consumers=1)
        self.consumer = world.consumers[0]
        self.handle = self.consumer.locate_one("Echo0")
        self.calls = 0
        self.tracer = None
        if mode == "tracing":
            total = N_WARMUP + (N_BATCHES + 1) * BATCH_CALLS
            self.tracer = SpanTracer(max_spans=total + 1)
            # listeners stay attached for the world's life; only the
            # process-global bits (codec recorder) toggle per batch
            self.tracer.attach(self.consumer, peer=self.consumer.name)
            self.tracer.attach(world.providers[0], peer=world.providers[0].name)

    def activate(self):
        if self.mode in ("off", "null"):
            set_metrics_enabled(False)
        elif self.mode == "tracing":
            self._prev = set_recorder(self.tracer)

    def deactivate(self):
        if self.mode in ("off", "null"):
            set_metrics_enabled(True)
        elif self.mode == "tracing":
            set_recorder(self._prev)

    def run_batch(self, n: int) -> float:
        """*n* invokes under this mode; returns CPU seconds."""
        self.activate()
        try:
            start = time.process_time()
            for _ in range(n):
                self.calls += 1
                self.consumer.invoke(
                    self.handle, "echo", {"message": f"m{self.calls}"}
                )
            return time.process_time() - start
        finally:
            self.deactivate()


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _capture_call_events(world):
    """One real invocation's correlated event stream, both roots,
    time-ordered and tagged with the peer that heard each event."""
    consumer, provider = world.consumers[0], world.providers[0]
    handle = consumer.locate_one("Echo0")
    consumer.invoke(handle, "echo", {"message": "warm"})
    recorders = []
    for peer in (consumer, provider):
        recorder = RecordingListener()
        peer.add_listener(recorder)
        recorders.append((peer, recorder))
    consumer.invoke(handle, "echo", {"message": "captured"})
    tagged = []
    for peer, recorder in recorders:
        peer.remove_listener(recorder)
        tagged.extend((event, peer.name) for event in recorder.events)
    tagged.sort(key=lambda pair: pair[0].time)
    return [(e, p) for e, p in tagged if e.detail.get("message_id")]


def _measure_tracer_cost(sample) -> float:
    """Microseconds per observe(), replaying the captured stream with
    fresh MessageIDs so every replay builds and closes a real tree."""
    replays = []
    for i in range(N_REPLAY):
        mid = f"urn:uuid:e10-replay-{i}"
        for event, peer in sample:
            replays.append((
                event.__class__(event.kind, event.time + i, event.source,
                                {**event.detail, "message_id": mid}),
                peer,
            ))
    best = None
    for _ in range(3):
        tracer = SpanTracer(max_spans=N_REPLAY + 1, metrics=MetricsRegistry())
        observe = tracer.observe
        start = time.process_time()
        for event, peer in replays:
            observe(event, peer=peer)
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / len(replays) * 1e6


def _measure_codec_hook_cost() -> float:
    """Microseconds per codec_event() on an installed tracer."""
    tracer = SpanTracer(metrics=MetricsRegistry())
    hook = tracer.codec_event
    best = None
    for _ in range(3):
        start = time.process_time()
        for _ in range(N_TIGHT):
            hook("template-hit")
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / N_TIGHT * 1e6


def _measure_metric_op_cost() -> float:
    """Microseconds per module-level inc() — the exact call the
    transport/hosting/reliability instrumentation sites make."""
    best = None
    for _ in range(3):
        start = time.process_time()
        for _ in range(N_TIGHT):
            obs_metrics.inc("bench.e10.op")
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / N_TIGHT * 1e6


def _registry_op_count(snapshot) -> int:
    """Counter increments + histogram observations in a snapshot."""
    total = sum(snapshot.get("counters", {}).values())
    for hist in snapshot.get("histograms", {}).values():
        total += hist.get("count", 0)
    return total


def measure_overhead() -> dict:
    modes = ("off", "null", "metrics", "tracing")
    worlds = {mode: _ModeWorld(mode) for mode in modes}
    for world in worlds.values():
        world.run_batch(N_WARMUP)  # caches, code paths, allocator

    # metrics ops per call: registry delta over one warm batch
    ops_before = _registry_op_count(default_registry().snapshot())
    worlds["metrics"].run_batch(BATCH_CALLS)
    ops_per_call = (
        _registry_op_count(default_registry().snapshot()) - ops_before
    ) / BATCH_CALLS

    # end-to-end cross-check: paired batches, median of per-batch ratios
    ratios = {"null": [], "metrics": [], "tracing": []}
    totals = {mode: 0.0 for mode in modes}
    off_us_per_call = []
    gc.collect()
    gc.disable()  # collector cycles must not land on one unlucky batch
    try:
        for batch in range(N_BATCHES):
            times = {}
            for i in range(len(modes)):  # rotated: order bias hits every mode
                mode = modes[(batch + i) % len(modes)]
                times[mode] = worlds[mode].run_batch(BATCH_CALLS)
            for mode in ratios:
                ratios[mode].append(times[mode] / times["off"])
            for mode in modes:
                totals[mode] += times[mode]
            off_us_per_call.append(times["off"] / BATCH_CALLS * 1e6)
    finally:
        gc.enable()
    tracer = worlds["tracing"].tracer
    assert len(tracer) == worlds["tracing"].calls, (
        f"tracing mode lost spans: {len(tracer)} != {worlds['tracing'].calls}"
    )

    # direct cost: the gate's numerator, measured where the noise isn't
    baseline_us = _median(off_us_per_call)
    events_per_call = tracer.events_seen / worlds["tracing"].calls
    codec_per_call = sum(tracer.codec_counts.values()) / worlds["tracing"].calls
    per_event_us = _measure_tracer_cost(_capture_call_events(
        build_standard_world(n_providers=1, n_consumers=1)
    ))
    per_codec_us = _measure_codec_hook_cost()
    per_op_us = _measure_metric_op_cost()
    tracing_us = per_event_us * events_per_call + per_codec_us * codec_per_call
    metrics_us = per_op_us * ops_per_call

    return {
        "baseline_us_per_call": baseline_us,
        "tracing": {
            "per_event_us": per_event_us,
            "events_per_call": events_per_call,
            "per_codec_event_us": per_codec_us,
            "codec_events_per_call": codec_per_call,
            "us_per_call": tracing_us,
            "overhead": tracing_us / baseline_us,
        },
        "metrics": {
            "per_op_us": per_op_us,
            "ops_per_call": ops_per_call,
            "us_per_call": metrics_us,
            "overhead": metrics_us / baseline_us,
        },
        "end_to_end_check": {
            "batch_calls": BATCH_CALLS,
            "batches": N_BATCHES,
            "seconds": {mode: totals[mode] for mode in modes},
            "median_ratio": {
                mode: _median(values) for mode, values in ratios.items()
            },
        },
        "gate": OVERHEAD_GATE,
    }


# ----------------------------------------------------------------------
# E10b — a stitched span tree for a churn-induced failover
# ----------------------------------------------------------------------
def _build_replicated_world():
    net = Network(latency=FixedLatency(0.002))
    registry = UddiRegistryNode(net.add_node("registry"))
    providers, endpoints = [], []
    wsdl = None
    for i in range(N_PROVIDERS):
        peer = WSPeer(net.add_node(f"prov{i}"), StandardBinding(registry.endpoint))
        peer.deploy(EchoService(), name="Echo")
        providers.append(peer)
        local = peer.local_handle("Echo")
        wsdl = wsdl or local.wsdl
        endpoints.extend(local.endpoints)
    consumer = WSPeer(net.add_node("cons"), StandardBinding(registry.endpoint))
    handle = ServiceHandle("Echo", wsdl, endpoints, source="merged")
    return net, providers, consumer, handle


def _failover_trace(tracer: SpanTracer):
    """The first trace whose root has >= 2 attempt children on
    different endpoints (i.e. an actual failover hop), or None."""
    for message_id, span in tracer.traces():
        attempts = [c for c in span.children if c.kind == "attempt"]
        endpoints = {c.tags.get("endpoint") for c in attempts} - {None}
        if len(attempts) >= 2 and len(endpoints) >= 2:
            return message_id, span
    return None


def trace_churn_failover() -> dict:
    net, providers, consumer, handle = _build_replicated_world()
    tracer = SpanTracer(max_spans=MAX_CHURN_CALLS * 2)
    consumer.enable_observability(tracer=tracer)
    for provider in providers:
        provider.enable_observability(tracer=tracer)
    executor = consumer.enable_failover()

    horizon = MAX_CHURN_CALLS * (REQUEST_GAP + 4 * ATTEMPT_TIMEOUT)
    churn = ChurnSchedule(net)
    for i, provider in enumerate(providers):
        churn.kill_restart_cycle(
            provider.node.id,
            start=0.5 + i * (CYCLE / N_PROVIDERS),
            downtime=DOWNTIME,
            period=CYCLE,
            until=horizon,
        )

    answered = 0
    found = None
    for i in range(MAX_CHURN_CALLS):
        try:
            executor.invoke(handle, "echo", {"message": f"m{i}"},
                            timeout=ATTEMPT_TIMEOUT)
            answered += 1
        except Exception:  # noqa: BLE001 - unavailability is expected here
            pass
        net.run(until=net.now + REQUEST_GAP)  # paced; do not drain churn
        found = _failover_trace(tracer)
        if found is not None:
            break

    assert found is not None, "churn never induced a traced failover"
    message_id, span = found
    roots_with_mid = sum(
        1 for mid, _ in tracer.traces() if mid == message_id
    )
    attempts = [c for c in span.children if c.kind == "attempt"]
    rendered = tracer.render(message_id)
    tracer.uninstall()
    return {
        "message_id": message_id,
        "answered": answered,
        "failovers": executor.failovers,
        "logical_spans_for_message": roots_with_mid,
        "attempt_children": len(attempts),
        "attempt_endpoints": sorted(
            {c.tags.get("endpoint") for c in attempts} - {None}
        ),
        "status": span.status,
        "rendered": rendered,
        "tree": span.to_dict(),
    }


# ----------------------------------------------------------------------
# E10c — introspection round-trips over both bindings
# ----------------------------------------------------------------------
def _roundtrip(consumer, provider, locate_name: str) -> dict:
    handle = consumer.locate_one(locate_name)
    listing = json.loads(consumer.invoke(handle, "ListServices", {}))
    metrics_text = consumer.invoke(handle, "GetMetrics", {})
    # trace something first, then fetch its tree through the service
    traced_mid = provider.tracer.message_ids[-1] if provider.tracer and len(
        provider.tracer
    ) else None
    trace_payload = (
        json.loads(consumer.invoke(handle, "GetTrace", {"message_id": traced_mid}))
        if traced_mid
        else {"error": "nothing traced"}
    )
    return {
        "services": listing.get("services", []),
        "metrics_lines": len(metrics_text.splitlines()),
        "trace_ok": "error" not in trace_payload,
        "trace_children": len(trace_payload.get("children", [])),
    }


def introspection_http() -> dict:
    world = build_standard_world(n_providers=1, n_consumers=1)
    consumer, provider = world.consumers[0], world.providers[0]
    tracer = SpanTracer()
    consumer.enable_observability(tracer=tracer)
    provider.enable_observability(tracer=tracer)
    handle = consumer.locate_one("Echo0")
    consumer.invoke(handle, "echo", {"message": "traced"})
    provider.host_introspection()
    provider.publish("Introspection")
    result = _roundtrip(consumer, provider, "Introspection")
    tracer.uninstall()
    return result


def introspection_p2ps() -> dict:
    world = build_p2ps_world(n_providers=1, n_consumers=1)
    consumer, provider = world.consumers[0], world.providers[0]
    tracer = SpanTracer()
    consumer.enable_observability(tracer=tracer)
    provider.enable_observability(tracer=tracer)
    handle = consumer.locate_one("Echo0")
    consumer.invoke(handle, "echo", {"message": "traced"})
    provider.host_introspection()
    provider.publish("Introspection")
    world.net.run()  # let the adverts settle
    result = _roundtrip(consumer, provider, "Introspection")
    tracer.uninstall()
    return result


# ----------------------------------------------------------------------
def run_e10_experiment():
    reset_default_registry()
    results = {}

    overhead = measure_overhead()
    results["overhead"] = overhead
    e2e = overhead["end_to_end_check"]["median_ratio"]
    print_table(
        f"E10a  observability cost per invocation "
        f"(baseline {overhead['baseline_us_per_call']:.0f}us/call)",
        ["mode", "us/call added", "overhead", "e2e check"],
        [
            ["off", "-", "-", "-"],
            ["null (off vs off)", "-", "-", f"{(e2e['null'] - 1) * 100:+.1f}%"],
            ["metrics", f"{overhead['metrics']['us_per_call']:.1f}",
             f"{overhead['metrics']['overhead'] * 100:+.1f}%",
             f"{(e2e['metrics'] - 1) * 100:+.1f}%"],
            ["tracing", f"{overhead['tracing']['us_per_call']:.1f}",
             f"{overhead['tracing']['overhead'] * 100:+.1f}%",
             f"{(e2e['tracing'] - 1) * 100:+.1f}%"],
        ],
        note=f"gate: tracing <= {OVERHEAD_GATE * 100:.0f}% over off, from "
        f"direct cost ({overhead['tracing']['per_event_us']:.2f}us x "
        f"{overhead['tracing']['events_per_call']:.1f} events/call); the "
        "null column is the e2e method's noise floor on this machine",
    )

    churn = trace_churn_failover()
    results["failover_trace"] = {
        k: v for k, v in churn.items() if k != "tree"
    }
    results["failover_trace"]["tree"] = churn["tree"]
    print(f"\n== E10b  stitched span tree for a churn-induced failover "
          f"({churn['failovers']} failovers over {churn['answered']} answered calls)")
    print(churn["rendered"])

    http_rt = introspection_http()
    p2ps_rt = introspection_p2ps()
    results["introspection"] = {"http": http_rt, "p2ps": p2ps_rt}
    print_table(
        "E10c  introspection service round-trips (dogfooded)",
        ["binding", "services listed", "metrics lines", "GetTrace ok"],
        [
            ["http", len(http_rt["services"]), http_rt["metrics_lines"],
             http_rt["trace_ok"]],
            ["p2ps", len(p2ps_rt["services"]), p2ps_rt["metrics_lines"],
             p2ps_rt["trace_ok"]],
        ],
        note="GetMetrics/GetTrace/ListServices served by the peer about "
        "itself, over the binding being observed",
    )

    snapshot = default_registry().snapshot()
    results["final_counters"] = snapshot["counters"]
    emit_json("BENCH_E10.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E10_SMOKE=1)
# ----------------------------------------------------------------------
def test_e10_tracing_overhead_within_gate():
    overhead = measure_overhead()
    assert overhead["tracing"]["overhead"] <= OVERHEAD_GATE
    assert overhead["metrics"]["overhead"] <= OVERHEAD_GATE
    # the tracer did real work while measured: every call left a tree
    assert overhead["tracing"]["events_per_call"] >= 4


def test_e10_failover_trace_is_one_stitched_tree():
    churn = trace_churn_failover()
    assert churn["logical_spans_for_message"] == 1
    assert churn["attempt_children"] >= 2
    assert len(churn["attempt_endpoints"]) >= 2
    assert churn["status"] == "ok"


def test_e10_introspection_roundtrips_both_bindings():
    for result in (introspection_http(), introspection_p2ps()):
        assert "Introspection" in result["services"]
        assert result["metrics_lines"] > 5
        assert result["trace_ok"]


if __name__ == "__main__":
    run_e10_experiment()
