"""F4 — Fig. 4: the P2PS implementation's four processes.

deploy(pipes) → publish(advert broadcast) → locate(P2P query) →
invoke(pipes + ReplyTo).  Same application-level loop as F3, radically
different middleware underneath; the table shows the per-process costs
for comparison against F3.
"""

from _workloads import EchoService, build_p2ps_world, fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.simnet import summarize


def run_fig4_experiment(n_invocations: int = 50):
    world = build_p2ps_world(n_providers=0, n_consumers=1, publish=False)
    net = world.net
    provider = WSPeer(
        net.add_node("pprov"), P2psBinding(world.groups[0]), name="pprov"
    )
    consumer = world.consumers[0]

    marks = {}
    t0 = net.now
    provider.deploy(EchoService(), name="Echo")
    marks["deploy (open pipes)"] = net.now - t0

    t0 = net.now
    provider.publish("Echo")
    net.run()  # broadcast settles
    marks["publish (advert broadcast)"] = net.now - t0

    t0 = net.now
    handle = consumer.locate_one("Echo")
    marks["locate (query + definition pipe)"] = net.now - t0

    samples = []
    for i in range(n_invocations):
        t0 = net.now
        consumer.invoke(handle, "echo", message=f"m{i}")
        samples.append(net.now - t0)
    stats = summarize(samples)
    marks[f"invoke (pipes+ReplyTo, n={n_invocations})"] = stats["mean"]

    rows = [[process, fmt_ms(duration)] for process, duration in marks.items()]
    print_table(
        "F4  Fig.4 P2PS implementation: per-process virtual latency",
        ["process", "virtual time"],
        rows,
        note="locate is served from the group cache after the advert broadcast; "
        "the definition-pipe WSDL fetch dominates it",
    )
    return world, provider, consumer, marks, stats


def test_fig4_processes_work():
    world, provider, consumer, marks, _ = run_fig4_experiment(5)
    assert marks["deploy (open pipes)"] == 0.0  # pipes are local state
    assert consumer.invoke(consumer.locate_one("Echo"), "compute", values=[1, 2]) == 3.0


def test_fig4_invoke_is_two_pipe_hops():
    # request down the op pipe + response down the reply pipe = 2 hops
    world, provider, consumer, marks, stats = run_fig4_experiment(20)
    assert abs(stats["mean"] - 0.010) < 0.002


def test_fig4_no_registry_anywhere():
    world, provider, consumer, _, _ = run_fig4_experiment(5)
    assert "registry" not in world.net.node_ids


def test_bench_invoke_p2ps(benchmark):
    world = build_p2ps_world()
    consumer = world.consumers[0]
    handle = consumer.locate_one("Echo0")

    benchmark(lambda: consumer.invoke(handle, "echo", message="bench"))


def test_bench_locate_p2ps(benchmark):
    world = build_p2ps_world()
    consumer = world.consumers[0]

    benchmark(lambda: consumer.locate_one("Echo0"))


def test_bench_publish_advert(benchmark):
    world = build_p2ps_world(n_providers=1, n_consumers=4, publish=False)
    provider = world.providers[0]
    provider.deploy(EchoService(), name="Again")

    def publish():
        provider.publish("Again")
        world.net.run()

    benchmark(publish)


if __name__ == "__main__":
    run_fig4_experiment()
