"""E12 — the distributed discovery plane vs the single registry.

Two experiments, both closed-loop and in virtual time:

1. *lookup throughput at scale* — SERVICES deployed services (10k full
   run) with a hot subset looked up by concurrent consumers.  Baseline:
   the classic single ``UddiRegistryNode`` driven through
   ``UddiServiceLocator.locate_async`` (3 registry round-trips + WSDL
   GET per lookup, all landing on one serial server).  Plane: 4 shards
   x R2 with rendezvous caching — misses cost R shard queries, hits
   cost zero frames.  Acceptance: plane throughput >= 3x baseline.
2. *staleness under churn* — providers re-publish on a period (bumping
   the freshness counter, gossiping the new revision) while the E9
   churn schedule kills registry shards and browns out a provider.
   Every lookup completing after an announcement's valid_time + one
   gossip round must observe a revision at least that fresh.
   Acceptance: zero staleness violations; the plane stays available
   through single-shard outages.

Results land in BENCH_E12.json.  ``E12_SMOKE=1`` shrinks the run for CI.
"""

import os

from _workloads import emit_json, fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import StandardBinding
from repro.discovery import DiscoveryPlane
from repro.simnet import FixedLatency, Network
from repro.simnet.churn import ChurnSchedule

SMOKE = bool(os.environ.get("E12_SMOKE"))
SERVICES = 400 if SMOKE else 10_000
HOT = 16
N_PROVIDERS = 4
N_CONSUMERS = 4 if SMOKE else 8
LOOKUPS_PER_CONSUMER = 30 if SMOKE else 40
SHARDS = 4
REPLICATION = 2
REGISTRY_SERVICE_TIME = 0.002  # each registry is a serial 2ms queue
HOP_LATENCY = 0.002

# staleness experiment
STALE_RUNTIME = 45.0 if SMOKE else 90.0
REPUBLISH_EVERY = 5.0
VALID_TIME = 8.0
LEASE_TTL = 20.0
CHURN_TIMEOUT = 2.0  # short client timeout so dead shards cost 2s, not 30s
# a publish may stall CHURN_TIMEOUT failing over from a dead primary, and
# a lookup may hold its merged answer CHURN_TIMEOUT waiting on a dead
# replica; both delays plus a gossip round pad the promised bound
PUBLISH_SETTLE = 2 * CHURN_TIMEOUT + 1.0
LOOKUP_EVERY = 0.5


class Echo:
    def echo(self, message: str) -> str:
        return message


def hot_names():
    return [f"HotSvc{i:02d}" for i in range(HOT)]


def cold_seed(plane, n):
    """Bulk-register *n* cold services (never looked up, pure scale)."""
    for i in range(n):
        name = f"ColdSvc{i:05d}"
        plane.seed_service(
            name,
            f"http://coldhost:80/services/{name}",
            wsdl_url=f"http://coldhost:80/services/{name}.wsdl",
        )


def deploy_hot_providers(net, plane_or_uri, use_plane):
    """N provider peers, each hosting an equal slice of the hot set."""
    providers = []
    for p in range(N_PROVIDERS):
        if use_plane:
            peer = WSPeer(
                net.add_node(f"prov{p}"),
                StandardBinding(plane_or_uri.registry_uris["registry-0"]),
            )
            peer.enable_distributed_discovery(plane_or_uri)
        else:
            peer = WSPeer(net.add_node(f"prov{p}"), StandardBinding(plane_or_uri))
        for name in hot_names()[p::N_PROVIDERS]:
            peer.deploy(Echo(), name=name)
            peer.publish(name)
        providers.append(peer)
    net.run()
    return providers


# ----------------------------------------------------------------------
# E12a — closed-loop lookup throughput at scale
# ----------------------------------------------------------------------
def measure_baseline_throughput():
    """The pre-E12 path: one registry node, classic locator chain."""
    net = Network(latency=FixedLatency(HOP_LATENCY))
    single = DiscoveryPlane(
        net, shards=1, replication=1, registry_service_time=REGISTRY_SERVICE_TIME
    )
    registry_uri = single.registry_uris["registry-0"]
    cold_seed(single, SERVICES - HOT)
    deploy_hot_providers(net, registry_uri, use_plane=False)

    consumers = [
        WSPeer(net.add_node(f"cons{i}"), StandardBinding(registry_uri))
        for i in range(N_CONSUMERS)
    ]
    return _drive_closed_loop(
        net,
        [
            lambda name, done, peer=peer: peer.locate_async(
                name, lambda handle: None,
                on_complete=lambda count, error: done(count if error is None else 0,
                                                      error),
            )
            for peer in consumers
        ],
        registry_frames=lambda: net.stats.get("registry-0"),
    )


def measure_plane_throughput():
    net = Network(latency=FixedLatency(HOP_LATENCY))
    plane = DiscoveryPlane(
        net,
        shards=SHARDS,
        replication=REPLICATION,
        registry_service_time=REGISTRY_SERVICE_TIME,
        cache_lifetime=60.0,
        advert_valid_time=60.0,
    )
    cold_seed(plane, SERVICES - HOT)
    deploy_hot_providers(net, plane, use_plane=True)

    clients = [
        plane.client_for(net.add_node(f"cons{i}")) for i in range(N_CONSUMERS)
    ]
    metrics = _drive_closed_loop(
        net,
        [
            lambda name, done, client=client: client.resolve_async(
                name, lambda items, error: done(len(items), error)
            )
            for client in clients
        ],
        registry_frames=lambda: sum(
            net.stats.get(sid) for sid in plane.shard_ids
        ),
    )
    metrics["cache_hits"] = sum(c.cache.hits for c in clients)
    metrics["cache_misses"] = sum(c.cache.misses for c in clients)
    return metrics


def _drive_closed_loop(net, lookup_fns, registry_frames):
    """Each consumer performs LOOKUPS_PER_CONSUMER sequential lookups
    round-robining the hot set; makespan is the last completion."""
    names = hot_names()
    t_start = net.now
    state = {"completed": 0, "errors": 0, "empty": 0, "t_last": t_start}
    total = len(lookup_fns) * LOOKUPS_PER_CONSUMER

    def drive(ci, remaining):
        name = names[(ci * 7 + remaining) % len(names)]

        def done(found, error):
            state["completed"] += 1
            state["t_last"] = net.now
            if error is not None:
                state["errors"] += 1
            elif found == 0:
                state["empty"] += 1
            if remaining > 1:
                drive(ci, remaining - 1)

        lookup_fns[ci](name, done)

    for ci in range(len(lookup_fns)):
        drive(ci, LOOKUPS_PER_CONSUMER)
    net.run()

    assert state["completed"] == total
    assert state["errors"] == 0 and state["empty"] == 0
    makespan = state["t_last"] - t_start
    return {
        "services_registered": SERVICES,
        "consumers": len(lookup_fns),
        "lookups": total,
        "makespan_s": makespan,
        "throughput_lps": total / makespan,
        "registry_frames": registry_frames(),
    }


# ----------------------------------------------------------------------
# E12b — bounded staleness under the E9 churn schedule
# ----------------------------------------------------------------------
def measure_staleness_under_churn():
    net = Network(latency=FixedLatency(HOP_LATENCY))
    plane = DiscoveryPlane(
        net,
        shards=SHARDS,
        replication=REPLICATION,
        registry_service_time=REGISTRY_SERVICE_TIME,
        cache_lifetime=VALID_TIME,
        advert_valid_time=VALID_TIME,
        client_timeout=CHURN_TIMEOUT,
    )
    providers = deploy_hot_providers(net, plane, use_plane=True)

    # announcement log: name -> [(announce_time, revision)]
    announced = {name: [] for name in hot_names()}
    for prov in providers:
        for name in prov.deployed_services:
            # initial publication already happened through the facade;
            # seed the log from the registry's current revision
            records = prov.discovery.lookup_records(name)
            announced[name].append(
                (net.now, max(int(r["revision"]) for r in records))
            )

    def republish(prov, name):
        if net.kernel.now >= STALE_RUNTIME:
            return
        endpoint = prov.local_handle(name).endpoints[0].address
        try:
            record = prov.discovery.publish(
                "WSPeer", name, endpoint,
                wsdl_url=endpoint + ".wsdl", ttl=LEASE_TTL,
            )
            announced[name].append((net.kernel.now, int(record["revision"])))
        except Exception:
            pass  # provider or replicas momentarily unreachable
        net.kernel.schedule(REPUBLISH_EVERY, republish, prov, name)

    for pi, prov in enumerate(providers):
        for ni, name in enumerate(prov.deployed_services):
            net.kernel.schedule(
                0.3 + 0.1 * pi + 0.05 * ni, republish, prov, name
            )

    # E9 churn: each shard suffers a (non-overlapping) outage, repeated;
    # one provider node gets a brownout in the middle of the run.
    churn = ChurnSchedule(net, seed=7)
    for i, shard_id in enumerate(plane.shard_ids):
        churn.kill_restart_cycle(
            shard_id,
            start=8.0 + 7.0 * i,
            downtime=4.0,
            period=7.0 * SHARDS,
            until=STALE_RUNTIME - 5.0,
        )
    churn.brownout(
        "prov0",
        at=STALE_RUNTIME / 3,
        until=STALE_RUNTIME / 3 + 6.0,
        service_time=0.01,
    )

    # consumers: continuous async lookups over the hot set
    clients = [
        plane.client_for(net.add_node(f"cons{i}")) for i in range(N_CONSUMERS)
    ]
    observations = []  # (t_complete, name, max_revision_seen)
    state = {"lookups": 0, "errors": 0}

    def lookup(ci, tick):
        if net.kernel.now >= STALE_RUNTIME:
            return
        name = hot_names()[(ci + tick) % HOT]

        def done(items, error):
            state["lookups"] += 1
            if error is not None or not items:
                state["errors"] += 1
            else:
                observations.append(
                    (net.kernel.now, name, max(i.revision for i in items))
                )
            net.kernel.schedule(LOOKUP_EVERY, lookup, ci, tick + 1)

        clients[ci].resolve_async(name, done)

    for ci in range(N_CONSUMERS):
        net.kernel.schedule(0.5 + 0.05 * ci, lookup, ci, 0)

    net.run(until=STALE_RUNTIME + 10.0)

    # the bound: a lookup completing after announce_time + valid_time +
    # the publish/lookup settle margin must reflect at least that
    # announcement (gossip refreshes caches much faster; valid_time is
    # the backstop when an epidemic round misses a consumer)
    bound = VALID_TIME + PUBLISH_SETTLE
    violations = 0
    worst_lag = 0.0
    for t, name, seen in observations:
        due = [rev for (at, rev) in announced[name] if at + bound <= t]
        expected = max(due, default=0)
        if seen < expected:
            violations += 1
            lag_candidates = [
                t - at for (at, rev) in announced[name]
                if rev > seen and at + bound <= t
            ]
            worst_lag = max([worst_lag] + lag_candidates)

    shard_downtime = sum(
        1 for r in churn.log if r.kind == "kill"
    )
    return {
        "runtime_s": STALE_RUNTIME,
        "republish_every_s": REPUBLISH_EVERY,
        "valid_time_s": VALID_TIME,
        "staleness_bound_s": bound,
        "lookups": state["lookups"],
        "lookup_errors": state["errors"],
        "observations": len(observations),
        "republishes": sum(len(v) for v in announced.values()),
        "shard_outages": shard_downtime,
        "staleness_violations": violations,
        "worst_staleness_lag_s": worst_lag,
        "availability": (
            (state["lookups"] - state["errors"]) / state["lookups"]
            if state["lookups"] else 0.0
        ),
    }


# ----------------------------------------------------------------------
def run_e12_experiment():
    results = {}

    baseline = measure_baseline_throughput()
    plane = measure_plane_throughput()
    speedup = plane["throughput_lps"] / baseline["throughput_lps"]
    results["throughput"] = {
        "baseline_single_registry": baseline,
        "sharded_cached_plane": plane,
        "speedup": speedup,
    }
    print_table(
        f"E12a lookup throughput at {SERVICES} services "
        f"({N_CONSUMERS} consumers x {LOOKUPS_PER_CONSUMER} lookups)",
        ["mode", "makespan", "throughput", "registry frames", "cache hits"],
        [
            [
                "single registry",
                fmt_ms(baseline["makespan_s"]),
                f"{baseline['throughput_lps']:.0f}/s",
                baseline["registry_frames"],
                "-",
            ],
            [
                f"{SHARDS} shards xR{REPLICATION} + cache",
                fmt_ms(plane["makespan_s"]),
                f"{plane['throughput_lps']:.0f}/s",
                plane["registry_frames"],
                plane["cache_hits"],
            ],
            ["speedup", "", f"{speedup:.1f}x", "", ""],
        ],
        note="baseline pays 3 registry round-trips + WSDL GET per lookup "
        "on one serial server; plane misses cost R shard queries, hits "
        "cost zero frames",
    )

    stale = measure_staleness_under_churn()
    results["staleness"] = stale
    print_table(
        f"E12b staleness under churn ({STALE_RUNTIME:g}s, "
        f"{stale['shard_outages']} shard outages)",
        ["lookups", "errors", "republishes", "violations", "availability"],
        [[
            stale["lookups"],
            stale["lookup_errors"],
            stale["republishes"],
            stale["staleness_violations"],
            f"{stale['availability'] * 100:.1f}%",
        ]],
        note=f"bound: every lookup completing {stale['staleness_bound_s']:g}s "
        "after an announcement reflects at least its freshness counter",
    )

    emit_json("BENCH_E12.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E12_SMOKE=1)
# ----------------------------------------------------------------------
def test_e12_sharded_cached_beats_single_registry_3x():
    baseline = measure_baseline_throughput()
    plane = measure_plane_throughput()
    assert plane["throughput_lps"] >= 3.0 * baseline["throughput_lps"]
    assert plane["cache_hits"] > 0


def test_e12_staleness_bounded_under_churn():
    stale = measure_staleness_under_churn()
    assert stale["shard_outages"] > 0, "churn must actually fire"
    assert stale["staleness_violations"] == 0
    assert stale["availability"] > 0.9


if __name__ == "__main__":
    run_e12_experiment()
