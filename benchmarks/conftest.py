"""Make the benchmark package importable and auto-print tables.

Benchmarks both (a) time their core loop via pytest-benchmark and
(b) print the experiment's paper-style table (visible with ``-s`` or in
the captured output of a failing run; every bench also runs standalone
as ``python benchmarks/bench_*.py``).
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
