"""EXT1 — extension: DAML-style semantic queries (§III's hook).

"More complex queries could be constructed from languages such as
DAML."  The extension (``repro.semantic``) adds DAML-S-style profiles
and capability matchmaking on top of the locator tree.  Experiment:
a marketplace where service *names* are unhelpful (every provider calls
itself "Shop-N") but profiles state real capabilities; compare what a
name query and a capability query return.
"""

from _workloads import fmt_ms, print_table

from repro.core import WSPeer
from repro.core.binding import P2psBinding
from repro.p2ps import PeerGroup
from repro.semantic import (
    MatchDegree,
    Matchmaker,
    Ontology,
    SemanticServiceLocator,
    SemanticServiceQuery,
    ServiceProfile,
)
from repro.semantic.locator import attach_profile
from repro.simnet import FixedLatency, Network


def build_ontology() -> Ontology:
    onto = Ontology("commerce")
    onto.add_concept("Goods")
    for concept, parent in [
        ("Vehicle", "Goods"), ("Car", "Vehicle"), ("SportsCar", "Car"),
        ("Truck", "Vehicle"), ("Food", "Goods"), ("Fruit", "Food"),
    ]:
        onto.add_concept(concept, [parent])
    return onto


class Shop:
    def __init__(self, stock: str):
        self.stock = stock

    def buy(self) -> str:
        return self.stock


CATALOGUE = [
    # (stock concept the shop actually sells)
    "SportsCar", "Truck", "Fruit", "Car", "Food",
]


def build_market():
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("market")
    onto = build_ontology()
    for i, concept in enumerate(CATALOGUE):
        peer = WSPeer(net.add_node(f"shop{i}"), P2psBinding(group), name=f"shop{i}")
        name = f"Shop-{i}"  # deliberately meaningless
        peer.deploy(Shop(concept), name=name)
        attach_profile(peer, name, ServiceProfile(name, (), (concept,)))
        peer.publish(name)
    net.run()
    buyer = WSPeer(net.add_node("buyer"), P2psBinding(group), name="buyer")
    buyer.client.register_locator(
        SemanticServiceLocator(buyer.client.locator, onto)
    )
    return net, buyer, onto


def relevant_for(onto: Ontology, requested: str) -> set[str]:
    """Ground truth: shops whose stock is subsumption-related to the ask."""
    return {
        f"Shop-{i}"
        for i, stock in enumerate(CATALOGUE)
        if onto.is_subconcept(stock, requested) or onto.is_subconcept(requested, stock)
    }


def run_ext1_experiment():
    net, buyer, onto = build_market()
    rows = []
    for requested in ("Car", "Vehicle", "Food"):
        start = net.now
        name_hits = buyer.locate(requested, timeout=3.0)  # name query: useless names
        semantic_hits = buyer.locate(
            SemanticServiceQuery(outputs=(requested,)), timeout=3.0
        )
        truth = relevant_for(onto, requested)
        found = {h.name for h in semantic_hits}
        precision = len(found & truth) / len(found) if found else 0.0
        recall = len(found & truth) / len(truth) if truth else 1.0
        rows.append(
            [
                requested,
                len(name_hits),
                len(semantic_hits),
                f"{precision * 100:.0f}%",
                f"{recall * 100:.0f}%",
                fmt_ms(net.now - start),
            ]
        )
    print_table(
        "EXT1  name-based vs capability-based discovery (5 shops, opaque names)",
        ["requested concept", "name-query hits", "semantic hits",
         "precision", "recall", "both queries"],
        rows,
        note="name queries find nothing useful (names are opaque ids); "
        "capability queries recover the relevant providers exactly",
    )
    return rows


def test_ext1_name_queries_blind():
    net, buyer, _ = build_market()
    assert buyer.locate("Car", timeout=3.0) == []


def test_ext1_semantic_queries_see_capabilities():
    net, buyer, onto = build_market()
    hits = buyer.locate(SemanticServiceQuery(outputs=("Car",)), timeout=3.0)
    names = {h.name for h in hits}
    # Shop-0 sells SportsCar (plugin), Shop-3 sells Car (exact);
    # Shop-1 (Truck) only relates through Vehicle — excluded at SUBSUMES?
    # Truck is not subsumption-related to Car at all, so it must be out.
    assert "Shop-3" in names and "Shop-0" in names
    assert "Shop-1" not in names


def test_ext1_perfect_precision_and_recall():
    net, buyer, onto = build_market()
    for requested in ("Car", "Vehicle", "Food"):
        found = {h.name for h in buyer.locate(
            SemanticServiceQuery(outputs=(requested,)), timeout=3.0
        )}
        assert found == relevant_for(onto, requested)


def test_ext1_ranking_prefers_exact():
    net, buyer, _ = build_market()
    hits = buyer.locate(SemanticServiceQuery(outputs=("Car",)), timeout=3.0)
    assert hits[0].name == "Shop-3"  # exact Car beats SportsCar plugin


def test_bench_matchmaking(benchmark):
    onto = build_ontology()
    matchmaker = Matchmaker(onto)
    request = ServiceProfile("req", outputs=("Vehicle",))
    candidates = [
        ServiceProfile(f"c{i}", outputs=(CATALOGUE[i % len(CATALOGUE)],))
        for i in range(50)
    ]
    benchmark(lambda: matchmaker.rank(request, candidates, MatchDegree.SUBSUMES))


if __name__ == "__main__":
    run_ext1_experiment()
