"""E13 — concurrency core: run-queue scheduler + worker-pool hosting.

The E13 refactor split the kernel into a timer heap plus a due-now
run-queue and replaced each node's serial service queue with N simulated
workers.  Four experiments measure what that buys:

1. *worker pool vs serial* — a closed-loop mixed workload (10% of
   requests cost 20ms, the rest 0.5ms) against one provider.  With one
   worker a slow request head-of-line-blocks everything behind it; with
   four, it pins one worker while the other three keep draining the
   fast traffic.  Acceptance: pool(4) ≥ 3x serial throughput, zero
   lost/overflowed events per the E10 metrics registry.
2. *peer-count sweep* — closed-loop calls/sec and p99 latency as the
   simultaneous peer population grows 100 → 10k (smaller under
   ``E13_SMOKE``).  Every request arms a client-side timeout timer that
   is cancelled when the response lands, so the sweep also exercises
   real timer cancellation at scale; the kernel's physical heap size is
   sampled against its live timer count.
3. *determinism* — the pooled mixed workload replayed twice under
   seeded WAN latency must produce byte-identical traces.
4. *cancelled-timer heap* — a schedule/cancel-heavy micro-workload
   (the retry-timer pattern) demonstrating the heap compacts: physical
   heap size stays proportional to the live timer set, not to the
   total scheduled.

Results land in BENCH_E13.json.  ``E13_SMOKE=1`` shrinks the run for CI.
"""

import os

import numpy as np
from _workloads import emit_json, fmt_ms, print_table

from repro.observability import metrics as obs_metrics
from repro.simnet import FixedLatency, Kernel, Network, SeededLatency, TraceLog
from repro.transport import HttpClient, HttpRequest, HttpResponse, HttpServer
from repro.simnet.wiretap import payload_text

SMOKE = bool(os.environ.get("E13_SMOKE"))
N_CLIENTS = 8 if SMOKE else 16
REQUESTS_PER_CLIENT = 25 if SMOKE else 100
SWEEP_PEERS = [50, 200] if SMOKE else [100, 1000, 10_000]
SWEEP_REQUESTS = 2 if SMOKE else 3
CANCEL_CYCLES = 10_000 if SMOKE else 50_000
HOP_LATENCY = 0.0002  # 0.2ms hops: the server, not the wire, is the bottleneck
SLOW_COST = 0.020
FAST_COST = 0.0005
SLOW_EVERY = 10  # every 10th request is slow (10% of the workload)


def mixed_cost(frame):
    """Per-frame service cost: request frames tagged slow pin a worker."""
    return SLOW_COST if "sleepy" in payload_text(frame) else FAST_COST


def build_world(workers, latency=None, trace=False):
    obs_metrics.reset_default_registry()
    net = Network(
        latency=latency or FixedLatency(HOP_LATENCY),
        trace=TraceLog(enabled=trace),
    )
    server_node = net.add_node("server")
    server_node.frame_cost = mixed_cost
    server_node.configure_workers(workers)
    for i in range(N_CLIENTS):
        net.add_node(f"client{i}")
    server = HttpServer(server_node, 80)
    server.add_route("/work", lambda req: HttpResponse(200, req.body))
    server.start()
    return net, server


# ----------------------------------------------------------------------
# E13a — worker pool vs serial under a mixed fast/slow workload
# ----------------------------------------------------------------------
def measure_worker_pool(workers, latency=None, trace=False):
    net, server = build_world(workers, latency=latency, trace=trace)
    clients = [
        HttpClient(net.get_node(f"client{i}")) for i in range(N_CLIENTS)
    ]
    total = N_CLIENTS * REQUESTS_PER_CLIENT
    done = {"count": 0, "t_last": 0.0, "errors": 0}
    latencies = []

    def drive(client, i, remaining):
        body = "sleepy" if (i * REQUESTS_PER_CLIENT + remaining) % SLOW_EVERY == 0 else "quick"
        t_sent = net.now

        def on_response(resp, err):
            if err is not None or not resp.ok:
                done["errors"] += 1
            latencies.append(net.now - t_sent)
            done["count"] += 1
            done["t_last"] = net.now
            if remaining > 1:
                drive(client, i, remaining - 1)

        client.request_async("server", 80, HttpRequest("POST", "/work", body), on_response)

    for i, client in enumerate(clients):
        drive(client, i, REQUESTS_PER_CLIENT)
    net.run()

    assert done["count"] == total and done["errors"] == 0
    snap = obs_metrics.default_registry().snapshot()
    makespan = done["t_last"]
    stats = server.node.worker_stats()
    return {
        "workers": workers,
        "clients": N_CLIENTS,
        "requests": total,
        "makespan_s": makespan,
        "throughput_rps": total / makespan,
        "p99_latency_s": float(np.percentile(latencies, 99)),
        "mean_utilisation": float(np.mean(stats["utilisation"])),
        "lost_in_service": snap["counters"].get("simnet.lost_in_service", 0),
        "overflowed": snap["counters"].get("simnet.worker.overflow", 0),
        "trace": net.trace.records if trace else None,
    }


# ----------------------------------------------------------------------
# E13b — closed-loop calls/sec and p99 latency vs peer count
# ----------------------------------------------------------------------
def measure_peer_sweep(n_peers):
    obs_metrics.reset_default_registry()
    net = Network(latency=FixedLatency(HOP_LATENCY))
    n_servers = max(1, n_peers // 100)
    servers = []
    for s in range(n_servers):
        node = net.add_node(f"server{s}")
        node.service_time = 0.001
        node.configure_workers(4)
        server = HttpServer(node, 80)
        server.add_route("/work", lambda req: HttpResponse(200, "ok"))
        server.start()
        servers.append(server)
    clients = [HttpClient(net.add_node(f"peer{i}")) for i in range(n_peers)]
    done = {"count": 0, "t_last": 0.0, "errors": 0}
    latencies = []
    heap_samples = []
    total = n_peers * SWEEP_REQUESTS

    def drive(client, i, remaining):
        target = f"server{i % n_servers}"
        t_sent = net.now

        def on_response(resp, err):
            if err is not None or not resp.ok:
                done["errors"] += 1
            latencies.append(net.now - t_sent)
            done["count"] += 1
            done["t_last"] = net.now
            if remaining > 1:
                drive(client, i, remaining - 1)

        # the default 30s timeout timer is cancelled when the response
        # lands — n_peers simultaneous in-flight requests means n_peers
        # live timers that all die young
        client.request_async(target, 80, HttpRequest("POST", "/work", "x"), on_response)

    for i, client in enumerate(clients):
        drive(client, i, SWEEP_REQUESTS)
    heap_samples.append((net.kernel.heap_size, net.kernel.pending))
    net.run()
    heap_samples.append((net.kernel.heap_size, net.kernel.pending))

    assert done["count"] == total and done["errors"] == 0
    snap = obs_metrics.default_registry().snapshot()
    return {
        "peers": n_peers,
        "servers": n_servers,
        "requests": total,
        "makespan_s": done["t_last"],
        "calls_per_s": total / done["t_last"],
        "p50_latency_s": float(np.percentile(latencies, 50)),
        "p99_latency_s": float(np.percentile(latencies, 99)),
        "events_fired": net.kernel.events_fired,
        "heap_at_burst": heap_samples[0][0],
        "pending_at_burst": heap_samples[0][1],
        "heap_after": heap_samples[-1][0],
        "lost_in_service": snap["counters"].get("simnet.lost_in_service", 0),
        "overflowed": snap["counters"].get("simnet.worker.overflow", 0),
    }


# ----------------------------------------------------------------------
# E13c — seeded runs are byte-identical
# ----------------------------------------------------------------------
def trace_signature(records):
    """Canonical byte form of a trace.

    Ephemeral reply ports draw from a process-global counter
    (``HttpClient._conn_ids``), so their *names* differ between repeats
    inside one process even when the schedule replays identically —
    renumber them by first appearance so the comparison tests the
    schedule, not the global counter."""
    import re

    canon: dict[str, str] = {}

    def rewrite(match):
        return canon.setdefault(match.group(0), f"http-conn:#{len(canon)}")

    lines = []
    for r in records:
        line = f"{r.time:.9f} {r.kind} {sorted(r.detail.items())}"
        lines.append(re.sub(r"http-conn:\d+", rewrite, line))
    return "\n".join(lines)


def measure_determinism():
    def run_once():
        return measure_worker_pool(
            4, latency=SeededLatency(median=0.001, sigma=0.4, seed=42), trace=True
        )

    first, second = run_once(), run_once()
    sig1 = trace_signature(first["trace"])
    sig2 = trace_signature(second["trace"])
    return {
        "trace_events": len(first["trace"]),
        "byte_identical": sig1 == sig2,
        "makespans_equal": first["makespan_s"] == second["makespan_s"],
    }


# ----------------------------------------------------------------------
# E13d — cancelled timers leave the heap (the retry-timer pattern)
# ----------------------------------------------------------------------
def measure_timer_cancellation():
    kernel = Kernel()
    live_window = 32
    live = []
    peak_heap = 0
    for i in range(CANCEL_CYCLES):
        live.append(kernel.schedule(1000.0 + i * 1e-4, lambda: None))
        if len(live) > live_window:
            live.pop(0).cancel()
        if kernel.heap_size > peak_heap:
            peak_heap = kernel.heap_size
    return {
        "cycles": CANCEL_CYCLES,
        "live_window": live_window,
        "peak_heap": peak_heap,
        "final_heap": kernel.heap_size,
        "final_pending": kernel.pending,
        "bounded": peak_heap < 10 * live_window + 2 * 64,
    }


# ----------------------------------------------------------------------
def run_e13_experiment():
    results = {}

    rows = []
    for workers in (1, 4):
        metrics = measure_worker_pool(workers)
        metrics.pop("trace")
        results.setdefault("worker_pool", {})[f"workers={workers}"] = metrics
        rows.append([
            workers,
            metrics["requests"],
            fmt_ms(metrics["makespan_s"]),
            f"{metrics['throughput_rps']:.0f}/s",
            fmt_ms(metrics["p99_latency_s"]),
            f"{metrics['mean_utilisation']:.0%}",
            metrics["lost_in_service"],
        ])
    serial = results["worker_pool"]["workers=1"]
    pooled = results["worker_pool"]["workers=4"]
    results["worker_pool"]["speedup"] = (
        pooled["throughput_rps"] / serial["throughput_rps"]
    )
    print_table(
        f"E13a worker pool vs serial ({N_CLIENTS} clients x "
        f"{REQUESTS_PER_CLIENT} requests, 10% slow at {SLOW_COST * 1000:g}ms)",
        ["workers", "requests", "makespan", "throughput", "p99", "util", "lost"],
        rows,
        note=f"speedup {results['worker_pool']['speedup']:.1f}x — a slow request "
        "pins one worker instead of head-of-line-blocking the node",
    )

    rows = []
    for n in SWEEP_PEERS:
        metrics = measure_peer_sweep(n)
        results.setdefault("peer_sweep", {})[str(n)] = metrics
        rows.append([
            n,
            metrics["servers"],
            f"{metrics['calls_per_s']:.0f}/s",
            fmt_ms(metrics["p50_latency_s"]),
            fmt_ms(metrics["p99_latency_s"]),
            metrics["events_fired"],
            f"{metrics['heap_at_burst']}/{metrics['pending_at_burst']}",
        ])
    print_table(
        f"E13b closed-loop sweep ({SWEEP_REQUESTS} requests/peer, "
        f"4 workers/server)",
        ["peers", "servers", "calls/s", "p50", "p99", "events", "heap/pending"],
        rows,
        note="every in-flight request holds a live timeout timer, cancelled "
        "on response; heap/pending shows physical vs live timer count at "
        "peak in-flight",
    )

    determinism = measure_determinism()
    results["determinism"] = determinism
    print_table(
        "E13c seeded determinism (pooled mixed workload, WAN latency, 2 runs)",
        ["trace events", "byte-identical", "equal makespans"],
        [[
            determinism["trace_events"],
            determinism["byte_identical"],
            determinism["makespans_equal"],
        ]],
    )

    cancel = measure_timer_cancellation()
    results["timer_cancellation"] = cancel
    print_table(
        f"E13d timer cancellation ({CANCEL_CYCLES} schedule+cancel cycles, "
        f"{cancel['live_window']} live)",
        ["cycles", "peak heap", "final heap", "live", "bounded"],
        [[
            cancel["cycles"], cancel["peak_heap"], cancel["final_heap"],
            cancel["final_pending"], cancel["bounded"],
        ]],
        note="cancelled timers physically leave the heap (compaction), so "
        "retry-heavy workloads do not accumulate dead entries",
    )

    emit_json("BENCH_E13.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E13_SMOKE=1)
# ----------------------------------------------------------------------
def test_e13_pool_beats_serial_3x_with_zero_loss():
    serial = measure_worker_pool(1)
    pooled = measure_worker_pool(4)
    assert pooled["throughput_rps"] >= 3.0 * serial["throughput_rps"]
    for metrics in (serial, pooled):
        assert metrics["lost_in_service"] == 0
        assert metrics["overflowed"] == 0


def test_e13_sweep_answers_every_peer():
    metrics = measure_peer_sweep(SWEEP_PEERS[0])
    assert metrics["requests"] == SWEEP_PEERS[0] * SWEEP_REQUESTS
    assert metrics["lost_in_service"] == 0
    assert metrics["overflowed"] == 0
    assert metrics["p99_latency_s"] > 0


def test_e13_seeded_runs_are_byte_identical():
    determinism = measure_determinism()
    assert determinism["byte_identical"]
    assert determinism["makespans_equal"]


def test_e13_cancelled_timers_leave_the_heap():
    cancel = measure_timer_cancellation()
    assert cancel["bounded"]
    assert cancel["final_pending"] == cancel["live_window"]


if __name__ == "__main__":
    run_e13_experiment()
