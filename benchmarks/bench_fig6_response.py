"""F6 — Fig. 6: the WSPeer/P2PS response process, step by step.

1. Retrieve SOAP request from pipe
2. Retrieve endpoint reference and convert to pipe advertisement
3. Process request
4. Request return pipe based on pipe advertisement
5. P2PS returns pipe
6. Send response down return pipe

Paired with F5: the provider-side decomposition of the same exchange,
timed from the event stream (each ServerMessageEvent carries its
virtual timestamp).
"""

from _workloads import build_p2ps_world, fmt_ms, print_table

from repro.core.events import RecordingListener


def run_fig6_experiment():
    world = build_p2ps_world()
    consumer, provider = world.consumers[0], world.providers[0]
    net = world.net
    listener = RecordingListener()
    provider.add_listener(listener)
    consumer_listener = RecordingListener()
    consumer.add_listener(consumer_listener)

    handle = consumer.locate_one("Echo0")
    listener.events.clear()
    consumer_listener.events.clear()

    t_send = net.now
    result = consumer.invoke(handle, "echo", message="fig6")
    t_done = net.now
    assert result == "fig6"

    received = listener.of_kind("request-received")[0]
    responded = listener.of_kind("response-sent")[0]
    completed = consumer_listener.of_kind("response-received")[0]

    request_leg = received.time - t_send
    processing = responded.time - received.time
    response_leg = completed.time - responded.time

    rows = [
        ["1: request retrieved from pipe", fmt_ms(request_leg) + " after send"],
        ["2: ReplyTo EPR -> pipe advert", "implicit (reply delivered)"],
        ["3: request processed", fmt_ms(processing)],
        ["4-5: return pipe resolved", "provider learned consumer endpoint"],
        ["6: response down return pipe", fmt_ms(response_leg)],
        ["total round trip", fmt_ms(t_done - t_send)],
    ]
    print_table("F6  Fig.6 response process: provider-side decomposition", ["step", "timing"], rows)
    return request_leg, processing, response_leg, (t_done - t_send)


def test_fig6_decomposition_sums_to_round_trip():
    request_leg, processing, response_leg, total = run_fig6_experiment()
    assert abs((request_leg + processing + response_leg) - total) < 1e-6
    assert request_leg > 0          # one wire hop
    assert processing == 0.0        # dispatch is instantaneous in virtual time
    assert response_leg > 0         # one wire hop back


def test_fig6_provider_resolves_consumer_endpoint():
    # step 4: resolution uses the endpoint learned from the request frame.
    # A second consumer receives the handle by hand-off (it never ran
    # discovery), so the provider has never heard from it before.
    from repro.core import WSPeer
    from repro.core.binding import P2psBinding

    world = build_p2ps_world()
    consumer, provider = world.consumers[0], world.providers[0]
    handle = consumer.locate_one("Echo0")
    stranger = WSPeer(
        world.net.add_node("stranger"), P2psBinding(world.groups[0]), name="stranger"
    )
    # the stranger must know the provider's address to send at all...
    stranger.peer.resolver.learn(provider.peer.id, provider.node.id)
    # ...but the provider has never heard of the stranger
    assert not provider.peer.resolver.known(stranger.peer.id)
    assert stranger.invoke(handle, "echo", message="x") == "x"
    assert provider.peer.resolver.known(stranger.peer.id)


def test_fig6_reply_undeliverable_event_when_consumer_dies():
    world = build_p2ps_world()
    consumer, provider = world.consumers[0], world.providers[0]
    listener = RecordingListener()
    provider.add_listener(listener)
    handle = consumer.locate_one("Echo0")
    consumer.invoke_async(handle, "echo", {"message": "x"}, lambda r, e: None)
    # the consumer dies after the request leaves but before the reply
    consumer.node.go_down()
    world.net.run()
    # provider processed the request; the reply frame was lost silently
    assert listener.of_kind("request-received")
    assert world.net.trace is not None


def test_bench_response_process(benchmark):
    world = build_p2ps_world()
    consumer = world.consumers[0]
    handle = consumer.locate_one("Echo0")

    benchmark(lambda: consumer.invoke(handle, "echo", message="bench"))


if __name__ == "__main__":
    run_fig6_experiment()
