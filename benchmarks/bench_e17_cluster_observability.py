"""E17 — the cluster observability plane, measured end to end.

Four questions, one per section:

1. *One causal tree* (E17a): a replicated stateful call whose primary
   is killed at the request-received instant must still leave ONE
   stitched distributed trace — client root with >= 2 attempt children
   on different endpoints (the failover hop), the killed server's
   partial span, the surviving server's span, and the delta ships to
   the replicas nested under it — spanning >= 3 nodes, all under one
   wire trace id.
2. *Cost* (E17b): what does wire propagation add to a traced call?
   As in E10, the **gate** rides on direct cost — a propagated call's
   event stream replayed through ``SpanTracer.observe`` plus the
   header codec (child mint + encode on the client, decode + child on
   the server) timed in tight loops, composed with live-measured
   events-per-call and divided by the off-mode per-call baseline.
   The **cross-check** is the paired-batch A/B (rotated order, CPU
   seconds, GC parked, median of per-batch ratios) with a ``null``
   column showing the measurement's noise floor.
3. *Post-mortems* (E17c): the flight recorder must freeze a dump at
   EVERY crash-harness kill point of the E15 suite — before the delta
   ships, mid-ship, after ship but before the reply, and during the
   handoff itself (two kills, two dumps).
4. *Aggregation* (E17d): gossiped metric digests merge to exact
   cluster-wide ground truth; the SLO engine reads OK through a
   failover-saved run and CRITICAL through an exhausted one; and the
   flight/cluster/SLO payloads are all fetchable over the wire through
   the introspection service.

Results land in BENCH_E17.json.  ``E17_SMOKE=1`` shrinks the run.
"""

import gc
import json
import os
import time

from _workloads import build_standard_world, emit_json, print_table

from repro.core import ServiceHandle, WSPeer
from repro.core.binding import StandardBinding
from repro.core.events import RecordingListener
from repro.observability import MetricsRegistry, SpanTracer, set_metrics_enabled
from repro.observability.cluster import ClusterMetricsAgent
from repro.observability.flight import FlightRecorder
from repro.observability.slo import CRITICAL, OK, SloEngine, SloPolicy
from repro.observability.tracecontext import (
    FLAG_SAMPLED,
    TraceContext,
    decode,
    encode,
    new_span_id,
    new_trace_id,
    reset as reset_propagation,
    set_propagation,
)
from repro.simnet import CrashHarness, FixedLatency, Network
from repro.uddi import UddiRegistryNode
from repro.simnet.wiretap import payload_text

SMOKE = bool(os.environ.get("E17_SMOKE"))
BATCH_CALLS = 25                    # invokes per timed batch
N_BATCHES = 8 if SMOKE else 24      # paired batches (one per mode each)
N_WARMUP = 10                       # untimed cache/world warmers
N_REPLAY = 500 if SMOKE else 2000   # captured calls replayed through observe()
N_TIGHT = 5000 if SMOKE else 20000  # iterations for the codec cost loop
OVERHEAD_GATE = 0.05                # propagated tracing must cost <= 5%

N_PROVIDERS = 3
REQUEST_GAP = 0.05
ATTEMPT_TIMEOUT = 0.25


class CounterService:
    """Whole-object session state; every execution moves the value."""

    def __init__(self):
        self.value = 0

    def increment(self, by: int) -> int:
        self.value += by
        return self.value


class ReplWorld:
    """One replicated stateful service on N providers (E15 shape)."""

    def __init__(self):
        self.net = Network(latency=FixedLatency(0.002))
        self.registry = UddiRegistryNode(self.net.add_node("registry"))
        self.providers = []
        for i in range(N_PROVIDERS):
            peer = WSPeer(
                self.net.add_node(f"prov{i}"),
                StandardBinding(self.registry.endpoint),
            )
            peer.deploy(CounterService(), name="Svc")
            self.providers.append(peer)
        self.consumer = WSPeer(
            self.net.add_node("cons"), StandardBinding(self.registry.endpoint)
        )
        self.group = self.providers[0].enable_replication(
            "Svc", self.providers[1:], r=N_PROVIDERS - 1
        )
        self.executor = self.consumer.enable_failover()
        self.executor.attach_replication(self.group)
        self.handle = self.group.handle()

    def pace(self, dt=REQUEST_GAP):
        self.net.run(until=self.net.now + dt)

    def invoke(self, operation, args):
        return self.executor.invoke(
            self.handle, operation, args, timeout=ATTEMPT_TIMEOUT
        )


# ----------------------------------------------------------------------
# E17a — one stitched distributed trace through a failover hop
# ----------------------------------------------------------------------
def trace_failover_fanout() -> dict:
    reset_propagation()
    world = ReplWorld()
    tracer = SpanTracer(metrics=MetricsRegistry())
    tracer.install(*world.providers)
    world.consumer.enable_observability(tracer=tracer)  # propagation on
    harness = CrashHarness(world.net)
    try:
        world.invoke("increment", {"by": 1})  # session lives on the primary
        world.pace()
        primary = world.providers[0]
        harness.kill_on_event(
            primary, "request-received", primary.node.id,
            match=lambda e: e.detail.get("service") == "Svc",
        )
        world.invoke("increment", {"by": 1})
        world.pace(1.0)  # let the delta ships land

        # registry/anti-entropy traffic roots its own traces; pick the
        # hopped increment — the call root with attempts on >= 2 endpoints
        hopped = None
        for mid, root in tracer.traces():
            if (root.tags.get("operation") != "increment"
                    or root.tags.get("client") != "cons"):
                continue
            attempts = [c for c in root.children if c.kind == "attempt"]
            endpoints = {c.tags.get("endpoint") for c in attempts} - {None}
            if len(endpoints) >= 2:
                hopped = (mid, root, attempts, endpoints)
        assert hopped is not None, "the armed kill never induced a hop"
        mid, root, attempts, endpoints = hopped
        stitched = tracer.distributed_trace(root.tags["trace_id"])
        rendered = tracer.render(mid)
        nested = stitched["roots"][0]["calls"] if stitched["roots"] else []
        return {
            "message_id": mid,
            "trace_id": root.tags["trace_id"],
            "invocations": stitched["invocations"],
            "nodes": stitched["nodes"],
            "top_level_roots": len(stitched["roots"]),
            "nested_calls": len(nested),
            "attempt_children": len(attempts),
            "attempt_endpoints": sorted(endpoints),
            "status": root.status,
            "kills": harness.describe(),
            "rendered": rendered,
        }
    finally:
        tracer.uninstall()
        reset_propagation()


# ----------------------------------------------------------------------
# E17b — the cost of wire propagation on a traced call
# ----------------------------------------------------------------------
class _ModeWorld:
    """One persistent world per mode; (de)activated around each batch."""

    def __init__(self, mode: str):
        self.mode = mode
        world = build_standard_world(n_providers=1, n_consumers=1)
        self.consumer = world.consumers[0]
        self.handle = self.consumer.locate_one("Echo0")
        self.calls = 0
        self.tracer = None
        if mode == "traced":
            total = N_WARMUP + (N_BATCHES + 1) * BATCH_CALLS
            self.tracer = SpanTracer(
                max_spans=total + 1, metrics=MetricsRegistry()
            )
            self.tracer.attach(self.consumer, peer=self.consumer.name)
            self.tracer.attach(
                world.providers[0], peer=world.providers[0].name
            )

    def activate(self):
        if self.mode in ("off", "null"):
            set_metrics_enabled(False)
        else:  # traced: the header rides every request in this batch
            set_propagation(True)

    def deactivate(self):
        if self.mode in ("off", "null"):
            set_metrics_enabled(True)
        else:
            set_propagation(False)

    def run_batch(self, n: int) -> float:
        """*n* invokes under this mode; returns CPU seconds."""
        self.activate()
        try:
            start = time.process_time()
            for _ in range(n):
                self.calls += 1
                self.consumer.invoke(
                    self.handle, "echo", {"message": f"m{self.calls}"}
                )
            return time.process_time() - start
        finally:
            self.deactivate()


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _capture_propagated_call_events():
    """One real propagated invocation's correlated event stream."""
    world = build_standard_world(n_providers=1, n_consumers=1)
    consumer, provider = world.consumers[0], world.providers[0]
    handle = consumer.locate_one("Echo0")
    set_propagation(True)
    try:
        consumer.invoke(handle, "echo", {"message": "warm"})
        recorders = []
        for peer in (consumer, provider):
            recorder = RecordingListener()
            peer.add_listener(recorder)
            recorders.append((peer, recorder))
        consumer.invoke(handle, "echo", {"message": "captured"})
    finally:
        reset_propagation()
    tagged = []
    for peer, recorder in recorders:
        peer.remove_listener(recorder)
        tagged.extend((event, peer.name) for event in recorder.events)
    tagged.sort(key=lambda pair: pair[0].time)
    return [(e, p) for e, p in tagged if e.detail.get("message_id")]


def _measure_tracer_cost(sample) -> float:
    """Microseconds per observe(), replaying the captured stream with
    fresh MessageIDs so every replay builds and closes a real tree."""
    replays = []
    for i in range(N_REPLAY):
        mid = f"urn:uuid:e17-replay-{i}"
        for event, peer in sample:
            replays.append((
                event.__class__(event.kind, event.time + i, event.source,
                                {**event.detail, "message_id": mid}),
                peer,
            ))
    best = None
    for _ in range(3):
        tracer = SpanTracer(max_spans=N_REPLAY + 1, metrics=MetricsRegistry())
        observe = tracer.observe
        start = time.process_time()
        for event, peer in replays:
            observe(event, peer=peer)
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / len(replays) * 1e6


def _measure_header_codec_cost() -> float:
    """Microseconds per call of pure header-codec work: the client
    mints a child and encodes it; the server decodes the wire text and
    mints its own continuation child."""
    ctx = TraceContext(new_trace_id(), new_span_id(), FLAG_SAMPLED)
    best = None
    for _ in range(3):
        start = time.process_time()
        for _ in range(N_TIGHT):
            wire = encode(ctx.child())
            decode(wire).child()
        elapsed = time.process_time() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / N_TIGHT * 1e6


def measure_overhead() -> dict:
    reset_propagation()
    modes = ("off", "null", "traced")
    worlds = {mode: _ModeWorld(mode) for mode in modes}
    for world in worlds.values():
        world.run_batch(N_WARMUP)  # caches, code paths, allocator

    # end-to-end cross-check: paired batches, median of per-batch ratios
    ratios = {"null": [], "traced": []}
    totals = {mode: 0.0 for mode in modes}
    off_us_per_call = []
    gc.collect()
    gc.disable()  # collector cycles must not land on one unlucky batch
    try:
        for batch in range(N_BATCHES):
            times = {}
            for i in range(len(modes)):  # rotated: order bias hits every mode
                mode = modes[(batch + i) % len(modes)]
                times[mode] = worlds[mode].run_batch(BATCH_CALLS)
            for mode in ratios:
                ratios[mode].append(times[mode] / times["off"])
            for mode in modes:
                totals[mode] += times[mode]
            off_us_per_call.append(times["off"] / BATCH_CALLS * 1e6)
    finally:
        gc.enable()
    tracer = worlds["traced"].tracer
    assert len(tracer) == worlds["traced"].calls, (
        f"traced mode lost spans: {len(tracer)} != {worlds['traced'].calls}"
    )
    assert len(tracer.trace_ids()) > 0, "propagation left no wire trace ids"

    # direct cost: the gate's numerator, measured where the noise isn't
    baseline_us = _median(off_us_per_call)
    events_per_call = tracer.events_seen / worlds["traced"].calls
    per_event_us = _measure_tracer_cost(_capture_propagated_call_events())
    per_header_us = _measure_header_codec_cost()
    traced_us = per_event_us * events_per_call + per_header_us
    reset_propagation()

    return {
        "baseline_us_per_call": baseline_us,
        "traced": {
            "per_event_us": per_event_us,
            "events_per_call": events_per_call,
            "header_codec_us_per_call": per_header_us,
            "us_per_call": traced_us,
            "overhead": traced_us / baseline_us,
        },
        "end_to_end_check": {
            "batch_calls": BATCH_CALLS,
            "batches": N_BATCHES,
            "seconds": {mode: totals[mode] for mode in modes},
            "median_ratio": {
                mode: _median(values) for mode, values in ratios.items()
            },
        },
        "gate": OVERHEAD_GATE,
    }


# ----------------------------------------------------------------------
# E17c — a flight-recorder dump at every crash kill point
# ----------------------------------------------------------------------
CRASH_POINTS = ["before_ship", "during_ship", "after_ship", "during_handoff"]


def _arm(world, harness, point):
    """Install the E15 crash for *point*, to fire on the next mutation."""
    primary = world.providers[0]
    svc = lambda e: e.detail.get("service") == "Svc"  # noqa: E731
    if point == "before_ship":
        harness.kill_on_event(
            primary, "request-received", primary.node.id, match=svc
        )
    elif point == "during_ship":
        behind = world.group.members[1]
        harness.drop_next(
            lambda f: f.dst == behind.node_id and "apply_delta" in payload_text(f),
            count=1,
            label="lose one delta ship",
        )
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True, match=svc
        )
    elif point == "after_ship":
        harness.drop_replies_from(primary.node.id, count=1)
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True, match=svc
        )
    elif point == "during_handoff":
        harness.drop_replies_from(primary.node.id, count=1)
        harness.kill_on_event(
            primary, "response-sent", primary.node.id, defer=True, match=svc
        )
        target = world.providers[1]
        harness.kill_on_event(
            target, "request-received", target.node.id, match=svc,
            label="kill first handoff target",
        )
    else:
        raise ValueError(point)


def _drive(world, n_calls):
    answered = 0
    for _ in range(n_calls):
        try:
            world.invoke("increment", {"by": 1})
            answered += 1
        except Exception:  # noqa: BLE001 - unavailability is expected here
            pass
        world.pace()
    return answered


def measure_flight_at_crash_point(point) -> dict:
    world = ReplWorld()
    harness = CrashHarness(world.net)
    recorder = FlightRecorder(metrics=MetricsRegistry())
    recorder.install(world.consumer, *world.providers)
    recorder.attach_harness(harness)

    answered = _drive(world, 2)  # warm-up
    _arm(world, harness, point)
    answered += _drive(world, 6)
    world.pace(2.0)

    kills = harness.kills
    kill_dumps = [d for d in recorder.dumps if d["reason"] == "node-killed"]
    return {
        "answered": answered,
        "kills": len(kills),
        "kill_dumps": len(kill_dumps),
        "killed_nodes": sorted({a.node for a in kills}),
        "dumped_nodes": sorted({
            d["events"][-1].get("node") for d in kill_dumps if d["events"]
        }),
        "last_dump_events": len(kill_dumps[-1]["events"]) if kill_dumps else 0,
        "ring_events_seen": recorder.events_seen,
    }


# ----------------------------------------------------------------------
# E17d — cluster aggregation ground truth, SLO health, wire fetch
# ----------------------------------------------------------------------
def measure_cluster_aggregation() -> dict:
    from repro.discovery.gossip import GossipNode

    net = Network(latency=FixedLatency(0.002))
    agents, gossips = [], []
    truth_calls = 0
    for i, name in enumerate(("ga", "gb", "gc")):
        gossip = GossipNode(net.add_node(name), fanout=2, hops=3)
        registry = MetricsRegistry()
        registry.inc("calls", i + 1)
        truth_calls += i + 1
        registry.observe("latency", 0.001 * (i + 1))
        agent = ClusterMetricsAgent(
            registry=registry, gossip=gossip, origin=name,
            clock=lambda: net.now,
        )
        gossips.append(gossip)
        agents.append(agent)
    for g in gossips:
        g.link(*[other.node.id for other in gossips if other is not g])
    for agent in agents:
        agent.publish()
    net.run()

    merged = [agent.cluster_snapshot() for agent in agents]
    return {
        "truth_calls": truth_calls,
        "merged_calls": [m["counters"]["calls"] for m in merged],
        "merged_latency_count": [
            m["histograms"]["latency"]["count"] for m in merged
        ],
        "nodes_seen": [m["nodes"] for m in merged],
        "every_node_agrees": all(
            m["counters"]["calls"] == truth_calls
            and m["nodes"] == ["ga", "gb", "gc"]
            and m["histograms"]["latency"]["count"] == 3
            for m in merged
        ),
    }


def measure_slo_health() -> dict:
    # a failover-saved run reads OK: 6 good, 0 bad
    net = Network(latency=FixedLatency(0.002))
    registry_node = UddiRegistryNode(net.add_node("registry"))
    providers, endpoints, wsdl = [], [], None
    for i in range(N_PROVIDERS):
        peer = WSPeer(
            net.add_node(f"prov{i}"), StandardBinding(registry_node.endpoint)
        )
        peer.deploy(CounterService(), name="Svc")
        providers.append(peer)
        local = peer.local_handle("Svc")
        wsdl = wsdl or local.wsdl
        endpoints.extend(local.endpoints)
    consumer = WSPeer(
        net.add_node("cons"), StandardBinding(registry_node.endpoint)
    )
    handle = ServiceHandle("Svc", wsdl, endpoints, source="merged")
    engine = consumer.enable_slo()
    executor = consumer.enable_failover()
    for _ in range(5):
        executor.invoke(handle, "increment", {"by": 1}, timeout=1.0)
    providers[0].node.go_down()
    executor.invoke(handle, "increment", {"by": 1}, timeout=1.0)
    saved = engine.report(net.now + 60.0)["Svc"]

    # an exhausted run burns budget fast enough to read CRITICAL
    from repro.core.events import ClientMessageEvent

    hot = SloEngine(
        policy=SloPolicy(availability_target=0.9, fast_burn=2.0),
        metrics=MetricsRegistry(),
    )
    for i in range(10):
        hot.observe(ClientMessageEvent(
            "request-sent", 1.0 + i * 0.01, "cons",
            {"service": "Svc", "message_id": f"m{i}", "operation": "op"}))
        hot.observe(ClientMessageEvent(
            "failover-exhausted", 1.5 + i * 0.01, "cons",
            {"service": "Svc", "message_id": f"m{i}", "reason": "down"}))
    burning = hot.report(2.0)["Svc"]

    return {
        "failover_saved": {
            "good": saved["good"], "bad": saved["bad"],
            "status": saved["status"],
            "burn_short": saved["burn_short"],
        },
        "exhausted": {
            "bad": burning["bad"], "status": burning["status"],
            "burn_short": burning["burn_short"],
            "transitions": len(burning["transitions"]),
        },
    }


def fetch_plane_over_wire() -> dict:
    """Every E17 payload served by the introspection service itself."""
    reset_propagation()
    world = build_standard_world(n_providers=1, n_consumers=1)
    consumer, provider = world.consumers[0], world.providers[0]
    tracer = SpanTracer(metrics=MetricsRegistry())
    provider.enable_observability(tracer=tracer)
    consumer.enable_observability(tracer=tracer)
    provider.enable_flight_recorder()
    provider.enable_slo()
    agent = provider.enable_cluster_metrics(registry=MetricsRegistry())
    agent.registry.inc("calls", 4)
    try:
        handle = consumer.locate_one("Echo0")
        consumer.invoke(handle, "echo", {"message": "traced"})
        provider.host_introspection()
        provider.publish("Introspection")
        intro = consumer.locate_one("Introspection")

        traced_mid = tracer.message_ids[0]
        trace = json.loads(
            consumer.invoke(intro, "GetTrace", {"message_id": traced_mid}))
        dist = json.loads(consumer.invoke(
            intro, "GetDistributedTrace",
            {"trace_id": tracer.trace_ids()[0]}))
        flight = json.loads(consumer.invoke(intro, "GetFlightRecord"))
        cluster = json.loads(consumer.invoke(intro, "GetClusterMetrics"))
        slo = json.loads(consumer.invoke(intro, "GetSloStatus"))
        missing = json.loads(consumer.invoke(
            intro, "GetTrace", {"message_id": "urn:uuid:no-such"}))
        return {
            "trace_ok": "error" not in trace,
            "distributed_invocations": dist.get("invocations", 0),
            "flight_schema": flight.get("schema"),
            "flight_events": len(flight.get("events", [])),
            "cluster_calls": cluster.get("counters", {}).get("calls"),
            "slo_schema": slo.get("schema"),
            "error_shape_ok": (
                missing.get("error", {}).get("code") == "trace-not-found"
                and bool(missing.get("error", {}).get("message"))
            ),
        }
    finally:
        tracer.uninstall()
        reset_propagation()


# ----------------------------------------------------------------------
def run_e17_experiment():
    results = {}

    fanout = trace_failover_fanout()
    results["distributed_trace"] = {
        k: v for k, v in fanout.items() if k != "rendered"
    }
    print(f"\n== E17a  one stitched distributed trace "
          f"({fanout['invocations']} invocations over "
          f"{len(fanout['nodes'])} nodes, trace {fanout['trace_id'][:8]}…)")
    print(fanout["rendered"])

    overhead = measure_overhead()
    results["overhead"] = overhead
    e2e = overhead["end_to_end_check"]["median_ratio"]
    print_table(
        f"E17b  propagated tracing cost per invocation "
        f"(baseline {overhead['baseline_us_per_call']:.0f}us/call)",
        ["mode", "us/call added", "overhead", "e2e check"],
        [
            ["off", "-", "-", "-"],
            ["null (off vs off)", "-", "-",
             f"{(e2e['null'] - 1) * 100:+.1f}%"],
            ["traced + header", f"{overhead['traced']['us_per_call']:.1f}",
             f"{overhead['traced']['overhead'] * 100:+.1f}%",
             f"{(e2e['traced'] - 1) * 100:+.1f}%"],
        ],
        note=f"gate: traced <= {OVERHEAD_GATE * 100:.0f}% over off, from "
        f"direct cost ({overhead['traced']['per_event_us']:.2f}us x "
        f"{overhead['traced']['events_per_call']:.1f} events/call + "
        f"{overhead['traced']['header_codec_us_per_call']:.2f}us header "
        "codec); the null column is the e2e method's noise floor",
    )

    results["flight_dumps"] = {}
    rows = []
    for point in CRASH_POINTS:
        metrics = measure_flight_at_crash_point(point)
        results["flight_dumps"][point] = metrics
        rows.append([
            point,
            metrics["kills"],
            metrics["kill_dumps"],
            ",".join(metrics["killed_nodes"]),
            metrics["last_dump_events"],
        ])
    print_table(
        "E17c  flight-recorder dumps at the E15 crash points",
        ["crash point", "kills", "dumps", "killed", "events in dump"],
        rows,
        note="every harness kill freezes a post-mortem dump of the ring — "
        "the black box survives the crash it describes",
    )

    cluster = measure_cluster_aggregation()
    slo = measure_slo_health()
    wire = fetch_plane_over_wire()
    results["cluster_aggregation"] = cluster
    results["slo"] = slo
    results["wire_fetch"] = wire
    print_table(
        "E17d  cluster aggregation + SLO + wire fetch",
        ["check", "result"],
        [
            ["gossiped digests merge to ground truth",
             "yes" if cluster["every_node_agrees"] else "NO"],
            ["cluster calls (truth {})".format(cluster["truth_calls"]),
             str(cluster["merged_calls"])],
            ["SLO through failover",
             f"{slo['failover_saved']['status']} "
             f"({slo['failover_saved']['good']} good, "
             f"{slo['failover_saved']['bad']} bad)"],
            ["SLO when exhausted",
             f"{slo['exhausted']['status']} "
             f"(burn {slo['exhausted']['burn_short']:.1f}x)"],
            ["introspection serves the plane",
             "yes" if (wire["trace_ok"] and wire["error_shape_ok"]
                       and wire["flight_schema"]) else "NO"],
        ],
        note="digests ride the E12 gossip overlay; health and post-mortems "
        "are fetched over the very binding they observe",
    )

    emit_json("BENCH_E17.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E17_SMOKE=1)
# ----------------------------------------------------------------------
def test_e17_one_stitched_trace_spans_the_cluster():
    fanout = trace_failover_fanout()
    # client -> failover hop -> replica fan-out, all under one trace id
    assert fanout["invocations"] >= 3
    assert len(fanout["nodes"]) >= 3
    assert fanout["top_level_roots"] == 1
    assert fanout["nested_calls"] >= 1  # delta ships nest under the call
    assert fanout["attempt_children"] >= 2
    assert len(fanout["attempt_endpoints"]) >= 2
    assert fanout["status"] == "ok"


def test_e17_propagation_overhead_within_gate():
    overhead = measure_overhead()
    assert overhead["traced"]["overhead"] <= OVERHEAD_GATE
    # the tracer did real work while measured: every call left a tree
    assert overhead["traced"]["events_per_call"] >= 4


def test_e17_flight_dump_at_every_kill_point():
    for point in CRASH_POINTS:
        metrics = measure_flight_at_crash_point(point)
        assert metrics["kills"] >= 1, point
        assert metrics["kill_dumps"] == metrics["kills"], point
        assert metrics["killed_nodes"] == metrics["dumped_nodes"], point
        assert metrics["last_dump_events"] > 1, point


def test_e17_cluster_aggregation_is_exact():
    cluster = measure_cluster_aggregation()
    assert cluster["every_node_agrees"]


def test_e17_slo_reads_the_cluster_right():
    slo = measure_slo_health()
    assert slo["failover_saved"]["status"] == OK
    assert slo["failover_saved"]["good"] == 6
    assert slo["failover_saved"]["bad"] == 0
    assert slo["exhausted"]["status"] == CRITICAL
    assert slo["exhausted"]["transitions"] >= 1


def test_e17_plane_is_fetchable_over_the_wire():
    wire = fetch_plane_over_wire()
    assert wire["trace_ok"]
    assert wire["distributed_invocations"] >= 1
    assert wire["flight_schema"] == "repro.flight/1"
    assert wire["slo_schema"] == "repro.slo/1"
    assert wire["cluster_calls"] == 4
    assert wire["error_shape_ok"]


if __name__ == "__main__":
    run_e17_experiment()
