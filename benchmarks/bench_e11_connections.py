"""E11 — persistent connections: keep-alive, pipelining, bounded queues.

The paper notes that HTTP "maintains an open connection for return
messages" (§III); E11 measures what that connection is worth once the
transport actually keeps it open.  Three experiments:

1. *keep-alive* — a closed-loop many-client workload against one
   provider.  Both modes are connection-oriented; the baseline tears
   its connection down after every request (``max_requests_per_connection=1``)
   and so pays the CONNECT/ACCEPT handshake each time, while the pooled
   mode reuses one warm connection per client.  Reported: virtual-time
   makespan, throughput, and connections opened.
2. *pipelining* — one client, size-dependent latency
   (``FixedLatency(per_byte=...)``) so large responses genuinely arrive
   after smaller later ones.  Pipelined mode must deliver every response
   in request order with ZERO misordering while the wire demonstrably
   reordered frames; makespan is compared against the non-pipelined
   (serialised) connection.
3. *bounded queue* — a burst into a server whose per-connection
   admission bucket is small: overflow must be answered immediately
   with 503 + Retry-After, never left hanging.

Results land in BENCH_E11.json.  ``E11_SMOKE=1`` shrinks the run for CI.
"""

import os

from _workloads import emit_json, fmt_ms, print_table

from repro.simnet import FixedLatency, Network
from repro.transport import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    PoolConfig,
)

SMOKE = bool(os.environ.get("E11_SMOKE"))
N_CLIENTS = 4 if SMOKE else 8
REQUESTS_PER_CLIENT = 10 if SMOKE else 50
PIPELINE_DEPTH = 8 if SMOKE else 24
BURST = 12
QUEUE_CAPACITY = 4.0
HOP_LATENCY = 0.005


def build_world(n_clients, latency=None):
    net = Network(latency=latency or FixedLatency(HOP_LATENCY))
    server_node = net.add_node("server")
    for i in range(n_clients):
        net.add_node(f"client{i}")
    server = HttpServer(server_node, 80)
    server.add_route("/echo", lambda req: HttpResponse(200, req.body))
    server.start()
    return net, server


# ----------------------------------------------------------------------
# E11a — closed-loop keep-alive throughput
# ----------------------------------------------------------------------
def measure_keep_alive(mode):
    config = (
        PoolConfig(max_requests_per_connection=1)
        if mode == "per-request"
        else PoolConfig()
    )
    net, server = build_world(N_CLIENTS)
    clients = [
        HttpClient(net.get_node(f"client{i}"), pool=config) for i in range(N_CLIENTS)
    ]
    done = {"count": 0, "t_last": 0.0, "errors": 0}
    total = N_CLIENTS * REQUESTS_PER_CLIENT

    def drive(client, remaining):
        def on_response(resp, err):
            if err is not None or not resp.ok:
                done["errors"] += 1
            done["count"] += 1
            done["t_last"] = net.now
            if remaining > 1:
                drive(client, remaining - 1)

        client.request_async(
            "server", 80, HttpRequest("POST", "/echo", "payload"), on_response
        )

    for client in clients:
        drive(client, REQUESTS_PER_CLIENT)
    net.run()

    assert done["count"] == total and done["errors"] == 0
    makespan = done["t_last"]
    return {
        "clients": N_CLIENTS,
        "requests": total,
        "makespan_s": makespan,
        "throughput_rps": total / makespan,
        "connections_opened": sum(c.pool.opened for c in clients),
        "connections_reused": sum(c.pool.reused for c in clients),
        "requests_served": server.requests_served,
    }


# ----------------------------------------------------------------------
# E11b — pipelining with in-order delivery under wire reordering
# ----------------------------------------------------------------------
def measure_pipelining_makespans():
    # per-byte latency: a 600-char response travels 0.3s longer than a
    # 1-char one, so later small responses overtake earlier large ones.
    # Makespan is the last-response timestamp, not net.now after run()
    # (idle timers would inflate the latter).
    results = {}
    for pipeline in (False, True):
        net, _ = build_world(
            1, latency=FixedLatency(HOP_LATENCY, per_byte=0.0005)
        )
        # max_connections=1 keeps the comparison honest: without it the
        # non-pipelined pool opens parallel connections (HTTP/1.1
        # browser-style) instead of serialising on one
        client = HttpClient(
            net.get_node("client0"),
            pool=PoolConfig(pipeline=pipeline, max_connections=1, idle_timeout=1e9),
        )
        bodies = [("x" * 600) if i % 3 == 0 else "s" for i in range(PIPELINE_DEPTH)]
        delivered = []
        last = {"t": 0.0}

        def cb_for(i, last=last, delivered=delivered, net=net):
            def cb(resp, err):
                delivered.append((i, resp, err))
                last["t"] = net.now

            return cb

        for i, body in enumerate(bodies):
            client.request_async(
                "server", 80, HttpRequest("POST", "/echo", body), cb_for(i),
                timeout=600,
            )
        conns = client.pool.connections()
        net.run(until=net.now + 500)

        assert len(delivered) == PIPELINE_DEPTH
        misordered = sum(1 for pos, (i, _, _) in enumerate(delivered) if i != pos)
        mismatched = sum(
            1 for i, resp, err in delivered
            if err is not None or resp.body != bodies[i]
        )
        results["pipelined" if pipeline else "serial"] = {
            "requests": PIPELINE_DEPTH,
            "makespan_s": last["t"],
            "misordered_responses": misordered,
            "mismatched_responses": mismatched,
            "wire_reorderings": sum(c.out_of_order for c in conns),
            "connections_opened": client.pool.opened,
        }
    return results


# ----------------------------------------------------------------------
# E11c — bounded per-connection queue answers overflow with busy
# ----------------------------------------------------------------------
def measure_queue_overflow():
    net, server = build_world(1)
    server.max_pending_per_connection = QUEUE_CAPACITY
    server.conn_drain_rate = 1.0  # virtually no draining within the burst
    client = HttpClient(net.get_node("client0"), pool=PoolConfig(pipeline=True))
    results = []
    for i in range(BURST):
        client.request_async(
            "server", 80, HttpRequest("POST", "/echo", f"r{i}"),
            lambda resp, err: results.append((resp, err)),
        )
    net.run()

    assert len(results) == BURST  # nothing hangs: every request answered
    served = [r for r, e in results if e is None and r.status == 200]
    shed = [r for r, e in results if e is None and r.status == 503]
    assert len(served) + len(shed) == BURST
    retry_hints = [float(r.headers["Retry-After"]) for r in shed]
    return {
        "burst": BURST,
        "queue_capacity": QUEUE_CAPACITY,
        "served": len(served),
        "shed": len(shed),
        "retry_after_min_s": min(retry_hints) if retry_hints else None,
        "retry_after_max_s": max(retry_hints) if retry_hints else None,
    }


# ----------------------------------------------------------------------
def run_e11_experiment():
    results = {}

    rows = []
    for mode in ("per-request", "pooled"):
        metrics = measure_keep_alive(mode)
        results.setdefault("keep_alive", {})[mode] = metrics
        rows.append([
            mode,
            metrics["requests"],
            fmt_ms(metrics["makespan_s"]),
            f"{metrics['throughput_rps']:.0f}/s",
            metrics["connections_opened"],
            metrics["connections_reused"],
        ])
    print_table(
        f"E11a closed-loop keep-alive ({N_CLIENTS} clients x "
        f"{REQUESTS_PER_CLIENT} requests, {HOP_LATENCY * 1000:g}ms hops)",
        ["mode", "requests", "makespan", "throughput", "opened", "reused"],
        rows,
        note="both modes are connection-oriented; per-request tears down "
        "after each call and re-pays the CONNECT/ACCEPT handshake",
    )

    pipe = measure_pipelining_makespans()
    results["pipelining"] = pipe
    print_table(
        f"E11b pipelining under size-dependent latency "
        f"({PIPELINE_DEPTH} requests, 1 connection)",
        ["mode", "makespan", "wire reorderings", "misordered", "mismatched"],
        [
            [
                name,
                fmt_ms(m["makespan_s"]),
                m["wire_reorderings"],
                m["misordered_responses"],
                m["mismatched_responses"],
            ]
            for name, m in pipe.items()
        ],
        note="large responses physically arrive after smaller later ones; "
        "the reorder buffer still delivers strictly in request order",
    )

    overflow = measure_queue_overflow()
    results["queue_overflow"] = overflow
    print_table(
        f"E11c bounded per-connection queue (burst {BURST}, "
        f"capacity {QUEUE_CAPACITY:g})",
        ["burst", "served", "shed (503)", "Retry-After"],
        [[
            overflow["burst"], overflow["served"], overflow["shed"],
            f"{overflow['retry_after_min_s']:.2f}-"
            f"{overflow['retry_after_max_s']:.2f}s"
            if overflow["shed"] else "-",
        ]],
        note="overflow is answered immediately with 503 + Retry-After and "
        "feeds supervision's busy-backoff, never left hanging",
    )

    emit_json("BENCH_E11.json", results)
    return results


# ----------------------------------------------------------------------
# assertions (run under pytest; the CI smoke uses E11_SMOKE=1)
# ----------------------------------------------------------------------
def test_e11_pooled_beats_per_request_throughput():
    per_request = measure_keep_alive("per-request")
    pooled = measure_keep_alive("pooled")
    assert pooled["throughput_rps"] > per_request["throughput_rps"]
    assert pooled["connections_opened"] == N_CLIENTS
    assert per_request["connections_opened"] == N_CLIENTS * REQUESTS_PER_CLIENT


def test_e11_pipelining_preserves_order_and_wins_makespan():
    pipe = measure_pipelining_makespans()
    assert pipe["pipelined"]["wire_reorderings"] > 0
    assert pipe["pipelined"]["misordered_responses"] == 0
    assert pipe["pipelined"]["mismatched_responses"] == 0
    assert pipe["serial"]["misordered_responses"] == 0
    assert pipe["pipelined"]["makespan_s"] < pipe["serial"]["makespan_s"]
    assert pipe["pipelined"]["connections_opened"] == 1


def test_e11_queue_overflow_answers_busy():
    overflow = measure_queue_overflow()
    assert overflow["shed"] > 0
    assert overflow["served"] == int(QUEUE_CAPACITY)
    assert overflow["retry_after_min_s"] > 0


if __name__ == "__main__":
    run_e11_experiment()
