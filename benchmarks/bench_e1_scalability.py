"""E1 — §II claim: client/server discovery creates server bottlenecks.

"The client/server nature of these networks potentially inhibits their
scalability because the number of server entities does not grow
proportionately with the overall number of nodes.  This creates
communication bottlenecks and increases the stress on the servers."

Experiment: grow the network (N peers, each publishing one service and
issuing Q discovery queries).  Standard binding: every publish and
every locate hits the single UDDI node.  P2PS binding: queries are
answered from group caches spread over all peers.  Measured: frames
handled by the busiest node, normalised per peer.  Expected shape: the
registry's load grows linearly with N (unbounded hot spot) while the
per-peer load in P2PS stays flat.
"""

from _workloads import EchoService, build_p2ps_world, build_standard_world, fmt_ms, print_table

SIZES = [4, 8, 16, 32]
QUERIES_PER_PEER = 3


def standard_load(n_peers: int) -> tuple[int, float]:
    """(registry frames handled, busiest-node share of all traffic)."""
    world = build_standard_world(n_providers=n_peers, n_consumers=0)
    # each provider peer also acts as consumer: locate a random service
    for i, peer in enumerate(world.providers):
        for q in range(QUERIES_PER_PEER):
            target = f"Echo{(i + q + 1) % n_peers}"
            peer.locate_one(target)
    registry = world.net.stats.get("registry")
    return registry, registry / max(1, world.net.stats.total())


def p2ps_load(n_peers: int) -> tuple[int, float]:
    """(busiest peer's frames handled, busiest-node share of all traffic)."""
    world = build_p2ps_world(n_providers=n_peers, n_consumers=0)
    for i, peer in enumerate(world.providers):
        for q in range(QUERIES_PER_PEER):
            target = f"Echo{(i + q + 1) % n_peers}"
            peer.locate_one(target)
    world.net.run()
    return world.net.stats.max(), world.net.stats.max() / max(1, world.net.stats.total())


def run_e1_experiment(sizes=SIZES):
    rows = []
    registry_loads, p2ps_loads = [], []
    for n in sizes:
        registry_frames, registry_share = standard_load(n)
        busiest_peer_frames, busiest_share = p2ps_load(n)
        registry_loads.append(registry_frames)
        p2ps_loads.append(busiest_peer_frames)
        rows.append(
            [
                n,
                registry_frames,
                f"{registry_share * 100:.0f}%",
                busiest_peer_frames,
                f"{busiest_share * 100:.0f}%",
            ]
        )
    print_table(
        "E1  discovery load vs network size (Q=3 queries/peer)",
        ["peers", "registry frames", "registry share",
         "busiest p2ps peer", "busiest p2ps share"],
        rows,
        note="shape: the registry is a growing hot spot absorbing a constant "
        "~half of ALL network traffic regardless of N; in P2PS the busiest "
        "peer's share falls toward 1/N — load spreads with the network",
    )
    return registry_loads, p2ps_loads, sizes


def test_e1_registry_load_grows_linearly():
    registry_loads, _, sizes = run_e1_experiment([4, 8, 16])
    # doubling peers at least doubles registry traffic
    assert registry_loads[1] >= 1.8 * registry_loads[0]
    assert registry_loads[2] >= 1.8 * registry_loads[1]


def test_e1_p2ps_per_peer_load_bounded():
    _, p2ps_loads, sizes = run_e1_experiment([4, 8, 16])
    # busiest-peer load normalised by N must not grow: flat or shrinking
    per_peer = [load / n for load, n in zip(p2ps_loads, sizes)]
    assert per_peer[2] <= per_peer[0] * 1.5


def test_e1_registry_is_hotspot_p2ps_is_not():
    world_std = build_standard_world(n_providers=8, n_consumers=0)
    for i, peer in enumerate(world_std.providers):
        peer.locate_one(f"Echo{(i + 1) % 8}")
    std_counts = world_std.net.stats.as_dict()
    # the registry is the single busiest node by a wide margin
    registry = std_counts.pop("registry")
    assert registry > 3 * max(std_counts.values())

    world_p2p = build_p2ps_world(n_providers=8, n_consumers=0)
    for i, peer in enumerate(world_p2p.providers):
        peer.locate_one(f"Echo{(i + 1) % 8}")
    world_p2p.net.run()
    p2p_counts = world_p2p.net.stats.as_dict()
    busiest = max(p2p_counts.values())
    # no single peer dominates: busiest < half of total
    assert busiest < 0.5 * sum(p2p_counts.values())


def test_bench_standard_discovery_at_scale(benchmark):
    benchmark(lambda: standard_load(8))


def test_bench_p2ps_discovery_at_scale(benchmark):
    benchmark(lambda: p2ps_load(8))


if __name__ == "__main__":
    run_e1_experiment()


# ----------------------------------------------------------------------
# E1b: server saturation under concurrent load ("stress on the servers")
# ----------------------------------------------------------------------

SERVICE_TIME = 0.005  # per-request processing cost at every node


def standard_burst(n_peers: int) -> float:
    """All peers query the registry simultaneously; virtual completion
    time of the whole burst (the registry serialises the work)."""
    world = build_standard_world(n_providers=n_peers, n_consumers=0)
    world.net.get_node("registry").service_time = SERVICE_TIME

    from repro.soap import SoapEnvelope
    from repro.soap.rpc import build_rpc_request
    from repro.transport.http import HttpClient, HttpRequest
    from repro.uddi.service import UDDI_NAMESPACE, UDDI_PATH

    outstanding = []
    start = world.net.now
    for i, peer in enumerate(world.providers):
        request = build_rpc_request(
            UDDI_NAMESPACE, "find_service", {"name_pattern": f"Echo{i}"}
        )
        box = {}
        outstanding.append(box)
        HttpClient(peer.node).request_async(
            "registry", 80,
            HttpRequest("POST", UDDI_PATH, request.to_wire()),
            lambda resp, err, box=box: box.update(done=True),
            timeout=60.0,
        )
    world.net.kernel.pump_until(lambda: all(b.get("done") for b in outstanding))
    return world.net.now - start


def p2ps_burst(n_peers: int, warm: bool = True) -> float:
    """All peers issue a discovery simultaneously.

    With warm caches (the steady state after adverts have spread) each
    query is answered locally — no server exists to queue behind.  A
    cold flood instead costs every node O(N) processing, Gnutella's
    classic scaling weakness, measurable with warm=False.
    """
    world = build_p2ps_world(n_providers=n_peers, n_consumers=0)
    if warm:
        # steady state: republishing once all peers exist spreads every
        # advert to every cache
        for wspeer in world.providers:
            advert = wspeer.server.deployer.advert_for(f"Echo{world.providers.index(wspeer)}")
            wspeer.peer.publish(advert)
        world.net.run()
    for node_id in world.net.node_ids:
        world.net.get_node(node_id).service_time = SERVICE_TIME

    from repro.p2ps.query import AdvertQuery

    handles = []
    start = world.net.now
    for i, peer in enumerate(world.providers):
        target = f"Echo{(i + 1) % n_peers}"
        handles.append(peer.peer.discover(AdvertQuery("service", target)))
    world.net.kernel.pump_until(
        lambda: all(len(h.results) >= 1 for h in handles), timeout=120.0
    )
    return world.net.now - start


def run_e1b_experiment(sizes=(4, 8, 16)):
    rows = []
    for n in sizes:
        t_std = standard_burst(n)
        t_warm = p2ps_burst(n, warm=True)
        t_cold = p2ps_burst(n, warm=False)
        rows.append([n, fmt_ms(t_std), fmt_ms(t_warm), fmt_ms(t_cold)])
    print_table(
        f"E1b  concurrent query burst (service time {SERVICE_TIME * 1000:.0f}ms/request)",
        ["peers", "registry burst", "p2ps warm caches", "p2ps cold flood"],
        rows,
        note="the registry serialises every burst (linear in N, clients "
        "queue); warm P2PS caches answer locally in ~zero time; a cold "
        "flood also costs O(N) per node — Gnutella's known weakness, which "
        "caching is precisely the cure for",
    )
    return rows


def test_e1b_registry_burst_grows_linearly():
    t4 = standard_burst(4)
    t16 = standard_burst(16)
    # 4x the peers: (16*s + rtt)/(4*s + rtt) -> clearly superlinear in
    # the saturated regime, bounded below by 2.5x here
    assert t16 >= 2.5 * t4


def test_e1b_warm_p2ps_burst_is_local():
    # cached discovery needs no wire at all: effectively instantaneous
    assert p2ps_burst(16, warm=True) < 0.001


def test_e1b_cold_flood_is_also_linear():
    # honesty check: a cold flood shares the registry's O(N) shape —
    # the win comes from caching, not from magic
    t4 = p2ps_burst(4, warm=False)
    t16 = p2ps_burst(16, warm=False)
    assert t16 > 2 * t4


def test_e1b_p2ps_beats_registry_at_scale():
    assert standard_burst(16) > 10 * max(p2ps_burst(16, warm=True), 1e-9)
