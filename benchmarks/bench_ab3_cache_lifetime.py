"""AB3 — ablation: advert cache lifetime vs staleness under churn.

Advert caches make P2PS discovery cheap and resilient (E1/E2), but an
entry outliving its publisher points consumers at a dead peer.  The
ablation: a provider publishes, then dies; sweep the cache lifetime and
measure whether discovery still returns the dead service (staleness)
against how long a *living* service stays discoverable without
republish.
"""

from _workloads import EchoService, print_table

from repro.p2ps import AdvertQuery, Peer, PeerGroup
from repro.simnet import FixedLatency, Network


def staleness_probe(lifetime: float, probe_delay: float) -> tuple[bool, bool]:
    """(dead service still returned, live service still returned) when
    probed *probe_delay* seconds after publication."""
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("g")
    live = Peer(net.add_node("live"), name="live", cache_lifetime=lifetime)
    dead = Peer(net.add_node("dead"), name="dead", cache_lifetime=lifetime)
    observer = Peer(net.add_node("obs"), name="obs", cache_lifetime=lifetime)
    for peer in (live, dead, observer):
        peer.join(group)
    live.create_input_pipe("invoke", "LiveSvc")
    live.publish_service("LiveSvc", ["invoke"])
    dead.create_input_pipe("invoke", "DeadSvc")
    dead.publish_service("DeadSvc", ["invoke"])
    net.run()
    dead.node.go_down()

    net.kernel.schedule(probe_delay, lambda: None)
    net.run()

    dead_found = bool(observer.discover(AdvertQuery("service", "DeadSvc")).wait_for(1, timeout=1.0))
    live_found = bool(observer.discover(AdvertQuery("service", "LiveSvc")).wait_for(1, timeout=1.0))
    return dead_found, live_found


def run_ab3_experiment():
    rows = []
    for lifetime in (5.0, 60.0, 600.0):
        for probe_delay in (2.0, 30.0, 120.0):
            dead_found, live_found = staleness_probe(lifetime, probe_delay)
            rows.append(
                [
                    f"{lifetime:.0f}s",
                    f"{probe_delay:.0f}s",
                    "STALE" if dead_found else "purged",
                    "cached" if live_found else "expired",
                ]
            )
    print_table(
        "AB3  advert cache lifetime: staleness vs retention",
        ["cache lifetime", "probe after", "dead service", "live service"],
        rows,
        note="short lifetimes purge dead peers' adverts quickly but also "
        "expire live ones (forcing republish); long lifetimes serve stale "
        "adverts — the classic soft-state trade-off the cache embodies",
    )
    return rows


def test_ab3_short_lifetime_purges_dead_adverts():
    dead_found, _ = staleness_probe(lifetime=5.0, probe_delay=30.0)
    assert not dead_found


def test_ab3_long_lifetime_serves_stale_adverts():
    dead_found, _ = staleness_probe(lifetime=600.0, probe_delay=30.0)
    assert dead_found  # the trade-off's other edge


def test_ab3_short_lifetime_also_expires_live_entries():
    # soft state all the way down: even the live provider's own cache
    # expires its advert, so without republishing the service vanishes
    _, live_found = staleness_probe(lifetime=5.0, probe_delay=30.0)
    assert not live_found


def test_ab3_republish_restores_discovery():
    net = Network(latency=FixedLatency(0.002))
    group = PeerGroup("g")
    live = Peer(net.add_node("live"), name="live", cache_lifetime=5.0)
    observer = Peer(net.add_node("obs"), name="obs", cache_lifetime=5.0)
    live.join(group)
    observer.join(group)
    live.create_input_pipe("invoke", "LiveSvc")
    advert = live.publish_service("LiveSvc", ["invoke"])
    net.run()
    net.kernel.schedule(30.0, lambda: None)
    net.run()
    assert not observer.discover(AdvertQuery("service", "LiveSvc")).wait_for(1, timeout=1.0)
    live.publish(advert)  # periodic republish, the soft-state remedy
    net.run()
    assert observer.discover(AdvertQuery("service", "LiveSvc")).wait_for(1, timeout=1.0)


def test_ab3_fresh_probe_sees_everything():
    dead_found, live_found = staleness_probe(lifetime=600.0, probe_delay=2.0)
    assert dead_found and live_found


def test_bench_staleness_probe(benchmark):
    benchmark(lambda: staleness_probe(60.0, 10.0))


if __name__ == "__main__":
    run_ab3_experiment()
