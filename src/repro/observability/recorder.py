"""The codec-layer recorder hook: zero-cost when nobody is listening.

The message codec's fast path (template-cache splices, wire-template
hits) runs thousands of times per second; instrumenting it must not
tax the common case where no tracer is installed.  The contract:

- hot paths fetch the current recorder and check its ``active`` flag
  *before* building any event detail — when the :class:`NullRecorder`
  is installed the entire cost is one attribute check, and **zero
  objects are allocated per event** (guarded by a CI test);
- a :class:`~repro.observability.spans.SpanTracer` (or anything with
  the same two-member surface) is installed with :func:`set_recorder`
  and then receives ``codec_event(kind, detail)`` calls.

This module deliberately imports nothing from the rest of the repo so
leaf modules (``repro.wsa.headers``, ``repro.soap.envelope``) can hook
in without import cycles.
"""

from __future__ import annotations

from typing import Any, Optional


class NullRecorder:
    """The inactive recorder: hot paths see ``active`` False and stop."""

    active = False

    def codec_event(self, kind: str, detail: Optional[dict[str, Any]] = None) -> None:
        """Never called on the guarded paths; a safe no-op if it is."""


NULL_RECORDER = NullRecorder()
_current: Any = NULL_RECORDER


def current_recorder() -> Any:
    """The active recorder (the shared :class:`NullRecorder` when none)."""
    return _current


def set_recorder(recorder: Optional[Any]) -> Any:
    """Install *recorder* (None restores the null recorder); returns the
    previously installed one so callers can restore it."""
    global _current
    previous = _current
    _current = recorder if recorder is not None else NULL_RECORDER
    return previous
