"""The metrics registry: counters, gauges, fixed-bucket histograms.

TerraService.NET's operations story — per-request accounting turned a
Web-service demo into a service — is the model here: every subsystem
(invocation, transports, hosting, reliability, supervision, codec
caches) reports into one :class:`MetricsRegistry` that can answer
"what has this peer been doing" with a single snapshot.

Design constraints, in order:

1. *Cheap.*  The hot-path cost of one metric update is a dict lookup
   plus an integer add; histograms do one bisect over a small tuple of
   bucket bounds.  A disabled registry costs one boolean check.
2. *Pure python.*  No numpy — quantiles come from the fixed buckets
   (:meth:`Histogram.quantile` interpolates within the bucket that
   holds the rank), so the registry works on constrained peers.
3. *One pane of glass.*  Named collectors fold external sources into
   the snapshot; the codec layer's :func:`repro.caching.cache_stats`
   is registered by default, so cache effectiveness appears next to
   request counters instead of behind a separate API.

A process-wide default registry backs the module-level :func:`inc` /
:func:`observe` / :func:`set_gauge` helpers that the instrumentation
points in core/transport/reliability/supervision call; tests and
benchmarks that need isolation either :meth:`MetricsRegistry.reset`
it or construct private registries.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Callable, Iterable, Optional

#: Default histogram bounds (seconds): tuned for virtual-time latencies
#: from sub-millisecond LAN hops to multi-second retry schedules.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, by: int = 1) -> None:
        self.value += by


class Gauge:
    """A point-in-time value (queue depth, breaker state, cache size)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram with quantile estimation.

    Observations land in the bucket whose upper bound is the first one
    ≥ the value (one bisect); count/sum/min/max are exact, quantiles
    are interpolated within the winning bucket — accurate to a bucket
    width, which is what capacity planning needs and all a
    constant-memory recorder can honestly promise.
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Optional[Iterable[float]] = None):
        self.name = name
        self.bounds: tuple[float, ...] = tuple(sorted(bounds)) if bounds else DEFAULT_BUCKETS
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.counts = [0] * (len(self.bounds) + 1)  # +1 overflow bucket
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the *q*-quantile (0 ≤ q ≤ 1) from the buckets."""
        if self.count == 0:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        rank = q * self.count
        cumulative = 0
        for i, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank and bucket_count:
                lower = self.bounds[i - 1] if i > 0 else (self.min or 0.0)
                upper = self.bounds[i] if i < len(self.bounds) else (self.max or lower)
                lower = max(lower, self.min or lower)
                upper = min(upper, self.max or upper)
                if upper <= lower:
                    return lower
                # linear interpolation inside the winning bucket
                into = (rank - (cumulative - bucket_count)) / bucket_count
                return lower + (upper - lower) * into
        return self.max

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }


#: a collector folds an external stats source into the snapshot
Collector = Callable[[], dict[str, Any]]


class MetricsRegistry:
    """Named counters / gauges / histograms plus external collectors."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._collectors: dict[str, Collector] = {}

    # -- instrument access (creating on first use) -------------------------
    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = Gauge(name)
        return gauge

    def histogram(self, name: str, bounds: Optional[Iterable[float]] = None) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = Histogram(name, bounds)
        return histogram

    # -- hot-path update helpers ------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(by)

    def observe(self, name: str, value: float) -> None:
        if self.enabled:
            self.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    # -- external sources --------------------------------------------------
    def add_collector(self, name: str, collector: Collector) -> None:
        self._collectors[name] = collector

    def remove_collector(self, name: str) -> None:
        self._collectors.pop(name, None)

    # -- output ------------------------------------------------------------
    def get(self, name: str) -> int:
        """Current value of counter *name* (0 if never incremented)."""
        counter = self._counters.get(name)
        return counter.value if counter is not None else 0

    def snapshot(self) -> dict[str, Any]:
        """Everything this registry knows, as plain data."""
        out: dict[str, Any] = {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {n: g.value for n, g in sorted(self._gauges.items())},
            "histograms": {n: h.snapshot() for n, h in sorted(self._histograms.items())},
        }
        for name, collector in sorted(self._collectors.items()):
            try:
                out[name] = collector()
            except Exception as exc:  # noqa: BLE001 - collector boundary
                out[name] = {"error": f"{type(exc).__name__}: {exc}"}
        return out

    def render_text(self) -> str:
        """The plain-text snapshot exporter: one line per instrument."""
        snap = self.snapshot()
        lines = ["# metrics snapshot"]
        for name, value in snap["counters"].items():
            lines.append(f"counter {name} {value}")
        for name, value in snap["gauges"].items():
            lines.append(f"gauge {name} {value:g}")
        for name, h in snap["histograms"].items():
            fields = " ".join(
                f"{k}={h[k]:.6g}" for k in ("mean", "p50", "p95", "p99")
                if h[k] is not None
            )
            lines.append(f"histogram {name} count={h['count']} {fields}".rstrip())
        for section, payload in snap.items():
            if section in ("counters", "gauges", "histograms"):
                continue
            if isinstance(payload, dict):
                for name, value in sorted(payload.items()):
                    lines.append(f"{section} {name} {value}")
            else:
                lines.append(f"{section} {payload}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Drop every instrument (collectors stay registered)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()


def _collect_cache_stats() -> dict[str, Any]:
    # function-level import: caching must stay importable without
    # observability and vice versa
    from repro.caching import cache_stats

    return cache_stats()


def _make_default() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.add_collector("caches", _collect_cache_stats)
    return registry


_default = _make_default()


def default_registry() -> MetricsRegistry:
    """The process-wide registry the built-in instrumentation reports to."""
    return _default


def set_metrics_enabled(enabled: bool) -> None:
    """Globally switch the default registry's updates on or off."""
    _default.enabled = bool(enabled)


def reset_default_registry() -> None:
    """Zero the default registry (benchmark/test hygiene between phases)."""
    _default.reset()


# -- module-level shortcuts used by instrumentation points -----------------
def inc(name: str, by: int = 1) -> None:
    if _default.enabled:
        _default.counter(name).inc(by)


def observe(name: str, value: float) -> None:
    if _default.enabled:
        _default.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    if _default.enabled:
        _default.gauge(name).set(value)
