"""Always-on flight recorder (E17): the last N events, post-mortem.

A span tracer answers "show me this invocation"; a flight recorder
answers "what was the node doing just before it died".  It keeps a
bounded ring of the most recent structured events from every source it
listens on — cheap enough to leave on permanently — and freezes a copy
(a *dump*) the instant something catastrophic happens: a crash-harness
kill, replica state divergence, or a circuit breaker tripping open.
Dumps survive the ring rolling over, so the forensic window is intact
long after the events that filled it have been evicted.

Events are summarised to primitives at capture time: envelope objects
and other live references are dropped, so a dump is always JSON-safe
and holding it never pins engine state alive.  The latest dump (or a
live snapshot when nothing has triggered) is fetchable over the wire
via the introspection service's ``GetFlightRecord`` operation.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Optional

from repro.observability import metrics as obs_metrics

#: dump record schema: bump when the record shape changes
FLIGHT_SCHEMA = "repro.flight/1"

#: event kinds that freeze a post-mortem dump the moment they are seen
DUMP_TRIGGERS = frozenset({"node-killed", "state-diverged", "circuit-open"})

#: defaults: ring depth per recorder, retained dumps before dropping new ones
DEFAULT_CAPACITY = 512
MAX_DUMPS = 32

_PRIMITIVES = (str, int, float, bool, type(None))


def _summarise(detail: Any) -> dict[str, Any]:
    """Primitive-only copy of an event detail dict (drop live objects)."""
    if not isinstance(detail, dict):
        return {}
    return {k: v for k, v in detail.items() if isinstance(v, _PRIMITIVES)}


class _SourceListener:
    """Adapter: tags each event with the source it was heard on."""

    def __init__(self, recorder: "FlightRecorder", peer: Optional[str]):
        self.recorder = recorder
        self.peer = peer

    def message_received(self, event: Any) -> None:
        self.recorder.observe(event, peer=self.peer)


class FlightRecorder:
    """A bounded ring of recent events plus trigger-frozen dumps."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 metrics: Optional[Any] = None,
                 triggers: Any = DUMP_TRIGGERS,
                 max_dumps: int = MAX_DUMPS):
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else obs_metrics
        self.triggers = frozenset(triggers)
        self.max_dumps = max_dumps
        self._ring: deque[dict[str, Any]] = deque(maxlen=capacity)
        self.dumps: list[dict[str, Any]] = []
        self.dumps_dropped = 0
        self.events_seen = 0
        self._attached: list[tuple[Any, _SourceListener]] = []

    # -- wiring ------------------------------------------------------------
    def attach(self, source: Any, peer: Optional[str] = None) -> None:
        """Listen on any duck-typed event source (``add_listener``),
        tagging captured events with *peer*."""
        listener = _SourceListener(self, peer)
        source.add_listener(listener)
        self._attached.append((source, listener))

    def install(self, *peers: Any) -> "FlightRecorder":
        """Attach to each WSPeer in *peers* (tagged by ``peer.name``)."""
        for peer in peers:
            self.attach(peer, peer=getattr(peer, "name", None))
        return self

    def attach_harness(self, harness: Any,
                       peer: Optional[str] = None) -> "FlightRecorder":
        """Attach to a crash harness so kills land in the ring — and,
        being in :data:`DUMP_TRIGGERS`, freeze a dump."""
        self.attach(harness, peer=peer)
        return self

    def detach(self) -> None:
        """Stop listening everywhere.  Ring and dumps are kept."""
        for source, listener in self._attached:
            try:
                source.remove_listener(listener)
            except ValueError:
                pass
        self._attached.clear()

    # -- capture -----------------------------------------------------------
    def observe(self, event: Any, peer: Optional[str] = None) -> None:
        kind = getattr(event, "kind", None)
        if kind is None:
            return
        record: dict[str, Any] = {
            "time": getattr(event, "time", None),
            "kind": kind,
            **_summarise(getattr(event, "detail", None)),
        }
        if peer is not None:
            record["peer"] = peer
        source = getattr(event, "source", None)
        if isinstance(source, str):
            record.setdefault("source", source)
        self._ring.append(record)
        self.events_seen += 1
        self.metrics.inc("flight.events")
        if kind in self.triggers:
            self.dump(reason=kind, at=record["time"])

    # -- dumps -------------------------------------------------------------
    def dump(self, reason: str, at: Optional[float] = None) -> Optional[dict[str, Any]]:
        """Freeze a copy of the ring.  Returns the dump, or ``None``
        when the dump store is full (counted, never silent)."""
        if len(self.dumps) >= self.max_dumps:
            self.dumps_dropped += 1
            self.metrics.inc("flight.dumps_dropped")
            return None
        dump = {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "time": at,
            "events_seen": self.events_seen,
            "events": list(self._ring),
        }
        self.dumps.append(dump)
        self.metrics.inc("flight.dumps")
        return dump

    def latest_dump(self) -> Optional[dict[str, Any]]:
        return self.dumps[-1] if self.dumps else None

    def snapshot(self) -> dict[str, Any]:
        """A live (un-frozen) view of the ring, dump-shaped."""
        return {
            "schema": FLIGHT_SCHEMA,
            "reason": "snapshot",
            "time": self._ring[-1]["time"] if self._ring else None,
            "events_seen": self.events_seen,
            "events": list(self._ring),
        }

    def to_json(self) -> str:
        """The latest dump — or a live snapshot when nothing has
        triggered — as JSON (the ``GetFlightRecord`` payload)."""
        dump = self.latest_dump()
        payload = dict(dump) if dump is not None else self.snapshot()
        payload["dumps"] = len(self.dumps)
        return json.dumps(payload, default=str)

    def __len__(self) -> int:
        return len(self._ring)
