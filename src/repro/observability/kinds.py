"""The one registry of every event ``kind`` the interface tree fires.

The paper's event model is only as debuggable as its vocabulary: a
subsystem that invents a new ``kind`` string nobody documents is a
silent hole in every trace.  This module is the single source of truth
— each kind the tree can fire, its family, and what it means.  A
regression test replays representative invocations through a recording
listener and asserts every observed kind is documented here, so adding
an event without registering it fails CI instead of vanishing.

:class:`~repro.observability.spans.SpanTracer` also consults this
registry: events with unknown kinds are still recorded (traces must
never drop data) but are tallied in ``tracer.unknown_kinds`` so the
gap is visible.
"""

from __future__ import annotations

#: family name -> the ``fire_*`` helper that emits it ("harness" kinds
#: come from the crash harness's duck-typed events, not a fire_* helper)
FAMILIES = ("client", "server", "discovery", "publish", "deployment",
            "harness")

#: kind -> (family, meaning).  Keep alphabetical within each block.
KIND_REGISTRY: dict[str, tuple[str, str]] = {
    # -- client: fired by invocation nodes and the failover executor ------
    "circuit-closed": ("client", "endpoint breaker recovered to closed"),
    "circuit-half-open": ("client", "endpoint breaker probing after open_timeout"),
    "circuit-open": ("client", "endpoint breaker tripped; calls shed fast"),
    "failover": ("client", "logical call hopped to another endpoint"),
    "failover-exhausted": ("client", "every candidate endpoint failed the call"),
    "invoke-failed": ("client", "invocation concluded with an error"),
    "oneway-acked": ("client", "provider acknowledged a reliable one-way"),
    "oneway-failed": ("client", "one-way send gave up (no ack / send error)"),
    "oneway-sent": ("client", "notification-style request left the node"),
    "request-sent": ("client", "request/response invocation attempt sent"),
    "response-received": ("client", "response decoded; invocation succeeded"),
    "retransmit": ("client", "same MessageID re-sent after timeout/backoff"),
    "session-handoff": ("client", "stateful call redirected to a caught-up replica"),
    # -- server: fired by the container and provider-side deployers -------
    "ack-sent": ("server", "receipt ack sent down the requester's ack pipe"),
    "ack-undeliverable": ("server", "receipt ack could not be delivered"),
    "delta-applied": ("server", "shipped state delta folded into the replica"),
    "delta-buffered": ("server", "out-of-order delta held until the gap fills"),
    "delta-ship-failed": ("server", "delta fan-out to one member gave up"),
    "delta-shipped": ("server", "state delta fanned out to a group member"),
    "duplicate-suppressed": ("server", "retransmitted MessageID answered from dedup"),
    "malformed-request": ("server", "unparseable request dropped at the boundary"),
    "reply-undeliverable": ("server", "response could not reach the ReplyTo pipe"),
    "request-intercepted": ("server", "application interceptor answered directly"),
    "replica-lagging": ("server", "member refused a session it is behind on"),
    "request-received": ("server", "request entered the container"),
    "request-shed": ("server", "admission control answered Server.Busy"),
    "response-sent": ("server", "response left the container"),
    "session-resynced": ("server", "anti-entropy pull re-converged a session"),
    "snapshot-installed": ("server", "full session snapshot adopted (dominance)"),
    "state-diverged": ("server", "equal-seq deltas with different digests"),
    # -- discovery: fired by service locators -----------------------------
    "cache-hit": ("discovery", "rendezvous cache answered without any frame"),
    "endpoint-quarantined": ("discovery", "health verdict DEAD; EPR withheld"),
    "endpoint-restored": ("discovery", "health verdict ALIVE; EPR served again"),
    "query-empty": ("discovery", "query completed with no matches"),
    "query-failed": ("discovery", "locate aborted (registry unreachable, ...)"),
    "query-issued": ("discovery", "locate started against a discovery source"),
    "read-repair": ("discovery", "stale replica rewritten with freshest record"),
    "service-found": ("discovery", "a matching service handle was produced"),
    "service-skipped": ("discovery", "a candidate was rejected (no WSDL, ...)"),
    # -- publish: fired by service publishers -----------------------------
    "publish-failed": ("publish", "registry/advert publication failed"),
    "published": ("publish", "service made findable"),
    "withdrawn": ("publish", "service removed from discovery"),
    # -- deployment: fired by the container and deployers -----------------
    "deployed": ("deployment", "live object exposed as a service"),
    "endpoint-closed": ("deployment", "HTTP(G) endpoint removed"),
    "endpoint-opened": ("deployment", "HTTP(G) endpoint routed"),
    "http-server-launched": ("deployment", "first deploy started the listener"),
    "http-server-stopped": ("deployment", "last undeploy stopped the listener"),
    "pipes-closed": ("deployment", "P2PS operation pipes closed"),
    "pipes-opened": ("deployment", "P2PS operation pipes created + advertised"),
    "undeployed": ("deployment", "service removed from the container"),
    # -- harness: fault-injection actions from the simnet crash harness ----
    "frame-drop-armed": ("harness", "next matching frame will be discarded"),
    "kill-triggered": ("harness", "event trigger matched; kill is firing"),
    "node-killed": ("harness", "node taken down by the crash harness"),
    "node-restarted": ("harness", "killed node brought back up"),
}

#: the flat set used by fast membership checks
KNOWN_KINDS = frozenset(KIND_REGISTRY)


def family_of(kind: str) -> str:
    """The family of *kind* ('unknown' when unregistered)."""
    entry = KIND_REGISTRY.get(kind)
    return entry[0] if entry is not None else "unknown"


def is_known(kind: str) -> bool:
    return kind in KNOWN_KINDS
