"""Pure-python quantile and summary helpers.

The observability layer must stay importable on constrained peers
(Srirama et al.'s mobile-provisioning argument), so nothing in
:mod:`repro.observability` may import numpy.  These helpers reproduce
the numpy semantics the benchmark tables rely on — linear-interpolation
percentiles over the sorted sample — in plain python, and are the one
shared implementation: :func:`repro.simnet.trace.summarize` delegates
here instead of carrying its own numpy copy.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


def quantile_sorted(samples: Sequence[float], q: float) -> float:
    """The *q*-quantile (0 ≤ q ≤ 1) of an already-sorted sequence.

    Linear interpolation between closest ranks — the same definition as
    ``numpy.percentile(..., interpolation="linear")``, so swapping the
    numpy implementation for this one changes no reported number.
    """
    if not samples:
        raise ValueError("quantile of empty sequence")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    if len(samples) == 1:
        return float(samples[0])
    position = q * (len(samples) - 1)
    lower = int(position)
    upper = min(lower + 1, len(samples) - 1)
    fraction = position - lower
    return float(samples[lower]) + (float(samples[upper]) - float(samples[lower])) * fraction


def quantile(samples: Iterable[float], q: float) -> float:
    """The *q*-quantile of an unsorted iterable (sorts a copy)."""
    return quantile_sorted(sorted(samples), q)


def percentile(samples: Iterable[float], p: float) -> float:
    """The *p*-th percentile (0–100) of an unsorted iterable."""
    return quantile(samples, p / 100.0)


def summarize(samples: Iterable[float]) -> Optional[dict[str, float]]:
    """Mean / median / p95 / min / max summary used by bench tables.

    Returns None for an empty sample set (matching the historical
    numpy-backed behaviour in :mod:`repro.simnet.trace`).
    """
    data = sorted(float(s) for s in samples)
    if not data:
        return None
    return {
        "n": len(data),
        "mean": sum(data) / len(data),
        "median": quantile_sorted(data, 0.5),
        "p95": quantile_sorted(data, 0.95),
        "min": data[0],
        "max": data[-1],
    }
