"""Message-correlated span trees over the WSPeer event tree.

The paper's architectural bet (§III) is that an application listening
at the root of the interface tree "sees every request/response either
side of the messaging engine".  :class:`SpanTracer` is that listener,
productised: it subscribes to one or more peers' event trees and
stitches ``ClientMessageEvent`` / ``ServerMessageEvent`` / reliability
/ supervision events into **one span tree per logical invocation**,
keyed by ``wsa:MessageID``:

- retransmits reuse the logical span — each re-send becomes an
  attempt-numbered child, never a second trace;
- failover hops reuse it too (the executor propagates the original
  MessageID), so cross-endpoint and cross-binding journeys render as
  endpoint-tagged attempt children of a single root;
- when the tracer is attached to provider peers as well, server-side
  processing (request-received → response-sent, dedup replays,
  admission sheds) appears as peer-tagged ``server`` children of the
  same tree — both sides of the engine in one picture.

Storage is a ring buffer of logical spans (``max_spans``): a
retransmission storm cannot grow memory without bound, the oldest
trees are evicted first, and ``evicted`` counts what the ring lost.
The tracer also implements the codec recorder protocol
(:mod:`repro.observability.recorder`): installed with ``codec=True``
it tallies template-cache events that are never even constructed when
no tracer is active.
"""

from __future__ import annotations

import itertools
import json
from collections import OrderedDict, deque
from typing import Any, Callable, Iterator, Optional

from repro.core.events import EventSource, PeerEvent, PeerMessageListener
from repro.observability import metrics as obs_metrics
from repro.observability.kinds import KNOWN_KINDS
from repro.observability.recorder import set_recorder

_span_ids = itertools.count(1)

#: per-span cap on attempt/server children and annotations: a storm
#: keeps counting (``dropped`` tag) but stops allocating
MAX_CHILDREN = 128
MAX_ANNOTATIONS = 64

#: JSONL exporter record schema: bump when the record shape changes
#: (v2 added ``schema``/``ts`` themselves plus the E17 trace tags)
SPAN_SCHEMA = "repro.span/2"

# root statuses
IN_FLIGHT = "in-flight"
OK = "ok"
ERROR = "error"
SENT = "sent"  # fire-and-forget oneway: complete at send time


class Span:
    """One node of a trace tree: a timed, tagged unit of work."""

    __slots__ = ("span_id", "name", "kind", "start", "end", "status",
                 "tags", "annotations", "children")

    def __init__(self, name: str, kind: str, start: float,
                 tags: Optional[dict[str, Any]] = None):
        self.span_id = next(_span_ids)
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.status = IN_FLIGHT
        self.tags: dict[str, Any] = tags if tags is not None else {}
        self.annotations: list[tuple[float, str, dict[str, Any]]] = []
        self.children: list["Span"] = []

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def annotate(self, time: float, kind: str, detail: dict[str, Any]) -> bool:
        if len(self.annotations) < MAX_ANNOTATIONS:
            self.annotations.append((time, kind, detail))
            return True
        self.tags["annotations_dropped"] = self.tags.get("annotations_dropped", 0) + 1
        return False

    def add_child(self, child: "Span") -> bool:
        if len(self.children) < MAX_CHILDREN:
            self.children.append(child)
            return True
        self.tags["children_dropped"] = self.tags.get("children_dropped", 0) + 1
        return False

    def close(self, time: float, status: str) -> None:
        self.end = time
        self.status = status

    def to_dict(self) -> dict[str, Any]:
        return {
            "span_id": self.span_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "tags": dict(self.tags),
            "annotations": [
                {"time": t, "kind": k, **detail} for t, k, detail in self.annotations
            ],
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return f"<Span {self.kind}:{self.name} status={self.status}>"


class _PeerListener(PeerMessageListener):
    """Adapter: tags each event with the peer it was heard on."""

    def __init__(self, tracer: "SpanTracer", peer: Optional[str]):
        self.tracer = tracer
        self.peer = peer

    def message_received(self, event: PeerEvent) -> None:
        self.tracer.observe(event, peer=self.peer)


def _endpoint_host(address: Optional[str]) -> Optional[str]:
    """The node id a URI endpoint lives on (frame-correlation key)."""
    if not address:
        return None
    _, sep, rest = address.partition("://")
    if not sep:
        return None
    authority = rest.split("/", 1)[0]
    return authority.split(":", 1)[0] or None


class SpanTracer:
    """Stitches tree events into per-invocation span trees.

    One tracer may be attached to many peers (client *and* providers):
    everything correlates through the MessageID, so the resulting tree
    spans processes the way the underlying call did.  Also usable as
    the codec recorder and as a :class:`~repro.simnet.trace.TraceLog`
    sink (:meth:`simnet_sink`), folding wire-level frame records into
    the spans of the endpoints they touched.
    """

    #: recorder-protocol flag: hot paths consult this before building
    #: any event detail
    active = True

    def __init__(
        self,
        max_spans: int = 1024,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ):
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.max_spans = max_spans
        self.metrics = metrics if metrics is not None else obs_metrics.default_registry()
        self._spans: "OrderedDict[str, Span]" = OrderedDict()
        self._state: dict[str, dict[str, Any]] = {}  # per-root bookkeeping
        self._open_attempt_by_host: dict[str, Span] = {}
        #: trace_id -> message_ids of the roots in that trace (E17);
        #: maintained against ring eviction, so a live trace id always
        #: names live roots
        self._by_trace: dict[str, list[str]] = {}
        self.evicted = 0
        #: truncation accounting: children/annotations the per-span caps
        #: refused, totalled across every span (satellite of E17 — the
        #: per-span ``*_dropped`` tags exist but were invisible in
        #: aggregate)
        self.spans_dropped = 0
        self.annotations_dropped = 0
        self.events_seen = 0
        self.unknown_kinds: dict[str, int] = {}
        self.codec_counts: dict[str, int] = {}
        # per-kind instrument caches: the observe() hot path must not pay
        # a string concat + registry lookup for every event
        self._event_counters: dict[str, obs_metrics.Counter] = {}
        self._codec_counters: dict[str, obs_metrics.Counter] = {}
        self._latency_hists: dict[str, obs_metrics.Histogram] = {}
        #: recent events that carry no MessageID (breaker transitions,
        #: discovery/publish/deployment traffic) — kept for diagnostics
        self.uncorrelated: "deque[tuple[float, str, str, dict]]" = deque(maxlen=256)
        self._attached: list[tuple[EventSource, _PeerListener]] = []
        self._recorder_installed = False
        self._prev_recorder: Any = None

    # -- wiring ------------------------------------------------------------
    def attach(self, source: EventSource, peer: Optional[str] = None) -> None:
        """Listen on *source* (usually a WSPeer root), tagging events
        with *peer* so multi-peer traces say who did what."""
        listener = _PeerListener(self, peer)
        source.add_listener(listener)
        self._attached.append((source, listener))

    def install(self, *peers: Any, codec: bool = False) -> "SpanTracer":
        """Attach to each WSPeer in *peers* (tagged by ``peer.name``);
        with ``codec=True`` also become the codec-layer recorder."""
        for peer in peers:
            self.attach(peer, peer=getattr(peer, "name", None))
        if codec and not self._recorder_installed:
            self._prev_recorder = set_recorder(self)
            self._recorder_installed = True
        return self

    def uninstall(self) -> None:
        """Detach from every source and release the codec recorder."""
        for source, listener in self._attached:
            try:
                source.remove_listener(listener)
            except ValueError:
                pass
        self._attached.clear()
        if self._recorder_installed:
            set_recorder(self._prev_recorder)
            self._recorder_installed = False
            self._prev_recorder = None

    # -- recorder protocol (codec fast path) -------------------------------
    def codec_event(self, kind: str, detail: Optional[dict[str, Any]] = None) -> None:
        self.codec_counts[kind] = self.codec_counts.get(kind, 0) + 1
        counter = self._codec_counters.get(kind)
        if counter is None:
            counter = self._codec_counters[kind] = self.metrics.counter("codec." + kind)
        if self.metrics.enabled:
            counter.inc()

    # -- span bookkeeping --------------------------------------------------
    def _adopt(self, parent: Span, child: Span) -> None:
        """``parent.add_child`` with tracer-level truncation accounting."""
        if not parent.add_child(child):
            self.spans_dropped += 1
            self.metrics.inc("tracing.spans_dropped")

    def _annotate(self, span: Span, time: float, kind: str,
                  detail: dict[str, Any]) -> None:
        """``span.annotate`` with tracer-level truncation accounting."""
        if not span.annotate(time, kind, detail):
            self.annotations_dropped += 1
            self.metrics.inc("tracing.annotations_dropped")

    def _root(self, message_id: str, event: PeerEvent,
              peer: Optional[str]) -> tuple[Span, dict[str, Any]]:
        """The logical span for *message_id*, created on first sight."""
        root = self._spans.get(message_id)
        if root is not None:
            self._spans.move_to_end(message_id)
            return root, self._state[message_id]
        detail = event.detail
        service = detail.get("service", "")
        operation = detail.get("operation", "")
        name = f"{service}.{operation}" if service or operation else event.kind
        root = Span(name, "invocation", event.time, tags={
            "message_id": message_id,
            "service": service,
            "operation": operation,
        })
        if peer:
            root.tags["client"] = peer
        while len(self._spans) >= self.max_spans:
            evicted_id, evicted_root = self._spans.popitem(last=False)
            self._state.pop(evicted_id, None)
            evicted_trace = evicted_root.tags.get("trace_id")
            if evicted_trace is not None:
                mids = self._by_trace.get(evicted_trace)
                if mids is not None:
                    try:
                        mids.remove(evicted_id)
                    except ValueError:
                        pass
                    if not mids:
                        del self._by_trace[evicted_trace]
            self.evicted += 1
            self.metrics.inc("tracing.spans_evicted")
        self._spans[message_id] = root
        state: dict[str, Any] = {"attempt": None, "attempts": 0, "servers": {}}
        self._state[message_id] = state
        self.metrics.inc("tracing.spans_started")
        return root, state

    def _new_attempt(self, root: Span, state: dict[str, Any], event: PeerEvent,
                     peer: Optional[str], number: Optional[int] = None) -> Span:
        current = state["attempt"]
        if current is not None and current.end is None:
            current.close(event.time, ERROR if event.kind == "retransmit" else current.status)
        state["attempts"] += 1
        attempt_no = number if number is not None else state["attempts"]
        endpoint = event.detail.get("endpoint")
        tags: dict[str, Any] = {"attempt": attempt_no}
        if endpoint:
            tags["endpoint"] = endpoint
        if peer:
            tags["peer"] = peer
        span_id = event.detail.get("span_id")
        if span_id:
            tags["span_id"] = span_id
            parent_span = event.detail.get("parent_span_id")
            if parent_span:
                tags["parent_span_id"] = parent_span
        attempt = Span(f"attempt#{attempt_no}", "attempt", event.time, tags)
        self._adopt(root, attempt)
        state["attempt"] = attempt
        host = _endpoint_host(endpoint)
        if host:
            self._open_attempt_by_host[host] = attempt
        return attempt

    def _close_attempt(self, state: dict[str, Any], time: float, status: str) -> None:
        attempt = state.get("attempt")
        if attempt is not None and attempt.end is None:
            attempt.close(time, status)

    # -- the listener ------------------------------------------------------
    def observe(self, event: PeerEvent, peer: Optional[str] = None) -> None:
        """Fold one tree event into the span store."""
        self.events_seen += 1
        kind = event.kind
        if kind not in KNOWN_KINDS and not kind.startswith("circuit-"):
            self.unknown_kinds[kind] = self.unknown_kinds.get(kind, 0) + 1
            self.metrics.inc("tracing.unknown_kinds")
        counter = self._event_counters.get(kind)
        if counter is None:
            counter = self._event_counters[kind] = self.metrics.counter("events." + kind)
        if self.metrics.enabled:
            counter.inc()

        message_id = event.detail.get("message_id")
        if message_id is None:
            self.uncorrelated.append((event.time, kind, event.source, event.detail))
            return

        root, state = self._root(message_id, event, peer)
        detail = event.detail
        # E17: the first event carrying wire trace-context tags the root
        # and indexes it by trace — the hook distributed_trace() links on
        trace_id = detail.get("trace_id")
        if trace_id and "trace_id" not in root.tags:
            root.tags["trace_id"] = trace_id
            parent_span = detail.get("parent_span_id")
            if parent_span:
                root.tags["parent_span_id"] = parent_span
            self._by_trace.setdefault(trace_id, []).append(message_id)

        if kind in ("request-sent", "oneway-sent"):
            # a repeat request-sent with the same MessageID is a failover
            # hop or an executor-driven retry: same logical span
            if root.end is not None:  # reopen a provisionally-failed root
                root.end = None
                root.status = IN_FLIGHT
                root.tags.pop("error", None)
            self._new_attempt(root, state, event, peer)
            if kind == "oneway-sent" and not detail.get("ack_requested"):
                # fire-and-forget: the trace is complete once sent
                self._close_attempt(state, event.time, SENT)
                root.close(event.time, SENT)
        elif kind == "retransmit":
            self._new_attempt(root, state, event, peer, number=detail.get("attempt"))
        elif kind == "failover":
            self._annotate(root, event.time, kind, {
                "from": detail.get("from_endpoint"),
                "to": detail.get("to_endpoint"),
                "reason": detail.get("reason"),
            })
        elif kind in ("response-received", "oneway-acked"):
            self._close_attempt(state, event.time, OK)
            root.close(event.time, OK)
            if root.duration is not None:
                name = "oneway.ack_latency" if kind == "oneway-acked" else "invocation.latency"
                hist = self._latency_hists.get(name)
                if hist is None:
                    hist = self._latency_hists[name] = self.metrics.histogram(name)
                if self.metrics.enabled:
                    hist.observe(root.duration)
        elif kind in ("invoke-failed", "oneway-failed"):
            # provisional for failover-driven calls: a later request-sent
            # with the same MessageID reopens the root
            self._close_attempt(state, event.time, ERROR)
            root.close(event.time, ERROR)
            root.tags["error"] = detail.get("reason")
        elif kind == "failover-exhausted":
            self._close_attempt(state, event.time, ERROR)
            root.close(event.time, ERROR)
            root.tags["error"] = detail.get("reason")
            root.tags["rounds"] = detail.get("rounds")
        elif kind == "request-received":
            server_tags: dict[str, Any] = {"peer": peer} if peer else {}
            if detail.get("span_id"):
                server_tags["span_id"] = detail["span_id"]
                if detail.get("parent_span_id"):
                    server_tags["parent_span_id"] = detail["parent_span_id"]
            server = Span(
                f"server:{detail.get('service', '')}.{detail.get('operation', '')}",
                "server", event.time,
                tags=server_tags,
            )
            self._adopt(root, server)
            state["servers"][peer] = server
        elif kind == "response-sent":
            server = state["servers"].get(peer)
            if server is not None and server.end is None:
                if server.status == "busy":  # shed verdict beats fault
                    server.end = event.time
                else:
                    server.close(event.time, ERROR if detail.get("fault") else OK)
        elif kind == "duplicate-suppressed":
            server = state["servers"].get(peer)
            if server is not None and server.end is None:
                server.tags["duplicate"] = True
                self._annotate(server, event.time, kind, {"peer": peer})
            else:
                replay = Span("server:dedup-replay", "server", event.time,
                              tags={"peer": peer, "duplicate": True} if peer
                              else {"duplicate": True})
                replay.close(event.time, OK)
                self._adopt(root, replay)
        elif kind == "request-shed":
            server = state["servers"].get(peer)
            tags: dict[str, Any] = {"retry_after": detail.get("retry_after")}
            if peer:
                tags["peer"] = peer
            if server is not None and server.end is None:
                server.tags.update(tags)
                server.status = "busy"
            else:
                shed = Span("server:shed", "server", event.time, tags)
                shed.close(event.time, "busy")
                self._adopt(root, shed)
            self._annotate(root, event.time, kind, tags)
        else:
            self._annotate(root, event.time, kind, dict(detail))

    # -- simnet bridge -----------------------------------------------------
    def simnet_sink(self) -> Callable[[float, str, dict[str, Any]], None]:
        """A :class:`~repro.simnet.trace.TraceLog` sink: frame records
        annotate the open attempt span of the endpoint they touched."""

        def sink(time: float, kind: str, detail: dict[str, Any]) -> None:
            self.metrics.inc("simnet." + kind)
            for key in ("dst", "src", "node"):
                host = detail.get(key)
                if host is None:
                    continue
                attempt = self._open_attempt_by_host.get(host)
                if attempt is not None and attempt.end is None:
                    self._annotate(attempt, time, "frame-" + kind, dict(detail))
                    return

        return sink

    # -- queries -----------------------------------------------------------
    def trace(self, message_id: str) -> Optional[Span]:
        return self._spans.get(message_id)

    def trace_dict(self, message_id: str) -> Optional[dict[str, Any]]:
        span = self._spans.get(message_id)
        return span.to_dict() if span is not None else None

    def traces(self) -> Iterator[tuple[str, Span]]:
        return iter(self._spans.items())

    def __len__(self) -> int:
        return len(self._spans)

    @property
    def message_ids(self) -> list[str]:
        return list(self._spans)

    def trace_ids(self) -> list[str]:
        """Distinct wire trace ids seen, oldest first."""
        return [t for t, mids in self._by_trace.items()
                if any(m in self._spans for m in mids)]

    def roots_for_trace(self, trace_id: str) -> list[tuple[str, Span]]:
        """(message_id, root span) pairs tagged with *trace_id*."""
        return [(m, self._spans[m])
                for m in self._by_trace.get(trace_id, ())
                if m in self._spans]

    def distributed_trace(self, trace_id: str) -> dict[str, Any]:
        """Stitch every invocation tagged with *trace_id* into one causal tree.

        Each invocation root whose wire parent_span_id resolves to a span
        *inside another invocation* of the same trace is nested under that
        invocation as a "call"; unresolved roots stay top-level.  The result
        spans every node (client + server peers) the trace touched.
        """
        members = self.roots_for_trace(trace_id)
        records: dict[str, dict[str, Any]] = {}
        span_owner: dict[str, str] = {}  # wire span_id -> owning message_id
        nodes: set[str] = set()
        for mid, root in members:
            records[mid] = {"message_id": mid, "span": root.to_dict(),
                            "calls": []}
            stack = [root]
            while stack:
                span = stack.pop()
                sid = span.tags.get("span_id")
                if sid:
                    span_owner.setdefault(sid, mid)
                owner = span.tags.get("peer") or span.tags.get("client")
                if owner:
                    nodes.add(owner)
                stack.extend(span.children)
        roots: list[dict[str, Any]] = []
        for mid, root in members:
            parent_sid = root.tags.get("parent_span_id")
            owner = span_owner.get(parent_sid) if parent_sid else None
            if owner is not None and owner != mid:
                records[owner]["calls"].append(records[mid])
            else:
                roots.append(records[mid])
        return {
            "trace_id": trace_id,
            "invocations": len(members),
            "nodes": sorted(nodes),
            "roots": roots,
        }

    # -- exporters ---------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per logical span, oldest first."""
        return "\n".join(
            json.dumps({"schema": SPAN_SCHEMA, "ts": span.start,
                        "message_id": mid, **span.to_dict()}, default=str)
            for mid, span in self._spans.items()
        )

    def export_jsonl(self, path: str) -> int:
        """Write the span store to *path*; returns spans written."""
        text = self.to_jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            if text:
                fh.write(text + "\n")
        return len(self._spans)

    def render(self, message_id: str) -> str:
        """A human-readable tree for one logical invocation."""
        root = self._spans.get(message_id)
        if root is None:
            return f"(no trace for {message_id})"
        lines: list[str] = []

        def fmt(span: Span) -> str:
            dur = f"{span.duration * 1000:.1f}ms" if span.duration is not None else "open"
            tags = " ".join(
                f"{k}={v}" for k, v in span.tags.items()
                if k not in ("service", "operation") and v not in (None, "")
            )
            return f"{span.name} [{dur}] {span.status}" + (f"  {tags}" if tags else "")

        def walk(span: Span, prefix: str, is_last: bool, is_root: bool) -> None:
            if is_root:
                lines.append(fmt(span))
                child_prefix = ""
            else:
                connector = "└─ " if is_last else "├─ "
                lines.append(prefix + connector + fmt(span))
                child_prefix = prefix + ("   " if is_last else "│  ")
            for time, kind, detail in span.annotations:
                marker = "   " if is_root else child_prefix + "     "
                brief = " ".join(f"{k}={v}" for k, v in detail.items() if v is not None)
                lines.append(f"{marker}@{time:.3f} {kind} {brief}".rstrip())
            for i, child in enumerate(span.children):
                walk(child, child_prefix, i == len(span.children) - 1, False)

        walk(root, "", True, True)
        return "\n".join(lines)
