"""repro.observability — message-correlated tracing and metrics.

Three pieces, each usable alone:

- :mod:`~repro.observability.metrics` — the registry every subsystem
  reports into (counters / gauges / fixed-bucket histograms, plain-text
  exporter, external collectors such as the codec cache stats);
- :mod:`~repro.observability.spans` — :class:`SpanTracer`, the
  root-of-tree listener that stitches events into per-invocation span
  trees keyed by ``wsa:MessageID`` (retransmits, failover hops and
  server-side processing all land in one tree);
- :mod:`~repro.observability.introspection` — the dogfooded service a
  peer hosts about itself (``GetMetrics`` / ``GetTrace`` /
  ``ListServices``).

Shared plumbing: :mod:`~repro.observability.stats` (pure-python
quantiles — this package never imports numpy), the event-kind registry
(:mod:`~repro.observability.kinds`) and the zero-allocation codec
recorder hook (:mod:`~repro.observability.recorder`).
"""

from repro.observability.introspection import INTROSPECTION_NS, IntrospectionService
from repro.observability.kinds import FAMILIES, KIND_REGISTRY, KNOWN_KINDS, family_of, is_known
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_metrics_enabled,
)
from repro.observability.recorder import (
    NULL_RECORDER,
    NullRecorder,
    current_recorder,
    set_recorder,
)
from repro.observability.spans import Span, SpanTracer
from repro.observability.stats import percentile, quantile, quantile_sorted, summarize

__all__ = [
    "INTROSPECTION_NS",
    "IntrospectionService",
    "FAMILIES",
    "KIND_REGISTRY",
    "KNOWN_KINDS",
    "family_of",
    "is_known",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "set_metrics_enabled",
    "NULL_RECORDER",
    "NullRecorder",
    "current_recorder",
    "set_recorder",
    "Span",
    "SpanTracer",
    "percentile",
    "quantile",
    "quantile_sorted",
    "summarize",
]
