"""repro.observability — message-correlated tracing and metrics.

Three pieces, each usable alone:

- :mod:`~repro.observability.metrics` — the registry every subsystem
  reports into (counters / gauges / fixed-bucket histograms, plain-text
  exporter, external collectors such as the codec cache stats);
- :mod:`~repro.observability.spans` — :class:`SpanTracer`, the
  root-of-tree listener that stitches events into per-invocation span
  trees keyed by ``wsa:MessageID`` (retransmits, failover hops and
  server-side processing all land in one tree);
- :mod:`~repro.observability.introspection` — the dogfooded service a
  peer hosts about itself (``GetMetrics`` / ``GetTrace`` /
  ``ListServices`` plus the E17 cluster operations).

The E17 cluster plane adds four more, still each usable alone:

- :mod:`~repro.observability.tracecontext` — the wire-propagated
  ``repro:TraceContext`` header (W3C-traceparent-shaped) that makes one
  trace id span client → primary → replicas across nodes;
- :mod:`~repro.observability.flight` — the always-on flight recorder:
  a bounded ring of recent events frozen into post-mortem dumps on
  kills / divergence / breaker opens;
- :mod:`~repro.observability.slo` — per-service availability/latency
  objectives judged by multi-window burn rates;
- :mod:`~repro.observability.cluster` — counter/histogram digests
  merged across nodes, fed by gossip piggyback and introspection
  scrapes.

Shared plumbing: :mod:`~repro.observability.stats` (pure-python
quantiles — this package never imports numpy), the event-kind registry
(:mod:`~repro.observability.kinds`) and the zero-allocation codec
recorder hook (:mod:`~repro.observability.recorder`).
"""

from repro.observability.cluster import (
    ClusterMetricsAgent,
    ClusterMetricsStore,
    digest_registry,
    merge_digests,
)
from repro.observability.flight import DUMP_TRIGGERS, FlightRecorder
from repro.observability.introspection import INTROSPECTION_NS, IntrospectionService
from repro.observability.kinds import FAMILIES, KIND_REGISTRY, KNOWN_KINDS, family_of, is_known
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    reset_default_registry,
    set_metrics_enabled,
)
from repro.observability.recorder import (
    NULL_RECORDER,
    NullRecorder,
    current_recorder,
    set_recorder,
)
from repro.observability.slo import SloEngine, SloPolicy
from repro.observability.spans import Span, SpanTracer
from repro.observability.stats import percentile, quantile, quantile_sorted, summarize
from repro.observability.tracecontext import (
    TRACE_HEADER,
    TRACE_NS,
    TraceContext,
    current_context,
    propagation_enabled,
    set_propagation,
)

__all__ = [
    "ClusterMetricsAgent",
    "ClusterMetricsStore",
    "digest_registry",
    "merge_digests",
    "DUMP_TRIGGERS",
    "FlightRecorder",
    "SloEngine",
    "SloPolicy",
    "TRACE_HEADER",
    "TRACE_NS",
    "TraceContext",
    "current_context",
    "propagation_enabled",
    "set_propagation",
    "INTROSPECTION_NS",
    "IntrospectionService",
    "FAMILIES",
    "KIND_REGISTRY",
    "KNOWN_KINDS",
    "family_of",
    "is_known",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "reset_default_registry",
    "set_metrics_enabled",
    "NULL_RECORDER",
    "NullRecorder",
    "current_recorder",
    "set_recorder",
    "Span",
    "SpanTracer",
    "percentile",
    "quantile",
    "quantile_sorted",
    "summarize",
]
