"""Wire-propagated trace context (E17): one causal tree across nodes.

E10's :class:`~repro.observability.spans.SpanTracer` stitches spans by
``wsa:MessageID`` — which correlates retransmits and failover hops of
*one* logical call, but says nothing about causality *between* calls:
a replication delta ship triggered by a client request is a different
MessageID on a different node, and without a link on the wire the two
trees are forever disjoint.

This module is that link, modelled on the W3C ``traceparent`` header
but carried as a SOAP header block (``rt:TraceContext`` in
:data:`TRACE_NS`), so it rides every binding the stack speaks:

    ``00-<32 hex trace-id>-<16 hex parent-span-id>-<2 hex flags>``

The *trace-id* names the whole causal tree; the *span-id* field names
the **sender's** span, which becomes the receiver's parent.  Receivers
continue the trace with :meth:`TraceContext.child`; senders derive the
outgoing context from the ambient one (:func:`begin_send`), so a
provider that ships deltas mid-request automatically stamps them as
children of its server span.

Identifiers come from deterministic counters, not randomness — the
simulation's reproducibility guarantee (same seed, same trace ids)
outranks the collision-resistance argument for random ids, and the
process-wide counters are unique where it matters.

Two codecs: :func:`encode`/:func:`decode` are the fast path (one
f-string / one split); :func:`reference_encode`/:func:`reference_decode`
are the deliberately naive, strict oracle the property tests hold the
fast path byte-identical to — the same frozen-reference discipline the
E8 codec uses.

Everything is gated on one module switch (:func:`set_propagation`):
disabled, the per-call cost is a single boolean check and no header is
written or read.
"""

from __future__ import annotations

import itertools
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.xmlkit import Element, QName, ns

#: namespace of the ``rt:TraceContext`` SOAP header block
TRACE_NS = ns.TRACE

#: the header's qualified name (a sibling of the wsa:* blocks)
TRACE_HEADER = QName(TRACE_NS, "TraceContext", "rt")

#: the one supported traceparent version
VERSION = "00"

#: default flags: "sampled" (the only flag this stack interprets)
FLAG_SAMPLED = "01"

_HEX = frozenset("0123456789abcdef")

_trace_ids = itertools.count(1)
_span_ids = itertools.count(1)


class TraceContextError(ValueError):
    """A malformed traceparent value (reference codec only — the fast
    path returns None and lets the caller count the drop)."""


def new_trace_id() -> str:
    """Mint a 32-hex trace id (deterministic per-process counter)."""
    return f"{next(_trace_ids):032x}"


def new_span_id() -> str:
    """Mint a 16-hex span id (deterministic per-process counter)."""
    return f"{next(_span_ids):016x}"


class TraceContext:
    """One point in a causal tree: (trace, this span, its parent)."""

    __slots__ = ("trace_id", "span_id", "flags", "parent_id")

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        flags: str = FLAG_SAMPLED,
        parent_id: Optional[str] = None,
    ):
        self.trace_id = trace_id
        self.span_id = span_id
        self.flags = flags
        #: the span that caused this one (None at a trace root); not
        #: carried on the wire — the wire's span-id field *is* the
        #: parent from the receiver's point of view
        self.parent_id = parent_id

    @classmethod
    def new_root(cls, flags: str = FLAG_SAMPLED) -> "TraceContext":
        """A fresh trace with no parent (a client-originated call)."""
        return cls(new_trace_id(), new_span_id(), flags)

    def child(self) -> "TraceContext":
        """A new span in the same trace, parented on this one."""
        return TraceContext(self.trace_id, new_span_id(), self.flags, self.span_id)

    def encoded(self) -> str:
        return encode(self)

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.flags == other.flags
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.flags, self.parent_id))

    def __repr__(self) -> str:
        return f"<TraceContext {self.trace_id[-8:]}/{self.span_id[-8:]}>"


# ----------------------------------------------------------------------
# codecs
# ----------------------------------------------------------------------
def encode(ctx: TraceContext) -> str:
    """The fast-path traceparent encoding (one f-string)."""
    return f"{VERSION}-{ctx.trace_id}-{ctx.span_id}-{ctx.flags}"


def decode(text: str) -> Optional[TraceContext]:
    """The fast-path decode: None for anything malformed.

    Parsed leniently but validated completely — the property tests
    hold this byte-identical (through re-encode) to the reference
    codec on every input the reference accepts, and equally rejecting
    on every input it rejects.
    """
    if len(text) != 55:
        return None
    parts = text.split("-")
    if len(parts) != 4:
        return None
    version, trace_id, span_id, flags = parts
    if version != VERSION or len(trace_id) != 32 or len(span_id) != 16 or len(flags) != 2:
        return None
    hexdigits = _HEX
    if not (hexdigits.issuperset(trace_id) and hexdigits.issuperset(span_id)
            and hexdigits.issuperset(flags)):
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return TraceContext(trace_id, span_id, flags)


def reference_encode(ctx: TraceContext) -> str:
    """The frozen oracle: field-by-field concatenation, no f-string."""
    return "-".join([VERSION, ctx.trace_id, ctx.span_id, ctx.flags])


def reference_decode(text: str) -> TraceContext:
    """The frozen strict decoder; raises :class:`TraceContextError`."""
    if not isinstance(text, str):
        raise TraceContextError("traceparent must be a string")
    if len(text) != 55:
        raise TraceContextError(f"traceparent must be 55 chars, got {len(text)}")
    for position in (2, 35, 52):
        if text[position] != "-":
            raise TraceContextError(f"missing separator at offset {position}")
    version = text[0:2]
    trace_id = text[3:35]
    span_id = text[36:52]
    flags = text[53:55]
    if version != VERSION:
        raise TraceContextError(f"unsupported version {version!r}")
    for name, field in (("trace-id", trace_id), ("span-id", span_id), ("flags", flags)):
        for ch in field:
            if ch not in _HEX:
                raise TraceContextError(f"non-hex character {ch!r} in {name}")
    if trace_id == "0" * 32:
        raise TraceContextError("all-zero trace-id is invalid")
    if span_id == "0" * 16:
        raise TraceContextError("all-zero span-id is invalid")
    return TraceContext(trace_id, span_id, flags)


# ----------------------------------------------------------------------
# SOAP header binding
# ----------------------------------------------------------------------
def header_element(encoded: str) -> Element:
    """The ``rt:TraceContext`` header block carrying *encoded*."""
    return Element(TRACE_HEADER, text=encoded, nsdecls={"rt": TRACE_NS})


def raw_context_of(envelope: Any) -> Optional[str]:
    """The header's raw text from a parsed envelope, or None.

    Duck-typed on ``find_header`` so this module stays a leaf (no soap
    import); malformedness is the caller's problem — pair with
    :func:`decode`.
    """
    block = envelope.find_header(TRACE_HEADER)
    return block.text if block is not None and block.text else None


def extract(envelope: Any) -> Optional[TraceContext]:
    """Decode the envelope's trace context (None: absent or malformed)."""
    raw = raw_context_of(envelope)
    return decode(raw) if raw else None


# ----------------------------------------------------------------------
# propagation switch + ambient context
# ----------------------------------------------------------------------
_propagate = False

#: the ambient context stack: the innermost entry is "the span whose
#: work is executing right now" on this (single-threaded, virtual-time)
#: process.  Windows are strictly nested because the container runs
#: request processing synchronously; async callbacks capture their
#: context at send time (the wire is built once), not from ambient.
_ambient: list[TraceContext] = []


def set_propagation(enabled: bool) -> bool:
    """Switch trace-context injection/extraction on; returns previous."""
    global _propagate
    previous = _propagate
    _propagate = bool(enabled)
    return previous


def propagation_enabled() -> bool:
    return _propagate


def current_context() -> Optional[TraceContext]:
    """The innermost ambient context (None outside any window)."""
    return _ambient[-1] if _ambient else None


@contextmanager
def activate(ctx: Optional[TraceContext]) -> Iterator[Optional[TraceContext]]:
    """Make *ctx* ambient for the duration of the with-block.

    None is a no-op window, so call sites need no conditional.
    """
    if ctx is None:
        yield None
        return
    _ambient.append(ctx)
    try:
        yield ctx
    finally:
        _ambient.pop()


def begin_send() -> Optional[TraceContext]:
    """The context for an outgoing invocation, or None when off.

    Inside an ambient window (a server handling a request, a failover
    executor driving attempts) the send continues that trace; outside
    one, it roots a new trace.
    """
    if not _propagate:
        return None
    parent = _ambient[-1] if _ambient else None
    return parent.child() if parent is not None else TraceContext.new_root()


def event_fields(ctx: Optional[TraceContext]) -> dict[str, Any]:
    """The trace tags an event detail dict carries ({} when untraced)."""
    if ctx is None:
        return {}
    fields: dict[str, Any] = {"trace_id": ctx.trace_id, "span_id": ctx.span_id}
    if ctx.parent_id is not None:
        fields["parent_span_id"] = ctx.parent_id
    return fields


def reset() -> None:
    """Disable propagation and drop any leaked ambient windows (test
    hygiene; does not rewind the id counters — ids stay unique)."""
    global _propagate
    _propagate = False
    _ambient.clear()
