"""Per-service SLOs with multi-window burn rates (E17).

An availability target like 99.9% only becomes actionable when you ask
*how fast the error budget is burning*: a burn rate of 1.0 spends the
budget exactly over the SLO period, 14.4 spends a 30-day budget in two
days.  Following the Google SRE multi-window recipe, each service is
judged over a short and a long window simultaneously — alerting only
when **both** exceed the threshold, so a single spike (short window
hot, long window calm) and a long-ago incident (long hot, short calm)
both stay quiet.

The engine is a tree listener, like the span tracer: ``request-sent``
opens a pending call, ``response-received`` closes it as *good* (or as
a latency violation when the policy sets a threshold), and
``failover-exhausted`` closes it as *bad*.  A per-attempt
``invoke-failed`` is only **provisionally** bad — the failover executor
fires one per failed attempt and may still recover the call on another
endpoint — so provisional failures settle into real ones only after a
grace period with no recovery.  ``report()`` publishes burn-rate gauges
and health annotations ("ok" / "warn" / "critical") per service, and
the introspection service exposes the same JSON via ``GetSloStatus``.
"""

from __future__ import annotations

import json
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Any, Optional

from repro.observability import metrics as obs_metrics

#: health annotation states, in increasing severity
OK, WARN, CRITICAL = "ok", "warn", "critical"

#: bound on outstanding request-sent entries awaiting a verdict
MAX_PENDING = 2048
#: bound on retained (time, good) samples per service
MAX_SAMPLES = 4096


@dataclass(frozen=True)
class SloPolicy:
    """What a service promises, and when to worry about the burn."""

    #: fraction of calls that must succeed (error budget = 1 - this)
    availability_target: float = 0.999
    #: calls slower than this are SLO violations even if they succeed
    #: (``None`` disables the latency criterion)
    latency_threshold: Optional[float] = None
    #: the two burn-rate windows, in virtual seconds
    short_window: float = 60.0
    long_window: float = 600.0
    #: burn-rate thresholds: critical when both windows exceed
    #: ``fast_burn``, warn when both exceed ``slow_burn``
    fast_burn: float = 14.4
    slow_burn: float = 6.0
    #: how long a provisional (per-attempt) failure may wait for a
    #: failover recovery before settling as a real failure
    settle_after: float = 5.0

    @property
    def error_budget(self) -> float:
        return max(1.0 - self.availability_target, 1e-9)


class ServiceSlo:
    """One service's sample history and burn-rate arithmetic."""

    def __init__(self, name: str, policy: SloPolicy):
        self.name = name
        self.policy = policy
        #: (time, good) verdicts, oldest first
        self.samples: deque[tuple[float, bool]] = deque(maxlen=MAX_SAMPLES)
        self.good = 0
        self.bad = 0
        self.latency_violations = 0
        self.status = OK
        #: (time, old_status, new_status) transitions, for post-mortems
        self.transitions: list[tuple[float, str, str]] = []

    def record(self, time: float, good: bool) -> None:
        self.samples.append((time, good))
        if good:
            self.good += 1
        else:
            self.bad += 1

    def error_fraction(self, now: float, window: float) -> float:
        """Fraction of verdicts in ``[now - window, now]`` that were bad."""
        total = bad = 0
        cutoff = now - window
        for time, good in reversed(self.samples):
            if time < cutoff:
                break
            total += 1
            if not good:
                bad += 1
        return bad / total if total else 0.0

    def burn_rates(self, now: float) -> tuple[float, float]:
        budget = self.policy.error_budget
        return (self.error_fraction(now, self.policy.short_window) / budget,
                self.error_fraction(now, self.policy.long_window) / budget)

    def health(self, now: float) -> tuple[str, float, float]:
        """(status, short_burn, long_burn) — both windows must agree."""
        short, long_ = self.burn_rates(now)
        if short >= self.policy.fast_burn and long_ >= self.policy.fast_burn:
            return CRITICAL, short, long_
        if short >= self.policy.slow_burn and long_ >= self.policy.slow_burn:
            return WARN, short, long_
        return OK, short, long_


class _SourceListener:
    def __init__(self, engine: "SloEngine"):
        self.engine = engine

    def message_received(self, event: Any) -> None:
        self.engine.observe(event)


class SloEngine:
    """Tree listener turning invocation events into burn-rate health."""

    def __init__(self, policy: Optional[SloPolicy] = None,
                 metrics: Optional[Any] = None):
        self.default_policy = policy if policy is not None else SloPolicy()
        self.metrics = metrics if metrics is not None else obs_metrics
        self.services: dict[str, ServiceSlo] = {}
        self._policies: dict[str, SloPolicy] = {}
        #: message_id -> (service, sent_time) awaiting a verdict
        self._pending: OrderedDict[str, tuple[str, float]] = OrderedDict()
        #: message_id -> (service, fail_time) provisionally failed
        self._provisional: OrderedDict[str, tuple[str, float]] = OrderedDict()
        self.pending_evicted = 0
        self._attached: list[tuple[Any, _SourceListener]] = []
        self._last_event_time = 0.0

    # -- configuration -----------------------------------------------------
    def set_policy(self, service: str, policy: SloPolicy) -> None:
        """Per-service override (applies to future verdicts' windows)."""
        self._policies[service] = policy
        if service in self.services:
            self.services[service].policy = policy

    def _service(self, name: str) -> ServiceSlo:
        slo = self.services.get(name)
        if slo is None:
            policy = self._policies.get(name, self.default_policy)
            slo = self.services[name] = ServiceSlo(name, policy)
        return slo

    # -- wiring ------------------------------------------------------------
    def attach(self, source: Any) -> None:
        listener = _SourceListener(self)
        source.add_listener(listener)
        self._attached.append((source, listener))

    def install(self, *peers: Any) -> "SloEngine":
        for peer in peers:
            self.attach(peer)
        return self

    def detach(self) -> None:
        for source, listener in self._attached:
            try:
                source.remove_listener(listener)
            except ValueError:
                pass
        self._attached.clear()

    # -- event intake ------------------------------------------------------
    def observe(self, event: Any) -> None:
        kind = getattr(event, "kind", None)
        detail = getattr(event, "detail", None) or {}
        service = detail.get("service")
        message_id = detail.get("message_id")
        time = getattr(event, "time", 0.0)
        self._last_event_time = max(self._last_event_time, time)
        if not service or not message_id:
            return
        if kind == "request-sent":
            # failover hops re-send the same MessageID: keep first sent time
            if message_id not in self._pending:
                self._pending[message_id] = (service, time)
                while len(self._pending) > MAX_PENDING:
                    self._pending.popitem(last=False)
                    self.pending_evicted += 1
        elif kind == "response-received":
            entry = self._pending.pop(message_id, None)
            self._provisional.pop(message_id, None)  # failover recovered
            slo = self._service(service)
            good = True
            if entry is not None and slo.policy.latency_threshold is not None:
                latency = time - entry[1]
                if latency > slo.policy.latency_threshold:
                    good = False
                    slo.latency_violations += 1
                    self.metrics.inc("slo.latency_violations")
            slo.record(time, good)
        elif kind in ("invoke-failed", "oneway-failed"):
            # per-attempt failure: provisional until settle_after elapses
            if message_id in self._pending:
                self._provisional[message_id] = (service, time)
        elif kind == "failover-exhausted":
            self._pending.pop(message_id, None)
            self._provisional.pop(message_id, None)
            self._service(service).record(time, False)

    def _settle(self, now: float) -> None:
        """Provisional failures with no recovery become real ones."""
        settled = [
            mid for mid, (service, failed_at) in self._provisional.items()
            if now - failed_at >= self._service(service).policy.settle_after
        ]
        for mid in settled:
            service, failed_at = self._provisional.pop(mid)
            self._pending.pop(mid, None)
            self._service(service).record(failed_at, False)

    # -- reporting ---------------------------------------------------------
    def report(self, now: Optional[float] = None) -> dict[str, dict[str, Any]]:
        """Settle provisionals, publish gauges, return per-service health."""
        if now is None:
            now = self._last_event_time
        self._settle(now)
        out: dict[str, dict[str, Any]] = {}
        for name, slo in self.services.items():
            status, short, long_ = slo.health(now)
            if status != slo.status:
                slo.transitions.append((now, slo.status, status))
                slo.status = status
            self.metrics.set_gauge(f"slo.{name}.burn_short", short)
            self.metrics.set_gauge(f"slo.{name}.burn_long", long_)
            self.metrics.set_gauge(
                f"slo.{name}.healthy", 1.0 if status == OK else 0.0)
            out[name] = {
                "status": status,
                "burn_short": short,
                "burn_long": long_,
                "good": slo.good,
                "bad": slo.bad,
                "latency_violations": slo.latency_violations,
                "availability_target": slo.policy.availability_target,
                "transitions": [
                    {"time": t, "from": old, "to": new}
                    for t, old, new in slo.transitions
                ],
            }
        return out

    def status_json(self, now: Optional[float] = None) -> str:
        """The ``GetSloStatus`` payload."""
        return json.dumps({"schema": "repro.slo/1",
                           "services": self.report(now)}, default=str)
