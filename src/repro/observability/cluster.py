"""Cluster-wide metric aggregation (E17): digests over gossip + scrape.

One peer's :class:`~repro.observability.metrics.MetricsRegistry` answers
"what has *this* node been doing"; operating a cluster needs the sum.
Two transport paths feed the same store:

- **gossip piggyback** — each node periodically folds its registry into
  a compact digest and rides it on the E12 epidemic overlay as a
  :class:`~repro.discovery.gossip.MetricDigest` frame.  Per-origin
  monotonic sequence numbers make acceptance idempotent and ordering
  clock-free, exactly like service announcements;
- **introspection scrape** — a node can pull another's digest directly
  over the ordinary service machinery (``GetMetricsDigest``), for
  pull-based collection or to backfill a partitioned overlay.

Merging is type-aware: counters sum, gauges stay per-origin (summing a
queue depth across nodes is meaningful; summing a breaker state is
not — the reader decides), and histograms bucket-merge when bounds
agree (mismatches are counted, never silently averaged).  The merged
view is served by ``GetClusterMetrics``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Optional

from repro.observability import metrics as obs_metrics
from repro.observability.metrics import Histogram, MetricsRegistry

#: digest record schema: bump when the shape changes
DIGEST_SCHEMA = 1

#: default virtual-seconds between periodic gossip publishes
DEFAULT_PUBLISH_INTERVAL = 5.0


def digest_registry(registry: MetricsRegistry, origin: str, seq: int,
                    now: float = 0.0) -> dict[str, Any]:
    """Fold *registry* into a JSON-safe digest dict.

    Histograms ship raw buckets (bounds + counts + exact count/sum/
    min/max), not quantiles — quantiles do not merge; buckets do.
    """
    snap = registry.snapshot()
    histograms: dict[str, Any] = {}
    # raw bucket access: quantiles are recomputed after merging, so the
    # digest must carry the mergeable representation
    for name, hist in sorted(registry._histograms.items()):
        histograms[name] = {
            "bounds": list(hist.bounds),
            "counts": list(hist.counts),
            "count": hist.count,
            "sum": hist.total,
            "min": hist.min,
            "max": hist.max,
        }
    return {
        "schema": DIGEST_SCHEMA,
        "origin": origin,
        "seq": seq,
        "time": now,
        "counters": snap["counters"],
        "gauges": snap["gauges"],
        "histograms": histograms,
    }


def merge_digests(digests: list[dict[str, Any]]) -> dict[str, Any]:
    """Combine per-node digests into one cluster view."""
    counters: dict[str, int] = {}
    gauges: dict[str, dict[str, float]] = {}
    merged_hists: dict[str, dict[str, Any]] = {}
    skipped = 0
    origins: list[str] = []
    for digest in digests:
        origin = digest.get("origin", "?")
        origins.append(origin)
        for name, value in digest.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in digest.get("gauges", {}).items():
            gauges.setdefault(name, {})[origin] = value
        for name, h in digest.get("histograms", {}).items():
            held = merged_hists.get(name)
            if held is None:
                merged_hists[name] = {
                    "bounds": list(h["bounds"]),
                    "counts": list(h["counts"]),
                    "count": h["count"],
                    "sum": h["sum"],
                    "min": h["min"],
                    "max": h["max"],
                }
                continue
            if held["bounds"] != list(h["bounds"]):
                skipped += 1  # incompatible buckets: counted, not averaged
                continue
            held["counts"] = [a + b for a, b in zip(held["counts"], h["counts"])]
            held["count"] += h["count"]
            held["sum"] += h["sum"]
            for field, pick in (("min", min), ("max", max)):
                if h[field] is not None:
                    held[field] = (h[field] if held[field] is None
                                   else pick(held[field], h[field]))
    histograms: dict[str, Any] = {}
    for name, h in sorted(merged_hists.items()):
        # rebuild a Histogram so quantiles interpolate over merged buckets
        hist = Histogram(name, h["bounds"])
        hist.counts = list(h["counts"])
        hist.count = h["count"]
        hist.total = h["sum"]
        hist.min = h["min"]
        hist.max = h["max"]
        histograms[name] = hist.snapshot()
    return {
        "schema": DIGEST_SCHEMA,
        "origins": sorted(origins),
        "counters": dict(sorted(counters.items())),
        "gauges": {n: dict(sorted(per.items()))
                   for n, per in sorted(gauges.items())},
        "histograms": histograms,
        "histograms_skipped": skipped,
    }


class ClusterMetricsStore:
    """Freshest digest per origin, accepted seq-monotonically."""

    def __init__(self) -> None:
        self._digests: dict[str, dict[str, Any]] = {}
        self.stale = 0
        self.malformed = 0

    def accept(self, digest: dict[str, Any]) -> bool:
        origin = digest.get("origin")
        seq = digest.get("seq")
        if not origin or not isinstance(seq, int):
            self.malformed += 1
            return False
        held = self._digests.get(origin)
        if held is not None and seq <= held["seq"]:
            self.stale += 1
            return False
        self._digests[origin] = digest
        return True

    def digests(self) -> list[dict[str, Any]]:
        return [self._digests[o] for o in sorted(self._digests)]

    def origins(self) -> list[str]:
        return sorted(self._digests)

    def __len__(self) -> int:
        return len(self._digests)


class ClusterMetricsAgent:
    """One node's participation in cluster metric aggregation.

    Wire it to a gossip node to publish/receive digests epidemically;
    wire it to a peer to scrape others (and be scraped) through
    introspection.  Both paths land in the same per-origin store.
    """

    def __init__(
        self,
        peer: Any = None,
        registry: Optional[MetricsRegistry] = None,
        gossip: Optional[Any] = None,
        clock: Optional[Callable[[], float]] = None,
        origin: Optional[str] = None,
    ):
        self._peer = peer
        self.registry = (registry if registry is not None
                         else obs_metrics.default_registry())
        self.origin = origin or getattr(peer, "name", None) or "local"
        self._clock = clock or getattr(peer, "_clock", None) or (lambda: 0.0)
        self.store = ClusterMetricsStore()
        self.gossip = gossip
        self._seq = 0
        self._timer_running = False
        if gossip is not None:
            gossip.add_digest_listener(self._on_digest)

    # -- gossip path ---------------------------------------------------
    def _on_digest(self, digest: Any) -> None:
        try:
            payload = json.loads(digest.payload)
        except (ValueError, TypeError):
            self.store.malformed += 1
            return
        self.store.accept(payload)

    def local_digest(self) -> dict[str, Any]:
        """A fresh digest of the local registry (bumps our seq)."""
        self._seq += 1
        return digest_registry(self.registry, self.origin, self._seq,
                               self._clock())

    def publish(self) -> dict[str, Any]:
        """Digest the local registry and gossip it (when wired).

        The gossip node's self-accept loops the digest back through
        :meth:`_on_digest`, so our own store always holds our freshest.
        """
        digest = self.local_digest()
        if self.gossip is not None:
            self.gossip.announce_digest(json.dumps(digest), seq=digest["seq"])
        else:
            self.store.accept(digest)
        return digest

    def start(self, kernel: Any,
              interval: float = DEFAULT_PUBLISH_INTERVAL) -> None:
        """Publish every *interval* virtual seconds on *kernel*."""
        if self._timer_running:
            return
        self._timer_running = True

        def tick() -> None:
            if not self._timer_running:
                return
            self.publish()
            kernel.schedule(interval, tick)

        kernel.schedule(interval, tick)

    def stop(self) -> None:
        self._timer_running = False

    # -- scrape path ---------------------------------------------------
    def scrape(self, handle: Any, via: Any = None) -> bool:
        """Pull a digest from another node's introspection service."""
        invoker = via if via is not None else self._peer
        text = invoker.invoke(handle, "GetMetricsDigest")
        try:
            payload = json.loads(text)
        except (ValueError, TypeError):
            self.store.malformed += 1
            return False
        return self.store.accept(payload)

    # -- reading -------------------------------------------------------
    def cluster_snapshot(self) -> dict[str, Any]:
        """The merged cluster view, always including a live local digest."""
        digests = [d for d in self.store.digests()
                   if d.get("origin") != self.origin]
        digests.append(digest_registry(self.registry, self.origin,
                                       self._seq, self._clock()))
        merged = merge_digests(digests)
        merged["nodes"] = merged.pop("origins")
        merged["stale_rejected"] = self.store.stale
        return merged

    def to_json(self) -> str:
        """The ``GetClusterMetrics`` payload."""
        return json.dumps(self.cluster_snapshot(), default=str)
