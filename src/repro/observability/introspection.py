"""The dogfooded introspection service: WSPeer describing itself.

The strongest claim the paper makes for symmetric peers is that a
node's capabilities are just services — so the observability layer's
own outputs are exposed the same way everything else is: a live
:class:`IntrospectionService` object deployed through the ordinary
container/deployer path, invocable over whichever binding the peer
speaks (HTTP or P2PS), discoverable like any other service.

Operations (RPC-style, results as plain strings so any client can
read them without a struct registry):

- ``GetMetrics()`` — the peer's metrics registry rendered as the
  plain-text snapshot;
- ``GetTrace(message_id)`` — the stitched span tree for one logical
  invocation as JSON (the JSONL exporter's record shape);
- ``ListServices()`` — the peer's deployed services as JSON.

Hosting the tracer's data over the traced machinery is intentional:
if the span tree for a failover hop cannot itself be fetched through
the container, the observability layer does not actually work.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.observability import metrics as obs_metrics
from repro.observability.spans import SpanTracer

#: namespace the introspection service publishes under
INTROSPECTION_NS = "urn:repro:introspection"

#: the operations exposed through the container (deploy ``include=`` list)
OPERATIONS = ("GetMetrics", "GetTrace", "ListServices")


class IntrospectionService:
    """A live object the container exposes; one per hosting peer."""

    def __init__(
        self,
        peer: Any = None,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
    ):
        self._peer = peer
        self._tracer = tracer
        self._metrics = metrics

    # -- helpers (underscored: invisible to the RPC surface) ---------------
    def _registry(self) -> obs_metrics.MetricsRegistry:
        if self._metrics is not None:
            return self._metrics
        if self._tracer is not None:
            return self._tracer.metrics
        return obs_metrics.default_registry()

    # -- operations --------------------------------------------------------
    def GetMetrics(self) -> str:
        """The hosting peer's metrics snapshot, plain text."""
        return self._registry().render_text()

    def GetTrace(self, message_id: str) -> str:
        """The span tree for *message_id* as JSON ('{"error": ...}' when
        no tracer is wired or the ring has evicted the trace)."""
        if self._tracer is None:
            return json.dumps({"error": "no tracer attached", "message_id": message_id})
        tree = self._tracer.trace_dict(message_id)
        if tree is None:
            return json.dumps({"error": "no trace", "message_id": message_id})
        return json.dumps({"message_id": message_id, **tree}, default=str)

    def ListServices(self) -> str:
        """The hosting peer's deployed services as JSON."""
        if self._peer is None:
            return json.dumps({"services": []})
        return json.dumps({
            "peer": getattr(self._peer, "name", ""),
            "services": list(getattr(self._peer, "deployed_services", [])),
        })
