"""The dogfooded introspection service: WSPeer describing itself.

The strongest claim the paper makes for symmetric peers is that a
node's capabilities are just services — so the observability layer's
own outputs are exposed the same way everything else is: a live
:class:`IntrospectionService` object deployed through the ordinary
container/deployer path, invocable over whichever binding the peer
speaks (HTTP or P2PS), discoverable like any other service.

Operations (RPC-style, results as plain strings so any client can
read them without a struct registry):

- ``GetMetrics()`` — the peer's metrics registry rendered as the
  plain-text snapshot;
- ``GetTrace(message_id)`` — the stitched span tree for one logical
  invocation as JSON (the JSONL exporter's record shape);
- ``GetDistributedTrace(trace_id)`` — every invocation tagged with one
  wire trace id, stitched across nodes (E17);
- ``GetFlightRecord()`` — the flight recorder's latest post-mortem
  dump, or a live snapshot when nothing has triggered (E17);
- ``GetMetricsDigest()`` — the local registry as a mergeable digest,
  the scrape half of cluster aggregation (E17);
- ``GetClusterMetrics()`` — the merged cluster view: gossiped +
  scraped digests folded together (E17);
- ``GetSloStatus()`` — per-service burn rates and health (E17);
- ``ListServices()`` — the peer's deployed services as JSON.

Error results share one documented shape::

    {"error": {"code": "<machine-readable>", "message": "<human>"},
     ...request echo fields...}

so a caller can always dispatch on ``payload["error"]["code"]``.

Hosting the tracer's data over the traced machinery is intentional:
if the span tree for a failover hop cannot itself be fetched through
the container, the observability layer does not actually work.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.observability import metrics as obs_metrics
from repro.observability.spans import SpanTracer

#: namespace the introspection service publishes under
INTROSPECTION_NS = "urn:repro:introspection"

#: the operations exposed through the container (deploy ``include=`` list)
OPERATIONS = ("GetMetrics", "GetTrace", "GetDistributedTrace",
              "GetFlightRecord", "GetMetricsDigest", "GetClusterMetrics",
              "GetSloStatus", "ListServices")


def _error(code: str, message: str, **echo: Any) -> str:
    """The documented error shape: a structured object, never a bare
    string, so callers dispatch on ``payload["error"]["code"]``."""
    return json.dumps({"error": {"code": code, "message": message}, **echo})


class IntrospectionService:
    """A live object the container exposes; one per hosting peer."""

    def __init__(
        self,
        peer: Any = None,
        tracer: Optional[SpanTracer] = None,
        metrics: Optional[obs_metrics.MetricsRegistry] = None,
        flight: Any = None,
        cluster: Any = None,
        slo: Any = None,
    ):
        self._peer = peer
        self._tracer = tracer
        self._metrics = metrics
        self._flight = flight
        self._cluster = cluster
        self._slo = slo

    # -- helpers (underscored: invisible to the RPC surface) ---------------
    def _registry(self) -> obs_metrics.MetricsRegistry:
        if self._metrics is not None:
            return self._metrics
        if self._tracer is not None:
            return self._tracer.metrics
        return obs_metrics.default_registry()

    def _facility(self, held: Any, peer_attr: str) -> Any:
        """An explicitly-wired facility, else the hosting peer's —
        lazily, so enabling after hosting still works."""
        if held is not None:
            return held
        return getattr(self._peer, peer_attr, None)

    # -- operations --------------------------------------------------------
    def GetMetrics(self) -> str:
        """The hosting peer's metrics snapshot, plain text."""
        return self._registry().render_text()

    def GetTrace(self, message_id: str) -> str:
        """The span tree for *message_id* as JSON, or the documented
        error object when no tracer is wired (``no-tracer``) or the
        ring has evicted / never held the trace (``trace-not-found``)."""
        if self._tracer is None:
            return _error("no-tracer", "no tracer attached to this peer",
                          message_id=message_id)
        tree = self._tracer.trace_dict(message_id)
        if tree is None:
            return _error("trace-not-found",
                          "no trace for that MessageID (unknown or evicted)",
                          message_id=message_id)
        return json.dumps({"message_id": message_id, **tree}, default=str)

    def GetDistributedTrace(self, trace_id: str) -> str:
        """Every invocation carrying *trace_id*, stitched into one
        cross-node causal tree."""
        if self._tracer is None:
            return _error("no-tracer", "no tracer attached to this peer",
                          trace_id=trace_id)
        stitched = self._tracer.distributed_trace(trace_id)
        if not stitched["invocations"]:
            return _error("trace-not-found",
                          "no invocations tagged with that trace id",
                          trace_id=trace_id)
        return json.dumps(stitched, default=str)

    def GetFlightRecord(self) -> str:
        """The latest flight-recorder dump (live snapshot if none)."""
        flight = self._facility(self._flight, "flight")
        if flight is None:
            return _error("no-flight-recorder",
                          "no flight recorder attached to this peer")
        return flight.to_json()

    def GetMetricsDigest(self) -> str:
        """The local registry as a mergeable digest (the scrape path)."""
        cluster = self._facility(self._cluster, "cluster_metrics")
        if cluster is not None:
            return json.dumps(cluster.local_digest(), default=str)
        # no agent: still scrapeable — an anonymous seq-0 digest of the
        # registry this service renders
        from repro.observability.cluster import digest_registry
        origin = getattr(self._peer, "name", None) or "local"
        return json.dumps(digest_registry(self._registry(), origin, 0),
                          default=str)

    def GetClusterMetrics(self) -> str:
        """The merged cluster view (gossiped + scraped digests)."""
        cluster = self._facility(self._cluster, "cluster_metrics")
        if cluster is None:
            return _error("no-cluster-agent",
                          "no cluster metrics agent on this peer")
        return cluster.to_json()

    def GetSloStatus(self) -> str:
        """Per-service burn rates and health annotations."""
        slo = self._facility(self._slo, "slo")
        if slo is None:
            return _error("no-slo-engine", "no SLO engine on this peer")
        return slo.status_json()

    def ListServices(self) -> str:
        """The hosting peer's deployed services as JSON."""
        if self._peer is None:
            return json.dumps({"services": []})
        return json.dumps({
            "peer": getattr(self._peer, "name", ""),
            "services": list(getattr(self._peer, "deployed_services", [])),
        })
