"""Link latency models.

All randomness flows through a seeded :class:`numpy.random.Generator`
owned by the model, keeping simulations reproducible.
"""

from __future__ import annotations

import abc

import numpy as np


class LatencyModel(abc.ABC):
    """Strategy deciding the one-way delay of each frame."""

    @abc.abstractmethod
    def sample(self, src: str, dst: str, size: int) -> float:
        """One-way latency in virtual seconds for a *size*-byte frame
        from node *src* to node *dst*."""

    def loopback(self) -> float:
        """Latency for a node talking to itself (default: negligible)."""
        return 1e-6


class FixedLatency(LatencyModel):
    """Constant per-hop latency plus optional per-byte transmission cost."""

    def __init__(self, seconds: float = 0.001, per_byte: float = 0.0):
        if seconds < 0 or per_byte < 0:
            raise ValueError("latency parameters must be non-negative")
        self.seconds = seconds
        self.per_byte = per_byte

    def sample(self, src: str, dst: str, size: int) -> float:
        return self.seconds + self.per_byte * size


class UniformLatency(LatencyModel):
    """Uniformly distributed latency in ``[low, high]``."""

    def __init__(self, low: float = 0.0005, high: float = 0.002, seed: int = 0):
        if not 0 <= low <= high:
            raise ValueError("require 0 <= low <= high")
        self.low = low
        self.high = high
        self._rng = np.random.default_rng(seed)

    def sample(self, src: str, dst: str, size: int) -> float:
        return float(self._rng.uniform(self.low, self.high))


class SeededLatency(LatencyModel):
    """Log-normal WAN-like latency with a heavier tail.

    ``median`` is the median one-way delay; ``sigma`` controls tail
    weight.  A per-byte term models bandwidth.
    """

    def __init__(
        self,
        median: float = 0.02,
        sigma: float = 0.5,
        per_byte: float = 1e-8,
        seed: int = 0,
    ):
        if median <= 0:
            raise ValueError("median must be positive")
        self.median = median
        self.sigma = sigma
        self.per_byte = per_byte
        self._rng = np.random.default_rng(seed)

    def sample(self, src: str, dst: str, size: int) -> float:
        base = float(self._rng.lognormal(mean=np.log(self.median), sigma=self.sigma))
        return base + self.per_byte * size
